(* Table-driven CRC-32 (reflected 0xEDB88320).  The table is computed
   once at module initialization; updates are one load, one xor, one
   shift per byte. *)

let table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let run get off len =
  let t = Lazy.force table in
  let crc = ref mask32 in
  for i = off to off + len - 1 do
    crc := t.((!crc lxor get i) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor mask32 land mask32

let check name total off len =
  if off < 0 || len < 0 || off + len > total then
    invalid_arg (Printf.sprintf "Crc32.%s: range (%d,%d) out of bounds" name off len)

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  check "string" (String.length s) off len;
  run (fun i -> Char.code (String.unsafe_get s i)) off len

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  check "bytes" (Bytes.length b) off len;
  run (fun i -> Char.code (Bytes.unsafe_get b i)) off len
