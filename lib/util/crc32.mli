(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the checksum
    guarding every section of the on-disk snapshot format.

    A cyclic redundancy check is the right tool for the snapshot
    codec's threat model — truncation, single bit-flips, and small
    burst errors from a bad disk or an interrupted write — and is cheap
    enough to run over multi-megabyte marshaled sections at load time.
    It is {e not} cryptographic: it detects accidents, not attackers.

    Checksums are returned as non-negative [int]s in [0, 2^32)
    (OCaml's 63-bit native ints hold them exactly). *)

val string : ?off:int -> ?len:int -> string -> int
(** CRC-32 of a substring (default: the whole string).
    @raise Invalid_argument when the range is out of bounds. *)

val bytes : ?off:int -> ?len:int -> bytes -> int
(** Same over [bytes]. *)
