(* A generation-stamped barrier pool: [run] publishes a parallel-for
   body under the mutex and bumps [generation]; parked workers wake,
   claim contiguous index chunks until the range is drained, then report
   in.  [run] returns only after every worker has reported for the
   current generation, so a worker can never straggle into the next
   run's range and all job effects are ordered before the caller's
   continuation (the mutex hand-off is the happens-before edge). *)

type t = {
  jobs : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable body : (int -> unit) option;
  mutable hi : int;  (* exclusive upper bound of the current range *)
  mutable next : int;  (* next unclaimed index, guarded by [m] *)
  mutable chunk : int;
  mutable finished : int;  (* workers done with the current generation *)
  mutable generation : int;
  mutable stop : bool;
  mutable failure : (exn * Printexc.raw_backtrace) option;
}

(* Claim-and-run until the range is drained or a job has failed.  The
   failure check makes cancellation prompt at chunk granularity: after
   one job raises, the other participants stop claiming. *)
let claim_chunks t f =
  let continue = ref true in
  while !continue do
    Mutex.lock t.m;
    let lo = t.next in
    let hi = min t.hi (lo + t.chunk) in
    t.next <- hi;
    let cancelled = t.failure <> None in
    Mutex.unlock t.m;
    if cancelled || lo >= hi then continue := false
    else
      try
        for i = lo to hi - 1 do
          f i
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.m;
        if t.failure = None then t.failure <- Some (e, bt);
        Mutex.unlock t.m;
        continue := false
  done

let worker t i () =
  (* Pin this domain's metrics shard: slot 0 is the spawning domain's,
     worker [i] owns slot [i + 1].  This is what keeps ~ops counter
     totals bit-identical across job counts — each domain only ever
     touches its own cells, so no increment can be lost. *)
  Metrics.set_slot (i + 1);
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work_ready t.m
    done;
    if t.stop then begin
      Mutex.unlock t.m;
      running := false
    end
    else begin
      seen := t.generation;
      let f = match t.body with Some f -> f | None -> fun _ -> () in
      Mutex.unlock t.m;
      claim_chunks t f;
      Mutex.lock t.m;
      t.finished <- t.finished + 1;
      if t.finished = t.jobs - 1 then Condition.signal t.work_done;
      Mutex.unlock t.m
    end
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let jobs = min jobs (Metrics.max_slots - 1) in
  let t =
    {
      jobs;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      body = None;
      hi = 0;
      next = 0;
      chunk = 1;
      finished = 0;
      generation = 0;
      stop = false;
      failure = None;
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t i));
  t

let jobs t = t.jobs

let run t ~n f =
  if n > 0 then
    if t.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      Mutex.lock t.m;
      if t.stop then begin
        Mutex.unlock t.m;
        invalid_arg "Pool.run: pool is shut down"
      end;
      t.body <- Some f;
      t.hi <- n;
      t.next <- 0;
      t.chunk <- max 1 (n / (4 * t.jobs));
      t.finished <- 0;
      t.failure <- None;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      claim_chunks t f;
      Mutex.lock t.m;
      while t.finished < t.jobs - 1 do
        Condition.wait t.work_done t.m
      done;
      t.body <- None;
      let fail = t.failure in
      t.failure <- None;
      Mutex.unlock t.m;
      match fail with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run t ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map t f l = Array.to_list (map_array t f (Array.of_list l))

let shutdown t =
  Mutex.lock t.m;
  if t.stop then Mutex.unlock t.m
  else begin
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.m;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
