(** A small chunked work pool over stdlib domains.

    Preprocessing is embarrassingly parallel along per-bag / per-vertex
    axes, so all the pool offers is a parallel for-loop: [run t ~n f]
    evaluates [f i] for every [i] in [0, n), partitioned into contiguous
    index chunks claimed by [jobs] participants ([jobs - 1] worker
    domains plus the calling domain).  Workers are spawned once at
    {!create} and parked on a condition variable between runs, so a
    prepare pipeline can fan out many times without re-spawning.

    Determinism contract: the pool guarantees nothing about {e which}
    participant runs which index, only that every index runs exactly
    once and that all effects of [f] are visible to the caller when
    [run] returns (the join synchronizes).  Deterministic results are
    the {e caller's} job: jobs must write to disjoint cells (e.g.
    [out.(i) <- ...]) and any shared accounting must shard per domain —
    {!Nd_util.Metrics} counters do exactly that, each worker being
    pinned to its own metrics slot (see {!Nd_util.Metrics.set_slot}), so
    [~ops]-flagged totals are bit-identical regardless of the job count.

    A pool with [jobs = 1] spawns no domains and runs everything inline
    in the caller; it is the sequential baseline the differential tests
    compare against.

    [run] is {e not} reentrant: calling it from inside a job body (or
    from two threads at once) is a programming error. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (none when
    [jobs = 1]).  [jobs] must be ≥ 1; it is clamped to the metrics slot
    budget ({!Nd_util.Metrics.max_slots}[ - 1]).  Worker domain [i] pins
    metrics slot [i + 1]; the caller keeps slot 0. *)

val jobs : t -> int
(** The participant count (workers + the calling domain). *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] evaluates [f i] for every [0 ≤ i < n], in parallel
    chunks.  If any job raises, remaining unclaimed chunks are skipped
    and the first exception (by completion order) is re-raised in the
    caller after all participants have stopped — a
    [Nd_error.Budget_exceeded] escaping a worker therefore reaches the
    caller's {!Nd_util.Budget.with_budget} scope exactly like in the
    sequential code. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs]: like [Array.map f xs] with the applications of
    [f] run through {!run}; element order is preserved. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f l]: like [List.map f l] (same order), parallel. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  A shut-down pool
    rejects further {!run} calls with [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f]: {!create}, run [f], always {!shutdown}. *)
