type t = {
  b_max_ops : int option;
  b_timeout_ms : int option;
  b_max_memory_words : int option;
  mutable ops0 : int;  (* Metrics.ops at creation / renew *)
  mutable t0 : float;
  mutable phase : string;
  mutable exhausted : Nd_error.budget_info option;
}

let create ?max_ops ?timeout_ms ?max_memory_words () =
  let pos name = function
    | Some v when v <= 0 ->
        invalid_arg (Printf.sprintf "Budget.create: %s must be positive" name)
    | _ -> ()
  in
  pos "max_ops" max_ops;
  pos "timeout_ms" timeout_ms;
  pos "max_memory_words" max_memory_words;
  (* the ops clock only advances while Metrics is enabled *)
  if max_ops <> None then Metrics.enable ();
  {
    b_max_ops = max_ops;
    b_timeout_ms = timeout_ms;
    b_max_memory_words = max_memory_words;
    ops0 = (if max_ops = None then 0 else Metrics.ops ());
    t0 = Unix.gettimeofday ();
    phase = "";
    exhausted = None;
  }

let limited b =
  b.b_max_ops <> None || b.b_timeout_ms <> None || b.b_max_memory_words <> None

let max_ops b = b.b_max_ops
let timeout_ms b = b.b_timeout_ms
let max_memory_words b = b.b_max_memory_words

let ops_used b = if b.b_max_ops = None then 0 else Metrics.ops () - b.ops0

let elapsed_ms b =
  int_of_float ((Unix.gettimeofday () -. b.t0) *. 1000.)

let exhausted b = b.exhausted

let renew b =
  b.ops0 <- (if b.b_max_ops = None then 0 else Metrics.ops ());
  b.t0 <- Unix.gettimeofday ();
  b.exhausted <- None

let set_phase b p = b.phase <- p

let with_phase b p f =
  let prev = b.phase in
  b.phase <- p;
  Fun.protect ~finally:(fun () -> b.phase <- prev) f

let fail b resource limit used =
  let info =
    {
      Nd_error.phase = (if b.phase = "" then "unknown" else b.phase);
      resource;
      limit;
      used;
    }
  in
  if b.exhausted = None then b.exhausted <- Some info;
  (* re-raising reports the *first* exhaustion: once a budget trips it
     stays tripped until renewed, and the phase that broke it first is
     the one worth naming *)
  raise (Nd_error.Budget_exceeded (Option.value b.exhausted ~default:info))

let check b =
  (match b.b_max_ops with
  | Some lim ->
      let used = Metrics.ops () - b.ops0 in
      if used > lim then fail b Nd_error.Ops lim used
  | None -> ());
  (match b.b_timeout_ms with
  | Some lim ->
      let used = elapsed_ms b in
      if used > lim then fail b Nd_error.Time lim used
  | None -> ());
  match b.b_max_memory_words with
  | Some lim ->
      let used = (Gc.quick_stat ()).Gc.heap_words in
      if used > lim then fail b Nd_error.Memory lim used
  | None -> ()

(* ---------------- the installed ambient budget ---------------- *)

let slot : t option ref = ref None

let install b = slot := b

let installed () = !slot

let with_installed b f =
  let prev = !slot in
  slot := Some b;
  Fun.protect ~finally:(fun () -> slot := prev) f

let poll () = match !slot with None -> () | Some b -> check b

let enter p =
  match !slot with
  | None -> ()
  | Some b ->
      b.phase <- p;
      check b

let probe_period = 32

(* Per-domain tick counters: worker domains running bag-jobs probe the
   shared installed budget on their own cadence without contending (or
   racing) on a global counter.  The ops clock they check against is
   the shard-summed [Metrics.ops], so a budget watches the *total* work
   of all domains, just as it watched the single domain before. *)
let ticks_key = Domain.DLS.new_key (fun () -> ref 0)

let tick () =
  match !slot with
  | None -> ()
  | Some b ->
      (* a budget that already tripped fails fast on every probe —
         after exhaustion no cooperative work may proceed *)
      if b.exhausted <> None then check b
      else begin
        let ticks = Domain.DLS.get ticks_key in
        incr ticks;
        if !ticks land (probe_period - 1) = 0 then check b
      end

let with_budget b f =
  let prev = !slot in
  slot := Some b;
  let restore () =
    slot := prev;
    (* the scope may have died anywhere in the amortization window;
       realign so the next scope's first probe_period ticks are not
       silently inherited from this one (worker domains keep their own
       counters — misalignment there only shifts probe cadence) *)
    Domain.DLS.get ticks_key := 0
  in
  match f () with
  | v ->
      restore ();
      Ok v
  | exception Nd_error.Budget_exceeded info ->
      restore ();
      Error info
  | exception e ->
      restore ();
      raise e
