(** Cross-cutting cost-model instrumentation.

    The paper's headline claims are resource bounds — constant-time
    lookup (Theorem 3.1), constant enumeration delay (Corollary 2.5),
    pseudo-linear preprocessing (Theorem 2.3).  This module provides the
    cheap, globally registered probes the hot paths use to make those
    bounds empirically observable:

    - {e counters}: monotonic event counts (register touches, scan
      steps, distance tests, …).  Counters flagged [~ops] contribute to
      the machine-operation total {!ops}, the unit in which enumeration
      delay is measured.
    - {e phase timers}: cumulative wall-clock per named preprocessing
      phase (cover construction, distance index, skip pointers, …).
    - {e histograms}: per-call operation counts (register touches per
      lookup / per update, ops per emitted solution).

    Instrumentation is disabled by default; every probe is a single
    load-and-branch when disabled, so the hot paths pay essentially
    nothing.  Enabling is global (the probes live inside shared library
    code), which is the right granularity for the CLI / bench / test
    consumers; concurrent measured engines would share the registry. *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter, timer and histogram (registrations survive). *)

(** {1 Counters} *)

type counter

val counter : ?ops:bool -> string -> counter
(** Find-or-create the counter registered under this name.  With
    [~ops:true] (set by whichever registration comes first), the counter
    counts as machine work in {!ops}. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val ops : unit -> int
(** Sum of all [~ops] counters — the instrumented machine-operation
    clock.  Deltas of [ops ()] around a call measure its cost in the
    cost model (and are what "observed delay in ops" means). *)

val counters : unit -> (string * int) list
(** All registered counters with non-zero value, sorted by name. *)

(** {1 Phase timers} *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f], accumulating its wall-clock duration under
    [name].  Re-entrant and exception-safe; nested phases each record
    their own full span (an umbrella phase therefore includes its
    sub-phases — consumers report them as a tree-less flat list). *)

val phases : unit -> (string * float) list
(** Cumulative seconds per phase, sorted by name. *)

(** {1 Histograms} *)

type hist

val hist : string -> hist
(** Find-or-create the histogram registered under this name. *)

val observe : hist -> int -> unit

type hist_stats = {
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

val hist_stats : hist -> hist_stats
val hists : unit -> (string * hist_stats) list
(** All histograms that observed at least one value, sorted by name. *)
