(** Cross-cutting cost-model instrumentation.

    The paper's headline claims are resource bounds — constant-time
    lookup (Theorem 3.1), constant enumeration delay (Corollary 2.5),
    pseudo-linear preprocessing (Theorem 2.3).  This module provides the
    cheap, globally registered probes the hot paths use to make those
    bounds empirically observable:

    - {e counters}: monotonic event counts (register touches, scan
      steps, distance tests, …).  Counters flagged [~ops] contribute to
      the machine-operation total {!ops}, the unit in which enumeration
      delay is measured.
    - {e phase timers}: cumulative wall-clock per named preprocessing
      phase (cover construction, distance index, skip pointers, …).
    - {e histograms}: per-call operation counts (register touches per
      lookup / per update, ops per emitted solution).

    Instrumentation is disabled by default; every probe is a single
    load-and-branch when disabled, so the hot paths pay essentially
    nothing.  Enabling is global (the probes live inside shared library
    code), which is the right granularity for the CLI / bench / test
    consumers; concurrent measured engines would share the registry.

    {b Concurrency.}  Counters and phase timers are sharded per domain:
    each cell is an array of {!max_slots} slots and a domain only writes
    its own slot (assigned with {!set_slot}; {!Nd_util.Pool} workers pin
    theirs at spawn).  Reported values are the slot sums — integer sums
    commute, so [~ops] totals are bit-identical regardless of how many
    domains ran the instrumented work.  Registration, histograms,
    {!reset} and {!snapshot} serialize on an internal registry lock, so
    a reset racing a concurrent serve loop can no longer tear phase
    tables or histogram buckets (an individual counter increment racing
    a reset may land on either side of it; structure is never
    corrupted). *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter, timer and histogram (registrations survive).
    Safe against concurrent increments and observations. *)

(** {1 Domain shards} *)

val max_slots : int
(** Number of per-domain shard slots (bounds usable pool jobs). *)

val set_slot : int -> unit
(** Pin the calling domain to shard slot [s ∈ [0, max_slots)].  The
    main domain defaults to slot 0; {!Nd_util.Pool} workers call this
    at spawn.  Two concurrently-running domains must not share a slot,
    or increments can be lost. *)

val slot : unit -> int
(** The calling domain's shard slot. *)

(** {1 Counters} *)

type counter

val counter : ?ops:bool -> string -> counter
(** Find-or-create the counter registered under this name.  With
    [~ops:true] (set by whichever registration comes first), the counter
    counts as machine work in {!ops}. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val ops : unit -> int
(** Sum of all [~ops] counters — the instrumented machine-operation
    clock.  Deltas of [ops ()] around a call measure its cost in the
    cost model (and are what "observed delay in ops" means). *)

val counters : unit -> (string * int) list
(** All registered counters with non-zero value, sorted by name. *)

(** {1 Phase timers} *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f], accumulating its wall-clock duration under
    [name].  Re-entrant and exception-safe; nested phases each record
    their own full span (an umbrella phase therefore includes its
    sub-phases — consumers report them as a tree-less flat list). *)

val phases : unit -> (string * float) list
(** Cumulative seconds per phase, sorted by name. *)

(** {1 Histograms} *)

type hist

val hist : string -> hist
(** Find-or-create the histogram registered under this name. *)

val observe : hist -> int -> unit

type hist_stats = {
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

val hist_stats : hist -> hist_stats
val hists : unit -> (string * hist_stats) list
(** All histograms that observed at least one value, sorted by name. *)

(** {1 Immutable snapshots}

    {!counters}/{!hists} drop zero-valued registrations and hand out
    views into live cells, which is right for one-shot stats reports but
    wrong for a monotonic scrape: a long-running [fodb serve] that
    resets between requests would make series appear and vanish, and an
    exposition interleaved with a reset could see half-zeroed state.
    {!snapshot} captures the {e whole} registry — every registration,
    zeros included, with private copies of the histogram buckets — in
    one atomic step, so Prometheus exposition and the request tracer
    always render a coherent point-in-time view. *)

type counter_snapshot = { c_name : string; c_ops : bool; c_value : int }

type hist_snapshot = {
  h_name : string;
  h_buckets : int array;
      (** private copy; index [i] counts observations of value [i]; the
          last occupied index saturates at [hist_clamp - 1] *)
  h_count : int;
  h_sum : int;
  h_max : int;
}

type snapshot = {
  s_counters : counter_snapshot list;  (** sorted by name, zeros kept *)
  s_phases : (string * float) list;  (** sorted by name, zeros kept *)
  s_hists : hist_snapshot list;  (** sorted by name, empties kept *)
  s_ops : int;
  s_enabled : bool;
}

val snapshot : unit -> snapshot
(** Capture the registry.  The result shares no mutable state with the
    live cells: a later {!reset} or observation cannot tear it. *)

val hist_clamp : int
(** Values at or above this saturate into the last histogram bucket
    (max and sum stay exact).  The Prometheus bucket boundaries end
    here. *)
