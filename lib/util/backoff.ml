type schedule = { base_ms : int; multiplier : float; max_ms : int }

let schedule ?(multiplier = 2.0) ?(max_ms = 30_000) base_ms =
  if base_ms <= 0 then invalid_arg "Backoff.schedule: base_ms must be positive";
  if max_ms <= 0 then invalid_arg "Backoff.schedule: max_ms must be positive";
  if multiplier < 1.0 then
    invalid_arg "Backoff.schedule: multiplier must be >= 1";
  { base_ms; multiplier; max_ms }

let cap_ms s ~attempt =
  if attempt < 1 then invalid_arg "Backoff.cap_ms: attempt is 1-based";
  (* float arithmetic saturates to the ceiling long before the int
     range could overflow *)
  let cap =
    float_of_int s.base_ms *. (s.multiplier ** float_of_int (attempt - 1))
  in
  if Float.is_nan cap then s.max_ms
  else min s.max_ms (int_of_float (Float.min cap (float_of_int s.max_ms)))

let full_jitter ?(seed = 0x0ff5e7) () =
  let st = Random.State.make [| seed; 0xbac0ff |] in
  fun cap -> if cap <= 0 then 0 else Random.State.int st (cap + 1)

let none cap = cap

let delay_ms ~jitter s ~attempt =
  let cap = cap_ms s ~attempt in
  let d = jitter cap in
  if d < 0 then 0 else min d cap

let delay_after_ms ~jitter ?(at_least_ms = 0) s ~attempt =
  max at_least_ms (delay_ms ~jitter s ~attempt)
