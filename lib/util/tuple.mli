(** Tuples of vertices as immutable [int array]s, ordered lexicographically.

    The paper assumes a linear order on the domain of the structure; tuples
    over the domain are then ordered lexicographically ([Section 2]).  The
    main theorem (Theorem 2.3) and the storing structure (Theorem 3.1)
    both navigate this order, in particular via the successor operation
    [ā+1]. *)

type t = int array

val compare : t -> t -> int
(** Lexicographic order.  Tuples must have equal arity. *)

val equal : t -> t -> bool

val min : int -> t
(** [min k] is the smallest k-tuple, i.e. all zeroes. *)

val max : n:int -> int -> t
(** [max ~n k] is the largest k-tuple over domain [0,n). *)

val succ : n:int -> t -> t option
(** [succ ~n ā] is the tuple immediately following [ā] in the
    lexicographic order over [0,n)^k, or [None] if [ā] is the largest. *)

val pred : n:int -> t -> t option
(** Inverse of {!succ}. *)

val is_max : n:int -> t -> bool
(** [is_max ~n ā] iff [ā] is the largest k-tuple over [0,n) — the
    allocation-free form of [succ ~n ā = None]. *)

val incr : n:int -> t -> bool
(** In-place successor for pooled buffers: advance [ā] to the next
    tuple in lexicographic order, returning [false] (with [ā] wrapped
    to all zeroes) when [ā] was already the largest.  The allocating
    {!succ} is the immutable form. *)

val to_string : t -> string
(** E.g. ["(3,0,7)"]. *)

val hash : t -> int

val lower_bound : ('a -> t) -> 'a array -> t -> int
(** [lower_bound key arr x]: index of the first element of [arr] (sorted
    by [key] in lexicographic order) whose key is [>= x]; [Array.length
    arr] if none. *)
