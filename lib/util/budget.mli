(** Cooperative resource budgets for preprocessing and answering.

    Theorem 2.3's preprocessing is pseudo-linear in [|G|], but the
    constant [f(q, ε)] is non-elementary in the query — a pathological
    [prepare] must never be allowed to wedge the process.  A {!t}
    bundles up to three ceilings:

    - {e ops}: a limit on machine operations consumed, measured on the
      deterministic {!Metrics.ops} clock (register touches, scan steps,
      distance tests).  Portable and reproducible — the same
      computation always costs the same ops.  Creating a budget with an
      ops ceiling enables {!Metrics} (the clock does not advance
      otherwise).
    - {e wall-clock}: a deadline in milliseconds from creation (or the
      last {!renew}).
    - {e memory}: a limit on the OCaml heap size in words
      ([Gc.quick_stat]).

    Enforcement is {e cooperative}: library hot paths call the cheap
    probes {!tick} (amortized) and {!poll} (direct) against the
    {e installed} ambient budget, and phase boundaries call {!check}
    directly.  A crossed ceiling raises
    {!Nd_error.Budget_exceeded} carrying the active phase label and the
    consumed totals.  The first exhaustion is also recorded on the
    budget itself ({!exhausted}) so reports can name the failing phase
    after the exception was caught — in particular by
    [Nd_engine.prepare], which catches it to degrade gracefully.

    Probes are a single load-and-branch when no budget is installed;
    instrumented code pays essentially nothing in the common case. *)

type t

val create : ?max_ops:int -> ?timeout_ms:int -> ?max_memory_words:int -> unit -> t
(** At least one ceiling should be given (a ceiling-less budget never
    trips).  [max_ops] enables the global {!Metrics} registry and
    baselines the clock at the current {!Metrics.ops}.
    @raise Invalid_argument on a non-positive ceiling. *)

val limited : t -> bool
(** Does any ceiling exist? *)

val max_ops : t -> int option
val timeout_ms : t -> int option
val max_memory_words : t -> int option

val ops_used : t -> int
(** Ops consumed since creation / the last {!renew} (0 without an ops
    ceiling). *)

val elapsed_ms : t -> int

val exhausted : t -> Nd_error.budget_info option
(** The first recorded exhaustion, if any. *)

val renew : t -> unit
(** Re-baseline the ops and wall-clock meters and clear {!exhausted};
    ceilings are kept.  Turns one budget into a per-phase allowance. *)

val set_phase : t -> string -> unit
(** Label subsequent exhaustions; {!with_phase} is the scoped form. *)

val with_phase : t -> string -> (unit -> 'a) -> 'a

val check : t -> unit
(** Probe every ceiling now.
    @raise Nd_error.Budget_exceeded on the first crossed one. *)

(** {1 The installed (ambient) budget}

    Threading a budget value through every cover / kernel / index /
    scan loop would contaminate every signature in the library.
    Instead one budget is {e installed} for a dynamic extent and the
    loops probe it blindly. *)

val install : t option -> unit

val installed : unit -> t option

val with_installed : t -> (unit -> 'a) -> 'a
(** Install for the duration of the callback (exception-safe,
    restoring the previous ambient budget). *)

val with_budget : t -> (unit -> 'a) -> ('a, Nd_error.budget_info) result
(** The scoped form for callers that treat exhaustion as an outcome
    rather than a failure: install [b], run the callback, and fold a
    {!Nd_error.Budget_exceeded} raised inside it into [Error info].

    Whatever happens — normal return, exhaustion, or any other
    exception (re-raised) — the previous ambient budget is restored
    {e and the amortized tick phase is reset}, so a scope that died
    mid-probe-period cannot leave the next scope's first
    {!probe_period} ticks unchecked.  [Nd_engine.prepare] uses this to
    degrade gracefully without hand-rolled cleanup. *)

val poll : unit -> unit
(** Direct {!check} of the installed budget, if any.  For coarse
    checkpoints: per cover bag, per index node, per preprocessing
    item. *)

val enter : string -> unit
(** [enter phase] labels the installed budget (if any) with [phase]
    and runs a direct {!check} — call at the start of each
    preprocessing stage / answering mode so later amortized {!tick}
    failures are attributed to the right phase. *)

val tick : unit -> unit
(** Amortized probe for hot paths (store operations, scan steps,
    evaluator recursion): only every {!probe_period}-th tick runs a
    full {!check} — except on an already-exhausted budget, which fails
    fast on every probe. *)

val probe_period : int
(** The tick amortization factor (power of two). *)
