let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* ---------------- domain shards ---------------- *)

(* Every counter and phase timer is an array of [max_slots] cells; a
   domain only ever writes the cell of its own slot (slot 0 for the main
   domain, assigned by Pool for workers), and reported values are the
   cell sums.  Integer sums commute, so as long as the same multiset of
   increments happens — which the pure bag-job decomposition guarantees —
   the totals are bit-identical regardless of how many domains ran the
   work or how their chunks interleaved. *)
let max_slots = 64

let slot_key = Domain.DLS.new_key (fun () -> 0)

let set_slot s =
  if s < 0 || s >= max_slots then
    invalid_arg (Printf.sprintf "Metrics.set_slot: slot %d out of [0, %d)" s max_slots);
  Domain.DLS.set slot_key s

let slot () = Domain.DLS.get slot_key

(* One lock guards registry structure (the find-or-create tables),
   histogram cells, reset and snapshot.  Counter/phase *increments* stay
   lock-free — they touch only the caller's own shard cell. *)
let m = Mutex.create ()

let locked f = Mutex.protect m f

(* ---------------- counters ---------------- *)

type counter = { cname : string; cells : int array; cops : bool }

let all_counters : (string, counter) Hashtbl.t = Hashtbl.create 32

(* The ~ops counters, snapshotted as an immutable list so [ops ()] can
   run lock-free (budget probes call it from worker domains; a stale
   read only misses a counter registered this very instant, necessarily
   still zero). *)
let ops_counters : counter list ref = ref []

let counter ?(ops = false) name =
  locked @@ fun () ->
  match Hashtbl.find_opt all_counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; cells = Array.make max_slots 0; cops = ops } in
      Hashtbl.replace all_counters name c;
      if ops then ops_counters := c :: !ops_counters;
      c

let[@inline] incr c =
  if !on then begin
    let s = Domain.DLS.get slot_key in
    c.cells.(s) <- c.cells.(s) + 1
  end

let[@inline] add c k =
  if !on then begin
    let s = Domain.DLS.get slot_key in
    c.cells.(s) <- c.cells.(s) + k
  end

let value c = Array.fold_left ( + ) 0 c.cells

let ops () = List.fold_left (fun acc c -> acc + value c) 0 !ops_counters

let counters () =
  locked @@ fun () ->
  Hashtbl.fold
    (fun _ c acc ->
      let v = value c in
      if v <> 0 then (c.cname, v) :: acc else acc)
    all_counters []
  |> List.sort compare

(* ---------------- phase timers ---------------- *)

let all_phases : (string, float array) Hashtbl.t = Hashtbl.create 16

let phase_cells name =
  locked @@ fun () ->
  match Hashtbl.find_opt all_phases name with
  | Some a -> a
  | None ->
      let a = Array.make max_slots 0. in
      Hashtbl.replace all_phases name a;
      a

let phase name f =
  if not !on then f ()
  else begin
    let cells = phase_cells name in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let s = Domain.DLS.get slot_key in
        cells.(s) <- cells.(s) +. (Unix.gettimeofday () -. t0))
      f
  end

let phase_sum a = Array.fold_left ( +. ) 0. a

let phases () =
  locked @@ fun () ->
  Hashtbl.fold (fun name a acc -> (name, phase_sum a) :: acc) all_phases []
  |> List.sort compare

(* ---------------- histograms ---------------- *)

(* Bucket-per-value up to [clamp]; larger observations land in the last
   bucket (max and mean stay exact, high percentiles saturate at clamp —
   fine for the "is the delay bounded by a constant" question).
   Histograms are observed on the answering/serving paths, never inside
   parallel bag-jobs, so one lock per observation is cheap enough and
   buys torn-free growth + coherent snapshots. *)
let clamp = 1 lsl 16

type hist = {
  hname : string;
  mutable buckets : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

let all_hists : (string, hist) Hashtbl.t = Hashtbl.create 16

let hist name =
  locked @@ fun () ->
  match Hashtbl.find_opt all_hists name with
  | Some h -> h
  | None ->
      let h =
        { hname = name; buckets = Array.make 64 0; hcount = 0; hsum = 0; hmax = 0 }
      in
      Hashtbl.replace all_hists name h;
      h

let observe h x =
  if !on then
    locked @@ fun () ->
    let x = max 0 x in
    let b = min x (clamp - 1) in
    if b >= Array.length h.buckets then begin
      let cap = ref (2 * Array.length h.buckets) in
      while b >= !cap do
        cap := 2 * !cap
      done;
      let bs = Array.make !cap 0 in
      Array.blit h.buckets 0 bs 0 (Array.length h.buckets);
      h.buckets <- bs
    end;
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum + x;
    if x > h.hmax then h.hmax <- x

type hist_stats = {
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

let percentile_of h p =
  if h.hcount = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int h.hcount)) in
    let rank = Stdlib.max 1 (Stdlib.min h.hcount rank) in
    let seen = ref 0 and res = ref 0 and i = ref 0 in
    let nb = Array.length h.buckets in
    while !seen < rank && !i < nb do
      if h.buckets.(!i) > 0 then begin
        seen := !seen + h.buckets.(!i);
        res := !i
      end;
      Stdlib.incr i
    done;
    !res
  end

let hist_stats_unlocked h =
  {
    count = h.hcount;
    max = h.hmax;
    mean = (if h.hcount = 0 then 0. else float_of_int h.hsum /. float_of_int h.hcount);
    p50 = percentile_of h 50.;
    p95 = percentile_of h 95.;
    p99 = percentile_of h 99.;
  }

let hist_stats h = locked (fun () -> hist_stats_unlocked h)

let hists () =
  locked @@ fun () ->
  Hashtbl.fold
    (fun name h acc ->
      if h.hcount > 0 then (name, hist_stats_unlocked h) :: acc else acc)
    all_hists []
  |> List.sort compare

(* ---------------- reset ---------------- *)

(* Registrations (names, the ~ops flag, bucket capacity) survive a
   reset; only the accumulated values are zeroed.  The registry lock
   keeps a reset from tearing phase tables or histograms under a
   concurrent serve loop; a counter increment racing the zeroing of its
   own cell can still land on either side of the reset (that is the
   inherent semantics of resetting a live registry), but it can never
   corrupt structure.  Consumers that need a coherent view across a
   concurrent reset must go through [snapshot]. *)
let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Array.fill c.cells 0 max_slots 0) all_counters;
  Hashtbl.iter (fun _ a -> Array.fill a 0 max_slots 0.) all_phases;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.hcount <- 0;
      h.hsum <- 0;
      h.hmax <- 0)
    all_hists

(* ---------------- immutable snapshots ---------------- *)

type counter_snapshot = { c_name : string; c_ops : bool; c_value : int }

type hist_snapshot = {
  h_name : string;
  h_buckets : int array;  (* private copy: index = observed value,
                             last occupied index saturates at [clamp-1] *)
  h_count : int;
  h_sum : int;
  h_max : int;
}

type snapshot = {
  s_counters : counter_snapshot list;  (* every registration, zeros too *)
  s_phases : (string * float) list;
  s_hists : hist_snapshot list;
  s_ops : int;
  s_enabled : bool;
}

let snapshot () =
  locked @@ fun () ->
  let counters =
    Hashtbl.fold
      (fun _ c acc ->
        { c_name = c.cname; c_ops = c.cops; c_value = value c } :: acc)
      all_counters []
    |> List.sort compare
  in
  {
    s_counters = counters;
    s_phases =
      Hashtbl.fold (fun name a acc -> (name, phase_sum a) :: acc) all_phases []
      |> List.sort compare;
    s_hists =
      Hashtbl.fold
        (fun _ h acc ->
          {
            h_name = h.hname;
            h_buckets = Array.copy h.buckets;
            h_count = h.hcount;
            h_sum = h.hsum;
            h_max = h.hmax;
          }
          :: acc)
        all_hists []
      |> List.sort compare;
    s_ops =
      List.fold_left
        (fun acc (c : counter_snapshot) ->
          if c.c_ops then acc + c.c_value else acc)
        0 counters;
    s_enabled = !on;
  }

let hist_clamp = clamp
