let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* ---------------- counters ---------------- *)

type counter = { cname : string; mutable v : int; cops : bool }

let all_counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter ?(ops = false) name =
  match Hashtbl.find_opt all_counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; v = 0; cops = ops } in
      Hashtbl.replace all_counters name c;
      c

let[@inline] incr c = if !on then c.v <- c.v + 1
let[@inline] add c k = if !on then c.v <- c.v + k
let value c = c.v

let ops () =
  Hashtbl.fold (fun _ c acc -> if c.cops then acc + c.v else acc) all_counters 0

let counters () =
  Hashtbl.fold (fun _ c acc -> if c.v <> 0 then (c.cname, c.v) :: acc else acc)
    all_counters []
  |> List.sort compare

(* ---------------- phase timers ---------------- *)

let all_phases : (string, float ref) Hashtbl.t = Hashtbl.create 16

let phase name f =
  if not !on then f ()
  else begin
    let cell =
      match Hashtbl.find_opt all_phases name with
      | Some r -> r
      | None ->
          let r = ref 0. in
          Hashtbl.replace all_phases name r;
          r
    in
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> cell := !cell +. Unix.gettimeofday () -. t0) f
  end

let phases () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) all_phases []
  |> List.sort compare

(* ---------------- histograms ---------------- *)

(* Bucket-per-value up to [clamp]; larger observations land in the last
   bucket (max and mean stay exact, high percentiles saturate at clamp —
   fine for the "is the delay bounded by a constant" question). *)
let clamp = 1 lsl 16

type hist = {
  hname : string;
  mutable buckets : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

let all_hists : (string, hist) Hashtbl.t = Hashtbl.create 16

let hist name =
  match Hashtbl.find_opt all_hists name with
  | Some h -> h
  | None ->
      let h =
        { hname = name; buckets = Array.make 64 0; hcount = 0; hsum = 0; hmax = 0 }
      in
      Hashtbl.replace all_hists name h;
      h

let observe h x =
  if !on then begin
    let x = max 0 x in
    let b = min x (clamp - 1) in
    if b >= Array.length h.buckets then begin
      let cap = ref (2 * Array.length h.buckets) in
      while b >= !cap do
        cap := 2 * !cap
      done;
      let bs = Array.make !cap 0 in
      Array.blit h.buckets 0 bs 0 (Array.length h.buckets);
      h.buckets <- bs
    end;
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum + x;
    if x > h.hmax then h.hmax <- x
  end

type hist_stats = {
  count : int;
  max : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

let percentile_of h p =
  if h.hcount = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int h.hcount)) in
    let rank = Stdlib.max 1 (Stdlib.min h.hcount rank) in
    let seen = ref 0 and res = ref 0 and i = ref 0 in
    let nb = Array.length h.buckets in
    while !seen < rank && !i < nb do
      if h.buckets.(!i) > 0 then begin
        seen := !seen + h.buckets.(!i);
        res := !i
      end;
      Stdlib.incr i
    done;
    !res
  end

let hist_stats h =
  {
    count = h.hcount;
    max = h.hmax;
    mean = (if h.hcount = 0 then 0. else float_of_int h.hsum /. float_of_int h.hcount);
    p50 = percentile_of h 50.;
    p95 = percentile_of h 95.;
    p99 = percentile_of h 99.;
  }

let hists () =
  Hashtbl.fold
    (fun name h acc -> if h.hcount > 0 then (name, hist_stats h) :: acc else acc)
    all_hists []
  |> List.sort compare

(* ---------------- reset ---------------- *)

(* Registrations (names, the ~ops flag, bucket capacity) survive a
   reset; only the accumulated values are zeroed.  Consumers that need a
   coherent view across a concurrent reset must go through [snapshot]. *)
let reset () =
  Hashtbl.iter (fun _ c -> c.v <- 0) all_counters;
  Hashtbl.iter (fun _ r -> r := 0.) all_phases;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.hcount <- 0;
      h.hsum <- 0;
      h.hmax <- 0)
    all_hists

(* ---------------- immutable snapshots ---------------- *)

type counter_snapshot = { c_name : string; c_ops : bool; c_value : int }

type hist_snapshot = {
  h_name : string;
  h_buckets : int array;  (* private copy: index = observed value,
                             last occupied index saturates at [clamp-1] *)
  h_count : int;
  h_sum : int;
  h_max : int;
}

type snapshot = {
  s_counters : counter_snapshot list;  (* every registration, zeros too *)
  s_phases : (string * float) list;
  s_hists : hist_snapshot list;
  s_ops : int;
  s_enabled : bool;
}

let snapshot () =
  {
    s_counters =
      Hashtbl.fold
        (fun _ c acc -> { c_name = c.cname; c_ops = c.cops; c_value = c.v } :: acc)
        all_counters []
      |> List.sort compare;
    s_phases =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) all_phases []
      |> List.sort compare;
    s_hists =
      Hashtbl.fold
        (fun _ h acc ->
          {
            h_name = h.hname;
            h_buckets = Array.copy h.buckets;
            h_count = h.hcount;
            h_sum = h.hsum;
            h_max = h.hmax;
          }
          :: acc)
        all_hists []
      |> List.sort compare;
    s_ops = ops ();
    s_enabled = !on;
  }

let hist_clamp = clamp
