(** Exponential backoff schedules with full jitter.

    Every retry loop in the system — the serve-protocol client backing
    off on [err budget] / [err overloaded], the crash-recovery
    supervisor pacing worker restarts — wants the same schedule: a cap
    that grows geometrically with the attempt number, clipped at a
    ceiling, with {e full jitter} (the actual delay drawn uniformly
    from [[0, cap]]) so a fleet of clients shed at the same instant does
    not return in lockstep and shed again (the classic retry-storm
    failure mode; cf. the AWS architecture blog's "exponential backoff
    and jitter" analysis).

    The jitter source is injectable so tests can pin the schedule:
    {!none} makes [delay_ms] return the cap itself, reproducing a plain
    exponential schedule deterministically. *)

type schedule = {
  base_ms : int;  (** cap for the first retry (attempt 1) *)
  multiplier : float;  (** geometric growth of the cap per attempt *)
  max_ms : int;  (** ceiling the cap is clipped to *)
}

val schedule : ?multiplier:float -> ?max_ms:int -> int -> schedule
(** [schedule base_ms] with multiplier 2.0 and a 30s ceiling by
    default.
    @raise Invalid_argument on a non-positive [base_ms]/[max_ms] or a
    multiplier < 1. *)

val cap_ms : schedule -> attempt:int -> int
(** The un-jittered cap for 1-based [attempt]:
    [min max_ms (base_ms * multiplier^(attempt-1))], computed in float
    and saturating (never overflows, never below [base_ms] clipped to
    [max_ms]).
    @raise Invalid_argument when [attempt < 1]. *)

val full_jitter : ?seed:int -> unit -> int -> int
(** A fresh jitter function: [cap ↦ uniform in [0, cap]], from a
    private seeded PRNG (default seed fixed) — callers that want
    cross-process decorrelation pass e.g. a pid-derived seed. *)

val none : int -> int
(** The identity — no jitter; [delay_ms] returns the cap itself. *)

val delay_ms : jitter:(int -> int) -> schedule -> attempt:int -> int
(** [delay_ms ~jitter s ~attempt] = [jitter (cap_ms s ~attempt)],
    clipped back into [[0, cap]] in case a caller-supplied [jitter]
    misbehaves. *)

val delay_after_ms :
  jitter:(int -> int) -> ?at_least_ms:int -> schedule -> attempt:int -> int
(** {!delay_ms} with a server-imposed floor: an [err overloaded] reply
    carrying [retry-after-ms=R] means "do not come back before R", so
    the jittered delay is raised to at least [R] (default floor 0). *)
