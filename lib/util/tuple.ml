type t = int array

let compare (a : t) (b : t) =
  let ka = Array.length a and kb = Array.length b in
  if ka <> kb then invalid_arg "Tuple.compare: arity mismatch";
  let rec go i =
    if i = ka then 0
    else if a.(i) < b.(i) then -1
    else if a.(i) > b.(i) then 1
    else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let min k = Array.make k 0

let max ~n k = Array.make k (n - 1)

let succ ~n (a : t) =
  let k = Array.length a in
  let b = Array.copy a in
  let rec go i =
    if i < 0 then None
    else if b.(i) + 1 < n then begin
      b.(i) <- b.(i) + 1;
      Some b
    end
    else begin
      b.(i) <- 0;
      go (i - 1)
    end
  in
  go (k - 1)

let is_max ~n (a : t) =
  let rec go i = i < 0 || (a.(i) = n - 1 && go (i - 1)) in
  go (Array.length a - 1)

let incr ~n (a : t) =
  let rec go i =
    if i < 0 then false
    else if a.(i) + 1 < n then begin
      a.(i) <- a.(i) + 1;
      true
    end
    else begin
      a.(i) <- 0;
      go (i - 1)
    end
  in
  go (Array.length a - 1)

let pred ~n (a : t) =
  let k = Array.length a in
  let b = Array.copy a in
  let rec go i =
    if i < 0 then None
    else if b.(i) > 0 then begin
      b.(i) <- b.(i) - 1;
      Some b
    end
    else begin
      b.(i) <- n - 1;
      go (i - 1)
    end
  in
  go (k - 1)

let to_string (a : t) =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list a)) ^ ")"

let hash (a : t) =
  Array.fold_left (fun h x -> (h * 1000003) lxor x) 5381 a

let lower_bound key arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (key arr.(mid)) x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo
