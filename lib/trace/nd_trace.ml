module Metrics = Nd_util.Metrics

type span = {
  sid : int;
  parent : int;
  name : string;
  attrs : (string * string) list;
  ts_us : int;
  dur_us : int;
  ops : int;
  dom : int;
}

(* ---------------- state ---------------- *)

let default_capacity = 4096

let on = ref false

(* Ring of completed spans: [ring.(head)] is the oldest slot when full;
   [count] <= capacity, [head] is the next write position.  Guarded by
   [rm]: spans complete on whichever domain opened them (parallel
   bag-jobs trace cover construction, for instance), and sys-threads of
   a concurrent serve loop record too. *)
let rm = Mutex.create ()
let ring : span array ref = ref [||]
let head = ref 0
let count = ref 0
let dropped_n = ref 0

let next_sid = Atomic.make 0

(* Open-span stack (innermost first), per domain: nesting follows the
   dynamic call structure *of that domain*, so a bag-job's spans parent
   onto each other, never across domains (the fan-out span on the main
   domain is closed only after the join, so cross-domain parenting
   would be ill-founded anyway). *)
type open_span = {
  o_sid : int;
  o_parent : int;
  o_name : string;
  o_attrs : (string * string) list;
  o_ts : int;
  o_ops0 : int;
}

let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

(* Losses are mirrored into the shared registry so a scrape sees them;
   the counter never carries ~ops (tracer bookkeeping is not machine
   work in the cost model). *)
let c_dropped = Metrics.counter "trace.dropped"

(* ---------------- monotonic microsecond clock ---------------- *)

(* No monotonic clock in the stdlib/unix we link against; clamp wall
   time so ts never steps backwards (trace viewers require it).  The
   clamp is per domain — each domain is its own timeline lane in the
   Chrome export, and lanes only need to be monotonic individually. *)
let last_us_key = Domain.DLS.new_key (fun () -> ref 0)

let now_us () =
  let last_us = Domain.DLS.get last_us_key in
  let t = int_of_float (Unix.gettimeofday () *. 1e6) in
  let t = if t < !last_us then !last_us else t in
  last_us := t;
  t

(* ---------------- lifecycle ---------------- *)

let reset_ring cap =
  ring := Array.make cap { sid = 0; parent = 0; name = ""; attrs = [];
                           ts_us = 0; dur_us = 0; ops = 0; dom = 0 };
  head := 0;
  count := 0;
  dropped_n := 0

let enable ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Nd_trace.enable: capacity must be positive";
  Mutex.protect rm (fun () ->
      if Array.length !ring <> capacity then reset_ring capacity);
  on := true

let disable () =
  on := false;
  stack () := []

let enabled () = !on

let clear () =
  Mutex.protect rm (fun () ->
      let cap =
        if Array.length !ring = 0 then default_capacity else Array.length !ring
      in
      reset_ring cap);
  stack () := []

let dropped () = !dropped_n

let record sp =
  Mutex.protect rm @@ fun () ->
  let cap = Array.length !ring in
  if cap = 0 then ()
  else begin
    !ring.(!head) <- sp;
    head := (!head + 1) mod cap;
    if !count < cap then incr count
    else begin
      incr dropped_n;
      Metrics.incr c_dropped
    end
  end

let spans () =
  Mutex.protect rm @@ fun () ->
  let n = !count in
  if n = 0 then []
  else begin
    let cap = Array.length !ring in
    let first = ((!head - n) mod cap + cap) mod cap in
    List.init n (fun i -> !ring.((first + i) mod cap))
  end

(* ---------------- spans ---------------- *)

let current_span_id () =
  match !(stack ()) with [] -> 0 | o :: _ -> o.o_sid

let with_span name ?(attrs = []) f =
  if not !on then f ()
  else begin
    let stack = stack () in
    let o =
      {
        o_sid = Atomic.fetch_and_add next_sid 1 + 1;
        o_parent = (match !stack with [] -> 0 | o :: _ -> o.o_sid);
        o_name = name;
        o_attrs = attrs;
        o_ts = now_us ();
        o_ops0 = Metrics.ops ();
      }
    in
    stack := o :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top.o_sid = o.o_sid -> stack := rest
        | s -> stack := List.filter (fun x -> x.o_sid <> o.o_sid) s);
        if !on then
          let t1 = now_us () in
          record
            {
              sid = o.o_sid;
              parent = o.o_parent;
              name = o.o_name;
              attrs = o.o_attrs;
              ts_us = o.o_ts;
              dur_us = max 0 (t1 - o.o_ts);
              ops = max 0 (Metrics.ops () - o.o_ops0);
              dom = (Domain.self () :> int);
            })
      f
  end

let phase name ?attrs f = with_span name ?attrs (fun () -> Metrics.phase name f)

(* ---------------- process trace identity ---------------- *)

(* One id per process, stamped into every exported shard and every
   propagated [trace=<id>:<span>] token, so a cross-process merge can
   resolve a remote parent reference back to the process that owns the
   span.  The default is derived from pid + start time; harnesses that
   want readable merged timelines ([fodb cluster]) set explicit ids. *)

let id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
  | _ -> false

let trace_id_ref = ref ""

let trace_id () =
  if !trace_id_ref = "" then
    trace_id_ref :=
      Printf.sprintf "p%d-%06x" (Unix.getpid ())
        (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff);
  !trace_id_ref

let set_trace_id id =
  if id = "" || not (String.for_all id_char id) then
    invalid_arg "Nd_trace.set_trace_id: id must be non-empty [A-Za-z0-9._-]+";
  trace_id_ref := id

(* ---------------- JSON writing helpers ---------------- *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* ---------------- Chrome trace-event export ---------------- *)

let export_chrome () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"process\":{\"trace_id\":\"";
  buf_escape b (trace_id ());
  Buffer.add_string b
    (Printf.sprintf "\",\"pid\":%d},\"traceEvents\":[" (Unix.getpid ()));
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":\"";
      buf_escape b sp.name;
      Buffer.add_string b
        (Printf.sprintf "\",\"cat\":\"fodb\",\"ph\":\"X\",\"pid\":1,\"tid\":%d"
           (sp.dom + 1));
      Buffer.add_string b (Printf.sprintf ",\"ts\":%d,\"dur\":%d" sp.ts_us sp.dur_us);
      Buffer.add_string b
        (Printf.sprintf ",\"args\":{\"sid\":%d,\"parent\":%d,\"ops\":%d" sp.sid
           sp.parent sp.ops);
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ",\"";
          buf_escape b k;
          Buffer.add_string b "\":\"";
          buf_escape b v;
          Buffer.add_string b "\"")
        sp.attrs;
      Buffer.add_string b "}}")
    (spans ());
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let save_chrome ~path =
  let n = !count in
  let doc = export_chrome () in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc doc);
  Sys.rename tmp path;
  n

(* ---------------- minimal JSON reader ---------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (!pos, msg)) in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              if !pos >= n then fail "bad escape"
              else begin
                (match s.[!pos] with
                | '"' -> Buffer.add_char b '"'
                | '\\' -> Buffer.add_char b '\\'
                | '/' -> Buffer.add_char b '/'
                | 'b' -> Buffer.add_char b '\b'
                | 'f' -> Buffer.add_char b '\012'
                | 'n' -> Buffer.add_char b '\n'
                | 'r' -> Buffer.add_char b '\r'
                | 't' -> Buffer.add_char b '\t'
                | 'u' ->
                    if !pos + 4 >= n then fail "bad \\u escape";
                    let hex = String.sub s (!pos + 1) 4 in
                    let code =
                      try int_of_string ("0x" ^ hex)
                      with _ -> fail "bad \\u escape"
                    in
                    (* Good enough for ASCII control chars; multi-byte
                       code points round-trip as '?' in this minimal
                       reader. *)
                    if code < 0x80 then Buffer.add_char b (Char.chr code)
                    else Buffer.add_char b '?';
                    pos := !pos + 4
                | _ -> fail "bad escape");
                incr pos
              end;
              go ()
          | c ->
              Buffer.add_char b c;
              incr pos;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      if !pos = start then fail "expected number"
      else
        match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> f
        | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          expect '{';
          skip_ws ();
          if peek () = Some '}' then begin
            expect '}';
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  expect ',';
                  fields ((k, v) :: acc)
              | Some '}' ->
                  expect '}';
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (fields [])
          end
      | Some '[' ->
          expect '[';
          skip_ws ();
          if peek () = Some ']' then begin
            expect ']';
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  expect ',';
                  elems (v :: acc)
              | Some ']' ->
                  expect ']';
                  List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            Arr (elems [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> Num (parse_number ())
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
      else Ok v
    with Bad (p, msg) -> Error (Printf.sprintf "%s at byte %d" msg p)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

(* ---------------- Chrome trace validation ---------------- *)

let validate_chrome text =
  match Json.parse text with
  | Error e -> Error ("not valid JSON: " ^ e)
  | Ok doc -> (
      match Json.member "traceEvents" doc with
      | None -> Error "missing traceEvents"
      | Some (Json.Arr events) -> (
          if events = [] then Error "traceEvents is empty"
          else
            let tbl = Hashtbl.create 64 in
            let check_event ev =
              let str k =
                match Json.member k ev with Some (Json.Str s) -> Some s | _ -> None
              in
              let num k =
                match Json.member k ev with
                | Some (Json.Num f) -> Some f
                | _ -> None
              in
              let arg k =
                match Json.member "args" ev with
                | Some args -> (
                    match Json.member k args with
                    | Some (Json.Num f) -> Some (int_of_float f)
                    | _ -> None)
                | None -> None
              in
              match (str "name", str "ph", num "ts", num "dur") with
              | Some name, _, _, _ when name = "" -> Error "empty event name"
              | _, Some ph, _, _ when ph <> "X" ->
                  Error (Printf.sprintf "unexpected phase %S" ph)
              | Some _, Some _, Some ts, Some dur ->
                  if ts < 0. then Error "negative ts"
                  else if dur < 0. then Error "negative dur"
                  else begin
                    (match (arg "sid", arg "parent") with
                    | Some sid, Some parent ->
                        Hashtbl.replace tbl sid (ts, dur, parent)
                    | _ -> ());
                    Ok ()
                  end
              | _ -> Error "event missing name/ph/ts/dur"
            in
            let rec all = function
              | [] -> Ok ()
              | ev :: rest -> (
                  match check_event ev with Ok () -> all rest | e -> e)
            in
            match all events with
            | Error e -> Error e
            | Ok () ->
                (* Containment: a child's [ts, ts+dur] must sit inside
                   its parent's (only checkable when the parent is still
                   in the export — the ring may have evicted it).  Allow
                   1us slack for clock granularity at the edges. *)
                let bad = ref None in
                Hashtbl.iter
                  (fun sid (ts, dur, parent) ->
                    if !bad = None && parent <> 0 then
                      match Hashtbl.find_opt tbl parent with
                      | None -> ()
                      | Some (pts, pdur, _) ->
                          if ts +. 1. < pts || ts +. dur > pts +. pdur +. 1. then
                            bad :=
                              Some
                                (Printf.sprintf
                                   "span %d not contained in parent %d" sid
                                   parent))
                  tbl;
                (match !bad with
                | Some e -> Error e
                | None -> Ok (List.length events)))
      | Some _ -> Error "traceEvents is not an array")

(* ---------------- Prometheus exposition ---------------- *)

module Prometheus = struct
  let sanitize name =
    let b = Buffer.create (String.length name + 3) in
    Buffer.add_string b "nd_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      name;
    Buffer.contents b

  let escape_label v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  (* Explicit bucket upper bounds for the integer histograms: 0 and the
     powers of two up to the registry clamp.  Values saturate into the
     clamp bucket at observation time, so le="<clamp>" always equals
     _count. *)
  let bucket_bounds =
    let rec go acc b =
      if b > Metrics.hist_clamp then List.rev acc else go (b :: acc) (b * 2)
    in
    0 :: go [] 1

  let render (s : Metrics.snapshot) =
    let b = Buffer.create 4096 in
    let family name typ help =
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
    in
    (* counters *)
    List.iter
      (fun (c : Metrics.counter_snapshot) ->
        let name = sanitize c.c_name ^ "_total" in
        family name "counter"
          (Printf.sprintf "Event counter %s%s." c.c_name
             (if c.c_ops then " (counts as machine ops)" else ""));
        Buffer.add_string b (Printf.sprintf "%s %d\n" name c.c_value))
      s.s_counters;
    (* the ops clock *)
    family "nd_ops_total" "counter"
      "Machine-operation clock: sum of all ops-flagged counters.";
    Buffer.add_string b (Printf.sprintf "nd_ops_total %d\n" s.s_ops);
    (* phase timers as one labelled family *)
    family "nd_phase_seconds_total" "counter"
      "Cumulative wall-clock seconds per named phase.";
    List.iter
      (fun (name, secs) ->
        Buffer.add_string b
          (Printf.sprintf "nd_phase_seconds_total{phase=\"%s\"} %.9f\n"
             (escape_label name) secs))
      s.s_phases;
    (* histograms *)
    List.iter
      (fun (h : Metrics.hist_snapshot) ->
        let name = sanitize h.h_name in
        family name "histogram"
          (Printf.sprintf "Distribution of %s (integer-valued)." h.h_name);
        let nb = Array.length h.h_buckets in
        let cum = ref 0 and next = ref 0 in
        List.iter
          (fun le ->
            while !next < nb && !next <= le do
              cum := !cum + h.h_buckets.(!next);
              incr next
            done;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name le !cum))
          bucket_bounds;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.h_count);
        Buffer.add_string b (Printf.sprintf "%s_sum %d\n" name h.h_sum);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.h_count))
      s.s_hists;
    Buffer.contents b

  let render_current () = render (Metrics.snapshot ())

  (* ---- validator ---- *)

  let name_ok name =
    name <> ""
    && (match name.[0] with
       | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
       | _ -> false)
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
           | _ -> false)
         name

  (* A full label list: [k1="v1",k2="v2"] with the exposition format's
     escapes inside values.  [None] on malformed syntax.  The aggregated
     fleet exposition carries several labels per sample
     ([shard="0",replica="1",le="4"]), so the validator must parse the
     whole list, not just a leading [le]. *)
  let parse_labels s =
    let n = String.length s in
    let pos = ref 0 in
    let ok = ref true in
    let out = ref [] in
    let ident () =
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
        | _ -> false
      do
        incr pos
      done;
      if !pos = start then (
        ok := false;
        "")
      else String.sub s start (!pos - start)
    in
    while !ok && !pos < n do
      let k = ident () in
      if !ok then
        if !pos < n && s.[!pos] = '=' then incr pos else ok := false;
      if !ok then
        if !pos < n && s.[!pos] = '"' then incr pos else ok := false;
      if !ok then begin
        let b = Buffer.create 8 in
        let fin = ref false in
        while !ok && not !fin do
          if !pos >= n then ok := false
          else
            match s.[!pos] with
            | '"' ->
                incr pos;
                fin := true
            | '\\' ->
                if !pos + 1 >= n then ok := false
                else begin
                  (match s.[!pos + 1] with
                  | '"' -> Buffer.add_char b '"'
                  | '\\' -> Buffer.add_char b '\\'
                  | 'n' -> Buffer.add_char b '\n'
                  | _ -> ok := false);
                  pos := !pos + 2
                end
            | c ->
                Buffer.add_char b c;
                incr pos
        done;
        if !ok then begin
          out := (k, Buffer.contents b) :: !out;
          if !pos < n then
            if s.[!pos] = ',' then begin
              incr pos;
              if !pos >= n then ok := false
            end
            else ok := false
        end
      end
    done;
    if !ok then Some (List.rev !out) else None

  (* A parsed sample line: metric name (with suffix), label list,
     value. *)
  let parse_sample line =
    let brace = String.index_opt line '{' in
    let space =
      match String.index_opt line ' ' with
      | Some i -> i
      | None -> String.length line
    in
    match brace with
    | Some bi when bi < space -> (
        match String.rindex_opt line '}' with
        | None -> None
        | Some ei when ei < bi -> None
        | Some ei -> (
            let name = String.sub line 0 bi in
            let labels_s = String.sub line (bi + 1) (ei - bi - 1) in
            let value =
              String.trim (String.sub line (ei + 1) (String.length line - ei - 1))
            in
            match parse_labels labels_s with
            | None -> None
            | Some labels -> if value = "" then None else Some (name, labels, value)))
    | _ ->
        let name = String.sub line 0 space in
        if space >= String.length line then None
        else
          let value =
            String.trim (String.sub line space (String.length line - space))
          in
          Some (name, [], value)

  type fam_state = { mutable f_type : string; mutable f_has_help : bool }

  (* Histogram invariants are per *series* — one (family, labels minus
     [le]) combination — not per family: the aggregated exposition holds
     one bucket ladder per shard/replica under the same family name. *)
  type ser_state = {
    s_base : string;
    mutable s_last_bucket : float;  (* cumulative check *)
    mutable s_inf : float option;
    mutable s_sum : bool;
    mutable s_cnt : float option;
  }

  let validate text =
    let lines = String.split_on_char '\n' text in
    let fams : (string, fam_state) Hashtbl.t = Hashtbl.create 32 in
    let fam name =
      match Hashtbl.find_opt fams name with
      | Some f -> f
      | None ->
          let f = { f_type = ""; f_has_help = false } in
          Hashtbl.replace fams name f;
          f
    in
    let series : (string, ser_state) Hashtbl.t = Hashtbl.create 32 in
    let series_key base labels =
      let rest = List.filter (fun (k, _) -> k <> "le") labels in
      let rest = List.sort compare rest in
      base ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) rest)
      ^ "}"
    in
    let ser base labels =
      let key = series_key base labels in
      match Hashtbl.find_opt series key with
      | Some s -> s
      | None ->
          let s =
            { s_base = base; s_last_bucket = -1.; s_inf = None; s_sum = false;
              s_cnt = None }
          in
          Hashtbl.replace series key s;
          s
    in
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    let base_of name =
      let strip sfx =
        let ls = String.length sfx and ln = String.length name in
        if ln > ls && String.sub name (ln - ls) ls = sfx then
          Some (String.sub name 0 (ln - ls))
        else None
      in
      match strip "_bucket" with
      | Some b -> (b, `Bucket)
      | None -> (
          match strip "_sum" with
          | Some b when Hashtbl.mem fams b -> (b, `Sum)
          | _ -> (
              match strip "_count" with
              | Some b when Hashtbl.mem fams b -> (b, `Count)
              | _ -> (name, `Plain)))
    in
    List.iter
      (fun line ->
        if !err <> None || String.trim line = "" then ()
        else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          let name =
            match String.index_opt rest ' ' with
            | Some i -> String.sub rest 0 i
            | None -> rest
          in
          if not (name_ok name) then fail ("bad metric name in HELP: " ^ name)
          else (fam name).f_has_help <- true
        end
        else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          match String.split_on_char ' ' rest with
          | [ name; typ ] ->
              if not (name_ok name) then fail ("bad metric name in TYPE: " ^ name)
              else begin
                let f = fam name in
                if not f.f_has_help then fail ("TYPE before HELP for " ^ name)
                else if f.f_type <> "" then fail ("duplicate TYPE for " ^ name)
                else if typ <> "counter" && typ <> "gauge" && typ <> "histogram"
                then fail ("unknown type " ^ typ ^ " for " ^ name)
                else f.f_type <- typ
              end
          | _ -> fail ("malformed TYPE line: " ^ line)
        end
        else if line.[0] = '#' then ()
        else
          match parse_sample line with
          | None -> fail ("malformed sample line: " ^ line)
          | Some (name, labels, value) -> (
              match float_of_string_opt value with
              | None -> fail ("non-numeric sample value: " ^ line)
              | Some v -> (
                  let base, kind = base_of name in
                  match kind with
                  | `Plain ->
                      if not (name_ok name) then fail ("bad metric name: " ^ name)
                      else if not (Hashtbl.mem fams name) then
                        fail ("sample without TYPE/HELP: " ^ name)
                      else if (fam name).f_type = "" then
                        fail ("sample without TYPE: " ^ name)
                  | `Bucket -> (
                      if not (Hashtbl.mem fams base) then
                        fail ("bucket for undeclared histogram: " ^ base)
                      else if (fam base).f_type <> "histogram" then
                        fail (base ^ " has buckets but is not a histogram")
                      else
                        match List.assoc_opt "le" labels with
                        | None -> fail ("bucket without le label: " ^ line)
                        | Some "+Inf" -> (ser base labels).s_inf <- Some v
                        | Some _ ->
                            let s = ser base labels in
                            if v < s.s_last_bucket then
                              fail
                                ("non-monotone buckets for "
                               ^ series_key base labels ^ ": " ^ value)
                            else s.s_last_bucket <- v)
                  | `Sum -> (ser base labels).s_sum <- true
                  | `Count -> (ser base labels).s_cnt <- Some v)))
      lines;
    (match !err with
    | Some _ -> ()
    | None ->
        Hashtbl.iter
          (fun name f ->
            if !err = None && f.f_type = "" then
              fail ("family without TYPE: " ^ name))
          fams;
        let hist_sampled : (string, unit) Hashtbl.t = Hashtbl.create 8 in
        Hashtbl.iter
          (fun key s ->
            if !err = None && (fam s.s_base).f_type = "histogram" then begin
              Hashtbl.replace hist_sampled s.s_base ();
              match (s.s_inf, s.s_cnt) with
              | None, _ -> fail ("histogram series without +Inf bucket: " ^ key)
              | _, None -> fail ("histogram series without _count: " ^ key)
              | Some inf, Some cnt ->
                  if inf <> cnt then fail ("+Inf bucket <> _count for " ^ key)
                  else if not s.s_sum then
                    fail ("histogram series without _sum: " ^ key)
                  else if s.s_last_bucket > inf then
                    fail ("finite bucket exceeds +Inf for " ^ key)
            end)
          series;
        Hashtbl.iter
          (fun name f ->
            if !err = None && f.f_type = "histogram"
               && not (Hashtbl.mem hist_sampled name)
            then fail ("histogram without samples: " ^ name))
          fams);
    match !err with
    | Some e -> Error e
    | None -> Ok (Hashtbl.length fams)
end
