(** Low-overhead span tracing and metrics exposition.

    The paper's headline claims are {e shape} claims — pseudo-linear
    preprocessing (Theorem 2.3) and constant delay between answers
    (Corollary 2.5) — and {!Nd_util.Metrics} only aggregates them into
    after-the-fact totals.  This module makes the shape observable {e
    per event}:

    - {e spans}: [with_span name f] records a nested, wall-clocked,
      ops-metered interval.  The hot layers (prepare phases, [next]
      calls, store updates, snapshot sections, server requests) are
      pre-threaded with spans; with tracing disabled every probe is a
      single load-and-branch, and the cost-model ops clock is never
      advanced by the tracer itself (the [TR] bench row gates this at a
      2% ops delta, like the [ER] budget-probe row).
    - {e Chrome trace export}: the recorded spans serialize to the
      Chrome trace-event JSON format, loadable in Perfetto / [chrome://
      tracing], so "where does preprocessing time go" is a flame chart,
      not a guess.
    - {e Prometheus exposition} ({!Prometheus}): the whole
      {!Nd_util.Metrics} registry rendered in the Prometheus text
      format, with explicit bucket boundaries for the delay histograms
      — the scrape face of the constant-delay contract.

    Completed spans live in a bounded ring buffer: overflow drops the
    {e oldest} spans first and counts the loss (visible as
    [trace.dropped] in the metrics registry and via {!dropped}), so a
    long session keeps the recent past at a fixed memory ceiling.

    Timestamps are microseconds on a clock forced to be monotonically
    non-decreasing within each domain (wall readings that step
    backwards are clamped), which is what the trace viewers require.

    The tracer is domain-safe: open-span stacks are per domain (nesting
    follows each domain's own dynamic call structure — a parallel
    bag-job's spans parent onto each other, never across domains), span
    ids come from one process-wide atomic, and the completed-span ring
    is lock-protected.  Each span records the domain it ran on, which
    becomes its timeline lane ([tid]) in the Chrome export. *)

(** {1 The tracer} *)

type span = {
  sid : int;  (** unique within the process, 1-based *)
  parent : int;  (** enclosing span id, [0] for roots *)
  name : string;
  attrs : (string * string) list;
  ts_us : int;  (** start, monotonic microseconds *)
  dur_us : int;  (** always [>= 0] *)
  ops : int;
      (** {!Nd_util.Metrics.ops} advance during the span — the span's
          cost in the machine model (0 when metrics are disabled) *)
  dom : int;  (** id of the domain the span ran on (0 = main) *)
}

val enable : ?capacity:int -> unit -> unit
(** Switch tracing on.  [capacity] bounds the completed-span ring
    buffer (default {!default_capacity}; at least 1); re-enabling with a
    different capacity clears recorded spans.
    @raise Invalid_argument on a non-positive capacity. *)

val disable : unit -> unit
(** Switch tracing off.  Recorded spans are kept (export still works);
    spans open at disable time complete as no-ops. *)

val enabled : unit -> bool

val default_capacity : int

val clear : unit -> unit
(** Drop all recorded spans and the dropped-count, keep the enabled
    state and capacity. *)

val with_span : string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a new span.  Nesting follows the
    dynamic call structure: spans close in LIFO order, and a span's
    parent is whatever span was open at its start.  Exception-safe (the
    span is recorded even when [f] raises).  When tracing is disabled
    this is exactly one branch plus the call to [f]. *)

val phase : string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [with_span] {e and} {!Nd_util.Metrics.phase} under the same name —
    the instrumentation the preprocessing phases use, so each phase
    shows up both as a cumulative timer and as individual spans. *)

val current_span_id : unit -> int
(** Id of the innermost open span, [0] when none is open or tracing is
    disabled.  Servers put this in error replies and event logs so a
    failing request can be joined to its trace. *)

val dropped : unit -> int
(** Spans evicted from the ring since the last {!clear}/{!enable}.
    Mirrored into the metrics registry as the [trace.dropped] counter
    (when metrics are enabled). *)

val spans : unit -> span list
(** Completed spans still in the ring, oldest first. *)

(** {1 Process trace identity}

    Cross-process correlation needs a stable name for "the span ids of
    this process": every exported shard carries the process's {e trace
    id}, and every propagated [trace=<id>:<span>] request attribute
    (see {!Nd_server}) names the originating process by it, so
    [fodb obs merge-trace] can resolve a remote parent reference back
    to the shard that owns the span. *)

val trace_id : unit -> string
(** This process's trace id.  Defaults to a pid+start-time derived
    string on first use; stable for the life of the process. *)

val set_trace_id : string -> unit
(** Override the trace id (harnesses give fleet members readable names
    like [router] or [w-0-1]).
    @raise Invalid_argument unless the id is non-empty [A-Za-z0-9._-]+
    (the charset the [trace=] request attribute admits). *)

(** {1 Chrome trace-event export} *)

val export_chrome : unit -> string
(** The recorded spans as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}], complete ["X"] events carrying [sid],
    [parent], [ops] and the user attrs in [args]).  The top level also
    carries a [process] member ([{"trace_id": ..., "pid": ...}]) naming
    the exporting process — the join key [fodb obs merge-trace] uses to
    stitch per-process shards; viewers and {!validate_chrome} ignore
    it.  Loadable in Perfetto. *)

val save_chrome : path:string -> int
(** Write {!export_chrome} to [path] (atomically via temp + rename);
    returns the number of exported spans. *)

val validate_chrome : string -> (int, string) result
(** Structural validator used by tests and CI: the string must parse as
    JSON, carry a non-empty [traceEvents] array of complete events with
    non-negative [ts]/[dur], and every child span still in the export
    must be contained in its parent's interval.  Returns the event
    count. *)

(** {1 Minimal JSON reader}

    Just enough JSON to parse back what this repo emits (trace exports,
    stats records, profile reports, JSONL event logs) in tests and
    validators; not a general-purpose parser. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  (** Whole-string parse; [Error] carries a byte position. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj], [None] otherwise. *)
end

(** {1 Prometheus text exposition} *)
module Prometheus : sig
  val render : Nd_util.Metrics.snapshot -> string
  (** The registry snapshot in the Prometheus text format (version
      0.0.4): every counter as [nd_<name>] (dots become underscores)
      with [# HELP]/[# TYPE] lines, phase timers as the
      [nd_phase_seconds_total{phase="..."}] family, histograms as
      native Prometheus histograms with explicit power-of-two bucket
      boundaries ending at {!Nd_util.Metrics.hist_clamp}, and the ops
      clock as [nd_ops_total].  Zero-valued registrations are rendered
      too, so scrapes stay monotonic across {!Nd_util.Metrics.reset}. *)

  val render_current : unit -> string
  (** [render (Nd_util.Metrics.snapshot ())]. *)

  val validate : string -> (int, string) result
  (** Line-format validator used by tests and CI: HELP/TYPE lines
      precede their samples, metric names are well-formed, label lists
      parse as [k="v",…] (escapes included), histogram buckets are
      cumulative (monotone non-decreasing), end in a [+Inf] bucket
      equal to [_count], and every histogram carries [_sum] and
      [_count] — all checked {e per series} (one (family, labels minus
      [le]) combination), so the fleet-aggregated exposition with its
      [shard]/[replica] labels (see {!Nd_obs}) validates under the same
      rules as a single process's scrape.  Returns the number of metric
      families. *)
end
