(** The {e boxed} reference implementation of the Storing Theorem data
    structure — the representation {!Store} used before it was lowered
    onto flat unboxed banks.  Kept as the differential oracle for the
    probe-discipline tests (same operation sequence ⇒ bit-identical
    [store.reg_reads]/[store.reg_writes] and touch histograms; the two
    modules share the metrics registry entries by name) and as the
    baseline arm of the ST bench row.  Identical API and semantics to
    {!Store}, modulo the [Raw] bank accessors, which only the flat
    layout has.

    The Storing Theorem data structure (Theorem 3.1 of Schweikardt,
    Segoufin & Vigny, and its appendix, Section 7).

    A [t] stores a partial k-ary function [f : [n]^k ⇀ 'v] with

    - initialization by repeated insertion, [O(n^ε)] per key,
    - update (add / remove) in [O(n^ε)],
    - {b lookup in constant time} with successor semantics: given any
      [ā ∈ [n]^k], lookup answers [f(ā)] when [ā ∈ Dom(f)], and otherwise
      the smallest key of [Dom(f)] larger than [ā] (or [Null]),
    - space [O(|Dom(f)| · n^ε)] at all times.

    The structure is the paper's register-level trie: every coordinate is
    decomposed in base [d = ⌈n^ε⌉] into [h = ⌈1/ε⌉] digits (most
    significant first), so a key is a string of [k·h] digits.  The trie
    [T(f)] has degree [d]; each inner node occupies [d+1] consecutive
    registers — one per child plus a final back-pointer register [(-1, R)]
    to the register of the parent that points at the node.  A child
    register contains [(1, R')] when the child is an inner node starting
    at register [R'], [(1, f(ā))] when it is a leaf of a stored key [ā],
    and [(0, b̄)] when no key lives below it, where [b̄] is the smallest
    key of [Dom(f)] whose digit string exceeds the register's prefix
    ([(0, Null)] when none exists).  Register 0 plays the role of the
    paper's [R_0], the next free register.

    Two deliberate deviations from the paper's pseudo-code, both fixes:
    - Algorithm 12 ({e Cut}) relocates the last allocated node block into
      the freed slot but only re-points the {e parent} of the moved block;
      the {e children} of the moved block keep back-pointers into the old
      location.  We re-point them as well.
    - The caption of Figure 1 numbers some registers inconsistently with
      the formal description of Section 3.1 (e.g. it calls [R_8] "the
      last register representing the root" although the root occupies
      [d+1 = 4] registers).  We follow the formal description; see
      {!dump} and the [figure1] bench. *)

type 'v t

type key = Nd_util.Tuple.t

(** Result of a register-level search (Algorithm 2). *)
type 'v lookup =
  | Value of 'v  (** [ā ∈ Dom(f)], with its image. *)
  | Next of key  (** [ā ∉ Dom(f)]; the smallest key [> ā]. *)
  | Null  (** [ā ∉ Dom(f)] and no key [> ā] exists. *)

val create : n:int -> k:int -> epsilon:float -> 'v t
(** [create ~n ~k ~epsilon] is the empty structure over keys in [[0,n)^k].
    @raise Invalid_argument if [n < 1], [k < 1] or [epsilon <= 0]. *)

val n : 'v t -> int

val arity : 'v t -> int

val degree : 'v t -> int
(** The branching factor [d = ⌈n^ε⌉]. *)

val depth : 'v t -> int
(** The trie depth [k·h]. *)

val cardinal : 'v t -> int
(** [|Dom(f)|]. *)

val space : 'v t -> int
(** Number of registers currently in use (the paper's [R_0 - 1]). *)

val find : 'v t -> key -> 'v lookup
(** Constant-time lookup (Algorithm 2). *)

val get_opt : 'v t -> key -> 'v option

val mem : 'v t -> key -> bool

val succ_geq : 'v t -> key -> (key * 'v) option
(** [succ_geq t ā] is the smallest [(x̄, f(x̄))] with [x̄ ≥ ā]. *)

val succ_gt : 'v t -> key -> (key * 'v) option
(** [succ_gt t ā] is the smallest [(x̄, f(x̄))] with [x̄ > ā]. *)

val pred_lt : 'v t -> key -> key option
(** [pred_lt t ā] is the largest key [< ā], by direct trie descent
    (the paper suggests a dual structure; a walk is equivalent and does
    not double the space).  [O(d·k·h)], i.e. [O(n^ε)]. *)

val min_key : 'v t -> (key * 'v) option

val add : 'v t -> key -> 'v -> unit
(** Insert or overwrite a binding (Algorithms 4–9).  [O(n^ε)]. *)

val remove : 'v t -> key -> unit
(** Remove a binding if present (Algorithms 10–12 with the child
    back-pointer fix).  [O(n^ε)].

    Removing an {e absent} key is a documented no-op: the lookup walk
    ends at [Null] (or a [Next] redirection) before any register is
    touched, so the structure is left {e byte-identical} — same
    registers, same node blocks, same {!dump} — not merely logically
    equivalent.  Callers replaying mutation journals may therefore
    issue blind removes without first probing {!mem}. *)

val iter : (key -> 'v -> unit) -> 'v t -> unit
(** Iterate over bindings in increasing key order. *)

val to_list : 'v t -> (key * 'v) list

val canonicalize : 'v t -> 'v t
(** A fresh, equivalent structure whose node blocks are laid out in BFS
    (level) order of the trie — the layout used by the paper's Figure 1.
    Insertion allocates depth-first, so two structures holding the same
    function can differ in register numbering; canonicalizing makes the
    layout a function of the stored set only. *)

val dump : pp_value:(Format.formatter -> 'v -> unit) -> 'v t -> string
(** Render the register file in the style of Figure 1, one register per
    line: ["R_5: (1, 9)"], ["R_2: (0, (19))"], ["R_4: (-1, Null)"], … *)

val validate : 'v t -> (unit, string) result
(** Full invariant walker, designed to {e detect} corruption rather
    than crash on it:

    - representational: node block layout and bounds, parent
      back-pointers, [(0,·)] cells pointing at the correct successor
      keys, absence of all-empty non-root nodes, register-count (space)
      accounting, and the cardinality matching the keys actually
      reachable;
    - operational: a full [min_key]/[succ_gt] walk must visit exactly
      the stored keys, in strictly increasing order (successor
      monotonicity).

    Every fault class {!Chaos} can inject into a valid structure is
    caught by this walker (proven by the test-suite).  [O(S·|Dom|)]
    where [S] is the register count — a debugging/chaos-harness tool,
    not an answering-path check. *)

val check_invariants : 'v t -> (unit, string) result
(** The representational half of {!validate} (historical name, used by
    the store test-suite after every mutation). *)

(** {1 Fault injection hooks}

    Deliberate corruption primitives for the {!Chaos} harness and the
    robustness test-suite: each targets one invariant class that
    {!validate} must detect.  All assume the structure is currently
    valid; on a valid structure every successful injection (returning
    [true]) is guaranteed to make {!validate} fail.  Never call these
    outside a fault-injection harness. *)
module Fault : sig
  val registers : 'v t -> int
  (** Number of registers in use (= {!space}); valid targets are
      [1 .. registers]. *)

  val cell_kind :
    'v t -> int -> [ `Child | `Value | `Next | `Next_null | `Parent | `Free ]
  (** What register [i] currently holds (for picking a target). *)

  val clear_register : 'v t -> int -> bool
  (** Overwrite register [i] with the free-cell marker.  [false] if
      [i] is out of the used range. *)

  val corrupt_next : 'v t -> int -> bool
  (** If register [i] holds a [(0,·)] cell, replace its successor key
      with a wrong one ([(0, Null)] becomes a phantom successor).
      [false] when [i] holds something else. *)

  val redirect_child : 'v t -> int -> bool
  (** If register [i] holds an inner-child pointer, re-point it at the
      root block (creating a bogus cycle / depth violation). *)

  val break_parent : 'v t -> int -> bool
  (** If register [i] is a node's back-pointer register, shift it by
      one. *)

  val skew_cardinal : 'v t -> int -> unit
  (** Add [delta] to the stored cardinality without touching keys. *)
end
