open Nd_util
module A1 = Bigarray.Array1

type key = Tuple.t

type 'v lookup = Value of 'v | Next of key | Null

(* A register holds a pair (δ, r) with δ ∈ {-1,0,1} (Section 3.1).  The
   boxed representation (see Boxed_store, the retained reference) models
   the pair as a variant; here a register is lowered to two flat banks —
   a tag byte and an unboxed int payload word — so a register touch is a
   cache-friendly array access instead of a pointer chase:

     tag_child     pay = l      — (1, l): inner child, node starts at l
     tag_value     pay = idx    — (1, v): leaf; v lives at varena.(idx)
     tag_next      pay = slot   — (0, b̄): b̄ interned at karena slot
     tag_next_null pay = 0      — (0, Null)
     tag_parent    pay = q      — (-1, q); q = -1 for the root
     tag_free                   — beyond R_0 / freed (never reachable)

   Keys and stored values are interned into side arenas so the register
   banks hold only immediates; a repaint pass (Clean) shares one arena
   slot across every register it touches, exactly as the boxed store
   shared one [CNext b] cell. *)
let tag_free = 0
let tag_child = 1
let tag_value = 2
let tag_next = 3
let tag_next_null = 4
let tag_parent = 5

type bank = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

type 'v t = {
  n : int;
  k : int;
  d : int;
  h : int;
  kh : int;
  mutable tags : Bytes.t;
  mutable pay : bank;
  mutable free : int; (* the paper's R_0: next unused register *)
  mutable card : int;
  (* key arena: k words per slot; [klen] slots in use *)
  mutable karena : bank;
  mutable klen : int;
  (* value arena: ['v option] so dead entries release their value *)
  mutable varena : 'v option array;
  mutable vlen : int;
}

let root = 1

(* Cost-model probes (Theorem 3.1 is a statement about register
   touches): every register read/write on the operational paths goes
   through [rd_tag]/[wr], so [store.reg_reads]/[store.reg_writes] count
   exactly the RAM-model work of lookups and updates — one increment
   per register touched, the payload word of a touched register riding
   along for free (it is the same register).  The counters and per-call
   histograms are bit-identical to the boxed store's. *)
let m_reads = Metrics.counter ~ops:true "store.reg_reads"
let m_writes = Metrics.counter ~ops:true "store.reg_writes"
let m_lookups = Metrics.counter "store.lookups"
let m_updates = Metrics.counter "store.updates"
let h_lookup = Metrics.hist "store.lookup_touches"
let h_update = Metrics.hist "store.update_touches"

(* Bounds-checked accessors on purpose: the Chaos/Fault harness plants
   wild pointers, and a corrupted payload must raise like the boxed
   array did, never read out of the bank. *)
let[@inline] rd_tag t i =
  Metrics.incr m_reads;
  Char.code (Bytes.get t.tags i)

(* the payload word of a register whose tag was just read — same
   register, same touch, not a second probe *)
let[@inline] payload t i = A1.get t.pay i

let[@inline] wr t i tag p =
  Metrics.incr m_writes;
  Bytes.set t.tags i (Char.unsafe_chr tag);
  A1.set t.pay i p

let touches () = Metrics.value m_reads + Metrics.value m_writes

(* probe-free bank reads for the validation / maintenance paths (the
   boxed store read [t.regs.(i)] directly there) *)
let[@inline] tag_at t i = Char.code (Bytes.get t.tags i)
let[@inline] pay_at t i = A1.get t.pay i

let int_bank len =
  let a = A1.create Bigarray.int Bigarray.c_layout (max 1 len) in
  A1.fill a 0;
  a

(* --- side arenas --- *)

(* Arena maintenance is representation bookkeeping, not Theorem 3.1
   register work: compaction scans the banks directly (no probes) and
   is amortized O(1) per intern by the doubling triggers below. *)

let compact_karena t =
  let map = Array.make (max 1 t.klen) (-1) in
  let fresh = int_bank (A1.dim t.karena) in
  let live = ref 0 in
  for i = 1 to t.free - 1 do
    if tag_at t i = tag_next then begin
      let s = pay_at t i in
      let s' =
        if map.(s) >= 0 then map.(s)
        else begin
          let d = !live in
          incr live;
          map.(s) <- d;
          for j = 0 to t.k - 1 do
            A1.set fresh ((d * t.k) + j) (A1.get t.karena ((s * t.k) + j))
          done;
          d
        end
      in
      A1.set t.pay i s'
    end
  done;
  t.karena <- fresh;
  t.klen <- !live

let intern_key t (a : key) =
  (* live (0,·) slots never exceed the register count, so this keeps
     the arena within a constant factor of the live set *)
  if t.klen >= (2 * t.free) + 16 then compact_karena t;
  let need = (t.klen + 1) * t.k in
  if need > A1.dim t.karena then begin
    let fresh = int_bank (max need (2 * A1.dim t.karena)) in
    A1.blit (A1.sub t.karena 0 (t.klen * t.k)) (A1.sub fresh 0 (t.klen * t.k));
    t.karena <- fresh
  end;
  let s = t.klen in
  for j = 0 to t.k - 1 do
    A1.set t.karena ((s * t.k) + j) a.(j)
  done;
  t.klen <- s + 1;
  s

let key_at t s =
  let a = Array.make t.k 0 in
  for j = 0 to t.k - 1 do
    a.(j) <- A1.get t.karena ((s * t.k) + j)
  done;
  a

let compact_varena t =
  let map = Array.make (max 1 t.vlen) (-1) in
  let fresh = Array.make (Array.length t.varena) None in
  let live = ref 0 in
  for i = 1 to t.free - 1 do
    if tag_at t i = tag_value then begin
      let s = pay_at t i in
      let s' =
        if map.(s) >= 0 then map.(s)
        else begin
          let d = !live in
          incr live;
          map.(s) <- d;
          fresh.(d) <- t.varena.(s);
          d
        end
      in
      A1.set t.pay i s'
    end
  done;
  t.varena <- fresh;
  t.vlen <- !live

let intern_value t v =
  (* exactly one value register per stored key, so [card] bounds the
     live set *)
  if t.vlen >= (2 * t.card) + 16 then compact_varena t;
  if t.vlen >= Array.length t.varena then begin
    let fresh = Array.make (max 16 (2 * Array.length t.varena)) None in
    Array.blit t.varena 0 fresh 0 t.vlen;
    t.varena <- fresh
  end;
  t.varena.(t.vlen) <- Some v;
  t.vlen <- t.vlen + 1;
  t.vlen - 1

let value_at t i =
  match t.varena.(i) with Some v -> v | None -> assert false

(* --- construction --- *)

let create ~n ~k ~epsilon =
  if n < 1 then invalid_arg "Store.create: n must be >= 1";
  if k < 1 then invalid_arg "Store.create: k must be >= 1";
  if epsilon <= 0. then invalid_arg "Store.create: epsilon must be > 0";
  let d = max 1 (int_of_float (ceil (float_of_int n ** epsilon))) in
  let h = max 1 (int_of_float (ceil (1. /. epsilon))) in
  (* Guard against float rounding: we need d^h >= n so every coordinate
     has a base-d decomposition of length h. *)
  let d =
    let rec fits d =
      let rec pow acc i = if i = 0 then acc >= n else pow (acc * d) (i - 1) in
      if pow 1 h then d else fits (d + 1)
    in
    fits d
  in
  let cap = max 16 (2 * (d + 2)) in
  let t =
    {
      n;
      k;
      d;
      h;
      kh = k * h;
      tags = Bytes.make cap (Char.chr tag_free);
      pay = int_bank cap;
      free = 1;
      card = 0;
      karena = int_bank (16 * k);
      klen = 0;
      varena = Array.make 16 None;
      vlen = 0;
    }
  in
  (* Algorithm 3 (Init): build the root, everything pointing to Null. *)
  for j = 0 to d - 1 do
    wr t (root + j) tag_next_null 0
  done;
  wr t (root + d) tag_parent (-1);
  t.free <- root + d + 1;
  t

(* the geometry [create] derives from (n, epsilon) — shared with
   [Raw.import_unit] so a deserialized store is vetted against the
   parameters it claims *)
let geometry ~n ~epsilon =
  let d = max 1 (int_of_float (ceil (float_of_int n ** epsilon))) in
  let h = max 1 (int_of_float (ceil (1. /. epsilon))) in
  let d =
    let rec fits d =
      let rec pow acc i = if i = 0 then acc >= n else pow (acc * d) (i - 1) in
      if pow 1 h then d else fits (d + 1)
    in
    fits d
  in
  (d, h)

let n t = t.n
let arity t = t.k
let degree t = t.d
let depth t = t.kh
let cardinal t = t.card
let space t = t.free - 1

(* Algorithm 1 (Decomposition): base-d digits, most significant first. *)
let digits t (a : key) : int array =
  if Array.length a <> t.k then invalid_arg "Store: key arity mismatch";
  let s = Array.make t.kh 0 in
  for i = 0 to t.k - 1 do
    if a.(i) < 0 || a.(i) >= t.n then invalid_arg "Store: key out of range";
    let x = ref a.(i) in
    for j = t.h - 1 downto 0 do
      s.((i * t.h) + j) <- !x mod t.d;
      x := !x / t.d
    done
  done;
  s

let key_of_digits t (s : int array) : key =
  let a = Array.make t.k 0 in
  for i = 0 to t.k - 1 do
    let v = ref 0 in
    for j = 0 to t.h - 1 do
      v := (!v * t.d) + s.((i * t.h) + j)
    done;
    a.(i) <- !v
  done;
  a

(* Algorithm 2 (Access). *)
let find_raw t a =
  let s = digits t a in
  let rec go l i =
    let r = l + s.(i) in
    let tg = rd_tag t r in
    if tg = tag_child then go (payload t r) (i + 1)
    else if tg = tag_value then Value (value_at t (payload t r))
    else if tg = tag_next then Next (key_at t (payload t r))
    else if tg = tag_next_null then Null
    else assert false
  in
  go root 0

let find t a =
  Budget.tick ();
  if Metrics.enabled () then begin
    Metrics.incr m_lookups;
    let t0 = touches () in
    let r = find_raw t a in
    Metrics.observe h_lookup (touches () - t0);
    r
  end
  else find_raw t a

let get_opt t a = match find t a with Value v -> Some v | Next _ | Null -> None
let mem t a = match find t a with Value _ -> true | Next _ | Null -> false

let succ_geq t a =
  match find t a with
  | Value v -> Some (Array.copy a, v)
  | Next b -> (
      match find t b with
      | Value v -> Some (b, v)
      | Next _ | Null -> assert false)
  | Null -> None

let succ_gt t a =
  match Tuple.succ ~n:t.n a with None -> None | Some a1 -> succ_geq t a1

let min_key t = succ_geq t (Tuple.min t.k)

let nonempty_tag tg = tg = tag_child || tg = tag_value

(* Largest key strictly below [a], by a single downward walk that records
   the deepest branch point to the left of [a]'s search path. *)
let pred_lt t a =
  let s = digits t a in
  let best = ref None in
  let rec walk l i =
    let j = ref (s.(i) - 1) in
    let found = ref (-1) in
    while !found < 0 && !j >= 0 do
      if nonempty_tag (rd_tag t (l + !j)) then found := !j;
      decr j
    done;
    if !found >= 0 then best := Some (l, !found, i);
    if i < t.kh - 1 then begin
      let r = l + s.(i) in
      let tg = rd_tag t r in
      if tg = tag_child then walk (payload t r) (i + 1)
    end
  in
  walk root 0;
  match !best with
  | None -> None
  | Some (l, j, i) ->
      let prefix = Array.make t.kh 0 in
      Array.blit s 0 prefix 0 i;
      prefix.(i) <- j;
      (* descend to the maximal key below (l, j) *)
      let rec desc l i =
        if i < t.kh then begin
          let j = ref (t.d - 1) in
          while not (nonempty_tag (rd_tag t (l + !j))) do
            decr j
          done;
          prefix.(i) <- !j;
          let r = l + !j in
          let tg = rd_tag t r in
          if tg = tag_child then desc (payload t r) (i + 1)
          else if tg = tag_value then ()
          else assert false
        end
      in
      (let r = l + j in
       let tg = rd_tag t r in
       if tg = tag_value then ()
       else if tg = tag_child then desc (payload t r) (i + 1)
       else assert false);
      Some (key_of_digits t prefix)

(* --- Clean (Algorithms 6-9): re-point the (0,·) cells lying strictly
   between two search paths.  The replacement travels as a (tag,
   payload) pair — one interned arena slot shared by every register the
   pass repaints, as the boxed store shared one [CNext b] cell. --- *)

let set_empty t reg rtag rpay =
  let tg = rd_tag t reg in
  if tg = tag_next || tg = tag_next_null then wr t reg rtag rpay
  else assert false (* Clean only ever visits empty slots; see Section 7.3 *)

(* Fill_Right: node at depth i on the left path; repaint everything to the
   right of the path, from this depth down. *)
let rec fill_right t node i sL rtag rpay =
  for j = sL.(i) + 1 to t.d - 1 do
    set_empty t (node + j) rtag rpay
  done;
  if i < t.kh - 1 then begin
    let r = node + sL.(i) in
    let tg = rd_tag t r in
    if tg = tag_child then fill_right t (payload t r) (i + 1) sL rtag rpay
    else assert false
  end

(* Fill_Left: symmetric, along the right path. *)
let rec fill_left t node i sR rtag rpay =
  for j = 0 to sR.(i) - 1 do
    set_empty t (node + j) rtag rpay
  done;
  if i < t.kh - 1 then begin
    let r = node + sR.(i) in
    let tg = rd_tag t r in
    if tg = tag_child then fill_left t (payload t r) (i + 1) sR rtag rpay
    else assert false
  end

(* Clean(left, right): [None] stands for -∞ / +∞. *)
let fill_between t left right rtag rpay =
  match (left, right) with
  | None, None ->
      (* the domain is empty: only the root remains *)
      for j = 0 to t.d - 1 do
        set_empty t (root + j) rtag rpay
      done
  | None, Some sR -> fill_left t root 0 sR rtag rpay
  | Some sL, None -> fill_right t root 0 sL rtag rpay
  | Some sL, Some sR ->
      let rec go node i =
        if sL.(i) = sR.(i) then begin
          let r = node + sL.(i) in
          let tg = rd_tag t r in
          if tg = tag_child then go (payload t r) (i + 1)
          else assert false (* distinct keys diverge before the leaves *)
        end
        else begin
          for j = sL.(i) + 1 to sR.(i) - 1 do
            set_empty t (node + j) rtag rpay
          done;
          if i < t.kh - 1 then begin
            (let r = node + sL.(i) in
             let tg = rd_tag t r in
             if tg = tag_child then fill_right t (payload t r) (i + 1) sL rtag rpay
             else assert false);
            let r = node + sR.(i) in
            let tg = rd_tag t r in
            if tg = tag_child then fill_left t (payload t r) (i + 1) sR rtag rpay
            else assert false
          end
        end
      in
      go root 0

(* --- Insertion (Algorithms 4-5). --- *)

let grow_to t cap =
  if cap > Bytes.length t.tags || cap > A1.dim t.pay then begin
    let cap' = max cap (2 * min (Bytes.length t.tags) (A1.dim t.pay)) in
    let tags' = Bytes.make cap' (Char.chr tag_free) in
    Bytes.blit t.tags 0 tags' 0 t.free;
    let pay' = int_bank cap' in
    A1.blit (A1.sub t.pay 0 t.free) (A1.sub pay' 0 t.free);
    t.tags <- tags';
    t.pay <- pay'
  end

(* Allocate a node of d+1 registers at R_0; children provisionally point
   to Null (they are repainted by the Clean passes). *)
let alloc_node t parent_reg =
  grow_to t (t.free + t.d + 1);
  let l = t.free in
  for j = 0 to t.d - 1 do
    wr t (l + j) tag_next_null 0
  done;
  wr t (l + t.d) tag_parent parent_reg;
  t.free <- t.free + t.d + 1;
  l

(* updates use [find_raw] internally: their register touches belong to
   the surrounding update window, not to the lookup histogram *)
let add_raw t a v =
  match find_raw t a with
  | Value _ ->
      (* already present: overwrite the image in place, reusing the
         existing arena slot — zero arena garbage *)
      let s = digits t a in
      let rec go l i =
        let r = l + s.(i) in
        let tg = rd_tag t r in
        if tg = tag_child then go (payload t r) (i + 1)
        else if tg = tag_value then begin
          let idx = payload t r in
          t.varena.(idx) <- Some v;
          wr t r tag_value idx
        end
        else assert false
      in
      go root 0
  | not_found ->
      let next = match not_found with Next b -> Some b | _ -> None in
      let prev = pred_lt t a in
      let s = digits t a in
      (* Insert (Algorithm 5): create the search path top-down. *)
      let rec go l i =
        if i = t.kh - 1 then wr t (l + s.(i)) tag_value (intern_value t v)
        else begin
          let r = l + s.(i) in
          let tg = rd_tag t r in
          if tg = tag_child then go (payload t r) (i + 1)
          else if tg = tag_next || tg = tag_next_null then begin
            let l' = alloc_node t r in
            wr t r tag_child l';
            go l' (i + 1)
          end
          else assert false
        end
      in
      go root 0;
      (* Clean(ā<, ā) and Clean(ā, ā>). *)
      let slot_a = intern_key t a in
      fill_between t (Option.map (digits t) prev) (Some s) tag_next slot_a;
      (match next with
      | Some b ->
          let slot_b = intern_key t b in
          fill_between t (Some s) (Some (digits t b)) tag_next slot_b
      | None -> fill_between t (Some s) None tag_next_null 0);
      t.card <- t.card + 1

let add t a v =
  Budget.tick ();
  Nd_trace.with_span "store.add" @@ fun () ->
  if Metrics.enabled () then begin
    Metrics.incr m_updates;
    let t0 = touches () in
    add_raw t a v;
    Metrics.observe h_update (touches () - t0)
  end
  else add_raw t a v

(* --- Removal (Algorithms 10-12). --- *)

let node_is_empty t node =
  let empty = ref true in
  for j = 0 to t.d - 1 do
    if nonempty_tag (rd_tag t (node + j)) then empty := false
  done;
  !empty

(* Free the block of [node]: move the last allocated block into its place
   (Algorithm 12), fixing (a) the register of the parent of the moved
   block, (b) — a step the paper's pseudo-code omits — the parent
   back-pointers of the moved block's children, and (c) the recorded
   search path when the moved block lies on it. *)
let free_node t node path =
  let src = t.free - (t.d + 1) in
  if src <> node then begin
    Bytes.blit t.tags src t.tags node (t.d + 1);
    for j = 0 to t.d do
      A1.set t.pay (node + j) (A1.get t.pay (src + j))
    done;
    Metrics.add m_reads (t.d + 1);
    Metrics.add m_writes (t.d + 1);
    (let r = node + t.d in
     let tg = rd_tag t r in
     if tg = tag_parent then wr t (payload t r) tag_child node
     else assert false);
    for j = 0 to t.d - 1 do
      let r = node + j in
      let tg = rd_tag t r in
      if tg = tag_child then wr t (payload t r + t.d) tag_parent r
    done;
    for i = 0 to Array.length path - 1 do
      if path.(i) = src then path.(i) <- node
    done
  end;
  Bytes.fill t.tags (t.free - (t.d + 1)) (t.d + 1) (Char.chr tag_free);
  for j = t.free - (t.d + 1) to t.free - 1 do
    A1.set t.pay j 0
  done;
  t.free <- t.free - (t.d + 1)

let remove_raw t a =
  match find_raw t a with
  | Next _ | Null -> ()
  | Value _ ->
      let prev = pred_lt t a in
      let next =
        match Tuple.succ ~n:t.n a with
        | None -> None
        | Some a1 -> (
            match find_raw t a1 with
            | Value _ -> Some a1
            | Next b -> Some b
            | Null -> None)
      in
      let s = digits t a in
      let path = Array.make t.kh 0 in
      let l = ref root in
      for i = 0 to t.kh - 1 do
        path.(i) <- !l;
        if i < t.kh - 1 then begin
          let r = !l + s.(i) in
          let tg = rd_tag t r in
          if tg = tag_child then l := payload t r else assert false
        end
      done;
      let ptag, ppay =
        match next with
        | Some b -> (tag_next, intern_key t b)
        | None -> (tag_next_null, 0)
      in
      wr t (path.(t.kh - 1) + s.(t.kh - 1)) ptag ppay;
      (* Cut: free now-empty nodes bottom-up (never the root). *)
      let rec cut i =
        if i >= 1 && node_is_empty t path.(i) then begin
          let parent_reg =
            let r = path.(i) + t.d in
            let tg = rd_tag t r in
            if tg = tag_parent then payload t r else assert false
          in
          wr t parent_reg ptag ppay;
          free_node t path.(i) path;
          cut (i - 1)
        end
      in
      cut (t.kh - 1);
      fill_between t
        (Option.map (digits t) prev)
        (Option.map (digits t) next)
        ptag ppay;
      t.card <- t.card - 1

let remove t a =
  Budget.tick ();
  Nd_trace.with_span "store.remove" @@ fun () ->
  if Metrics.enabled () then begin
    Metrics.incr m_updates;
    let t0 = touches () in
    remove_raw t a;
    Metrics.observe h_update (touches () - t0)
  end
  else remove_raw t a

let iter f t =
  let rec go = function
    | None -> ()
    | Some (key, v) ->
        f key v;
        go (succ_gt t key)
  in
  go (min_key t)

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let canonicalize t =
  (* BFS over the trie, assigning new block positions in visit order.
     Pure maintenance: direct bank reads, no probes.  The old→new
     renumbering is a flat int array indexed by old block start (blocks
     tile [1, free), so the array is dense — no hashing). *)
  let bfs = Queue.create () in
  Queue.push root bfs;
  let olds = ref [] in
  let count = ref 0 in
  let new_of = Array.make (max 2 t.free) (-1) in
  while not (Queue.is_empty bfs) do
    let node = Queue.pop bfs in
    olds := node :: !olds;
    new_of.(node) <- 1 + (!count * (t.d + 1));
    incr count;
    for j = 0 to t.d - 1 do
      if tag_at t (node + j) = tag_child then Queue.push (pay_at t (node + j)) bfs
    done
  done;
  let old_nodes = Array.of_list (List.rev !olds) in
  let free = 1 + (Array.length old_nodes * (t.d + 1)) in
  let cap = max 16 free in
  let tags = Bytes.make cap (Char.chr tag_free) in
  let pay = int_bank cap in
  (* fresh arenas in canonical first-reference order; registers that
     shared a slot keep sharing via the memo arrays *)
  let karena = int_bank (max (16 * t.k) (t.klen * t.k)) in
  let kmap = Array.make (max 1 t.klen) (-1) in
  let klen = ref 0 in
  let varena = Array.make (max 16 t.vlen) None in
  let vmap = Array.make (max 1 t.vlen) (-1) in
  let vlen = ref 0 in
  Array.iter
    (fun old ->
      let nw = new_of.(old) in
      for j = 0 to t.d - 1 do
        let tg = tag_at t (old + j) in
        let p = pay_at t (old + j) in
        let p' =
          if tg = tag_child then new_of.(p)
          else if tg = tag_next then begin
            if kmap.(p) < 0 then begin
              kmap.(p) <- !klen;
              for q = 0 to t.k - 1 do
                A1.set karena ((!klen * t.k) + q) (A1.get t.karena ((p * t.k) + q))
              done;
              incr klen
            end;
            kmap.(p)
          end
          else if tg = tag_value then begin
            if vmap.(p) < 0 then begin
              vmap.(p) <- !vlen;
              varena.(!vlen) <- t.varena.(p);
              incr vlen
            end;
            vmap.(p)
          end
          else p
        in
        Bytes.set tags (nw + j) (Char.chr tg);
        A1.set pay (nw + j) p'
      done;
      if tag_at t (old + t.d) <> tag_parent then assert false;
      let q = pay_at t (old + t.d) in
      let q' =
        if q = -1 then -1
        else begin
          (* Blocks are always allocated in units of d+1 starting at
             register 1, so the block containing q is recoverable
             arithmetically. *)
          let parent_old = 1 + ((q - 1) / (t.d + 1) * (t.d + 1)) in
          new_of.(parent_old) + (q - parent_old)
        end
      in
      Bytes.set tags (nw + t.d) (Char.chr tag_parent);
      A1.set pay (nw + t.d) q')
    old_nodes;
  { t with tags; pay; free; karena; klen = !klen; varena; vlen = !vlen }

let dump ~pp_value t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "R_0: %d (next free register)\n" t.free);
  for i = 1 to t.free - 1 do
    let tg = tag_at t i in
    let p = pay_at t i in
    let line =
      if tg = tag_child then Printf.sprintf "(1, %d)" p
      else if tg = tag_value then
        Format.asprintf "(1, %a)" pp_value (value_at t p)
      else if tg = tag_next then
        Printf.sprintf "(0, %s)" (Tuple.to_string (key_at t p))
      else if tg = tag_next_null then "(0, Null)"
      else if tg = tag_parent then
        if p = -1 then "(-1, Null)" else Printf.sprintf "(-1, %d)" p
      else "free"
    in
    Buffer.add_string buf (Printf.sprintf "R_%d: %s\n" i line)
  done;
  Buffer.contents buf

(* --- Internal validation, used heavily by the test-suite. --- *)

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    (* collect reachable nodes and keys by DFS *)
    let nodes = ref [] in
    let keys = ref [] in
    let prefix = Array.make t.kh 0 in
    let rec dfs node depth pointed_from =
      if node < 1 || node + t.d >= t.free then
        raise (Bad (Printf.sprintf "node %d out of bounds (free=%d)" node t.free));
      nodes := node :: !nodes;
      (if tag_at t (node + t.d) = tag_parent then begin
         let q = pay_at t (node + t.d) in
         if q <> pointed_from then
           raise
             (Bad
                (Printf.sprintf "node %d: parent register says %d, expected %d"
                   node q pointed_from))
       end
       else raise (Bad (Printf.sprintf "node %d: missing parent register" node)));
      for j = 0 to t.d - 1 do
        prefix.(depth) <- j;
        let tg = tag_at t (node + j) in
        if tg = tag_child then begin
          if depth = t.kh - 1 then
            raise (Bad (Printf.sprintf "reg %d: child at leaf depth" (node + j)));
          dfs (pay_at t (node + j)) (depth + 1) (node + j)
        end
        else if tg = tag_value then begin
          if depth <> t.kh - 1 then
            raise (Bad (Printf.sprintf "reg %d: value above leaf depth" (node + j)));
          let idx = pay_at t (node + j) in
          if idx < 0 || idx >= t.vlen || t.varena.(idx) = None then
            raise
              (Bad
                 (Printf.sprintf "reg %d: value index %d outside the arena"
                    (node + j) idx));
          keys := key_of_digits t prefix :: !keys
        end
        else if tg = tag_next then begin
          let slot = pay_at t (node + j) in
          if slot < 0 || slot >= t.klen then
            raise
              (Bad
                 (Printf.sprintf "reg %d: next slot %d outside the arena"
                    (node + j) slot))
        end
        else if tg = tag_next_null then ()
        else raise (Bad (Printf.sprintf "reg %d: unexpected cell" (node + j)))
      done
    in
    dfs root 0 (-1);
    let keys = List.rev !keys in
    if List.length keys <> t.card then
      raise (Bad (Printf.sprintf "cardinal: stored %d, found %d" t.card
                    (List.length keys)));
    let sorted = List.sort Tuple.compare keys in
    if sorted <> keys then raise (Bad "keys not discovered in increasing order");
    (* space accounting: every register in [1, free) belongs to a node *)
    let nnodes = List.length !nodes in
    if t.free <> 1 + (nnodes * (t.d + 1)) then
      raise
        (Bad (Printf.sprintf "space leak: free=%d, %d nodes of size %d" t.free
                nnodes (t.d + 1)));
    (* no all-empty non-root node *)
    List.iter
      (fun node ->
        if node <> root && node_is_empty t node then
          raise (Bad (Printf.sprintf "node %d is empty but was not cut" node)))
      !nodes;
    (* every (0,·) cell points to the smallest key beyond its prefix *)
    let key_digit_list = List.map (fun k -> (digits t k, k)) sorted in
    let prefix_gt p plen dg =
      (* digits dg exceed prefix p of length plen *)
      let rec go i =
        if i = plen then false
        else if dg.(i) > p.(i) then true
        else if dg.(i) < p.(i) then false
        else go (i + 1)
      in
      go 0
    in
    let rec dfs2 node depth =
      for j = 0 to t.d - 1 do
        prefix.(depth) <- j;
        let tg = tag_at t (node + j) in
        if tg = tag_child then dfs2 (pay_at t (node + j)) (depth + 1)
        else if tg = tag_next then begin
          let b = key_at t (pay_at t (node + j)) in
          let expected =
            List.find_opt
              (fun (dg, _) -> prefix_gt prefix (depth + 1) dg)
              key_digit_list
          in
          match expected with
          | Some (_, k) when Tuple.equal k b -> ()
          | Some (_, k) ->
              raise
                (Bad
                   (Printf.sprintf "reg %d: next says %s, expected %s"
                      (node + j) (Tuple.to_string b) (Tuple.to_string k)))
          | None ->
              raise
                (Bad
                   (Printf.sprintf "reg %d: next says %s, expected Null"
                      (node + j) (Tuple.to_string b)))
        end
        else if tg = tag_next_null then begin
          if
            List.exists
              (fun (dg, _) -> prefix_gt prefix (depth + 1) dg)
              key_digit_list
          then
            raise
              (Bad (Printf.sprintf "reg %d: says Null but a successor exists"
                      (node + j)))
        end
      done
    in
    dfs2 root 0;
    Ok ()
  with
  | Bad msg -> err "%s" msg
  | Invalid_argument msg ->
      (* a corrupted payload walked a bank out of bounds *)
      err "corrupted register payload: %s" msg

(* The operational half of validation: walking the structure through
   its own successor pointers must visit exactly the stored keys in
   strictly increasing order.  Run only after [check_invariants]
   passed, so the walk cannot hit malformed cells; the step bound
   still guards against pointer cycles. *)
let check_successor_walk t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec walk prev seen cur =
    if seen > t.card then err "successor walk visits more keys than stored"
    else
      match cur with
      | None ->
          if seen = t.card then Ok ()
          else err "successor walk found %d keys, cardinal says %d" seen t.card
      | Some (key, _) -> (
          match prev with
          | Some p when Tuple.compare p key >= 0 ->
              err "successor walk not strictly increasing at %s"
                (Tuple.to_string key)
          | _ -> walk (Some key) (seen + 1) (succ_gt t key))
  in
  walk None 0 (min_key t)

let validate t =
  match check_invariants t with
  | Error _ as e -> e
  | Ok () -> check_successor_walk t

(* --- Fault injection hooks (Chaos harness; see the .mli warning). --- *)

module Fault = struct
  let registers t = space t

  let in_range t i = i >= 1 && i < t.free

  let cell_kind t i =
    if not (in_range t i) then `Free
    else
      let tg = tag_at t i in
      if tg = tag_free then `Free
      else if tg = tag_child then `Child
      else if tg = tag_value then `Value
      else if tg = tag_next then `Next
      else if tg = tag_next_null then `Next_null
      else `Parent

  let clear_register t i =
    in_range t i
    && begin
         Bytes.set t.tags i (Char.chr tag_free);
         true
       end

  let corrupt_next t i =
    in_range t i
    &&
    let tg = tag_at t i in
    if tg = tag_next then begin
      let b = key_at t (pay_at t i) in
      let wrong =
        if Tuple.compare b (Tuple.max ~n:t.n t.k) = 0 then Tuple.min t.k
        else Tuple.max ~n:t.n t.k
      in
      A1.set t.pay i (intern_key t wrong);
      true
    end
    else if tg = tag_next_null then begin
      (* phantom successor where the structure promised none *)
      let slot = intern_key t (Tuple.max ~n:t.n t.k) in
      Bytes.set t.tags i (Char.chr tag_next);
      A1.set t.pay i slot;
      true
    end
    else false

  let redirect_child t i =
    in_range t i
    &&
    if tag_at t i = tag_child then begin
      A1.set t.pay i root;
      true
    end
    else false

  let break_parent t i =
    in_range t i
    &&
    if tag_at t i = tag_parent then begin
      A1.set t.pay i (pay_at t i + 1);
      true
    end
    else false

  let skew_cardinal t delta = t.card <- t.card + delta
end

(* --- Raw bank access (snapshot codec; see the .mli warning). --- *)

module Raw = struct
  type nonrec bank = bank

  let compact t =
    compact_karena t;
    compact_varena t

  let dims t = (t.n, t.k, t.d, t.h, t.free, t.card, t.klen, t.vlen)
  let payload_word t i = pay_at t i
  let key_word t i = A1.get t.karena i
  let tags_blob t = Bytes.sub_string t.tags 0 t.free

  (* Vet a deserialized flat image structurally before it becomes a
     live store: the banks may come straight off a memory-mapped file,
     so every word is range-checked — coherent garbage that survived
     the CRC ladder (or raced past it) must land in [Error], never in a
     store that could walk a wild pointer.  O(free + klen·k). *)
  let import_unit ~n ~k ~epsilon ~d ~h ~free ~card ~klen ~vlen ~tags ~pay
      ~karena : (unit t, string) result =
    let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
    if n < 1 || k < 1 || epsilon <= 0. then err "stor: bad parameters"
    else if geometry ~n ~epsilon <> (d, h) then
      err "stor: geometry (d=%d, h=%d) does not match n=%d, epsilon=%g" d h n
        epsilon
    else if free < 1 + (d + 1) || (free - 1) mod (d + 1) <> 0 then
      err "stor: free=%d does not tile into %d-register blocks" free (d + 1)
    else if card < 0 || klen < 0 || vlen < 0 then err "stor: negative counts"
    else if Bytes.length tags < free then err "stor: tag bank too short"
    else if A1.dim pay < free then err "stor: payload bank too short"
    else if A1.dim karena < klen * k then err "stor: key arena too short"
    else begin
      let exception Bad of string in
      try
        let values = ref 0 in
        for i = 1 to free - 1 do
          let tg = Char.code (Bytes.get tags i) in
          let p = A1.get pay i in
          let last_of_block = (i - 1) mod (d + 1) = d in
          if last_of_block then begin
            if tg <> tag_parent then
              raise (Bad (Printf.sprintf "reg %d: expected a parent register" i));
            if i = root + d then begin
              if p <> -1 then
                raise (Bad "root parent register must hold -1")
            end
            else if p < 1 || p >= free then
              raise (Bad (Printf.sprintf "reg %d: parent %d out of range" i p))
          end
          else if tg = tag_child then begin
            if p < 1 || p >= free || (p - 1) mod (d + 1) <> 0 then
              raise
                (Bad (Printf.sprintf "reg %d: child %d is not a block start" i p))
          end
          else if tg = tag_value then begin
            if p < 0 || p >= vlen then
              raise (Bad (Printf.sprintf "reg %d: value index %d out of arena" i p));
            incr values
          end
          else if tg = tag_next then begin
            if p < 0 || p >= klen then
              raise (Bad (Printf.sprintf "reg %d: next slot %d out of arena" i p))
          end
          else if tg <> tag_next_null then
            raise (Bad (Printf.sprintf "reg %d: unknown tag %d" i tg))
        done;
        if !values <> card then
          raise
            (Bad
               (Printf.sprintf "cardinal %d but %d value registers" card !values));
        for i = 0 to (klen * k) - 1 do
          let w = A1.get karena i in
          if w < 0 || w >= n then
            raise (Bad (Printf.sprintf "key arena word %d out of [0,%d)" i n))
        done;
        let varena = Array.make (max 16 vlen) None in
        for i = 0 to vlen - 1 do
          varena.(i) <- Some ()
        done;
        Ok
          {
            n;
            k;
            d;
            h;
            kh = k * h;
            tags;
            pay;
            free;
            card;
            karena;
            klen;
            varena;
            vlen;
          }
      with Bad msg -> err "stor: %s" msg
    end
end
