type fault =
  | Dropped_add
  | Dropped_remove
  | Clear_cell
  | Corrupt_next
  | Redirect_child
  | Break_parent
  | Skew_cardinal
  | Stale_view

let fault_name = function
  | Dropped_add -> "dropped-add"
  | Dropped_remove -> "dropped-remove"
  | Clear_cell -> "clear-cell"
  | Corrupt_next -> "corrupt-next"
  | Redirect_child -> "redirect-child"
  | Break_parent -> "break-parent"
  | Skew_cardinal -> "skew-cardinal"
  | Stale_view -> "stale-view"

let structural_faults =
  [ Clear_cell; Corrupt_next; Redirect_child; Break_parent; Skew_cardinal ]

type 'v t = {
  store : 'v Store.t;
  rng : Random.State.t;
  p_drop : float;
  p_corrupt : float;
  mutable log : (fault * string) list;  (* newest first *)
  mutable n_dropped : int;
  mutable n_corrupted : int;
}

let create ?(p_drop = 0.) ?(p_corrupt = 0.) ~seed store =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Chaos.create: %s outside [0,1]" name)
  in
  prob "p_drop" p_drop;
  prob "p_corrupt" p_corrupt;
  {
    store;
    rng = Random.State.make [| seed; 0x5eed |];
    p_drop;
    p_corrupt;
    log = [];
    n_dropped = 0;
    n_corrupted = 0;
  }

let store c = c.store

let record c f what =
  c.log <- (f, what) :: c.log;
  match f with
  | Dropped_add | Dropped_remove -> c.n_dropped <- c.n_dropped + 1
  | _ -> c.n_corrupted <- c.n_corrupted + 1

(* Pick a random used register whose cell the predicate accepts. *)
let pick_register c ok =
  let top = Store.Fault.registers c.store in
  let candidates = ref [] in
  for i = 1 to top do
    if ok (Store.Fault.cell_kind c.store i) then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | cs ->
      let cs = Array.of_list cs in
      Some cs.(Random.State.int c.rng (Array.length cs))

let inject c f =
  let at apply ok =
    match pick_register c ok with
    | None -> false
    | Some i ->
        let applied = apply c.store i in
        if applied then
          record c f (Printf.sprintf "%s @ R_%d" (fault_name f) i);
        applied
  in
  match f with
  (* behavioral classes: dropped updates occur probabilistically, and a
     stale view lives at the engine layer (a graph that moved on while
     the answering structures did not) — see
     Nd_engine.Inspect.unsafe_inject_stale_view *)
  | Dropped_add | Dropped_remove | Stale_view -> false
  | Clear_cell -> at Store.Fault.clear_register (fun _ -> true)
  | Corrupt_next ->
      at Store.Fault.corrupt_next (function
        | `Next | `Next_null -> true
        | _ -> false)
  | Redirect_child ->
      at Store.Fault.redirect_child (function `Child -> true | _ -> false)
  | Break_parent ->
      at Store.Fault.break_parent (function `Parent -> true | _ -> false)
  | Skew_cardinal ->
      Store.Fault.skew_cardinal c.store 1;
      record c f "cardinal +1";
      true

let flip c p = p > 0. && Random.State.float c.rng 1. < p

let maybe_corrupt c =
  if flip c c.p_corrupt then begin
    let classes = Array.of_list structural_faults in
    (* retry until some class applies; Skew_cardinal always does *)
    let rec go attempts =
      if attempts < 8 then
        if not (inject c classes.(Random.State.int c.rng (Array.length classes)))
        then go (attempts + 1)
    in
    go 0
  end

let add c k v =
  if flip c c.p_drop then
    record c Dropped_add
      (Printf.sprintf "dropped add %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.add c.store k v;
    maybe_corrupt c
  end

let remove c k =
  if flip c c.p_drop then
    record c Dropped_remove
      (Printf.sprintf "dropped remove %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.remove c.store k;
    maybe_corrupt c
  end

let find c k = Store.find c.store k
let mem c k = Store.mem c.store k

let injected c = List.rev c.log
let dropped c = c.n_dropped
let corrupted c = c.n_corrupted

(* ---------------- on-disk fault injection ---------------- *)

module Disk = struct
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let write path s =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)

  let size path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> in_channel_length ic)

  let truncate_at path k =
    let s = read path in
    if k < 0 || k > String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.truncate_at: %d outside [0,%d]" k
           (String.length s));
    write path (String.sub s 0 k)

  let flip_bit path ~byte ~bit =
    let s = read path in
    if byte < 0 || byte >= String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.flip_bit: byte %d outside [0,%d)" byte
           (String.length s));
    if bit < 0 || bit > 7 then
      invalid_arg (Printf.sprintf "Chaos.Disk.flip_bit: bit %d outside 0..7" bit);
    let b = Bytes.of_string s in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    write path (Bytes.to_string b)

  let patch path ~pos p =
    let s = read path in
    if pos < 0 || pos + String.length p > String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.patch: range (%d,%d) overruns %d bytes" pos
           (String.length p) (String.length s));
    let b = Bytes.of_string s in
    Bytes.blit_string p 0 b pos (String.length p);
    write path (Bytes.to_string b)

  let swap_ranges path (o1, l1) (o2, l2) =
    let s = read path in
    let len = String.length s in
    let bad =
      o1 < 0 || l1 < 0 || o2 < 0 || l2 < 0 || o1 + l1 > len || o2 + l2 > len
    in
    if bad then invalid_arg "Chaos.Disk.swap_ranges: range overruns the file";
    (* order the ranges, then refuse overlap *)
    let (a, la), (b, lb) = if o1 <= o2 then ((o1, l1), (o2, l2)) else ((o2, l2), (o1, l1)) in
    if a + la > b then invalid_arg "Chaos.Disk.swap_ranges: overlapping ranges";
    let out =
      String.sub s 0 a
      ^ String.sub s b lb            (* second range, moved first *)
      ^ String.sub s (a + la) (b - (a + la))  (* the gap between them *)
      ^ String.sub s a la            (* first range, moved second *)
      ^ String.sub s (b + lb) (len - (b + lb))
    in
    write path out
end

(* ---------------- socket-level fault injection ---------------- *)

module Net = struct
  type profile = {
    chunk : int;
    delay_ms : int;
    garbage : string option;
    cut_after : int option;
    cut_reply_after : int option;
  }

  let default_profile =
    {
      chunk = max_int;
      delay_ms = 0;
      garbage = None;
      cut_after = None;
      cut_reply_after = None;
    }

  type t = {
    listen_path : string;
    sock : Unix.file_descr;
    stop : bool ref;
    reg : Mutex.t;
    mutable live : Unix.file_descr list;  (* both sides of live pairs *)
    mutable threads : Thread.t list;
    mutable accepted : int;
    accept_thread : Thread.t;
  }

  let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let shutdown_noerr fd =
    try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

  (* Forward [src] → [dst] applying the per-direction fault knobs.
     [budget] is the cut_* byte allowance (None = unbounded); when it
     runs out, both sides are hard-closed mid-stream.  A send-side
     failure (the victim hung up) just ends the pump: the proxy's job
     is delivering faults, not surviving them. *)
  let pump ?(chunk = max_int) ?(delay_ms = 0) ?budget ~src ~dst ~kill () =
    let chunk = max 1 chunk in
    let buf = Bytes.create 4096 in
    let budget = ref budget in
    let rec write_all off len =
      if len > 0 then begin
        if delay_ms > 0 then Thread.delay (float delay_ms /. 1000.);
        let n = min len chunk in
        let n =
          match !budget with
          | None -> n
          | Some b ->
              if b <= 0 then raise Exit
              else begin
                budget := Some (b - min n b);
                min n b
              end
        in
        let written = Unix.write dst buf off n in
        (match !budget with Some 0 -> raise Exit | _ -> ());
        write_all (off + written) (len - written)
      end
    in
    let rec loop () =
      match Unix.read src buf 0 (Bytes.length buf) with
      | 0 | (exception Unix.Unix_error _) | (exception Sys_error _) ->
          (* EOF: half-close toward the receiver so line readers see it *)
          (try Unix.shutdown dst Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ())
      | n -> (
          match write_all 0 n with
          | () -> loop ()
          | exception Exit -> kill ()  (* cut_* budget exhausted *)
          | exception (Unix.Unix_error _ | Sys_error _) -> ())
    in
    loop ()

  let start ?(backlog = 16) profile ~listen ~upstream =
    if profile.chunk < 1 then invalid_arg "Chaos.Net.start: chunk must be >= 1";
    if profile.delay_ms < 0 then
      invalid_arg "Chaos.Net.start: delay_ms must be >= 0";
    (try Unix.unlink listen with Unix.Unix_error _ | Sys_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind sock (Unix.ADDR_UNIX listen);
       Unix.listen sock backlog
     with e ->
       close_noerr sock;
       raise e);
    let stop = ref false in
    let reg = Mutex.create () in
    let t_ref = ref None in
    let conn t cfd =
      match
        let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect up (Unix.ADDR_UNIX upstream)
         with e ->
           close_noerr up;
           raise e);
        up
      with
      | exception (Unix.Unix_error _ | Sys_error _) -> close_noerr cfd
      | up ->
          Mutex.protect reg (fun () -> t.live <- cfd :: up :: t.live);
          let kill () =
            shutdown_noerr cfd;
            shutdown_noerr up
          in
          (match profile.garbage with
          | Some g when g <> "" -> (
              try
                ignore (Unix.write_substring up g 0 (String.length g))
              with Unix.Unix_error _ -> ())
          | _ -> ());
          let down =
            Thread.create
              (fun () ->
                pump ?budget:profile.cut_reply_after ~src:up ~dst:cfd ~kill ())
              ()
          in
          pump ~chunk:profile.chunk ~delay_ms:profile.delay_ms
            ?budget:profile.cut_after ~src:cfd ~dst:up ~kill ();
          Thread.join down;
          Mutex.protect reg (fun () ->
              t.live <- List.filter (fun fd -> fd != cfd && fd != up) t.live);
          close_noerr cfd;
          close_noerr up
    in
    let rec accept_loop () =
      if not !stop then
        match Unix.select [ sock ] [] [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
        | [], _, _ -> accept_loop ()
        | _ ->
            (match Unix.accept sock with
            | exception Unix.Unix_error _ -> ()
            | cfd, _ -> (
                match !t_ref with
                | None -> close_noerr cfd
                | Some t ->
                    t.accepted <- t.accepted + 1;
                    let th = Thread.create (fun () -> conn t cfd) () in
                    Mutex.protect reg (fun () ->
                        t.threads <- th :: t.threads)));
            accept_loop ()
    in
    let accept_thread = Thread.create accept_loop () in
    let t =
      {
        listen_path = listen;
        sock;
        stop;
        reg;
        live = [];
        threads = [];
        accepted = 0;
        accept_thread;
      }
    in
    t_ref := Some t;
    t

  let stop t =
    if not !(t.stop) then begin
      t.stop := true;
      Thread.join t.accept_thread;
      close_noerr t.sock;
      List.iter shutdown_noerr (Mutex.protect t.reg (fun () -> t.live));
      List.iter Thread.join (Mutex.protect t.reg (fun () -> t.threads));
      try Unix.unlink t.listen_path with Unix.Unix_error _ | Sys_error _ -> ()
    end

  let connections t = t.accepted
end
