type fault =
  | Dropped_add
  | Dropped_remove
  | Clear_cell
  | Corrupt_next
  | Redirect_child
  | Break_parent
  | Skew_cardinal
  | Stale_view

let fault_name = function
  | Dropped_add -> "dropped-add"
  | Dropped_remove -> "dropped-remove"
  | Clear_cell -> "clear-cell"
  | Corrupt_next -> "corrupt-next"
  | Redirect_child -> "redirect-child"
  | Break_parent -> "break-parent"
  | Skew_cardinal -> "skew-cardinal"
  | Stale_view -> "stale-view"

let structural_faults =
  [ Clear_cell; Corrupt_next; Redirect_child; Break_parent; Skew_cardinal ]

type 'v t = {
  store : 'v Store.t;
  rng : Random.State.t;
  p_drop : float;
  p_corrupt : float;
  mutable log : (fault * string) list;  (* newest first *)
  mutable n_dropped : int;
  mutable n_corrupted : int;
}

let create ?(p_drop = 0.) ?(p_corrupt = 0.) ~seed store =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Chaos.create: %s outside [0,1]" name)
  in
  prob "p_drop" p_drop;
  prob "p_corrupt" p_corrupt;
  {
    store;
    rng = Random.State.make [| seed; 0x5eed |];
    p_drop;
    p_corrupt;
    log = [];
    n_dropped = 0;
    n_corrupted = 0;
  }

let store c = c.store

let record c f what =
  c.log <- (f, what) :: c.log;
  match f with
  | Dropped_add | Dropped_remove -> c.n_dropped <- c.n_dropped + 1
  | _ -> c.n_corrupted <- c.n_corrupted + 1

(* Pick a random used register whose cell the predicate accepts. *)
let pick_register c ok =
  let top = Store.Fault.registers c.store in
  let candidates = ref [] in
  for i = 1 to top do
    if ok (Store.Fault.cell_kind c.store i) then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | cs ->
      let cs = Array.of_list cs in
      Some cs.(Random.State.int c.rng (Array.length cs))

let inject c f =
  let at apply ok =
    match pick_register c ok with
    | None -> false
    | Some i ->
        let applied = apply c.store i in
        if applied then
          record c f (Printf.sprintf "%s @ R_%d" (fault_name f) i);
        applied
  in
  match f with
  (* behavioral classes: dropped updates occur probabilistically, and a
     stale view lives at the engine layer (a graph that moved on while
     the answering structures did not) — see
     Nd_engine.Inspect.unsafe_inject_stale_view *)
  | Dropped_add | Dropped_remove | Stale_view -> false
  | Clear_cell -> at Store.Fault.clear_register (fun _ -> true)
  | Corrupt_next ->
      at Store.Fault.corrupt_next (function
        | `Next | `Next_null -> true
        | _ -> false)
  | Redirect_child ->
      at Store.Fault.redirect_child (function `Child -> true | _ -> false)
  | Break_parent ->
      at Store.Fault.break_parent (function `Parent -> true | _ -> false)
  | Skew_cardinal ->
      Store.Fault.skew_cardinal c.store 1;
      record c f "cardinal +1";
      true

let flip c p = p > 0. && Random.State.float c.rng 1. < p

let maybe_corrupt c =
  if flip c c.p_corrupt then begin
    let classes = Array.of_list structural_faults in
    (* retry until some class applies; Skew_cardinal always does *)
    let rec go attempts =
      if attempts < 8 then
        if not (inject c classes.(Random.State.int c.rng (Array.length classes)))
        then go (attempts + 1)
    in
    go 0
  end

let add c k v =
  if flip c c.p_drop then
    record c Dropped_add
      (Printf.sprintf "dropped add %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.add c.store k v;
    maybe_corrupt c
  end

let remove c k =
  if flip c c.p_drop then
    record c Dropped_remove
      (Printf.sprintf "dropped remove %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.remove c.store k;
    maybe_corrupt c
  end

let find c k = Store.find c.store k
let mem c k = Store.mem c.store k

let injected c = List.rev c.log
let dropped c = c.n_dropped
let corrupted c = c.n_corrupted

(* ---------------- on-disk fault injection ---------------- *)

module Disk = struct
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  let write path s =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)

  let size path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> in_channel_length ic)

  let truncate_at path k =
    let s = read path in
    if k < 0 || k > String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.truncate_at: %d outside [0,%d]" k
           (String.length s));
    write path (String.sub s 0 k)

  let flip_bit path ~byte ~bit =
    let s = read path in
    if byte < 0 || byte >= String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.flip_bit: byte %d outside [0,%d)" byte
           (String.length s));
    if bit < 0 || bit > 7 then
      invalid_arg (Printf.sprintf "Chaos.Disk.flip_bit: bit %d outside 0..7" bit);
    let b = Bytes.of_string s in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
    write path (Bytes.to_string b)

  let patch path ~pos p =
    let s = read path in
    if pos < 0 || pos + String.length p > String.length s then
      invalid_arg
        (Printf.sprintf "Chaos.Disk.patch: range (%d,%d) overruns %d bytes" pos
           (String.length p) (String.length s));
    let b = Bytes.of_string s in
    Bytes.blit_string p 0 b pos (String.length p);
    write path (Bytes.to_string b)

  let swap_ranges path (o1, l1) (o2, l2) =
    let s = read path in
    let len = String.length s in
    let bad =
      o1 < 0 || l1 < 0 || o2 < 0 || l2 < 0 || o1 + l1 > len || o2 + l2 > len
    in
    if bad then invalid_arg "Chaos.Disk.swap_ranges: range overruns the file";
    (* order the ranges, then refuse overlap *)
    let (a, la), (b, lb) = if o1 <= o2 then ((o1, l1), (o2, l2)) else ((o2, l2), (o1, l1)) in
    if a + la > b then invalid_arg "Chaos.Disk.swap_ranges: overlapping ranges";
    let out =
      String.sub s 0 a
      ^ String.sub s b lb            (* second range, moved first *)
      ^ String.sub s (a + la) (b - (a + la))  (* the gap between them *)
      ^ String.sub s a la            (* first range, moved second *)
      ^ String.sub s (b + lb) (len - (b + lb))
    in
    write path out
end
