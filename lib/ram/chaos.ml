type fault =
  | Dropped_add
  | Dropped_remove
  | Clear_cell
  | Corrupt_next
  | Redirect_child
  | Break_parent
  | Skew_cardinal

let fault_name = function
  | Dropped_add -> "dropped-add"
  | Dropped_remove -> "dropped-remove"
  | Clear_cell -> "clear-cell"
  | Corrupt_next -> "corrupt-next"
  | Redirect_child -> "redirect-child"
  | Break_parent -> "break-parent"
  | Skew_cardinal -> "skew-cardinal"

let structural_faults =
  [ Clear_cell; Corrupt_next; Redirect_child; Break_parent; Skew_cardinal ]

type 'v t = {
  store : 'v Store.t;
  rng : Random.State.t;
  p_drop : float;
  p_corrupt : float;
  mutable log : (fault * string) list;  (* newest first *)
  mutable n_dropped : int;
  mutable n_corrupted : int;
}

let create ?(p_drop = 0.) ?(p_corrupt = 0.) ~seed store =
  let prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Chaos.create: %s outside [0,1]" name)
  in
  prob "p_drop" p_drop;
  prob "p_corrupt" p_corrupt;
  {
    store;
    rng = Random.State.make [| seed; 0x5eed |];
    p_drop;
    p_corrupt;
    log = [];
    n_dropped = 0;
    n_corrupted = 0;
  }

let store c = c.store

let record c f what =
  c.log <- (f, what) :: c.log;
  match f with
  | Dropped_add | Dropped_remove -> c.n_dropped <- c.n_dropped + 1
  | _ -> c.n_corrupted <- c.n_corrupted + 1

(* Pick a random used register whose cell the predicate accepts. *)
let pick_register c ok =
  let top = Store.Fault.registers c.store in
  let candidates = ref [] in
  for i = 1 to top do
    if ok (Store.Fault.cell_kind c.store i) then candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | cs ->
      let cs = Array.of_list cs in
      Some cs.(Random.State.int c.rng (Array.length cs))

let inject c f =
  let at apply ok =
    match pick_register c ok with
    | None -> false
    | Some i ->
        let applied = apply c.store i in
        if applied then
          record c f (Printf.sprintf "%s @ R_%d" (fault_name f) i);
        applied
  in
  match f with
  | Dropped_add | Dropped_remove -> false
  | Clear_cell -> at Store.Fault.clear_register (fun _ -> true)
  | Corrupt_next ->
      at Store.Fault.corrupt_next (function
        | `Next | `Next_null -> true
        | _ -> false)
  | Redirect_child ->
      at Store.Fault.redirect_child (function `Child -> true | _ -> false)
  | Break_parent ->
      at Store.Fault.break_parent (function `Parent -> true | _ -> false)
  | Skew_cardinal ->
      Store.Fault.skew_cardinal c.store 1;
      record c f "cardinal +1";
      true

let flip c p = p > 0. && Random.State.float c.rng 1. < p

let maybe_corrupt c =
  if flip c c.p_corrupt then begin
    let classes = Array.of_list structural_faults in
    (* retry until some class applies; Skew_cardinal always does *)
    let rec go attempts =
      if attempts < 8 then
        if not (inject c classes.(Random.State.int c.rng (Array.length classes)))
        then go (attempts + 1)
    in
    go 0
  end

let add c k v =
  if flip c c.p_drop then
    record c Dropped_add
      (Printf.sprintf "dropped add %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.add c.store k v;
    maybe_corrupt c
  end

let remove c k =
  if flip c c.p_drop then
    record c Dropped_remove
      (Printf.sprintf "dropped remove %s" (Nd_util.Tuple.to_string k))
  else begin
    Store.remove c.store k;
    maybe_corrupt c
  end

let find c k = Store.find c.store k
let mem c k = Store.mem c.store k

let injected c = List.rev c.log
let dropped c = c.n_dropped
let corrupted c = c.n_corrupted
