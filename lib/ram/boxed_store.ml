(* The original boxed representation of the Theorem 3.1 store, kept
   verbatim as (a) the differential oracle for the probe-discipline
   tests — it registers the same Metrics counters/histograms by name as
   the flat [Store], so running the same operation sequence against
   both must produce bit-identical counter values — and (b) the
   baseline for the ST bench row (flat-vs-boxed wall clock).  Not used
   on any production path. *)

open Nd_util

type key = Tuple.t

type 'v lookup = Value of 'v | Next of key | Null

(* A register holds a pair (δ, r) with δ ∈ {-1,0,1} (Section 3.1).  We
   model the pair as a variant; the correspondence is:
     CChild l    = (1, l)      — inner child, node starts at register l
     CValue v    = (1, v)      — leaf of a stored key, image v
     CNext b     = (0, b)      — no key below; b = smallest key beyond
     CNextNull   = (0, Null)
     CParent q   = (-1, q)     — last register of a node; q = register in
                                 the parent pointing at this node (-1: root)
     CFree       — register beyond R_0 / freed (never reachable) *)
type 'v cell =
  | CFree
  | CChild of int
  | CValue of 'v
  | CNext of key
  | CNextNull
  | CParent of int

type 'v t = {
  n : int;
  k : int;
  d : int;
  h : int;
  kh : int;
  mutable regs : 'v cell array;
  mutable free : int; (* the paper's R_0: next unused register *)
  mutable card : int;
}

let root = 1

(* Cost-model probes (Theorem 3.1 is a statement about register
   touches): every register read/write on the operational paths goes
   through [rd]/[wr], so [store.reg_reads]/[store.reg_writes] count
   exactly the RAM-model work of lookups and updates.  The per-call
   histograms witness the bounds: lookup touches are a function of
   (k, ε) only, update touches are O(n^ε). *)
let m_reads = Metrics.counter ~ops:true "store.reg_reads"
let m_writes = Metrics.counter ~ops:true "store.reg_writes"
let m_lookups = Metrics.counter "store.lookups"
let m_updates = Metrics.counter "store.updates"
let h_lookup = Metrics.hist "store.lookup_touches"
let h_update = Metrics.hist "store.update_touches"

let[@inline] rd t i =
  Metrics.incr m_reads;
  t.regs.(i)

let[@inline] wr t i c =
  Metrics.incr m_writes;
  t.regs.(i) <- c

let touches () = Metrics.value m_reads + Metrics.value m_writes

let create ~n ~k ~epsilon =
  if n < 1 then invalid_arg "Store.create: n must be >= 1";
  if k < 1 then invalid_arg "Store.create: k must be >= 1";
  if epsilon <= 0. then invalid_arg "Store.create: epsilon must be > 0";
  let d = max 1 (int_of_float (ceil (float_of_int n ** epsilon))) in
  let h = max 1 (int_of_float (ceil (1. /. epsilon))) in
  (* Guard against float rounding: we need d^h >= n so every coordinate
     has a base-d decomposition of length h. *)
  let d =
    let rec fits d =
      let rec pow acc i = if i = 0 then acc >= n else pow (acc * d) (i - 1) in
      if pow 1 h then d else fits (d + 1)
    in
    fits d
  in
  let t =
    {
      n;
      k;
      d;
      h;
      kh = k * h;
      regs = Array.make (max 16 (2 * (d + 2))) CFree;
      free = 1;
      card = 0;
    }
  in
  (* Algorithm 3 (Init): build the root, everything pointing to Null. *)
  for j = 0 to d - 1 do
    wr t (root + j) CNextNull
  done;
  wr t (root + d) (CParent (-1));
  t.free <- root + d + 1;
  t

let n t = t.n
let arity t = t.k
let degree t = t.d
let depth t = t.kh
let cardinal t = t.card
let space t = t.free - 1

(* Algorithm 1 (Decomposition): base-d digits, most significant first. *)
let digits t (a : key) : int array =
  if Array.length a <> t.k then invalid_arg "Store: key arity mismatch";
  let s = Array.make t.kh 0 in
  for i = 0 to t.k - 1 do
    if a.(i) < 0 || a.(i) >= t.n then invalid_arg "Store: key out of range";
    let x = ref a.(i) in
    for j = t.h - 1 downto 0 do
      s.((i * t.h) + j) <- !x mod t.d;
      x := !x / t.d
    done
  done;
  s

let key_of_digits t (s : int array) : key =
  let a = Array.make t.k 0 in
  for i = 0 to t.k - 1 do
    let v = ref 0 in
    for j = 0 to t.h - 1 do
      v := (!v * t.d) + s.((i * t.h) + j)
    done;
    a.(i) <- !v
  done;
  a

(* Algorithm 2 (Access). *)
let find_raw t a =
  let s = digits t a in
  let rec go l i =
    match rd t (l + s.(i)) with
    | CChild l' -> go l' (i + 1)
    | CValue v -> Value v
    | CNext b -> Next (Array.copy b)
    | CNextNull -> Null
    | CFree | CParent _ -> assert false
  in
  go root 0

let find t a =
  Budget.tick ();
  if Metrics.enabled () then begin
    Metrics.incr m_lookups;
    let t0 = touches () in
    let r = find_raw t a in
    Metrics.observe h_lookup (touches () - t0);
    r
  end
  else find_raw t a

let get_opt t a = match find t a with Value v -> Some v | Next _ | Null -> None
let mem t a = match find t a with Value _ -> true | Next _ | Null -> false

let succ_geq t a =
  match find t a with
  | Value v -> Some (Array.copy a, v)
  | Next b -> (
      match find t b with
      | Value v -> Some (b, v)
      | Next _ | Null -> assert false)
  | Null -> None

let succ_gt t a =
  match Tuple.succ ~n:t.n a with None -> None | Some a1 -> succ_geq t a1

let min_key t = succ_geq t (Tuple.min t.k)

let nonempty_cell = function CChild _ | CValue _ -> true | _ -> false

(* Largest key strictly below [a], by a single downward walk that records
   the deepest branch point to the left of [a]'s search path. *)
let pred_lt t a =
  let s = digits t a in
  let best = ref None in
  let rec walk l i =
    let j = ref (s.(i) - 1) in
    let found = ref (-1) in
    while !found < 0 && !j >= 0 do
      if nonempty_cell (rd t (l + !j)) then found := !j;
      decr j
    done;
    if !found >= 0 then best := Some (l, !found, i);
    if i < t.kh - 1 then
      match rd t (l + s.(i)) with CChild l' -> walk l' (i + 1) | _ -> ()
  in
  walk root 0;
  match !best with
  | None -> None
  | Some (l, j, i) ->
      let prefix = Array.make t.kh 0 in
      Array.blit s 0 prefix 0 i;
      prefix.(i) <- j;
      (* descend to the maximal key below (l, j) *)
      let rec desc l i =
        if i < t.kh then begin
          let j = ref (t.d - 1) in
          while not (nonempty_cell (rd t (l + !j))) do
            decr j
          done;
          prefix.(i) <- !j;
          match rd t (l + !j) with
          | CChild l' -> desc l' (i + 1)
          | CValue _ -> ()
          | _ -> assert false
        end
      in
      (match rd t (l + j) with
      | CValue _ -> ()
      | CChild l' -> desc l' (i + 1)
      | _ -> assert false);
      Some (key_of_digits t prefix)

(* --- Clean (Algorithms 6-9): re-point the (0,·) cells lying strictly
   between two search paths. --- *)

let set_empty t reg repl =
  match rd t reg with
  | CNext _ | CNextNull -> wr t reg repl
  | CChild _ | CValue _ | CFree | CParent _ ->
      assert false (* Clean only ever visits empty slots; see Section 7.3 *)

(* Fill_Right: node at depth i on the left path; repaint everything to the
   right of the path, from this depth down. *)
let rec fill_right t node i sL repl =
  for j = sL.(i) + 1 to t.d - 1 do
    set_empty t (node + j) repl
  done;
  if i < t.kh - 1 then
    match rd t (node + sL.(i)) with
    | CChild l' -> fill_right t l' (i + 1) sL repl
    | _ -> assert false

(* Fill_Left: symmetric, along the right path. *)
let rec fill_left t node i sR repl =
  for j = 0 to sR.(i) - 1 do
    set_empty t (node + j) repl
  done;
  if i < t.kh - 1 then
    match rd t (node + sR.(i)) with
    | CChild l' -> fill_left t l' (i + 1) sR repl
    | _ -> assert false

(* Clean(left, right): [None] stands for -∞ / +∞. *)
let fill_between t left right repl =
  match (left, right) with
  | None, None ->
      (* the domain is empty: only the root remains *)
      for j = 0 to t.d - 1 do
        set_empty t (root + j) repl
      done
  | None, Some sR -> fill_left t root 0 sR repl
  | Some sL, None -> fill_right t root 0 sL repl
  | Some sL, Some sR ->
      let rec go node i =
        if sL.(i) = sR.(i) then
          match rd t (node + sL.(i)) with
          | CChild l' -> go l' (i + 1)
          | _ -> assert false (* distinct keys diverge before the leaves *)
        else begin
          for j = sL.(i) + 1 to sR.(i) - 1 do
            set_empty t (node + j) repl
          done;
          if i < t.kh - 1 then begin
            (match rd t (node + sL.(i)) with
            | CChild l' -> fill_right t l' (i + 1) sL repl
            | _ -> assert false);
            match rd t (node + sR.(i)) with
            | CChild l' -> fill_left t l' (i + 1) sR repl
            | _ -> assert false
          end
        end
      in
      go root 0

(* --- Insertion (Algorithms 4-5). --- *)

let grow_to t cap =
  if cap > Array.length t.regs then begin
    let cap' = max cap (2 * Array.length t.regs) in
    let regs' = Array.make cap' CFree in
    Array.blit t.regs 0 regs' 0 t.free;
    t.regs <- regs'
  end

(* Allocate a node of d+1 registers at R_0; children provisionally point
   to Null (they are repainted by the Clean passes). *)
let alloc_node t parent_reg =
  grow_to t (t.free + t.d + 1);
  let l = t.free in
  for j = 0 to t.d - 1 do
    wr t (l + j) CNextNull
  done;
  wr t (l + t.d) (CParent parent_reg);
  t.free <- t.free + t.d + 1;
  l

(* updates use [find_raw] internally: their register touches belong to
   the surrounding update window, not to the lookup histogram *)
let add_raw t a v =
  match find_raw t a with
  | Value _ ->
      (* already present: overwrite the image in place *)
      let s = digits t a in
      let rec go l i =
        match rd t (l + s.(i)) with
        | CChild l' -> go l' (i + 1)
        | CValue _ -> wr t (l + s.(i)) (CValue v)
        | _ -> assert false
      in
      go root 0
  | not_found ->
      let next = match not_found with Next b -> Some b | _ -> None in
      let prev = pred_lt t a in
      let a = Array.copy a in
      let s = digits t a in
      (* Insert (Algorithm 5): create the search path top-down. *)
      let rec go l i =
        if i = t.kh - 1 then wr t (l + s.(i)) (CValue v)
        else
          match rd t (l + s.(i)) with
          | CChild l' -> go l' (i + 1)
          | CNext _ | CNextNull ->
              let l' = alloc_node t (l + s.(i)) in
              wr t (l + s.(i)) (CChild l');
              go l' (i + 1)
          | _ -> assert false
      in
      go root 0;
      (* Clean(ā<, ā) and Clean(ā, ā>). *)
      fill_between t (Option.map (digits t) prev) (Some s) (CNext a);
      fill_between t (Some s) (Option.map (digits t) next)
        (match next with Some b -> CNext b | None -> CNextNull);
      t.card <- t.card + 1

let add t a v =
  Budget.tick ();
  Nd_trace.with_span "store.add" @@ fun () ->
  if Metrics.enabled () then begin
    Metrics.incr m_updates;
    let t0 = touches () in
    add_raw t a v;
    Metrics.observe h_update (touches () - t0)
  end
  else add_raw t a v

(* --- Removal (Algorithms 10-12). --- *)

let node_is_empty t node =
  let empty = ref true in
  for j = 0 to t.d - 1 do
    if nonempty_cell (rd t (node + j)) then empty := false
  done;
  !empty

(* Free the block of [node]: move the last allocated block into its place
   (Algorithm 12), fixing (a) the register of the parent of the moved
   block, (b) — a step the paper's pseudo-code omits — the parent
   back-pointers of the moved block's children, and (c) the recorded
   search path when the moved block lies on it. *)
let free_node t node path =
  let src = t.free - (t.d + 1) in
  if src <> node then begin
    Array.blit t.regs src t.regs node (t.d + 1);
    Metrics.add m_reads (t.d + 1);
    Metrics.add m_writes (t.d + 1);
    (match rd t (node + t.d) with
    | CParent q -> wr t q (CChild node)
    | _ -> assert false);
    for j = 0 to t.d - 1 do
      match rd t (node + j) with
      | CChild c -> wr t (c + t.d) (CParent (node + j))
      | _ -> ()
    done;
    for i = 0 to Array.length path - 1 do
      if path.(i) = src then path.(i) <- node
    done
  end;
  Array.fill t.regs (t.free - (t.d + 1)) (t.d + 1) CFree;
  t.free <- t.free - (t.d + 1)

let remove_raw t a =
  match find_raw t a with
  | Next _ | Null -> ()
  | Value _ ->
      let prev = pred_lt t a in
      let next =
        match Tuple.succ ~n:t.n a with
        | None -> None
        | Some a1 -> (
            match find_raw t a1 with
            | Value _ -> Some a1
            | Next b -> Some b
            | Null -> None)
      in
      let s = digits t a in
      let path = Array.make t.kh 0 in
      let l = ref root in
      for i = 0 to t.kh - 1 do
        path.(i) <- !l;
        if i < t.kh - 1 then
          match rd t (!l + s.(i)) with
          | CChild l' -> l := l'
          | _ -> assert false
      done;
      let placeholder =
        match next with Some b -> CNext b | None -> CNextNull
      in
      wr t (path.(t.kh - 1) + s.(t.kh - 1)) placeholder;
      (* Cut: free now-empty nodes bottom-up (never the root). *)
      let rec cut i =
        if i >= 1 && node_is_empty t path.(i) then begin
          let parent_reg =
            match rd t (path.(i) + t.d) with
            | CParent q -> q
            | _ -> assert false
          in
          wr t parent_reg placeholder;
          free_node t path.(i) path;
          cut (i - 1)
        end
      in
      cut (t.kh - 1);
      fill_between t
        (Option.map (digits t) prev)
        (Option.map (digits t) next)
        placeholder;
      t.card <- t.card - 1

let remove t a =
  Budget.tick ();
  Nd_trace.with_span "store.remove" @@ fun () ->
  if Metrics.enabled () then begin
    Metrics.incr m_updates;
    let t0 = touches () in
    remove_raw t a;
    Metrics.observe h_update (touches () - t0)
  end
  else remove_raw t a

let iter f t =
  let rec go = function
    | None -> ()
    | Some (key, v) ->
        f key v;
        go (succ_gt t key)
  in
  go (min_key t)

let to_list t =
  let acc = ref [] in
  iter (fun k v -> acc := (k, v) :: !acc) t;
  List.rev !acc

let canonicalize t =
  (* BFS over the trie, assigning new block positions in visit order. *)
  let order = Queue.create () in
  let bfs = Queue.create () in
  Queue.push root bfs;
  let olds = ref [] in
  while not (Queue.is_empty bfs) do
    let node = Queue.pop bfs in
    olds := node :: !olds;
    Queue.push node order;
    for j = 0 to t.d - 1 do
      match t.regs.(node + j) with
      | CChild l -> Queue.push l bfs
      | _ -> ()
    done
  done;
  let old_nodes = Array.of_list (List.rev !olds) in
  let new_of = Hashtbl.create 64 in
  Array.iteri
    (fun idx old -> Hashtbl.replace new_of old (1 + (idx * (t.d + 1))))
    old_nodes;
  let free = 1 + (Array.length old_nodes * (t.d + 1)) in
  let regs = Array.make (max 16 free) CFree in
  Array.iter
    (fun old ->
      let nw = Hashtbl.find new_of old in
      for j = 0 to t.d - 1 do
        regs.(nw + j) <-
          (match t.regs.(old + j) with
          | CChild l -> CChild (Hashtbl.find new_of l)
          | c -> c)
      done;
      regs.(nw + t.d) <-
        (match t.regs.(old + t.d) with
        | CParent -1 -> CParent (-1)
        | CParent q ->
            (* Blocks are always allocated in units of d+1 starting at
               register 1, so the block containing q is recoverable
               arithmetically. *)
            let parent_old = 1 + ((q - 1) / (t.d + 1) * (t.d + 1)) in
            CParent (Hashtbl.find new_of parent_old + (q - parent_old))
        | _ -> assert false))
    old_nodes;
  { t with regs; free }

let dump ~pp_value t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "R_0: %d (next free register)\n" t.free);
  for i = 1 to t.free - 1 do
    let line =
      match t.regs.(i) with
      | CChild l -> Printf.sprintf "(1, %d)" l
      | CValue v -> Format.asprintf "(1, %a)" pp_value v
      | CNext b -> Printf.sprintf "(0, %s)" (Tuple.to_string b)
      | CNextNull -> "(0, Null)"
      | CParent -1 -> "(-1, Null)"
      | CParent q -> Printf.sprintf "(-1, %d)" q
      | CFree -> "free"
    in
    Buffer.add_string buf (Printf.sprintf "R_%d: %s\n" i line)
  done;
  Buffer.contents buf

(* --- Internal validation, used heavily by the test-suite. --- *)

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    (* collect reachable nodes and keys by DFS *)
    let nodes = ref [] in
    let keys = ref [] in
    let prefix = Array.make t.kh 0 in
    let rec dfs node depth pointed_from =
      if node < 1 || node + t.d >= t.free then
        raise (Bad (Printf.sprintf "node %d out of bounds (free=%d)" node t.free));
      nodes := node :: !nodes;
      (match t.regs.(node + t.d) with
      | CParent q when q = pointed_from -> ()
      | CParent q ->
          raise
            (Bad
               (Printf.sprintf "node %d: parent register says %d, expected %d"
                  node q pointed_from))
      | _ -> raise (Bad (Printf.sprintf "node %d: missing parent register" node)));
      for j = 0 to t.d - 1 do
        prefix.(depth) <- j;
        match t.regs.(node + j) with
        | CChild l ->
            if depth = t.kh - 1 then
              raise (Bad (Printf.sprintf "reg %d: child at leaf depth" (node + j)));
            dfs l (depth + 1) (node + j)
        | CValue _ ->
            if depth <> t.kh - 1 then
              raise (Bad (Printf.sprintf "reg %d: value above leaf depth" (node + j)));
            keys := key_of_digits t prefix :: !keys
        | CNext _ | CNextNull -> ()
        | CFree | CParent _ ->
            raise (Bad (Printf.sprintf "reg %d: unexpected cell" (node + j)))
      done
    in
    dfs root 0 (-1);
    let keys = List.rev !keys in
    if List.length keys <> t.card then
      raise (Bad (Printf.sprintf "cardinal: stored %d, found %d" t.card
                    (List.length keys)));
    let sorted = List.sort Tuple.compare keys in
    if sorted <> keys then raise (Bad "keys not discovered in increasing order");
    (* space accounting: every register in [1, free) belongs to a node *)
    let nnodes = List.length !nodes in
    if t.free <> 1 + (nnodes * (t.d + 1)) then
      raise
        (Bad (Printf.sprintf "space leak: free=%d, %d nodes of size %d" t.free
                nnodes (t.d + 1)));
    (* no all-empty non-root node *)
    List.iter
      (fun node ->
        if node <> root && node_is_empty t node then
          raise (Bad (Printf.sprintf "node %d is empty but was not cut" node)))
      !nodes;
    (* every (0,·) cell points to the smallest key beyond its prefix *)
    let key_digit_list = List.map (fun k -> (digits t k, k)) sorted in
    let prefix_gt p plen dg =
      (* digits dg exceed prefix p of length plen *)
      let rec go i =
        if i = plen then false
        else if dg.(i) > p.(i) then true
        else if dg.(i) < p.(i) then false
        else go (i + 1)
      in
      go 0
    in
    let rec dfs2 node depth =
      for j = 0 to t.d - 1 do
        prefix.(depth) <- j;
        match t.regs.(node + j) with
        | CChild l -> dfs2 l (depth + 1)
        | CNext b ->
            let expected =
              List.find_opt
                (fun (dg, _) -> prefix_gt prefix (depth + 1) dg)
                key_digit_list
            in
            (match expected with
            | Some (_, k) when Tuple.equal k b -> ()
            | Some (_, k) ->
                raise
                  (Bad
                     (Printf.sprintf "reg %d: next says %s, expected %s"
                        (node + j) (Tuple.to_string b) (Tuple.to_string k)))
            | None ->
                raise
                  (Bad
                     (Printf.sprintf "reg %d: next says %s, expected Null"
                        (node + j) (Tuple.to_string b))))
        | CNextNull ->
            if
              List.exists
                (fun (dg, _) -> prefix_gt prefix (depth + 1) dg)
                key_digit_list
            then
              raise
                (Bad (Printf.sprintf "reg %d: says Null but a successor exists"
                        (node + j)))
        | _ -> ()
      done
    in
    dfs2 root 0;
    Ok ()
  with Bad msg -> err "%s" msg

(* The operational half of validation: walking the structure through
   its own successor pointers must visit exactly the stored keys in
   strictly increasing order.  Run only after [check_invariants]
   passed, so the walk cannot hit malformed cells; the step bound
   still guards against pointer cycles. *)
let check_successor_walk t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec walk prev seen cur =
    if seen > t.card then err "successor walk visits more keys than stored"
    else
      match cur with
      | None ->
          if seen = t.card then Ok ()
          else err "successor walk found %d keys, cardinal says %d" seen t.card
      | Some (key, _) -> (
          match prev with
          | Some p when Tuple.compare p key >= 0 ->
              err "successor walk not strictly increasing at %s"
                (Tuple.to_string key)
          | _ -> walk (Some key) (seen + 1) (succ_gt t key))
  in
  walk None 0 (min_key t)

let validate t =
  match check_invariants t with
  | Error _ as e -> e
  | Ok () -> check_successor_walk t

(* --- Fault injection hooks (Chaos harness; see the .mli warning). --- *)

module Fault = struct
  let registers t = space t

  let in_range t i = i >= 1 && i < t.free

  let cell_kind t i =
    if not (in_range t i) then `Free
    else
      match t.regs.(i) with
      | CFree -> `Free
      | CChild _ -> `Child
      | CValue _ -> `Value
      | CNext _ -> `Next
      | CNextNull -> `Next_null
      | CParent _ -> `Parent

  let clear_register t i =
    in_range t i
    && begin
         t.regs.(i) <- CFree;
         true
       end

  let corrupt_next t i =
    in_range t i
    &&
    match t.regs.(i) with
    | CNext b ->
        let wrong =
          if Tuple.compare b (Tuple.max ~n:t.n t.k) = 0 then Tuple.min t.k
          else Tuple.max ~n:t.n t.k
        in
        t.regs.(i) <- CNext wrong;
        true
    | CNextNull ->
        (* phantom successor where the structure promised none *)
        t.regs.(i) <- CNext (Tuple.max ~n:t.n t.k);
        true
    | _ -> false

  let redirect_child t i =
    in_range t i
    &&
    match t.regs.(i) with
    | CChild _ ->
        t.regs.(i) <- CChild root;
        true
    | _ -> false

  let break_parent t i =
    in_range t i
    &&
    match t.regs.(i) with
    | CParent q ->
        t.regs.(i) <- CParent (q + 1);
        true
    | _ -> false

  let skew_cardinal t delta = t.card <- t.card + delta
end
