(** Fault-injection harness around the Theorem 3.1 store.

    Robustness claims are only as good as their failure detection: a
    store that silently absorbs a corrupted register is worse than one
    that crashes.  [Chaos] wraps a {!Store.t} with seeded, probabilistic
    fault injection so the test-suite can {e prove} that every fault
    class is caught:

    - {e structural} faults (register corruption through the
      {!Store.Fault} hooks) must make {!Store.validate} fail;
    - {e behavioral} faults (dropped updates) leave the structure valid
      but semantically wrong — detected differentially against the
      {!Ref_store} oracle.

    Determinism: all randomness flows from the creation seed, so a
    failing schedule replays exactly. *)

type fault =
  | Dropped_add  (** [add] silently not applied *)
  | Dropped_remove  (** [remove] silently not applied *)
  | Clear_cell  (** a random used register overwritten with the free marker *)
  | Corrupt_next  (** a [(0,·)] successor pointer re-aimed at a wrong key *)
  | Redirect_child  (** an inner-child pointer re-aimed at the root block *)
  | Break_parent  (** a node back-pointer shifted by one *)
  | Skew_cardinal  (** the stored cardinality incremented *)
  | Stale_view
      (** the graph moved on while the answering structures did not — an
          engine-level behavioral fault (an update pipeline that forgot
          to invalidate), not a store-register one.  {!inject} always
          returns [false] for it here; it is provoked with
          [Nd_engine.Inspect.unsafe_inject_stale_view] and must be
          caught by paranoid mode's differential re-checks. *)

val fault_name : fault -> string

val structural_faults : fault list
(** The classes injectable via {!inject} and detected by
    {!Store.validate}: everything but the dropped updates. *)

type 'v t

val create : ?p_drop:float -> ?p_corrupt:float -> seed:int -> 'v Store.t -> 'v t
(** Wrap [store].  [p_drop] (default 0) is the probability that an
    {!add} / {!remove} is silently discarded; [p_corrupt] (default 0)
    the probability that a random structural fault is injected after a
    (non-dropped) update.
    @raise Invalid_argument when a probability is outside [[0,1]]. *)

val store : 'v t -> 'v Store.t
(** The underlying (possibly corrupted) structure. *)

(** {1 Instrumented operations} *)

val add : 'v t -> Store.key -> 'v -> unit
val remove : 'v t -> Store.key -> unit
val find : 'v t -> Store.key -> 'v Store.lookup
val mem : 'v t -> Store.key -> bool

(** {1 Deterministic injection} *)

val inject : 'v t -> fault -> bool
(** Force one fault of the given class now (target register chosen
    with the seeded RNG).  [false] when no applicable target exists —
    e.g. {!Redirect_child} on a trie with no inner nodes — or for the
    behavioral classes ([Dropped_*], {!Stale_view}), which are not
    register faults: dropped updates occur probabilistically, and a
    stale view is injected at the engine layer. *)

(** {1 Accounting} *)

val injected : 'v t -> (fault * string) list
(** Every fault injected so far, oldest first, with a description of
    the target. *)

val dropped : 'v t -> int
(** Number of dropped updates so far. *)

val corrupted : 'v t -> int
(** Number of structural faults injected so far. *)

(** {1 On-disk fault injection}

    Byte surgery on snapshot files (or any file), for proving that the
    [Nd_snapshot] codec detects every on-disk corruption class before
    deserializing anything into a live handle.  The primitives are
    deliberately low-level — truncate at byte [k], flip one bit, patch
    a byte range, swap two ranges — and deterministic in their
    arguments; the test-suite picks targets (section boundaries, the
    version field, payload interiors) from the snapshot's
    [layout] and a seeded RNG, so every failing schedule replays.

    All operations edit the file in place and raise [Sys_error] on I/O
    failure.  Never point them at a file you cannot regenerate. *)
module Disk : sig
  val size : string -> int

  val read : string -> string
  (** Whole-file contents (snapshot files are small enough). *)

  val write : string -> string -> unit
  (** Overwrite the file with exactly these bytes. *)

  val truncate_at : string -> int -> unit
  (** [truncate_at path k] keeps only the first [k] bytes.
      @raise Invalid_argument when [k] is negative or past the end. *)

  val flip_bit : string -> byte:int -> bit:int -> unit
  (** Complement bit [bit] (0..7) of byte [byte].
      @raise Invalid_argument when out of range. *)

  val patch : string -> pos:int -> string -> unit
  (** Overwrite bytes starting at [pos] (no resize).
      @raise Invalid_argument when the patch overruns the file. *)

  val swap_ranges : string -> int * int -> int * int -> unit
  (** [swap_ranges path (o1, l1) (o2, l2)] exchanges two
      non-overlapping byte ranges (the file keeps its length; the
      ranges may differ in length).
      @raise Invalid_argument on overlap or overrun. *)
end

(** {1 Socket-level fault injection}

    The third member of the fault-injection family: {!t} corrupts the
    store's registers, {!Disk} corrupts snapshot bytes, and [Net] sits
    {e between a real client and a real server} as a Unix-domain socket
    proxy, corrupting the transport.  It gives the serve loop's
    connection-hygiene mechanisms (io/idle deadlines, bounded request
    lines, EPIPE tolerance — see [Nd_server]) a {e deterministic}
    adversary: every fault is parameter-driven (byte counts, fixed
    delays), never probabilistic, so a failing schedule replays
    exactly.

    Fault classes, all composable in one {!Net.profile}:
    - {e slow-loris}: forward the client's bytes in [chunk]-sized
      pieces with [delay_ms] between them, so a request line trickles
      in slower than the server's io deadline;
    - {e partial writes}: [chunk = 1] degenerates every write into
      byte-at-a-time delivery;
    - {e garbage}: inject [garbage] bytes toward the server before the
      client's first real byte;
    - {e mid-request disconnect}: hard-close both sides after
      [cut_after] client→server bytes;
    - {e mid-reply disconnect}: hard-close after [cut_reply_after]
      server→client bytes, killing a reply in flight.

    Exposed on the CLI as [fodb chaos-proxy]. *)
module Net : sig
  type profile = {
    chunk : int;  (** max client→server bytes forwarded per write (≥1) *)
    delay_ms : int;  (** sleep before each forwarded client→server chunk *)
    garbage : string option;
        (** bytes injected toward the server before the first real byte *)
    cut_after : int option;
        (** hard-close both directions after this many client→server
            bytes have been forwarded *)
    cut_reply_after : int option;
        (** hard-close after this many server→client bytes *)
  }

  val default_profile : profile
  (** Transparent: unbounded chunk, no delay, no garbage, no cuts. *)

  type t

  val start : ?backlog:int -> profile -> listen:string -> upstream:string -> t
  (** Bind a Unix-domain socket at [listen] (unlinking any stale file)
      and proxy every accepted connection to the server at [upstream],
      applying [profile] per connection.  Each client→server and
      server→client direction is pumped by its own thread; the
      upstream connection is opened lazily when the client connects.
      Returns immediately; faults run until {!stop}.
      @raise Unix.Unix_error when the listen socket cannot be bound. *)

  val stop : t -> unit
  (** Stop accepting, tear down every live connection (both sides),
      join the pump threads, and remove the listen socket file.
      Idempotent. *)

  val connections : t -> int
  (** Connections accepted so far (for tests asserting the adversary
      actually ran). *)
end
