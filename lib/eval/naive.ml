open Nd_graph
open Nd_logic

type ctx = {
  g : Cgraph.t;
  cache : (int, int * int array) Hashtbl.t option;
      (* vertex -> (radius computed, bounded distance array) *)
}

let ctx ?(cache = false) g =
  { g; cache = (if cache then Some (Hashtbl.create 64) else None) }

let graph c = c.g

let dist_le c u v d =
  if d < 0 then false
  else if u = v then true
  else if d = 0 then false
  else if d = 1 then Cgraph.has_edge c.g u v
  else
    match c.cache with
    | None ->
        let dist = Bfs.dist_upto c.g u ~radius:d in
        dist.(v) >= 0
    | Some tbl -> (
        match Hashtbl.find_opt tbl u with
        | Some (r, dist) when r >= d -> dist.(v) >= 0 && dist.(v) <= d
        | _ ->
            let dist = Bfs.dist_upto c.g u ~radius:d in
            Hashtbl.replace tbl u (d, dist);
            dist.(v) >= 0)

(* Witness-set narrowing: a conjunctive guard atom linking the
   quantified variable to an already-bound one restricts existential
   witnesses to a neighborhood; dually, a negative guard in a
   disjunction makes far universal witnesses vacuous.  Sound and
   complete (the guard is implied by / implies the body); it makes
   bag-local evaluation cost proportional to ball sizes instead of the
   bag size. *)
let rec guard_candidates c env z phi =
  match phi with
  | Fo.And ps -> List.find_map (guard_candidates c env z) ps
  | Fo.Eq (x, y) when x = z && y <> z -> bound_to c env y (fun v -> [| v |])
  | Fo.Eq (x, y) when y = z && x <> z -> bound_to c env x (fun v -> [| v |])
  | Fo.Edge (x, y) when x = z && y <> z ->
      bound_to c env y (fun v -> Cgraph.neighbors c.g v)
  | Fo.Edge (x, y) when y = z && x <> z ->
      bound_to c env x (fun v -> Cgraph.neighbors c.g v)
  | Fo.Dist_le (x, y, d) when x = z && y <> z ->
      bound_to c env y (fun v -> Bfs.ball c.g v ~radius:d)
  | Fo.Dist_le (x, y, d) when y = z && x <> z ->
      bound_to c env x (fun v -> Bfs.ball c.g v ~radius:d)
  | _ -> None

and coguard_candidates c env z phi =
  match phi with
  | Fo.Or ps -> List.find_map (coguard_candidates c env z) ps
  | Fo.Not atom -> guard_candidates c env z atom
  | _ -> None

and bound_to c env y f =
  ignore c;
  match List.assoc_opt y env with Some v -> Some (f v) | None -> None

and sat_rec c env phi =
  Nd_util.Budget.tick ();
  match phi with
  | Fo.True -> true
  | Fo.False -> false
  | Fo.Eq (x, y) -> lookup env x = lookup env y
  | Fo.Edge (x, y) -> Cgraph.has_edge c.g (lookup env x) (lookup env y)
  | Fo.Color (col, x) ->
      let v = lookup env x in
      col < Cgraph.color_count c.g && Cgraph.has_color c.g ~color:col v
  | Fo.Dist_le (x, y, d) -> dist_le c (lookup env x) (lookup env y) d
  | Fo.Not p -> not (sat_rec c env p)
  | Fo.And ps -> List.for_all (sat_rec c env) ps
  | Fo.Or ps -> List.exists (sat_rec c env) ps
  | Fo.Exists (x, p) -> (
      match guard_candidates c env x p with
      | Some vs -> Array.exists (fun v -> sat_rec c ((x, v) :: env) p) vs
      | None ->
          let n = Cgraph.n c.g in
          let rec go v = v < n && (sat_rec c ((x, v) :: env) p || go (v + 1)) in
          go 0)
  | Fo.Forall (x, p) -> (
      match coguard_candidates c env x p with
      | Some vs -> Array.for_all (fun v -> sat_rec c ((x, v) :: env) p) vs
      | None ->
          let n = Cgraph.n c.g in
          let rec go v = v >= n || (sat_rec c ((x, v) :: env) p && go (v + 1)) in
          go 0)

and lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg ("Naive.sat: unbound variable " ^ x)

let sat c ~env phi = sat_rec c env phi

let holds c phi a =
  let fv = Fo.free_vars phi in
  if List.length fv <> Array.length a then
    invalid_arg "Naive.holds: arity mismatch";
  sat c ~env:(List.mapi (fun i x -> (x, a.(i))) fv) phi

let model_check c phi =
  if not (Fo.is_sentence phi) then invalid_arg "Naive.model_check: not a sentence";
  sat c ~env:[] phi

let eval_all c ~vars phi =
  let fv = Fo.free_vars phi in
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg ("Naive.eval_all: free variable " ^ x ^ " not in vars"))
    fv;
  let n = Cgraph.n c.g in
  let k = List.length vars in
  let vars = Array.of_list vars in
  let current = Array.make k 0 in
  let out = ref [] in
  let rec go i env =
    if i = k then begin
      if sat_rec c env phi then out := Array.copy current :: !out
    end
    else
      for v = 0 to n - 1 do
        Nd_util.Budget.tick ();
        current.(i) <- v;
        go (i + 1) ((vars.(i), v) :: env)
      done
  in
  go 0 [];
  List.rev !out

let count c ~vars phi = List.length (eval_all c ~vars phi)
