open Nd_util
open Nd_graph

type t = {
  r : int;
  bags : int array array;
  centers : int array;
  radii : int array;
  assigned : int array;
  bags_of : int array array;
  assigned_members : int array array;
}

let m_bags = Metrics.counter "cover.bags"
let m_weight = Metrics.counter "cover.weight"
let m_patched = Metrics.counter "cover.patched_bags"

(* invert a bag list + assignment into the two per-vertex views *)
let invert ~n bags assigned =
  let count = Array.make n 0 in
  Array.iter (Array.iter (fun v -> count.(v) <- count.(v) + 1)) bags;
  let bags_of = Array.init n (fun v -> Array.make count.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun id bag ->
      Array.iter
        (fun v ->
          bags_of.(v).(fill.(v)) <- id;
          fill.(v) <- fill.(v) + 1)
        bag)
    bags;
  (* bag ids arrive in increasing order per vertex: already sorted *)
  let members_count = Array.make (Array.length bags) 0 in
  Array.iter
    (fun id -> members_count.(id) <- members_count.(id) + 1)
    assigned;
  let assigned_members =
    Array.init (Array.length bags) (fun id -> Array.make members_count.(id) 0)
  in
  let mfill = Array.make (Array.length bags) 0 in
  Array.iteri
    (fun v id ->
      assigned_members.(id).(mfill.(id)) <- v;
      mfill.(id) <- mfill.(id) + 1)
    assigned;
  (bags_of, assigned_members)

let compute g ~r =
  if r < 0 then invalid_arg "Cover.compute: negative radius";
  Nd_trace.phase "cover.compute" @@ fun () ->
  Budget.enter "cover";
  let n = Cgraph.n g in
  let srch = Bfs.searcher g in
  let assigned = Array.make n (-1) in
  let bags = ref [] and centers = ref [] and radii = ref [] in
  let nbags = ref 0 in
  for a = 0 to n - 1 do
    Budget.tick ();
    if assigned.(a) = -1 then begin
      (* Grow the bag from N_2r(a), extending its radius until the
         yet-uncovered part of its r-kernel pays for its size (≥ 1/8) or
         it stops growing (spans the component).  Every vertex of the
         kernel has its whole r-ball inside the bag, so assigning the
         kernel preserves the cover property, and the efficiency
         threshold bounds Σ|X| ≤ 9n on every input.  On nowhere dense
         families the first attempt (the paper's s = 2r) almost always
         wins; adversarial inputs trade bag radius for cover weight. *)
      let rec grow radius prev_size attempts =
        let bag = Bfs.sball srch a ~radius in
        let sub, to_orig = Cgraph.induced g bag in
        let border = ref [] in
        Array.iteri
          (fun i v ->
            if
              Array.exists
                (fun w -> not (Nd_util.Sorted.mem bag w))
                (Cgraph.neighbors g v)
            then border := (i, 1) :: !border)
          to_orig;
        let d = Bfs.multi_dist_from_depth sub !border ~radius:r in
        let fresh = ref 0 in
        Array.iteri
          (fun i v -> if d.(i) = -1 && assigned.(v) = -1 then incr fresh)
          to_orig
        |> ignore;
        if
          8 * !fresh >= Array.length bag
          || Array.length bag = prev_size
          || attempts >= 4
        then (bag, to_orig, d, radius)
        else grow (radius + max 1 r) (Array.length bag) (attempts + 1)
      in
      let bag, to_orig, d, radius = grow (2 * r) (-1) 0 in
      let id = !nbags in
      incr nbags;
      bags := bag :: !bags;
      centers := a :: !centers;
      radii := radius :: !radii;
      Array.iteri
        (fun i v -> if d.(i) = -1 && assigned.(v) = -1 then assigned.(v) <- id)
        to_orig
    end
  done;
  let bags = Array.of_list (List.rev !bags) in
  let centers = Array.of_list (List.rev !centers) in
  let radii = Array.of_list (List.rev !radii) in
  (* invert: bags containing each vertex, and vertices assigned per bag *)
  let bags_of, assigned_members = invert ~n bags assigned in
  let t = { r; bags; centers; radii; assigned; bags_of; assigned_members } in
  Metrics.add m_bags (Array.length bags);
  Metrics.add m_weight
    (Array.fold_left (fun acc bag -> acc + Array.length bag) 0 bags);
  t

let bag_count t = Array.length t.bags

let patch g t ~dirty =
  Budget.enter "cover";
  let srch = Bfs.searcher g in
  (* A vertex's assignment breaks only when its r-ball (in the mutated
     graph) escapes its assigned bag — possible only for vertices whose
     ball changed, i.e. members of [dirty]. *)
  let broken =
    List.filter
      (fun a ->
        Budget.tick ();
        let ball = Bfs.sball srch a ~radius:t.r in
        Array.exists (fun b -> not (Sorted.mem t.bags.(t.assigned.(a)) b)) ball)
      (Array.to_list dirty)
  in
  if broken = [] then (t, [])
  else begin
    let assigned = Array.copy t.assigned in
    let fresh = ref [] (* (id, bag, center) in increasing id order *) in
    let next_id = ref (Array.length t.bags) in
    let rec place = function
      | [] -> ()
      | a :: rest ->
          Budget.tick ();
          let bag = Bfs.sball srch a ~radius:(2 * t.r) in
          let id = !next_id in
          incr next_id;
          fresh := (id, bag, a) :: !fresh;
          assigned.(a) <- id;
          (* any later broken vertex whose r-ball fits here rides along *)
          let rest =
            List.filter
              (fun b ->
                let ball_b = Bfs.sball srch b ~radius:t.r in
                if Array.for_all (fun v -> Sorted.mem bag v) ball_b then begin
                  assigned.(b) <- id;
                  false
                end
                else true)
              rest
          in
          place rest
    in
    place broken;
    let fresh = List.rev !fresh in
    let bags =
      Array.append t.bags (Array.of_list (List.map (fun (_, b, _) -> b) fresh))
    in
    let centers =
      Array.append t.centers
        (Array.of_list (List.map (fun (_, _, c) -> c) fresh))
    in
    let radii =
      Array.append t.radii
        (Array.of_list (List.map (fun _ -> 2 * t.r) fresh))
    in
    let n = Array.length t.assigned in
    let bags_of, assigned_members = invert ~n bags assigned in
    Metrics.add m_patched (List.length fresh);
    ( { r = t.r; bags; centers; radii; assigned; bags_of; assigned_members },
      List.map (fun (id, _, _) -> id) fresh )
  end

let degree t =
  Array.fold_left (fun acc bs -> max acc (Array.length bs)) 0 t.bags_of

let weight t =
  Array.fold_left (fun acc bag -> acc + Array.length bag) 0 t.bags

let mem_bag t ~bag v = Sorted.mem t.bags.(bag) v

let verify g t =
  let n = Cgraph.n g in
  let rec check_vertex a =
    if a >= n then Ok ()
    else begin
      let bag = t.assigned.(a) in
      if bag < 0 || bag >= Array.length t.bags then
        Error (Printf.sprintf "vertex %d has no assigned bag" a)
      else begin
        let ball = Bfs.ball g a ~radius:t.r in
        if Array.exists (fun b -> not (mem_bag t ~bag b)) ball then
          Error (Printf.sprintf "N_r(%d) not inside bag %d" a bag)
        else check_vertex (a + 1)
      end
    end
  in
  let rec check_bag id =
    if id >= Array.length t.bags then Ok ()
    else begin
      let c = t.centers.(id) in
      let ball = Bfs.ball g c ~radius:t.radii.(id) in
      let inside v = Sorted.mem ball v in
      if t.radii.(id) < 2 * t.r then
        Error (Printf.sprintf "bag %d has radius below 2r" id)
      else if Array.exists (fun v -> not (inside v)) t.bags.(id) then
        Error
          (Printf.sprintf "bag %d not inside N_s of its center (s=%d)" id
             t.radii.(id))
      else check_bag (id + 1)
    end
  in
  match check_vertex 0 with Error e -> Error e | Ok () -> check_bag 0
