(** Neighborhood covers (Definition 4.3, Theorem 4.4).

    An (r,2r)-neighborhood cover of G is a set of bags X ⊆ V such that
    every r-ball [N_r(a)] is contained in some bag, and every bag is
    contained in some 2r-ball [N_2r(c_X)].  On nowhere dense classes,
    covers of degree ≤ n^ε exist and are computable in pseudo-linear
    time (Theorem 4.4 = GKS Theorem 6.2).

    We use the greedy sparse-cover construction: repeatedly pick an
    uncovered vertex [a], open the bag [X = N_2r(a)] with center [a],
    and assign every yet-unassigned vertex of [N_r(a)] to it (their
    r-balls lie inside X).  This yields a certified (r,2r)-cover on
    {e every} graph; its degree is not provably n^ε but is measured —
    small on sparse families, large on dense controls (experiment E3). *)

type t = {
  r : int;
  bags : int array array;  (** bag id → sorted member vertices. *)
  centers : int array;  (** bag id → its center [c_X]. *)
  radii : int array;
      (** bag id → the radius [s ≥ 2r] with [X = N_s(c_X)].  The greedy
          construction extends a bag beyond [2r] only when its r-kernel
          would cover too little (which on nowhere dense families it
          essentially never does); the extension bounds the total
          weight by [9n] on {e every} input.  See the implementation
          comment. *)
  assigned : int array;  (** vertex [a] → the bag [X(a)] with [N_r(a) ⊆ X(a)]. *)
  bags_of : int array array;  (** vertex → sorted ids of bags containing it. *)
  assigned_members : int array array;
      (** bag id → sorted vertices [b] with [X(b)] = this bag (Step 3 of
          the preprocessing computes exactly this list). *)
}

val compute : Nd_graph.Cgraph.t -> r:int -> t

val patch : Nd_graph.Cgraph.t -> t -> dirty:int array -> t * int list
(** [patch g t ~dirty] repairs the cover after [g] mutated, where
    [dirty] is a sorted superset of the vertices whose r-balls changed.
    Every dirty vertex whose r-ball escaped its assigned bag is
    re-assigned to a fresh bag [N_2r(a)] (bag ids are appended; old bag
    vertex sets are untouched, so readers of the previous cover stay
    valid).  Returns the patched cover and the fresh bag ids.

    The containment property — [N_r(a) ⊆ X(a)] for every vertex [a] —
    is restored exactly, which is what answering correctness (Theorem
    2.3 via Lemma 5.2) rests on.  The radius bound [X ⊆ N_s(c_X)] holds
    for fresh bags by construction but can lapse for old bags after
    edge {e removals} (their centers' balls shrink); that bound only
    feeds the degree/weight accounting, never answer correctness. *)

val bag_count : t -> int

val degree : t -> int
(** [δ(X)]: the maximum number of bags meeting at one vertex. *)

val weight : t -> int
(** [Σ_X |X|]; the preprocessing time bounds hinge on this being
    [≤ degree · n]. *)

val mem_bag : t -> bag:int -> int -> bool

val verify : Nd_graph.Cgraph.t -> t -> (unit, string) result
(** Certify both cover properties by explicit BFS. *)
