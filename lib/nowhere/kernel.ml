open Nd_util
open Nd_graph

let compute g ~bag ~p =
  if p < 0 then invalid_arg "Kernel.compute: negative p";
  Budget.poll ();
  let sub, to_orig = Cgraph.induced g bag in
  (* local border vertices: members with a neighbor outside the bag *)
  let border = ref [] in
  Array.iteri
    (fun i v ->
      if
        Array.exists
          (fun w -> not (Sorted.mem bag w))
          (Cgraph.neighbors g v)
      then border := (i, 1) :: !border)
    to_orig;
  (* D(a) = distance from a to the outside; a ∈ K_p iff D(a) > p *)
  let d = Bfs.multi_dist_from_depth sub !border ~radius:p in
  let acc = ref [] in
  for i = Array.length to_orig - 1 downto 0 do
    if d.(i) = -1 then acc := to_orig.(i) :: !acc
  done;
  Array.of_list !acc

let verify g ~bag ~p kernel =
  let n = Cgraph.n g in
  let rec go a =
    if a >= n then Ok ()
    else begin
      let in_kernel = Sorted.mem kernel a in
      let expected =
        Sorted.mem bag a
        && Array.for_all
             (fun b -> Sorted.mem bag b)
             (Bfs.ball g a ~radius:p)
      in
      if in_kernel <> expected then
        Error
          (Printf.sprintf "kernel mismatch at vertex %d: stored %b, real %b" a
             in_kernel expected)
      else go (a + 1)
    end
  in
  go 0
