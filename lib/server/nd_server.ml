open Nd_util

(* Mirror counters for the Metrics registry (observable via `stats`);
   the authoritative per-session counts live on [t] so `health` works
   with instrumentation off. *)
let m_requests = Metrics.counter "server.requests"
let m_ok = Metrics.counter "server.replies_ok"
let m_err_user = Metrics.counter "server.errors.user"
let m_err_budget = Metrics.counter "server.errors.budget"
let m_err_internal = Metrics.counter "server.errors.internal"
let m_updates = Metrics.counter "server.updates"
let h_latency = Metrics.hist "server.request_us"

type config = {
  request_budget_ops : int option;
  request_timeout_ms : int option;
  max_enumerate : int;
  chaos : bool;
  event_log : (string -> unit) option;
}

let default_config =
  {
    request_budget_ops = None;
    request_timeout_ms = None;
    max_enumerate = 1000;
    chaos = false;
    event_log = None;
  }

type cursor = Unstarted | At of int array | Exhausted

type counts = {
  requests : int;
  ok : int;
  user_errors : int;
  budget_errors : int;
  internal_errors : int;
}

(* State shared by every session over one engine handle: the lock
   serializing request processing (one prepared handle, many
   connections — answering mutates the solution cache, so requests are
   dispatched one at a time while connection I/O overlaps freely), the
   process-wide stop flag, and the request accounting.  All fields
   besides [stop] are touched only under [lock]. *)
type shared = {
  lock : Mutex.t;
  stop : bool ref;
  mutable c_requests : int;
  mutable c_ok : int;
  mutable c_user : int;
  mutable c_budget : int;
  mutable c_internal : int;
}

type t = {
  eng : Nd_engine.t;
  config : config;
  sh : shared;
  mutable cursor : cursor;
  mutable quit : bool;
}

let create ?(config = default_config) eng =
  if config.max_enumerate <= 0 then
    invalid_arg "Nd_server.create: max_enumerate must be positive";
  {
    eng;
    config;
    sh =
      {
        lock = Mutex.create ();
        stop = ref false;
        c_requests = 0;
        c_ok = 0;
        c_user = 0;
        c_budget = 0;
        c_internal = 0;
      };
    cursor = Unstarted;
    quit = false;
  }

(* A per-connection session: own enumeration cursor and quit flag,
   everything else (engine, config, lock, stop, counters) shared with
   the parent. *)
let session t = { t with cursor = Unstarted; quit = false }

let counts t =
  {
    requests = t.sh.c_requests;
    ok = t.sh.c_ok;
    user_errors = t.sh.c_user;
    budget_errors = t.sh.c_budget;
    internal_errors = t.sh.c_internal;
  }

let quitting t = t.quit

let request_stop t = t.sh.stop := true

(* ---------------- request parsing / formatting ---------------- *)

let fmt_tuple a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let parse_tuple s =
  if String.trim s = "" then [||]
  else
    Array.of_list
      (List.map
         (fun field ->
           match int_of_string_opt (String.trim field) with
           | Some v -> v
           | None ->
               Nd_error.user_errorf
                 "bad tuple %S (expected comma-separated integers)" s)
         (String.split_on_char ',' s))

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* ---------------- per-request resource governance ---------------- *)

let with_request_budget t f =
  match (t.config.request_budget_ops, t.config.request_timeout_ms) with
  | None, None -> f ()
  | ops, tmo -> (
      let b = Budget.create ?max_ops:ops ?timeout_ms:tmo () in
      match
        Budget.with_budget b (fun () ->
            Budget.enter "serve";
            f ())
      with
      | Ok v -> v
      | Error info -> raise (Nd_error.Budget_exceeded info))

(* ---------------- commands ---------------- *)

(* The enumeration cursor: each page continues from where the last one
   ended, but the cursor is only advanced once the whole page has been
   produced — a page that dies on a budget error can be retried
   verbatim with no solution lost or duplicated. *)
let page t k =
  let eng = t.eng in
  let arity = Nd_engine.arity eng in
  if arity = 0 then (
    match t.cursor with
    | Exhausted -> ([], true)
    | Unstarted | At _ ->
        let sols = if Nd_engine.holds eng then [ [||] ] else [] in
        t.cursor <- Exhausted;
        (sols, true))
  else
    let n = Nd_graph.Cgraph.n (Nd_engine.graph eng) in
    let start =
      match t.cursor with
      | Unstarted -> if n = 0 then None else Some (Tuple.min arity)
      | At a -> Some a
      | Exhausted -> None
    in
    let acc = ref [] in
    let count = ref 0 in
    let rec go start =
      match start with
      | None -> (Exhausted, true)
      | Some a when !count >= k -> (At a, false)
      | Some a -> (
          match Nd_engine.next eng a with
          | None -> (Exhausted, true)
          | Some sol ->
              acc := sol :: !acc;
              incr count;
              go (Tuple.succ ~n sol))
    in
    let final, exhausted = go start in
    t.cursor <- final;
    (List.rev !acc, exhausted)

let cmd_enumerate t arg =
  let k =
    if arg = "" then t.config.max_enumerate
    else
      match int_of_string_opt arg with
      | Some k when k > 0 -> min k t.config.max_enumerate
      | _ -> Nd_error.user_errorf "enumerate: bad page size %S" arg
  in
  let sols, exhausted = with_request_budget t (fun () -> page t k) in
  List.map (fun s -> "sol " ^ fmt_tuple s) sols
  @ [
      Printf.sprintf "end %d%s" (List.length sols)
        (if exhausted then " complete" else "");
    ]

(* Mutations invalidate the enumeration cursor: the solution order over
   the new graph need not extend the old page sequence, so a stale
   cursor could skip or duplicate answers.  Every successful update
   therefore resets it; clients re-enumerate from the top. *)
let absorb t muts =
  with_request_budget t (fun () ->
      List.iter (fun m -> Nd_engine.update t.eng m) muts);
  t.cursor <- Unstarted;
  Metrics.add m_updates (List.length muts);
  [
    Printf.sprintf "epoch %d applied %d%s"
      (Nd_engine.epoch t.eng) (List.length muts)
      (match Nd_engine.degradation t.eng with
      | `None -> ""
      | `Stale_rebuild _ -> " stale_rebuild"
      | `Fallback _ -> " fallback");
  ]

let cmd_update t arg =
  if arg = "" then Nd_error.user_errorf "update: missing mutation"
  else absorb t [ Nd_graph.Cgraph.mutation_of_string arg ]

let cmd_batch_update t arg =
  let muts =
    List.filter_map
      (fun s ->
        let s = String.trim s in
        if s = "" then None else Some (Nd_graph.Cgraph.mutation_of_string s))
      (String.split_on_char ';' arg)
  in
  if muts = [] then Nd_error.user_errorf "batch-update: no mutations given"
  else absorb t muts

let cmd_health t =
  let c = counts t in
  [
    Printf.sprintf
      "health ok requests=%d ok=%d user=%d budget=%d internal=%d degraded=%b \
       cache=%d"
      c.requests c.ok c.user_errors c.budget_errors c.internal_errors
      (Nd_engine.degraded t.eng)
      (Nd_engine.cache_size t.eng);
  ]

let dispatch t line =
  let cmd, arg = split_command line in
  match cmd with
  | "quit" ->
      t.quit <- true;
      `Bye
  | "next" ->
      let tup = parse_tuple arg in
      let r = with_request_budget t (fun () -> Nd_engine.next t.eng tup) in
      `Ok
        [
          (match r with Some sol -> "sol " ^ fmt_tuple sol | None -> "none");
        ]
  | "test" ->
      let tup = parse_tuple arg in
      let r = with_request_budget t (fun () -> Nd_engine.test t.eng tup) in
      `Ok [ string_of_bool r ]
  | "enumerate" -> `Ok (cmd_enumerate t arg)
  | "update" -> `Ok (cmd_update t arg)
  | "batch-update" -> `Ok (cmd_batch_update t arg)
  | "epoch" -> `Ok [ Printf.sprintf "epoch %d" (Nd_engine.epoch t.eng) ]
  | "reset" ->
      t.cursor <- Unstarted;
      `Ok []
  | "stats" -> `Ok [ Nd_engine.Stats.to_json (Nd_engine.stats t.eng) ]
  | "metrics" ->
      (* Prometheus text exposition of the whole registry; rendered from
         an atomic snapshot, so a concurrent reset cannot tear it.  No
         exposition line can collide with a terminator (they all start
         with '#' or "nd_"). *)
      `Ok
        (List.filter
           (fun l -> l <> "")
           (String.split_on_char '\n' (Nd_trace.Prometheus.render_current ())))
  | "health" -> `Ok (cmd_health t)
  | "inject" when t.config.chaos -> (
      (* deliberate fault injection, for proving request isolation:
         the raise happens *inside* the handler, exactly where a real
         bug would fire *)
      match arg with
      | "internal" -> Nd_error.invariantf "injected internal fault (chaos)"
      | "user" -> Nd_error.user_errorf "injected user fault (chaos)"
      | "crash" -> raise Not_found (* an untyped failure, for the catch-all *)
      | other -> Nd_error.user_errorf "inject: unknown fault class %S" other)
  | _ ->
      Nd_error.user_errorf "unknown command %S (try next/test/enumerate/update/batch-update/epoch/reset/stats/metrics/health/quit)"
        cmd

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let handle t line =
  let line = String.trim line in
  if line = "" then []
  else begin
    (* the lock spans parsing through reply construction: the engine
       handle, the shared counters, the global budget slot and the
       tracer's span stack are all single-writer under it; only the
       connection I/O runs outside *)
    Mutex.protect t.sh.lock @@ fun () ->
    t.sh.c_requests <- t.sh.c_requests + 1;
    Metrics.incr m_requests;
    let rid = t.sh.c_requests in
    let cmd, _ = split_command line in
    (* span = the tracer's id for this request (0 with tracing off);
       stamped with rid into every error terminator and event-log line
       so a failing request joins to its trace. *)
    let span = ref 0 in
    let status = ref "ok" in
    let err cls m =
      status := cls;
      Printf.sprintf "err %s rid=%d span=%d %s" cls rid !span m
    in
    let t0 = Unix.gettimeofday () in
    let reply =
      Nd_trace.with_span "server.request"
        ~attrs:[ ("rid", string_of_int rid); ("cmd", cmd) ]
      @@ fun () ->
      span := Nd_trace.current_span_id ();
      (* Request isolation: every failure class an answering call can
         produce becomes a structured terminator line.  The final
         catch-all exists because an unexpected exception must degrade
         to an error reply, never to a dead loop. *)
      match dispatch t line with
      | `Ok lines ->
          t.sh.c_ok <- t.sh.c_ok + 1;
          Metrics.incr m_ok;
          lines @ [ "ok" ]
      | `Bye ->
          status := "bye";
          [ "bye" ]
      | exception (Nd_error.User_error m | Invalid_argument m | Failure m) ->
          t.sh.c_user <- t.sh.c_user + 1;
          Metrics.incr m_err_user;
          [ err "user" m ]
      | exception Nd_error.Budget_exceeded info ->
          t.sh.c_budget <- t.sh.c_budget + 1;
          Metrics.incr m_err_budget;
          [ err "budget" (Nd_error.describe_budget info) ]
      | exception Nd_error.Internal_invariant m ->
          t.sh.c_internal <- t.sh.c_internal + 1;
          Metrics.incr m_err_internal;
          [ err "internal" m ]
      | exception Stack_overflow ->
          t.sh.c_internal <- t.sh.c_internal + 1;
          Metrics.incr m_err_internal;
          [ err "internal" "stack overflow in request handler" ]
      | exception e ->
          t.sh.c_internal <- t.sh.c_internal + 1;
          Metrics.incr m_err_internal;
          [ err "internal" ("uncaught exception: " ^ Printexc.to_string e) ]
    in
    let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Metrics.observe h_latency latency_us;
    (match t.config.event_log with
    | None -> ()
    | Some sink ->
        sink
          (Printf.sprintf
             "{\"ts\":%.6f,\"rid\":%d,\"span\":%d,\"cmd\":\"%s\",\"status\":\"%s\",\"latency_us\":%d,\"lines\":%d}"
             t0 rid !span (json_escape cmd) !status latency_us
             (List.length reply)));
    reply
  end

(* ---------------- the loop ---------------- *)

let serve t ic oc =
  let emit lines =
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    flush oc
  in
  let rec loop () =
    if !(t.sh.stop) then emit [ "bye" ]
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
          (* the reply is written and flushed in full before the stop
             flag is consulted: that is the drain guarantee *)
          emit (handle t line);
          if t.quit then ()
          else if !(t.sh.stop) then emit [ "bye" ]
          else loop ()
  in
  loop ()

let default_backlog = 64

(* Thread-per-connection accept loop.  Sys-threads (one domain) are the
   right tool here: requests serialize on the engine lock anyway, so
   the concurrency win is connection I/O overlap, and threads keep
   blocking channel reads simple.  [quit] is connection-scoped in
   socket mode (it closes that client's session); {!request_stop} is
   what ends the server. *)
let serve_socket ?(backlog = default_backlog) t ~path =
  if backlog < 1 then invalid_arg "Nd_server.serve_socket: backlog must be >= 1";
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  (* live_fds: connections still open, so a stopping server can unblock
     their readers; threads: every connection thread ever spawned,
     joined before returning (joining a finished thread is free).  Both
     under [reg_m]; a connection thread removes its own fd before
     closing it, so the shutdown sweep never touches a recycled
     descriptor. *)
  let reg_m = Mutex.create () in
  let live_fds = ref [] in
  let threads = ref [] in
  let conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    (try serve (session t) ic oc with Sys_error _ -> ());
    (try flush oc with Sys_error _ -> ());
    Mutex.protect reg_m (fun () ->
        live_fds := List.filter (fun fd' -> fd' != fd) !live_fds);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec accept_loop () =
    if !(t.sh.stop) then ()
    else
      (* wake periodically so request_stop is honored even while no
         client is connecting *)
      match Unix.select [ sock ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ ->
          (match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | fd, _ ->
              Mutex.protect reg_m (fun () -> live_fds := fd :: !live_fds);
              threads := Thread.create conn fd :: !threads);
          accept_loop ()
  in
  accept_loop ();
  (* drain: unblock every connection still waiting on a request line
     (their loops emit a final [bye]), then wait for them to finish *)
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (Mutex.protect reg_m (fun () -> !live_fds));
  List.iter Thread.join !threads

(* ---------------- client ---------------- *)

module Client = struct
  type transport = string -> string list

  type policy = {
    retries : int;
    backoff_ms : int;
    multiplier : float;
    sleep_ms : int -> unit;
  }

  let default_policy =
    {
      retries = 3;
      backoff_ms = 50;
      multiplier = 2.0;
      sleep_ms = (fun ms -> ignore (Unix.select [] [] [] (float ms /. 1000.)));
    }

  type status = Ok_reply | Err_reply of string * string | Closed

  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let status_of_reply reply =
    match List.rev reply with
    | [] -> Closed
    | last :: _ ->
        if last = "ok" then Ok_reply
        else if last = "bye" then Closed
        else if starts_with "err " last then
          let rest = String.sub last 4 (String.length last - 4) in
          match String.index_opt rest ' ' with
          | None -> Err_reply (rest, "")
          | Some i ->
              Err_reply
                ( String.sub rest 0 i,
                  String.sub rest (i + 1) (String.length rest - i - 1) )
        else Err_reply ("protocol", "unterminated reply: " ^ last)

  type result = { reply : string list; attempts : int; status : status }

  let call ?(policy = default_policy) transport req =
    let rec go attempt delay =
      let reply = transport req in
      match status_of_reply reply with
      | Err_reply ("budget", _) when attempt <= policy.retries ->
          (* transient: the budget may pass on a quieter machine (wall
             deadlines) or after the client simplifies; bounded
             exponential backoff, then give up with the last reply *)
          policy.sleep_ms delay;
          go (attempt + 1)
            (int_of_float (float delay *. policy.multiplier))
      | status -> { reply; attempts = attempt; status }
    in
    go 1 policy.backoff_ms

  let channel_transport ic oc req =
    output_string oc req;
    output_char oc '\n';
    flush oc;
    let rec read acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | l ->
          let acc = l :: acc in
          if l = "ok" || l = "bye" || starts_with "err " l then List.rev acc
          else read acc
    in
    read []
end
