open Nd_util

(* Mirror counters for the Metrics registry (observable via `stats`);
   the authoritative per-session counts live on [t] so `health` works
   with instrumentation off. *)
let m_requests = Metrics.counter "server.requests"
let m_ok = Metrics.counter "server.replies_ok"
let m_err_user = Metrics.counter "server.errors.user"
let m_err_budget = Metrics.counter "server.errors.budget"
let m_err_internal = Metrics.counter "server.errors.internal"

(* overload-safety counters: requests shed at the admission gate,
   requests refused because the server is draining, whole connections
   refused at the connection cap, and hygiene enforcement events *)
let m_err_overloaded = Metrics.counter "server.errors.overloaded"
let m_err_shutting_down = Metrics.counter "server.errors.shutting_down"
let m_conns_rejected = Metrics.counter "server.conns_rejected"
let m_io_timeouts = Metrics.counter "server.io_timeouts"
let m_oversized_lines = Metrics.counter "server.oversized_lines"
let m_idle_reaped = Metrics.counter "server.idle_reaped"
let m_backlog_drained = Metrics.counter "server.backlog_drained"
let m_updates = Metrics.counter "server.updates"
let h_latency = Metrics.hist "server.request_us"

type config = {
  request_budget_ops : int option;
  request_timeout_ms : int option;
  max_enumerate : int;
  chaos : bool;
  event_log : (string -> unit) option;
  max_inflight : int option;
  max_conns : int option;
  io_timeout_ms : int option;
  idle_timeout_ms : int option;
  max_line_bytes : int;
  retry_after_ms : int;
  journal : (string -> unit) option;
  owner : (int array -> bool) option;
  flight : (string -> unit) option;
}

let default_config =
  {
    request_budget_ops = None;
    request_timeout_ms = None;
    max_enumerate = 1000;
    chaos = false;
    event_log = None;
    max_inflight = None;
    max_conns = None;
    io_timeout_ms = None;
    idle_timeout_ms = None;
    max_line_bytes = 65536;
    retry_after_ms = 100;
    journal = None;
    owner = None;
    flight = None;
  }

type cursor = Unstarted | At of int array | Exhausted

type counts = {
  requests : int;
  ok : int;
  user_errors : int;
  budget_errors : int;
  internal_errors : int;
  overloaded : int;
  shutting_down : int;
}

(* State shared by every session over one engine handle.  Two locks
   with distinct jobs: [lock] serializes request *processing* (one
   prepared handle, many connections — answering mutates the solution
   cache, so requests are dispatched one at a time while connection I/O
   overlaps freely); [adm] protects only the admission state (counters
   and the in-flight gauge) so an overloaded request can be shed in
   O(1) without ever waiting on the engine.  [adm] is never taken while
   holding [lock]'s critical work — its sections are a few loads and
   stores. *)
type shared = {
  lock : Mutex.t;
  adm : Mutex.t;
  stop : bool ref;
  mutable inflight : int;
  mutable c_requests : int;
  mutable c_ok : int;
  mutable c_user : int;
  mutable c_budget : int;
  mutable c_internal : int;
  mutable c_overloaded : int;
  mutable c_shutting_down : int;
}

type t = {
  eng : Nd_engine.t;
  config : config;
  sh : shared;
  mutable cursor : cursor;
  mutable quit : bool;
}

let create ?(config = default_config) eng =
  if config.max_enumerate <= 0 then
    invalid_arg "Nd_server.create: max_enumerate must be positive";
  if config.max_line_bytes <= 0 then
    invalid_arg "Nd_server.create: max_line_bytes must be positive";
  if config.retry_after_ms < 0 then
    invalid_arg "Nd_server.create: retry_after_ms must be >= 0";
  let pos_opt name = function
    | Some v when v <= 0 ->
        invalid_arg (Printf.sprintf "Nd_server.create: %s must be positive" name)
    | _ -> ()
  in
  pos_opt "max_inflight" config.max_inflight;
  pos_opt "max_conns" config.max_conns;
  pos_opt "io_timeout_ms" config.io_timeout_ms;
  pos_opt "idle_timeout_ms" config.idle_timeout_ms;
  {
    eng;
    config;
    sh =
      {
        lock = Mutex.create ();
        adm = Mutex.create ();
        stop = ref false;
        inflight = 0;
        c_requests = 0;
        c_ok = 0;
        c_user = 0;
        c_budget = 0;
        c_internal = 0;
        c_overloaded = 0;
        c_shutting_down = 0;
      };
    cursor = Unstarted;
    quit = false;
  }

(* A per-connection session: own enumeration cursor and quit flag,
   everything else (engine, config, locks, stop, counters) shared with
   the parent. *)
let session t = { t with cursor = Unstarted; quit = false }

let counts t =
  {
    requests = t.sh.c_requests;
    ok = t.sh.c_ok;
    user_errors = t.sh.c_user;
    budget_errors = t.sh.c_budget;
    internal_errors = t.sh.c_internal;
    overloaded = t.sh.c_overloaded;
    shutting_down = t.sh.c_shutting_down;
  }

let quitting t = t.quit

let request_stop t = t.sh.stop := true

(* ---------------- request parsing / formatting ---------------- *)

let fmt_tuple a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let parse_tuple s =
  if String.trim s = "" then [||]
  else
    Array.of_list
      (List.map
         (fun field ->
           match int_of_string_opt (String.trim field) with
           | Some v -> v
           | None ->
               Nd_error.user_errorf
                 "bad tuple %S (expected comma-separated integers)" s)
         (String.split_on_char ',' s))

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* ---------------- per-request resource governance ---------------- *)

let with_request_budget t f =
  match (t.config.request_budget_ops, t.config.request_timeout_ms) with
  | None, None -> f ()
  | ops, tmo -> (
      let b = Budget.create ?max_ops:ops ?timeout_ms:tmo () in
      match
        Budget.with_budget b (fun () ->
            Budget.enter "serve";
            f ())
      with
      | Ok v -> v
      | Error info -> raise (Nd_error.Budget_exceeded info))

(* ---------------- commands ---------------- *)

(* Shard-mode answering: with [config.owner] set, only solutions the
   predicate owns are reported.  [next]/[enumerate] skip past foreign
   solutions by advancing through the full lexicographic order, so each
   shard's stream is the owned sub-stream of the global one — strictly
   ascending and duplicate-free by construction, which is what lets the
   router's k-way merge reconstitute the exact single-node order.
   Mutations are unaffected: every shard absorbs the full journal and
   tracks the whole graph; ownership only filters answering. *)
let owns t sol =
  match t.config.owner with None -> true | Some own -> own sol

let owned_next t a =
  match t.config.owner with
  | None -> Nd_engine.next t.eng a
  | Some own ->
      let n = Nd_graph.Cgraph.n (Nd_engine.graph t.eng) in
      let rec go a =
        match Nd_engine.next t.eng a with
        | None -> None
        | Some sol when own sol -> Some sol
        | Some sol -> (
            match Tuple.succ ~n sol with None -> None | Some a' -> go a')
      in
      go a

(* The enumeration cursor: each page continues from where the last one
   ended, but the cursor is only advanced once the whole page has been
   produced — a page that dies on a budget error can be retried
   verbatim with no solution lost or duplicated. *)
let page t k =
  let eng = t.eng in
  let arity = Nd_engine.arity eng in
  if arity = 0 then (
    match t.cursor with
    | Exhausted -> ([], true)
    | Unstarted | At _ ->
        let sols =
          if Nd_engine.holds eng && owns t [||] then [ [||] ] else []
        in
        t.cursor <- Exhausted;
        (sols, true))
  else
    let n = Nd_graph.Cgraph.n (Nd_engine.graph eng) in
    let start =
      match t.cursor with
      | Unstarted -> if n = 0 then None else Some (Tuple.min arity)
      | At a -> Some a
      | Exhausted -> None
    in
    let acc = ref [] in
    let count = ref 0 in
    let rec go start =
      match start with
      | None -> (Exhausted, true)
      | Some a when !count >= k -> (At a, false)
      | Some a -> (
          match owned_next t a with
          | None -> (Exhausted, true)
          | Some sol ->
              acc := sol :: !acc;
              incr count;
              go (Tuple.succ ~n sol))
    in
    let final, exhausted = go start in
    t.cursor <- final;
    (List.rev !acc, exhausted)

let cmd_enumerate t arg =
  let k =
    if arg = "" then t.config.max_enumerate
    else
      match int_of_string_opt arg with
      | Some k when k > 0 -> min k t.config.max_enumerate
      | _ -> Nd_error.user_errorf "enumerate: bad page size %S" arg
  in
  let sols, exhausted = with_request_budget t (fun () -> page t k) in
  List.map (fun s -> "sol " ^ fmt_tuple s) sols
  @ [
      Printf.sprintf "end %d%s" (List.length sols)
        (if exhausted then " complete" else "");
    ]

(* Mutations invalidate the enumeration cursor: the solution order over
   the new graph need not extend the old page sequence, so a stale
   cursor could skip or duplicate answers.  Every successful update
   therefore resets it; clients re-enumerate from the top.

   Journaling is per-mutation, after the engine has applied it: a batch
   that dies on a budget error mid-list journals exactly the applied
   prefix, so replay reconstructs the true epoch. *)
let absorb t muts =
  with_request_budget t (fun () ->
      List.iter
        (fun m ->
          Nd_engine.update t.eng m;
          match t.config.journal with
          | None -> ()
          | Some sink -> sink (Nd_graph.Cgraph.mutation_to_string m))
        muts);
  t.cursor <- Unstarted;
  Metrics.add m_updates (List.length muts);
  [
    Printf.sprintf "epoch %d applied %d%s"
      (Nd_engine.epoch t.eng) (List.length muts)
      (match Nd_engine.degradation t.eng with
      | `None -> ""
      | `Stale_rebuild _ -> " stale_rebuild"
      | `Fallback _ -> " fallback");
  ]

let cmd_update t arg =
  if arg = "" then Nd_error.user_errorf "update: missing mutation"
  else absorb t [ Nd_graph.Cgraph.mutation_of_string arg ]

let cmd_batch_update t arg =
  let muts =
    List.filter_map
      (fun s ->
        let s = String.trim s in
        if s = "" then None else Some (Nd_graph.Cgraph.mutation_of_string s))
      (String.split_on_char ';' arg)
  in
  if muts = [] then Nd_error.user_errorf "batch-update: no mutations given"
  else absorb t muts

let mode_word t =
  match Nd_engine.degradation t.eng with
  | `None -> "none"
  | `Stale_rebuild _ -> "stale_rebuild"
  | `Fallback _ -> "fallback"

(* epoch + mode ride on the health line so a router's lag/degradation
   probe is one round-trip, not two *)
let cmd_health t =
  let c = counts t in
  [
    Printf.sprintf
      "health ok requests=%d ok=%d user=%d budget=%d internal=%d shed=%d \
       degraded=%b cache=%d epoch=%d mode=%s"
      c.requests c.ok c.user_errors c.budget_errors c.internal_errors
      c.overloaded
      (Nd_engine.degraded t.eng)
      (Nd_engine.cache_size t.eng)
      (Nd_engine.epoch t.eng) (mode_word t);
  ]

let dispatch t line =
  let cmd, arg = split_command line in
  match cmd with
  | "quit" ->
      t.quit <- true;
      `Bye
  | "next" ->
      let tup = parse_tuple arg in
      let r = with_request_budget t (fun () -> owned_next t tup) in
      `Ok
        [
          (match r with Some sol -> "sol " ^ fmt_tuple sol | None -> "none");
        ]
  | "test" ->
      let tup = parse_tuple arg in
      (* engine validation first, ownership second: a malformed tuple is
         [err user] on every shard, never a silent [false] *)
      let r =
        with_request_budget t (fun () -> Nd_engine.test t.eng tup && owns t tup)
      in
      `Ok [ string_of_bool r ]
  | "enumerate" -> `Ok (cmd_enumerate t arg)
  | "update" -> `Ok (cmd_update t arg)
  | "batch-update" -> `Ok (cmd_batch_update t arg)
  | "epoch" -> `Ok [ Printf.sprintf "epoch %d" (Nd_engine.epoch t.eng) ]
  | "reset" ->
      t.cursor <- Unstarted;
      `Ok []
  | "stats" -> `Ok [ Nd_engine.Stats.to_json (Nd_engine.stats t.eng) ]
  | "metrics" ->
      (* Prometheus text exposition of the whole registry; rendered from
         an atomic snapshot, so a concurrent reset cannot tear it.  No
         exposition line can collide with a terminator (they all start
         with '#' or "nd_"). *)
      `Ok
        (List.filter
           (fun l -> l <> "")
           (String.split_on_char '\n' (Nd_trace.Prometheus.render_current ())))
  | "health" -> `Ok (cmd_health t)
  | "inject" when t.config.chaos -> (
      (* deliberate fault injection, for proving request isolation:
         the raise happens *inside* the handler, exactly where a real
         bug would fire *)
      match arg with
      | "internal" -> Nd_error.invariantf "injected internal fault (chaos)"
      | "user" -> Nd_error.user_errorf "injected user fault (chaos)"
      | "crash" -> raise Not_found (* an untyped failure, for the catch-all *)
      | other -> (
          match split_command other with
          | "sleep", ms_s -> (
              (* hold the engine lock for a while: the deterministic way
                 to pin the server so overload tests can fill the
                 in-flight gate without timing races *)
              match int_of_string_opt ms_s with
              | Some ms when ms >= 0 ->
                  (try ignore (Unix.select [] [] [] (float_of_int ms /. 1000.))
                   with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                  `Ok [ Printf.sprintf "slept %d" ms ]
              | _ -> Nd_error.user_errorf "inject sleep: bad duration %S" ms_s)
          | _ -> Nd_error.user_errorf "inject: unknown fault class %S" other))
  | _ ->
      Nd_error.user_errorf "unknown command %S (try next/test/enumerate/update/batch-update/epoch/reset/stats/metrics/health/quit)"
        cmd

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSONL row per handled request: the event log gets the plain row,
   the flight recorder (when armed) the same row extended with the
   engine epoch — the join key a post-mortem needs against the
   restarted worker's journal-replayed boot epoch.  ts_us is integer
   wall-clock microseconds: whole seconds were too coarse to order
   events across fleet processes. *)
let log_event t ~t0 ~rid ~span ~cmd ~status ~latency_us ~lines =
  let row ?epoch () =
    Printf.sprintf
      "{\"ts_us\":%d,\"rid\":%d,\"span\":%d,\"cmd\":\"%s\",\"status\":\"%s\"%s,\"latency_us\":%d,\"lines\":%d}"
      (int_of_float (t0 *. 1e6))
      rid span (json_escape cmd) status
      (match epoch with
      | None -> ""
      | Some e -> Printf.sprintf ",\"epoch\":%d" e)
      latency_us lines
  in
  (match t.config.event_log with None -> () | Some sink -> sink (row ()));
  match t.config.flight with
  | None -> ()
  | Some sink -> sink (row ~epoch:(Nd_engine.epoch t.eng) ())

(* Admission: decided under [adm] only, never the engine lock — a shed
   verdict must stay O(1) even while the engine is pinned by a slow
   request.  The in-flight gauge counts requests admitted past the gate
   (processing or queued on the engine lock); it is released in the
   [Fun.protect] finalizer of {!handle}. *)
let admit t =
  Mutex.protect t.sh.adm @@ fun () ->
  t.sh.c_requests <- t.sh.c_requests + 1;
  Metrics.incr m_requests;
  let rid = t.sh.c_requests in
  if !(t.sh.stop) then begin
    t.sh.c_shutting_down <- t.sh.c_shutting_down + 1;
    Metrics.incr m_err_shutting_down;
    `Reject (rid, "shutting-down", "server is draining")
  end
  else
    match t.config.max_inflight with
    | Some m when t.sh.inflight >= m ->
        t.sh.c_overloaded <- t.sh.c_overloaded + 1;
        Metrics.incr m_err_overloaded;
        `Reject
          ( rid,
            "overloaded",
            Printf.sprintf "retry-after-ms=%d in-flight limit %d reached"
              t.config.retry_after_ms m )
    | _ ->
        t.sh.inflight <- t.sh.inflight + 1;
        `Admit rid

let tally t f = Mutex.protect t.sh.adm f

let handle t line =
  let line = String.trim line in
  if line = "" then []
  else begin
    let cmd, _ = split_command line in
    let t0 = Unix.gettimeofday () in
    match admit t with
    | `Reject (rid, cls, msg) ->
        let reply = [ Printf.sprintf "err %s rid=%d span=0 %s" cls rid msg ] in
        let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        Metrics.observe h_latency latency_us;
        log_event t ~t0 ~rid ~span:0 ~cmd ~status:cls ~latency_us ~lines:1;
        reply
    | `Admit rid ->
        Fun.protect
          ~finally:(fun () -> tally t (fun () -> t.sh.inflight <- t.sh.inflight - 1))
        @@ fun () ->
        (* the engine lock spans parsing through reply construction: the
           engine handle, the global budget slot and the tracer's span
           stack are all single-writer under it; only the connection I/O
           and the admission gate run outside *)
        Mutex.protect t.sh.lock @@ fun () ->
        (* span = the tracer's id for this request (0 with tracing off);
           stamped with rid into every error terminator and event-log line
           so a failing request joins to its trace. *)
        let span = ref 0 in
        let status = ref "ok" in
        let err cls m =
          status := cls;
          Printf.sprintf "err %s rid=%d span=%d %s" cls rid !span m
        in
        (* the optional trailing trace=<id>:<span> request attribute:
           stripped before dispatch; a valid context re-parents this
           request's span across the process boundary (the merge
           resolves the ctx.* attrs), a malformed one is a structured
           user error naming the attribute — never a protocol desync *)
        let base, ctx = Nd_obs.Ctx.split_line line in
        let ctx_attrs =
          match ctx with Some (Ok c) -> Nd_obs.Ctx.attrs c | _ -> []
        in
        let reply =
          Nd_trace.with_span "server.request"
            ~attrs:(("rid", string_of_int rid) :: ("cmd", cmd) :: ctx_attrs)
          @@ fun () ->
          span := Nd_trace.current_span_id ();
          (* Request isolation: every failure class an answering call can
             produce becomes a structured terminator line.  The final
             catch-all exists because an unexpected exception must degrade
             to an error reply, never to a dead loop. *)
          match
            (match ctx with
            | Some (Error m) ->
                Nd_error.user_errorf "bad trace= attribute: %s" m
            | _ -> ());
            dispatch t base
          with
          | `Ok lines ->
              tally t (fun () -> t.sh.c_ok <- t.sh.c_ok + 1);
              Metrics.incr m_ok;
              lines @ [ "ok" ]
          | `Bye ->
              status := "bye";
              [ "bye" ]
          | exception (Nd_error.User_error m | Invalid_argument m | Failure m) ->
              tally t (fun () -> t.sh.c_user <- t.sh.c_user + 1);
              Metrics.incr m_err_user;
              [ err "user" m ]
          | exception Nd_error.Budget_exceeded info ->
              tally t (fun () -> t.sh.c_budget <- t.sh.c_budget + 1);
              Metrics.incr m_err_budget;
              [ err "budget" (Nd_error.describe_budget info) ]
          | exception Nd_error.Internal_invariant m ->
              tally t (fun () -> t.sh.c_internal <- t.sh.c_internal + 1);
              Metrics.incr m_err_internal;
              [ err "internal" m ]
          | exception Stack_overflow ->
              tally t (fun () -> t.sh.c_internal <- t.sh.c_internal + 1);
              Metrics.incr m_err_internal;
              [ err "internal" "stack overflow in request handler" ]
          | exception e ->
              tally t (fun () -> t.sh.c_internal <- t.sh.c_internal + 1);
              Metrics.incr m_err_internal;
              [ err "internal" ("uncaught exception: " ^ Printexc.to_string e) ]
        in
        let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        Metrics.observe h_latency latency_us;
        log_event t ~t0 ~rid ~span:!span ~cmd ~status:!status ~latency_us
          ~lines:(List.length reply);
        reply
  end

(* ---------------- the loop ---------------- *)

let serve t ic oc =
  let emit lines =
    List.iter
      (fun l ->
        output_string oc l;
        output_char oc '\n')
      lines;
    flush oc
  in
  let rec loop () =
    if !(t.sh.stop) then emit [ "bye" ]
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
          (* the reply is written and flushed in full before the stop
             flag is consulted: that is the drain guarantee (a request
             racing the flag itself gets [err shutting-down] from the
             admission gate rather than a dropped line) *)
          emit (handle t line);
          if t.quit then ()
          else if !(t.sh.stop) then emit [ "bye" ]
          else loop ()
  in
  loop ()

let default_backlog = 64

(* ---------------- hygiene-bounded socket I/O ---------------- *)

(* Bounded write: select-gated so a peer that stops reading cannot
   wedge the connection thread past [deadline]. *)
let send_all ?deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then `Sent
    else
      let now = Unix.gettimeofday () in
      match deadline with
      | Some dl when now >= dl -> `Timeout
      | _ -> (
          let wait =
            match deadline with
            | None -> 0.5
            | Some dl -> Float.min 0.5 (Float.max 0.0 (dl -. now))
          in
          match Unix.select [] [ fd ] [] wait with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> `Closed
          | _, [], _ -> go off
          | _ -> (
              match Unix.write_substring fd s off (len - off) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
              | exception Unix.Unix_error _ -> `Closed
              | n -> go (off + n)))
  in
  go 0

let emit_lines ?deadline fd lines =
  if lines = [] then `Sent
  else send_all ?deadline fd (String.concat "" (List.map (fun l -> l ^ "\n") lines))

(* First complete line out of the receive buffer ('\n'-terminated,
   optional '\r' stripped); the remainder stays buffered for pipelined
   requests. *)
let take_line buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      let last = if i > 0 && s.[i - 1] = '\r' then i - 1 else i in
      Some (String.sub s 0 last)

(* The bounded request-line reader — every connection-hygiene deadline
   lives here.  Select ticks at most 0.2s so the stop flag is honored
   promptly; [io_timeout_ms] bounds how long a *started* line may
   trickle in (slow-loris), [idle_timeout_ms] bounds the quiet gap
   between requests (the idle reaper), [max_line_bytes] bounds the
   line buffer (memory hygiene).  A complete buffered line is returned
   even when the stop flag is already up: the admission gate turns it
   into [err shutting-down] instead of dropping it silently. *)
let recv_request t fd buf =
  let chunk = Bytes.create 4096 in
  let start = Unix.gettimeofday () in
  let first_byte = ref (if Buffer.length buf > 0 then Some start else None) in
  let to_s ms = float_of_int ms /. 1000. in
  let rec loop () =
    match take_line buf with
    | Some line ->
        if String.length line > t.config.max_line_bytes then `Too_long
        else `Line line
    | None ->
        if Buffer.length buf > t.config.max_line_bytes then `Too_long
        else if !(t.sh.stop) then `Stopped
        else begin
          let now = Unix.gettimeofday () in
          let deadline =
            match !first_byte with
            | Some tb ->
                Option.map (fun ms -> tb +. to_s ms) t.config.io_timeout_ms
            | None ->
                Option.map (fun ms -> start +. to_s ms) t.config.idle_timeout_ms
          in
          match deadline with
          | Some dl when now >= dl ->
              if !first_byte = None then `Idle else `Timeout
          | _ -> (
              let wait =
                match deadline with
                | None -> 0.2
                | Some dl -> Float.min 0.2 (Float.max 0.0 (dl -. now))
              in
              match Unix.select [ fd ] [] [] wait with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
              | exception Unix.Unix_error (Unix.EBADF, _, _) -> `Eof
              | [], _, _ -> loop ()
              | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                  | exception Unix.Unix_error _ -> `Eof
                  | 0 ->
                      (* EOF with a trailing unterminated line: serve it,
                         like [input_line] would; the next read sees a
                         clean EOF *)
                      if Buffer.length buf > 0 then begin
                        let line = Buffer.contents buf in
                        Buffer.clear buf;
                        if String.length line > t.config.max_line_bytes then
                          `Too_long
                        else `Line line
                      end
                      else `Eof
                  | n ->
                      if !first_byte = None then
                        first_byte := Some (Unix.gettimeofday ());
                      Buffer.add_subbytes buf chunk 0 n;
                      loop ()))
        end
  in
  loop ()

(* A transport-hygiene violation becomes a synthesized request: it gets
   a real rid, lands in the user-error counters and the event log, and
   is answered with a structured [err user] line before the connection
   closes. *)
let hygiene_error t ~cmd msg =
  let t0 = Unix.gettimeofday () in
  let rid =
    Mutex.protect t.sh.adm (fun () ->
        t.sh.c_requests <- t.sh.c_requests + 1;
        Metrics.incr m_requests;
        t.sh.c_user <- t.sh.c_user + 1;
        Metrics.incr m_err_user;
        t.sh.c_requests)
  in
  log_event t ~t0 ~rid ~span:0 ~cmd ~status:"user" ~latency_us:0 ~lines:1;
  Printf.sprintf "err user rid=%d span=0 %s" rid msg

(* Drain connections parked in the kernel accept backlog at stop time:
   each completed-but-unaccepted connection gets a structured refusal
   and a clean close instead of the silent reset it would see when the
   listen socket is unlinked.  Non-blocking; returns the number
   drained. *)
let drain_backlog sock =
  let refusal = "err shutting-down rid=0 span=0 server is draining\nbye\n" in
  let rec go n =
    match Unix.select [ sock ] [] [] 0.0 with
    | exception Unix.Unix_error _ -> n
    | [], _, _ -> n
    | _ -> (
        match Unix.accept sock with
        | exception Unix.Unix_error _ -> n
        | fd, _ ->
            Metrics.incr m_backlog_drained;
            ignore
              (send_all
                 ~deadline:(Unix.gettimeofday () +. 1.0)
                 fd refusal);
            (try Unix.close fd with Unix.Unix_error _ -> ());
            go (n + 1))
  in
  go 0

(* Thread-per-connection accept loop.  Sys-threads (one domain) are the
   right tool here: requests serialize on the engine lock anyway, so
   the concurrency win is connection I/O overlap, and the select-based
   reader keeps every blocking point deadline-bounded.  [quit] is
   connection-scoped in socket mode (it closes that client's session);
   {!request_stop} is what ends the server. *)
let serve_socket ?(backlog = default_backlog) t ~path =
  if backlog < 1 then invalid_arg "Nd_server.serve_socket: backlog must be >= 1";
  (* a peer closing mid-write must surface as EPIPE on the write, never
     as a process-killing signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  (* live_fds: connections still open, so a stopping server can unblock
     their readers; threads: every connection thread ever spawned,
     joined before returning (joining a finished thread is free).  Both
     under [reg_m]; a connection thread removes its own fd before
     closing it, so the shutdown sweep never touches a recycled
     descriptor. *)
  let reg_m = Mutex.create () in
  let live_fds = ref [] in
  let threads = ref [] in
  let io_deadline () =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      t.config.io_timeout_ms
  in
  let conn fd =
    let s = session t in
    let buf = Buffer.create 256 in
    let emit lines = emit_lines ?deadline:(io_deadline ()) fd lines in
    let rec loop () =
      match recv_request s fd buf with
      | `Eof -> ()
      | `Stopped -> ignore (emit [ "bye" ])
      | `Idle ->
          (* the idle reaper: a polite bye, then the connection closes *)
          Metrics.incr m_idle_reaped;
          ignore (emit [ "bye" ])
      | `Timeout ->
          Metrics.incr m_io_timeouts;
          ignore
            (emit
               [
                 hygiene_error s ~cmd:"(transport)"
                   (Printf.sprintf
                      "request line stalled past io-timeout-ms=%d"
                      (Option.value ~default:0 t.config.io_timeout_ms));
               ])
      | `Too_long ->
          Metrics.incr m_oversized_lines;
          ignore
            (emit
               [
                 hygiene_error s ~cmd:"(transport)"
                   (Printf.sprintf "request line exceeds max-line-bytes=%d"
                      t.config.max_line_bytes);
               ])
      | `Line line -> (
          match emit (handle s line) with
          | `Timeout | `Closed -> ()
          | `Sent ->
              if s.quit then ()
              else if !(s.sh.stop) then ignore (emit [ "bye" ])
              else loop ())
    in
    (try loop () with Sys_error _ -> ());
    Mutex.protect reg_m (fun () ->
        live_fds := List.filter (fun fd' -> fd' != fd) !live_fds);
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec accept_loop () =
    if !(t.sh.stop) then ()
    else
      (* wake periodically so request_stop is honored even while no
         client is connecting *)
      match Unix.select [ sock ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ ->
          (match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | fd, _ -> (
              let over =
                match t.config.max_conns with
                | Some m ->
                    Mutex.protect reg_m (fun () -> List.length !live_fds) >= m
                | None -> false
              in
              if over then begin
                (* connection-level shedding: a structured refusal, then
                   close — never an unbounded accept queue *)
                Metrics.incr m_conns_rejected;
                ignore
                  (send_all
                     ~deadline:(Unix.gettimeofday () +. 1.0)
                     fd
                     (Printf.sprintf
                        "err overloaded rid=0 span=0 retry-after-ms=%d \
                         connection limit %d reached\nbye\n"
                        t.config.retry_after_ms
                        (Option.value ~default:0 t.config.max_conns)));
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                Mutex.protect reg_m (fun () -> live_fds := fd :: !live_fds);
                threads := Thread.create conn fd :: !threads
              end));
          accept_loop ()
  in
  accept_loop ();
  (* drain, in dependency order: first the connections parked in the
     kernel backlog (refused with [err shutting-down]), then the live
     readers are unblocked (their loops emit a final [bye]), then every
     connection thread is joined *)
  ignore (drain_backlog sock);
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (Mutex.protect reg_m (fun () -> !live_fds));
  List.iter Thread.join !threads

(* ---------------- supervisor ---------------- *)

module Supervisor = struct
  type policy = {
    backoff : Backoff.schedule;
    max_crashes : int;
    window_ms : int;
  }

  let default_policy =
    {
      backoff = Backoff.schedule ~max_ms:5_000 100;
      max_crashes = 5;
      window_ms = 30_000;
    }

  type outcome = Exited of int | Signaled of int

  let describe_outcome = function
    | Exited c -> Printf.sprintf "exit %d" c
    | Signaled s -> Printf.sprintf "signal %d" s

  type decision = Restart_after_ms of int | Give_up of string

  type state = { mutable crash_times : int list (* newest first, ms *) }

  let init () = { crash_times = [] }

  let crashes_in_window p st ~now_ms =
    st.crash_times <-
      List.filter (fun ts -> now_ms - ts < p.window_ms) st.crash_times;
    List.length st.crash_times

  (* The circuit breaker: crashes outside the sliding window are
     forgiven (the worker was healthy long enough to reset the
     breaker); [max_crashes] within it trips Give_up.  The backoff
     attempt number is the crash count inside the window, so a worker
     that recovers for a while restarts fast again. *)
  let decide ?(jitter = Backoff.none) p st ~now_ms outcome =
    if p.max_crashes < 1 then invalid_arg "Supervisor.decide: max_crashes < 1";
    ignore (crashes_in_window p st ~now_ms);
    st.crash_times <- now_ms :: st.crash_times;
    let n = List.length st.crash_times in
    if n >= p.max_crashes then
      Give_up
        (Printf.sprintf "%d crashes within %dms (last: %s)" n p.window_ms
           (describe_outcome outcome))
    else Restart_after_ms (Backoff.delay_ms ~jitter p.backoff ~attempt:n)

  let run ?(policy = default_policy) ?(jitter = Backoff.none)
      ?(sleep_ms =
        fun ms ->
          try ignore (Unix.select [] [] [] (float_of_int ms /. 1000.))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      ?(now_ms = fun () -> int_of_float (Unix.gettimeofday () *. 1000.))
      ?(log = fun (_ : string) -> ())
      ?(on_crash = fun (_ : outcome) (_ : decision) -> ()) ~spawn ~wait () =
    let st = init () in
    let rec loop () =
      let w = spawn () in
      match wait w with
      | Exited 0 ->
          log "worker exited cleanly";
          Ok ()
      | outcome -> (
          log (Printf.sprintf "worker died (%s)" (describe_outcome outcome));
          let d = decide ~jitter policy st ~now_ms:(now_ms ()) outcome in
          (* the black-box hook: the worker is dead and its replacement
             not yet spawned, so a harvester reads the flight file
             without racing either incarnation *)
          on_crash outcome d;
          match d with
          | Give_up reason ->
              log ("giving up: " ^ reason);
              Error reason
          | Restart_after_ms d ->
              log (Printf.sprintf "restarting in %dms" d);
              sleep_ms d;
              loop ())
    in
    loop ()
end

(* ---------------- client ---------------- *)

module Client = struct
  type transport = string -> string list

  type policy = {
    retries : int;
    backoff_ms : int;
    multiplier : float;
    jitter : int -> int;
    sleep_ms : int -> unit;
  }

  let default_policy =
    {
      retries = 3;
      backoff_ms = 50;
      multiplier = 2.0;
      jitter = Backoff.full_jitter ();
      sleep_ms =
        (fun ms ->
          try ignore (Unix.select [] [] [] (float ms /. 1000.))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    }

  type status =
    | Ok_reply
    | Err_reply of string * string
    | Transport_error of string
    | Closed

  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let status_of_reply reply =
    match List.rev reply with
    | [] -> Closed
    | last :: _ ->
        if last = "ok" then Ok_reply
        else if last = "bye" then Closed
        else if starts_with "err " last then
          let rest = String.sub last 4 (String.length last - 4) in
          match String.index_opt rest ' ' with
          | None -> Err_reply (rest, "")
          | Some i ->
              Err_reply
                ( String.sub rest 0 i,
                  String.sub rest (i + 1) (String.length rest - i - 1) )
        else
          (* lines arrived but no terminator: the connection died
             mid-reply — a transport failure, not a protocol verdict *)
          Transport_error ("unterminated reply: " ^ last)

  (* The server's shed reply names its own floor: retry-after-ms=N
     inside the err message.  Absent or malformed → 0. *)
  let retry_after_of_msg msg =
    List.fold_left
      (fun acc tok ->
        match acc with
        | Some _ -> acc
        | None ->
            if starts_with "retry-after-ms=" tok then
              int_of_string_opt
                (String.sub tok 15 (String.length tok - 15))
            else None)
      None
      (String.split_on_char ' ' msg)
    |> Option.value ~default:0

  type result = { reply : string list; attempts : int; status : status }

  let call ?(policy = default_policy) transport req =
    let sched =
      Backoff.schedule ~multiplier:policy.multiplier policy.backoff_ms
    in
    let rec go attempt =
      let reply =
        (* transport failures below the protocol (reset, broken pipe,
           refused/missing socket during a supervisor restart) are
           transient by classification *)
        match transport req with
        | reply -> `Reply reply
        | exception End_of_file -> `Transport "eof"
        | exception Sys_error m -> `Transport m
        | exception
            Unix.Unix_error
              ( ( Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNREFUSED
                | Unix.ECONNABORTED | Unix.ENOENT ),
                fn,
                _ ) ->
            `Transport ("unix error in " ^ fn)
      in
      let reply, status =
        match reply with
        | `Reply r -> (r, status_of_reply r)
        | `Transport m -> ([], Transport_error m)
      in
      let retry ~floor_ms =
        let d =
          Backoff.delay_after_ms ~jitter:policy.jitter ~at_least_ms:floor_ms
            sched ~attempt
        in
        policy.sleep_ms d;
        go (attempt + 1)
      in
      match status with
      (* transient: the budget may pass on a quieter machine (wall
         deadlines) or after the client simplifies; bounded
         exponential backoff, then give up with the last reply *)
      | Err_reply ("budget", _) when attempt <= policy.retries ->
          retry ~floor_ms:0
      (* shed at the admission gate, or a router bag group with no live
         replica: honor the server's floor, with full jitter on top so
         a shed cohort does not return in lockstep *)
      | Err_reply (("overloaded" | "unavailable"), msg)
        when attempt <= policy.retries ->
          retry ~floor_ms:(retry_after_of_msg msg)
      | Transport_error _ when attempt <= policy.retries -> retry ~floor_ms:0
      | status -> { reply; attempts = attempt; status }
    in
    go 1

  let channel_transport ic oc req =
    output_string oc req;
    output_char oc '\n';
    flush oc;
    let rec read acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | l ->
          let acc = l :: acc in
          if l = "ok" || l = "bye" || starts_with "err " l then List.rev acc
          else read acc
    in
    read []

  type connect_policy = {
    connect_retries : int;
    connect_backoff_ms : int;
    connect_deadline_ms : int;
    connect_jitter : int -> int;
    connect_sleep_ms : int -> unit;
    connect_now_ms : unit -> int;
  }

  let default_connect_policy =
    {
      connect_retries = 8;
      connect_backoff_ms = 20;
      connect_deadline_ms = 2_000;
      connect_jitter = Backoff.full_jitter ();
      connect_sleep_ms =
        (fun ms ->
          try ignore (Unix.select [] [] [] (float ms /. 1000.))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      connect_now_ms = (fun () -> int_of_float (Unix.gettimeofday () *. 1000.));
    }

  (* Bounded connect: a shard mid-restart (supervisor backoff window)
     leaves its socket missing or refusing for a little while; retrying
     with backoff under a hard deadline turns that into either a live
     connection or an [Error] the caller classifies as
     {!Transport_error} — never an indefinite block in connect(2). *)
  let connect ?(policy = default_connect_policy) path =
    let sched = Backoff.schedule ~max_ms:1_000 policy.connect_backoff_ms in
    let t0 = policy.connect_now_ms () in
    let rec go attempt =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let elapsed = policy.connect_now_ms () - t0 in
          if
            attempt > policy.connect_retries
            || elapsed >= policy.connect_deadline_ms
          then
            Error
              (Printf.sprintf "connect %s: %s after %d attempts in %dms" path
                 (Unix.error_message e) attempt elapsed)
          else begin
            policy.connect_sleep_ms
              (Backoff.delay_ms ~jitter:policy.connect_jitter sched ~attempt);
            go (attempt + 1)
          end
    in
    go 1
end
