(** Fault-isolated request loop over a prepared engine handle.

    The ROADMAP's production posture demands that one prepared handle
    answer many requests from untrusted clients without a malformed
    request, a pathological workload, or an internal bug taking the
    process down.  [Nd_server] wraps an {!Nd_engine.t} in a line
    protocol with {e per-request} budgets and deadlines and {e total}
    request isolation: every failure an answering call can produce is
    mapped through the {!Nd_error} taxonomy to a structured error
    reply, and the loop carries on.

    {2 Protocol}

    One request per line; every reply is zero or more data lines
    followed by exactly one terminator line — [ok], [err <class>
    rid=<n> span=<n> <message>], or [bye] — so clients always know
    where a reply ends.

    {v
    next [T]          -> sol T' | none                 then ok
    test [T]          -> true | false                  then ok
    enumerate [k]     -> sol T (xk) , end N [complete] then ok
    update M          -> epoch N applied 1 [mode]      then ok
    batch-update M;M… -> epoch N applied k [mode]      then ok
    epoch             -> epoch N                       then ok
    reset             -> (rewind the enumeration cursor) ok
    stats             -> the nd-engine-stats/1 JSON line, then ok
    metrics           -> Prometheus text exposition lines, then ok
    health            -> health <summary line>,        then ok
    inject <class>    -> (chaos builds only) raise inside the handler
    quit              -> bye
    v}

    [T] is a comma-separated vertex tuple ([next 3,0]); omitted for
    sentences.  [enumerate] is a {e cursor}: each call returns the next
    [k] solutions (default and cap from {!config}), [end N complete]
    marks exhaustion, and [reset] rewinds.  The cursor only advances
    when a page is fully produced, so a client whose page died on a
    budget error can retry it verbatim without losing solutions.

    [M] is a mutation in the {!Nd_graph.Cgraph.mutation_of_string} wire
    syntax — [add-edge U V], [remove-edge U V], [set-color C V on|off];
    [batch-update] takes several separated by [;].  Both verbs absorb
    the mutation(s) through {!Nd_engine.update} (bounded maintenance,
    falling back to a budgeted full re-prepare past the staleness
    threshold), run under the same per-request budget as answering
    verbs, and {e reset the enumeration cursor} — the solution order
    over the mutated graph need not extend the old page sequence.  The
    reply reports the new graph epoch, the number of mutations applied,
    and, when the handle is no longer the bounded-maintenance one, a
    trailing mode word ([stale_rebuild] — full quality, rebuilt; or
    [fallback] — degraded).  [epoch] reads the current epoch without
    mutating.

    Error classes mirror the taxonomy: [err user …] (malformed request,
    bad tuple — fix and resend), [err budget …] (the per-request budget
    tripped — transient, retry or simplify), [err internal …] (the
    engine caught itself lying; never retry).  The session survives all
    three.

    {2 Error-reply grammar and the event log}

    Error terminators carry two join keys between the class and the
    message:

    {v
    err <class> rid=<RID> span=<SPAN> <message>
    v}

    [RID] is the request's 1-based sequence number in this session;
    [SPAN] is the id of its [server.request] span in {!Nd_trace} ([0]
    when tracing is off).  {!Client.status_of_reply} still parses the
    class as the first word after [err ], so existing clients keep
    working — the keys simply prefix the human message.

    When {!config.event_log} is set, every handled request additionally
    appends one JSON line to the sink (the structured event log):

    {v
    {"ts":<epoch seconds>,"rid":N,"span":N,"cmd":"<verb>",
     "status":"ok|bye|user|budget|internal","latency_us":N,"lines":N}
    v}

    [metrics] replies with the whole {!Nd_util.Metrics} registry in the
    Prometheus text format (rendered from an atomic
    {!Nd_util.Metrics.snapshot}, so a concurrent reset can never tear
    the scrape); exposition lines all start with [#] or [nd_] and so
    can never collide with a terminator. *)

type config = {
  request_budget_ops : int option;
      (** ops ceiling installed around every single request *)
  request_timeout_ms : int option;  (** per-request deadline *)
  max_enumerate : int;
      (** page-size cap (and default) for [enumerate] (default 1000) *)
  chaos : bool;
      (** accept the [inject] fault command — test/CI builds only *)
  event_log : (string -> unit) option;
      (** sink for the per-request JSONL event log (one line per handled
          request, see the grammar above); [None] disables it *)
}

val default_config : config

type t
(** A serving session: engine handle + config + shared counters +
    per-session enumeration cursor.  Sessions over the same engine
    (see {!session}) share one request lock: request processing is
    serialized against the (single, immutable-prepared) handle, while
    each connection's I/O proceeds concurrently. *)

val create : ?config:config -> Nd_engine.t -> t

val session : t -> t
(** A new session sharing [t]'s engine, config, request lock, stop flag
    and counters, with a fresh enumeration cursor and quit state —
    one per client connection ({!serve_socket} makes these itself). *)

val handle : t -> string -> string list
(** Process one request line; never raises.  Empty/blank lines yield
    [[]] (no reply).  The terminator of a non-empty reply is always
    [ok], [err …] or [bye]. *)

type counts = {
  requests : int;
  ok : int;
  user_errors : int;
  budget_errors : int;
  internal_errors : int;
}

val counts : t -> counts
(** Served-request accounting, aggregated over every session sharing
    this engine (independent of {!Nd_util.Metrics}, which mirrors these
    as counters plus a latency histogram when enabled). *)

val quitting : t -> bool
(** A [quit] was served (the loop should end after its reply). *)

val request_stop : t -> unit
(** Ask every loop sharing this engine to stop gracefully: in-flight
    requests finish and their replies are fully written (the drain
    guarantee), then each loop closes with [bye] instead of reading
    further requests.  Safe to call from a signal handler. *)

val serve : t -> in_channel -> out_channel -> unit
(** Run the loop until [quit], EOF, or {!request_stop}.  Replies are
    flushed after every request. *)

val default_backlog : int
(** Default [backlog] for {!serve_socket} (64). *)

val serve_socket : ?backlog:int -> t -> path:string -> unit
(** Serve over a Unix-domain socket, {e one thread per connection}:
    every accepted client gets its own {!session} (own enumeration
    cursor), and all sessions answer through the shared request lock
    against the one prepared handle, so concurrent clients are safe and
    their connection I/O overlaps.  [backlog] (default
    {!default_backlog}) is the kernel listen queue — connection bursts
    up to that size are queued instead of refused.

    In socket mode [quit] is {e connection-scoped}: it closes that
    client's session and leaves the server (and other clients) running.
    {!request_stop} ends the server: it stops accepting, drains every
    connection, joins their threads, and removes the socket file on the
    way out.
    @raise Invalid_argument when [backlog < 1]. *)

(** {1 Client harness}

    The retrying client used by the integration tests and CI: a
    {!Client.transport} abstracts {e how} a request line reaches a
    server (direct {!handle} call in-process, or channels over a pipe /
    socket), and {!Client.call} layers bounded retries with exponential
    backoff on top — transient ([err budget]) replies are retried,
    anything else is returned as-is. *)
module Client : sig
  type transport = string -> string list
  (** Send one request line, return the full reply (data lines +
      terminator). *)

  type policy = {
    retries : int;  (** extra attempts after the first *)
    backoff_ms : int;  (** delay before the first retry *)
    multiplier : float;  (** backoff growth per retry *)
    sleep_ms : int -> unit;  (** injectable for tests *)
  }

  val default_policy : policy
  (** 3 retries, 50ms initial backoff, doubling, real sleep. *)

  type status =
    | Ok_reply
    | Err_reply of string * string  (** class, message *)
    | Closed  (** terminator was [bye] (or the reply was empty) *)

  val status_of_reply : string list -> status

  type result = {
    reply : string list;  (** the final attempt's reply *)
    attempts : int;
    status : status;
  }

  val call : ?policy:policy -> transport -> string -> result

  val channel_transport : in_channel -> out_channel -> transport
  (** Write the request, read lines until a terminator.  EOF mid-reply
      yields what was read (its status will be [Closed]). *)
end
