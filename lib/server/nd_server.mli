(** Fault-isolated request loop over a prepared engine handle.

    The ROADMAP's production posture demands that one prepared handle
    answer many requests from untrusted clients without a malformed
    request, a pathological workload, or an internal bug taking the
    process down.  [Nd_server] wraps an {!Nd_engine.t} in a line
    protocol with {e per-request} budgets and deadlines and {e total}
    request isolation: every failure an answering call can produce is
    mapped through the {!Nd_error} taxonomy to a structured error
    reply, and the loop carries on.

    {2 Protocol}

    One request per line; every reply is zero or more data lines
    followed by exactly one terminator line — [ok], [err <class>
    rid=<n> span=<n> <message>], or [bye] — so clients always know
    where a reply ends.

    {v
    next [T]          -> sol T' | none                 then ok
    test [T]          -> true | false                  then ok
    enumerate [k]     -> sol T (xk) , end N [complete] then ok
    update M          -> epoch N applied 1 [mode]      then ok
    batch-update M;M… -> epoch N applied k [mode]      then ok
    epoch             -> epoch N                       then ok
    reset             -> (rewind the enumeration cursor) ok
    stats             -> the nd-engine-stats/1 JSON line, then ok
    metrics           -> Prometheus text exposition lines, then ok
    health            -> health ok requests=N ok=N user=N budget=N
                         internal=N shed=N degraded=B cache=N
                         epoch=N mode=none|stale_rebuild|fallback
                                                       then ok
    inject <class>    -> (chaos builds only) raise inside the handler
    inject sleep MS   -> (chaos builds only) hold the engine lock MS ms
    quit              -> bye
    v}

    [T] is a comma-separated vertex tuple ([next 3,0]); omitted for
    sentences.  [enumerate] is a {e cursor}: each call returns the next
    [k] solutions (default and cap from {!config}), [end N complete]
    marks exhaustion, and [reset] rewinds.  The cursor only advances
    when a page is fully produced, so a client whose page died on a
    budget error can retry it verbatim without losing solutions.

    [M] is a mutation in the {!Nd_graph.Cgraph.mutation_of_string} wire
    syntax — [add-edge U V], [remove-edge U V], [set-color C V on|off];
    [batch-update] takes several separated by [;].  Both verbs absorb
    the mutation(s) through {!Nd_engine.update} (bounded maintenance,
    falling back to a budgeted full re-prepare past the staleness
    threshold), run under the same per-request budget as answering
    verbs, and {e reset the enumeration cursor} — the solution order
    over the mutated graph need not extend the old page sequence.  The
    reply reports the new graph epoch, the number of mutations applied,
    and, when the handle is no longer the bounded-maintenance one, a
    trailing mode word ([stale_rebuild] — full quality, rebuilt; or
    [fallback] — degraded).  [epoch] reads the current epoch without
    mutating.  When {!config.journal} is set, every {e applied} mutation
    is also appended to the sink in wire syntax — the write-ahead record
    a supervisor-restarted worker replays to recover its epoch.

    [health] ends with [epoch=<N> mode=<word>] — the graph epoch and
    the degradation mode ([none], [stale_rebuild] or [fallback]) — so a
    router detects replica lag {e and} degradation with one probe.

    {2 Inline request attributes}

    Any request line may carry one optional trailing attribute token:

    {v
    <request> [trace=<trace_id>:<parent_span>]
    v}

    [trace_id] is a non-empty string over [A-Za-z0-9._-] naming the
    originating process (see {!Nd_trace.trace_id}); [parent_span] is a
    non-negative decimal span id in that process.  The token is
    stripped before dispatch; when tracing is enabled the request's
    [server.request] span records the context as [ctx.trace]/
    [ctx.span] attrs, which [fodb obs merge-trace] resolves into a
    cross-process parent edge ({!Nd_obs.Merge}).  The router stamps
    this attribute on every fan-out it makes.

    A {e malformed} token (bad id charset, missing [:], negative or
    non-numeric span) answers [err user bad trace= attribute: …] —
    a structured reply naming the attribute, after which the session
    continues in sync; it never desyncs the line protocol.

    {2 Error classes}

    Error classes mirror the taxonomy, extended with the two
    overload-safety classes:

    - [err user …] — malformed request, bad tuple, or a transport-
      hygiene violation (oversized or stalled request line); fix and
      resend.
    - [err budget …] — the per-request budget tripped; transient, retry
      or simplify.
    - [err internal …] — the engine caught itself lying; never retry.
    - [err overloaded … retry-after-ms=R …] — shed at the admission
      gate ({!config.max_inflight} or [max_conns]); the request was
      {e never started}.  Transient by construction: retry after at
      least [R] ms (jittered — see {!Client}).
    - [err shutting-down …] — the request raced {!request_stop}; the
      server is draining and the connection will close.  Reconnect
      elsewhere; retrying this connection cannot succeed.

    Attribute-parse failures (the [trace=] grammar above) are [user]
    errors: [err user … bad trace= attribute: <reason>].

    The session survives [user]/[budget]/[internal]; [overloaded] and
    [shutting-down] are emitted without touching the engine at all.

    {2 Error-reply grammar and the event log}

    Error terminators carry two join keys between the class and the
    message:

    {v
    err <class> rid=<RID> span=<SPAN> <message>
    v}

    [RID] is the request's 1-based sequence number in this session;
    [SPAN] is the id of its [server.request] span in {!Nd_trace} ([0]
    when tracing is off, and for shed/hygiene replies, which never
    enter the traced handler).  {!Client.status_of_reply} still parses
    the class as the first word after [err ], so existing clients keep
    working — the keys simply prefix the human message.  The two
    connection-level refusals written outside any session (accept-time
    connection shedding and backlog draining) use [rid=0].

    When {!config.event_log} is set, every handled request additionally
    appends one JSON line to the sink (the structured event log):

    {v
    {"ts_us":<epoch microseconds>,"rid":N,"span":N,"cmd":"<verb>",
     "status":"ok|bye|user|budget|internal|overloaded|shutting-down",
     "latency_us":N,"lines":N}
    v}

    [ts_us] is integer wall-clock microseconds (whole seconds were too
    coarse to order events across fleet processes).  Transport-hygiene
    violations log with [cmd:"(transport)"] and status [user].

    {!config.flight} receives the same row per request, extended with
    an integer ["epoch"] field (the engine's graph epoch at the time) —
    the crash flight recorder's feed; see {!Nd_obs.Flight} for the ring
    + post-mortem lifecycle behind [fodb serve --blackbox].

    [metrics] replies with the whole {!Nd_util.Metrics} registry in the
    Prometheus text format (rendered from an atomic
    {!Nd_util.Metrics.snapshot}, so a concurrent reset can never tear
    the scrape); exposition lines all start with [#] or [nd_] and so
    can never collide with a terminator.  The overload-safety counters
    (shed requests, rejected connections, io timeouts, oversized lines,
    idle reaps, drained backlog connections) are part of the registry
    and so appear in every scrape.

    {2 Overload model}

    Admission control is decided under its own lock, never the engine
    lock: when {!config.max_inflight} requests are already past the
    gate (processing, or queued on the engine lock), further requests
    are {e shed} in O(1) with [err overloaded] — the server's latency
    for saying "no" stays flat no matter how slow the engine is.
    [max_conns] bounds whole connections the same way at accept time,
    and the kernel [backlog] bounds the unaccepted queue below that.
    Under overload the server therefore degrades by shedding loudly,
    never by queueing silently. *)

type config = {
  request_budget_ops : int option;
      (** ops ceiling installed around every single request *)
  request_timeout_ms : int option;  (** per-request deadline *)
  max_enumerate : int;
      (** page-size cap (and default) for [enumerate] (default 1000) *)
  chaos : bool;
      (** accept the [inject] fault command — test/CI builds only *)
  event_log : (string -> unit) option;
      (** sink for the per-request JSONL event log (one line per handled
          request, see the grammar above); [None] disables it *)
  max_inflight : int option;
      (** admission gate: requests past the gate at once; over it,
          [err overloaded].  [None] (default) disables shedding. *)
  max_conns : int option;
      (** connection gate: live connections at once; over it, accepted
          connections are refused with [err overloaded] + [bye].
          [None] (default) disables it. *)
  io_timeout_ms : int option;
      (** hygiene: max ms a {e started} request line may take to
          arrive (slow-loris guard), and the write deadline for each
          reply.  [None] (default) disables it. *)
  idle_timeout_ms : int option;
      (** hygiene: max ms a connection may sit idle between requests
          before the reaper closes it with [bye].  [None] (default)
          disables it. *)
  max_line_bytes : int;
      (** hygiene: longest accepted request line (default 65536);
          longer lines get [err user] and the connection closes *)
  retry_after_ms : int;
      (** the floor advertised in [err overloaded] replies
          (default 100) *)
  journal : (string -> unit) option;
      (** sink appended one wire-syntax mutation per {e applied}
          mutation — the recovery journal; [None] disables it *)
  owner : (int array -> bool) option;
      (** shard mode: when set, [next]/[enumerate] report only solutions
          the predicate owns (skipping foreign ones through the full
          lexicographic order, so the owned stream stays strictly
          ascending and duplicate-free), and [test] answers [false] for
          a valid tuple this shard does not own.  Mutations and the
          journal are unaffected — every shard tracks the whole graph.
          [None] (default): serve everything.  See {!Nd_cluster} for the
          partition this hosts. *)
  flight : (string -> unit) option;
      (** the crash flight recorder's sink: one event-log row per
          handled request, extended with the engine epoch (grammar
          above).  Wired to {!Nd_obs.Flight.record} by [fodb serve
          --blackbox]; [None] (default) disables it. *)
}

val default_config : config

type t
(** A serving session: engine handle + config + shared counters +
    per-session enumeration cursor.  Sessions over the same engine
    (see {!session}) share one request lock: request processing is
    serialized against the (single, immutable-prepared) handle, while
    each connection's I/O proceeds concurrently. *)

val create : ?config:config -> Nd_engine.t -> t
(** @raise Invalid_argument on a non-positive [max_enumerate],
    [max_line_bytes], [max_inflight], [max_conns], [io_timeout_ms] or
    [idle_timeout_ms], or a negative [retry_after_ms]. *)

val session : t -> t
(** A new session sharing [t]'s engine, config, locks, stop flag
    and counters, with a fresh enumeration cursor and quit state —
    one per client connection ({!serve_socket} makes these itself). *)

val handle : t -> string -> string list
(** Process one request line; never raises.  Empty/blank lines yield
    [[]] (no reply).  The terminator of a non-empty reply is always
    [ok], [err …] or [bye].  The admission gate runs here: a request
    over {!config.max_inflight} returns [err overloaded] without
    touching the engine, and a request racing {!request_stop} returns
    [err shutting-down]. *)

type counts = {
  requests : int;
  ok : int;
  user_errors : int;
  budget_errors : int;
  internal_errors : int;
  overloaded : int;  (** requests shed at the admission gate *)
  shutting_down : int;  (** requests refused while draining *)
}

val counts : t -> counts
(** Served-request accounting, aggregated over every session sharing
    this engine (independent of {!Nd_util.Metrics}, which mirrors these
    as counters plus a latency histogram when enabled). *)

val quitting : t -> bool
(** A [quit] was served (the loop should end after its reply). *)

val request_stop : t -> unit
(** Ask every loop sharing this engine to stop gracefully: in-flight
    requests finish and their replies are fully written (the drain
    guarantee), requests racing the flag get [err shutting-down], then
    each loop closes with [bye] instead of reading further requests.
    Safe to call from a signal handler. *)

val serve : t -> in_channel -> out_channel -> unit
(** Run the loop until [quit], EOF, or {!request_stop}.  Replies are
    flushed after every request. *)

val default_backlog : int
(** Default [backlog] for {!serve_socket} (64). *)

val drain_backlog : Unix.file_descr -> int
(** Accept every connection already parked in [sock]'s kernel backlog
    (non-blocking) and refuse each with
    [err shutting-down rid=0 span=0 …] + [bye] before closing it —
    a structured refusal instead of the silent reset those clients
    would otherwise see when the listen socket is unlinked.  Returns
    the number drained.  {!serve_socket} calls this on the way out;
    exposed for deterministic tests. *)

val serve_socket : ?backlog:int -> t -> path:string -> unit
(** Serve over a Unix-domain socket, {e one thread per connection}:
    every accepted client gets its own {!session} (own enumeration
    cursor), and all sessions answer through the shared request lock
    against the one prepared handle, so concurrent clients are safe and
    their connection I/O overlaps.  [backlog] (default
    {!default_backlog}) is the kernel listen queue — connection bursts
    up to that size are queued instead of refused.

    Connection hygiene (all select-based; no [Thread.kill] anywhere):
    request lines are read through a bounded reader that enforces
    {!config.max_line_bytes} ([err user], close) and
    {!config.io_timeout_ms} against slow-loris trickle ([err user],
    close); {!config.idle_timeout_ms} reaps quiet connections with
    [bye]; reply writes respect the same io deadline so a peer that
    stops reading cannot wedge its connection thread.  SIGPIPE is
    ignored (best-effort) so a peer closing mid-write surfaces as a
    write error on that connection only.

    In socket mode [quit] is {e connection-scoped}: it closes that
    client's session and leaves the server (and other clients) running.
    {!request_stop} ends the server: it stops accepting, refuses the
    connections parked in the accept backlog ({!drain_backlog}),
    drains every live connection, joins their threads, and removes the
    socket file on the way out.
    @raise Invalid_argument when [backlog < 1]. *)

(** {1 Crash-recovery supervisor}

    Restart-on-crash with exponential backoff and a crash-count
    circuit breaker — the state machine behind [fodb serve
    --supervise]:

    {v
              spawn
    RUNNING ────────► wait
       │ Exited 0                    ▲
       ▼                             │ sleep(backoff)
     DONE     crash ──► decide ──► RESTARTING
                          │
                          │ ≥ max_crashes within window_ms
                          ▼
                       GIVEN-UP
    v}

    Crashes older than [window_ms] are forgiven (the worker was healthy
    long enough to reset the breaker); the backoff attempt number is
    the crash count inside the window, so a worker that recovers for a
    while restarts fast again.  Everything time- and process-shaped is
    injectable ([spawn]/[wait]/[sleep_ms]/[now_ms]/[jitter]), so the
    full machine is testable without forking — the real fork/waitpid
    pair lives in [fodb]. *)
module Supervisor : sig
  type policy = {
    backoff : Nd_util.Backoff.schedule;  (** restart pacing *)
    max_crashes : int;  (** breaker threshold (>= 1) *)
    window_ms : int;  (** sliding breaker window *)
  }

  val default_policy : policy
  (** 100ms base doubling to a 5s cap; breaker at 5 crashes in 30s. *)

  type outcome = Exited of int | Signaled of int

  val describe_outcome : outcome -> string

  type decision = Restart_after_ms of int | Give_up of string

  type state
  (** The breaker's crash-timestamp window. *)

  val init : unit -> state

  val crashes_in_window : policy -> state -> now_ms:int -> int
  (** Prune timestamps older than the window, return how many remain. *)

  val decide :
    ?jitter:(int -> int) -> policy -> state -> now_ms:int -> outcome -> decision
  (** Record a crash at [now_ms] and decide: [Give_up] when the breaker
      trips, else [Restart_after_ms] with the (jittered) backoff delay
      for this attempt.
      @raise Invalid_argument when [policy.max_crashes < 1]. *)

  val run :
    ?policy:policy ->
    ?jitter:(int -> int) ->
    ?sleep_ms:(int -> unit) ->
    ?now_ms:(unit -> int) ->
    ?log:(string -> unit) ->
    ?on_crash:(outcome -> decision -> unit) ->
    spawn:(unit -> 'worker) ->
    wait:('worker -> outcome) ->
    unit ->
    (unit, string) Stdlib.result
  (** The supervision loop: spawn, wait, and on a crash consult
      {!decide} — sleeping then respawning, or giving up with the
      breaker's reason.  [Exited 0] is a clean shutdown ([Ok ()]).
      [log] receives one human line per transition.  [on_crash] fires
      after each {!decide}, before the backoff sleep (or the give-up
      return) — the window where the dead worker's flight file can be
      harvested into a post-mortem without racing either incarnation
      ([fodb serve --blackbox] does exactly that; see
      {!Nd_obs.Flight}). *)
end

(** {1 Client harness}

    The retrying client used by the integration tests and CI: a
    {!Client.transport} abstracts {e how} a request line reaches a
    server (direct {!handle} call in-process, or channels over a pipe /
    socket), and {!Client.call} layers bounded retries with full-jitter
    exponential backoff on top.

    {2 Retry policy}

    Retried (transient), up to [policy.retries] extra attempts:
    - [err budget] — the per-request budget may pass on a quieter
      machine or after backoff;
    - [err overloaded] — shed before any work started; the delay is
      floored at the server's advertised [retry-after-ms] and jittered
      above it, so a shed cohort does not return in lockstep;
    - [err unavailable] — a router bag group with no live replica
      ({!Nd_cluster}); same floored-and-jittered treatment, since the
      router is probing the group back to life in the background;
    - transport failures — EOF / reset / broken pipe mid-reply, a
      refused or missing socket (a supervisor mid-restart), or an
      unterminated reply: the request may not have executed, and the
      verbs' retry story covers the ambiguity (queries are pure;
      [update] replay is visible in the epoch).

    Never retried (fail fast):
    - [err user] — resending the same malformed line cannot succeed;
    - [err internal] — the engine's own invariants failed; retrying
      hides bugs;
    - [err shutting-down] — this connection is draining; reconnecting
      is a caller decision, not a transport retry;
    - [bye] / empty reply ([Closed]) — the server ended the session on
      purpose. *)
module Client : sig
  type transport = string -> string list
  (** Send one request line, return the full reply (data lines +
      terminator). *)

  type policy = {
    retries : int;  (** extra attempts after the first *)
    backoff_ms : int;  (** backoff cap before the first retry *)
    multiplier : float;  (** backoff growth per retry *)
    jitter : int -> int;
        (** maps each attempt's cap to the actual delay —
            {!Nd_util.Backoff.full_jitter} in production,
            {!Nd_util.Backoff.none} for deterministic tests *)
    sleep_ms : int -> unit;  (** injectable for tests *)
  }

  val default_policy : policy
  (** 3 retries, 50ms initial cap, doubling, full jitter, real sleep. *)

  type status =
    | Ok_reply
    | Err_reply of string * string  (** class, message *)
    | Transport_error of string
        (** the connection failed below the protocol: EOF/reset/broken
            pipe mid-reply, refused or missing socket, or an
            unterminated reply *)
    | Closed  (** terminator was [bye] (or the reply was empty) *)

  val status_of_reply : string list -> status

  val retry_after_of_msg : string -> int
  (** The [retry-after-ms=R] floor inside an [err overloaded] message
      (0 when absent or malformed). *)

  type result = {
    reply : string list;  (** the final attempt's reply *)
    attempts : int;
    status : status;
  }

  val call : ?policy:policy -> transport -> string -> result
  (** Run one request through the retry policy above.  On a transport
      exception the attempt's [reply] is [[]] and the status is
      {!Transport_error}. *)

  val channel_transport : in_channel -> out_channel -> transport
  (** Write the request, read lines until a terminator.  EOF before any
      line yields [[]] (status [Closed]); EOF mid-reply yields the
      partial reply (status {!Transport_error}, hence retried by
      {!call} on a fresh transport). *)

  type connect_policy = {
    connect_retries : int;  (** extra connect attempts after the first *)
    connect_backoff_ms : int;  (** backoff cap before the first retry *)
    connect_deadline_ms : int;  (** hard wall-clock bound on the whole dance *)
    connect_jitter : int -> int;
        (** {!Nd_util.Backoff.full_jitter} in production,
            {!Nd_util.Backoff.none} for deterministic tests *)
    connect_sleep_ms : int -> unit;  (** injectable for tests *)
    connect_now_ms : unit -> int;  (** injectable clock for tests *)
  }

  val default_connect_policy : connect_policy
  (** 8 retries, 20ms initial cap doubling to 1s, full jitter, 2s
      deadline, real sleep/clock. *)

  val connect :
    ?policy:connect_policy ->
    string ->
    (Unix.file_descr, string) Stdlib.result
  (** Connect to a Unix-domain server socket with bounded,
      backoff-scheduled retries under a deadline: a shard mid-restart
      (missing or refusing socket during a supervisor backoff window)
      is retried instead of failed instantly — and a shard that never
      comes up yields [Error] once the retry budget {e or} the deadline
      is exhausted, never an indefinite block.  Callers classify the
      [Error] as {!Transport_error} (the router does exactly that and
      moves on to the next replica). *)
end
