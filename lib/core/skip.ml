open Nd_util

type t = {
  kernels : int array array;
  l : int array;
  n : int;
  k : int;
  next_geq : int array;  (* size n+1; next_geq.(v) = min L-elem ≥ v, -1 if none *)
  sc : (int list, int option) Hashtbl.t array;
}

let in_kernel t v x = Sorted.mem t.kernels.(x) v
let in_any t v s = List.exists (in_kernel t v) s
let mem_l t v = Sorted.mem t.l v

let next_l_gt t b = if b + 1 > t.n then None
  else begin
    let v = t.next_geq.(b + 1) in
    if v = -1 then None else Some v
  end

(* subsets of [s] ordered by decreasing cardinality (each sorted) *)
let subsets_desc s =
  let arr = Array.of_list s in
  let m = Array.length arr in
  let all =
    List.init (1 lsl m) (fun mask ->
        let sub = ref [] in
        for i = m - 1 downto 0 do
          if mask land (1 lsl i) <> 0 then sub := arr.(i) :: !sub
        done;
        !sub)
  in
  List.sort (fun a b -> compare (List.length b) (List.length a)) all

let max_subset_in_sc t c s =
  let tbl = t.sc.(c) in
  let rec go = function
    | [] -> None
    | sub :: rest -> (
        match Hashtbl.find_opt tbl sub with
        | Some v -> Some (sub, v)
        | None -> go rest)
  in
  go (List.filter (fun sub -> sub <> []) (subsets_desc s))

(* Claim 5.9: compute SKIP(b,S) from pointers at vertices > b. *)
let compute_skip t b s =
  if mem_l t b && not (in_any t b s) then Some b
  else
    match next_l_gt t b with
    | None -> None
    | Some c ->
        if not (in_any t c s) then Some c
        else begin
          match max_subset_in_sc t c s with
          | Some (_, v) -> v
          | None ->
              (* c lies in the kernel of some X ∈ S, so {X} ∈ SC(c) *)
              assert false
        end

let build ~kernels ~kernels_of ~l ~n ~k =
  if not (Sorted.is_sorted_strict l) then invalid_arg "Skip.build: L not sorted";
  let next_geq = Array.make (n + 1) (-1) in
  let cur = ref (-1) in
  let lset = Hashtbl.create (Array.length l) in
  Array.iter (fun v -> Hashtbl.replace lset v ()) l;
  for v = n downto 0 do
    if v < n && Hashtbl.mem lset v then cur := v;
    next_geq.(v) <- !cur
  done;
  let t =
    {
      kernels;
      l;
      n;
      k;
      next_geq;
      sc = Array.init n (fun _ -> Hashtbl.create 4);
    }
  in
  Budget.enter "skip";
  for b = n - 1 downto 0 do
    Budget.tick ();
    let worklist = Queue.create () in
    List.iter (fun x -> Queue.push [ x ] worklist) (kernels_of b);
    while not (Queue.is_empty worklist) do
      let s = Queue.pop worklist in
      if not (Hashtbl.mem t.sc.(b) s) then begin
        let v = compute_skip t b s in
        Hashtbl.replace t.sc.(b) s v;
        if List.length s < k then
          match v with
          | None -> ()
          | Some sv ->
              List.iter
                (fun x ->
                  if not (List.mem x s) then
                    Queue.push (List.sort compare (x :: s)) worklist)
                (kernels_of sv)
      end
    done
  done;
  t

let skip t ~b ~bags =
  let s = List.sort_uniq compare bags in
  if List.length s > t.k then invalid_arg "Skip.skip: too many bags";
  if b < 0 || b >= t.n then invalid_arg "Skip.skip: vertex out of range";
  if s = [] then begin
    let v = t.next_geq.(b) in
    if v = -1 then None else Some v
  end
  else compute_skip t b s

let skip_naive t ~b ~bags =
  let s = List.sort_uniq compare bags in
  let i0 = Sorted.lower_bound t.l b in
  let rec go i =
    if i >= Array.length t.l then None
    else if not (in_any t t.l.(i) s) then Some t.l.(i)
    else go (i + 1)
  in
  go i0

let table_size t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.sc

let max_sc t =
  Array.fold_left (fun acc tbl -> max acc (Hashtbl.length tbl)) 0 t.sc
