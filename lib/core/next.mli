(** The main theorem's interface (Theorem 2.3 / Theorem 5.1): after
    preprocessing, compute for any tuple [ā] the smallest solution
    [ā' ≥ ā] in lexicographic order.

    The construction is the nested induction of Section 5: arity-k
    next-solution is assembled from (i) the Lemma 5.2 machinery
    ({!Answer}) fixing the first k-1 coordinates, and (ii) next-solution
    for the (k-1)-ary projection [∃x_k φ].  Projections that still lie
    in the compiled fragment get their own {!Answer} preprocessing;
    projections that fall out of it are answered by monotone
    extendability scans through the level above (each dead prefix is
    visited at most once per full enumeration — the pragmatic substitute
    for re-normalizing the projected query, see DESIGN.md). *)

type t

val build : ?pool:Nd_util.Pool.t -> Nd_graph.Cgraph.t -> Nd_logic.Fo.t -> t
(** The query must have arity ≥ 1.  [pool] parallelizes each level's
    preprocessing over its independent bag-jobs (see {!Answer.build});
    the built structure is identical for every job count. *)

val build_fallback : Nd_graph.Cgraph.t -> Nd_logic.Fo.t -> reason:string -> t
(** A handle over the same interface that skips all preprocessing and
    answers every call through the naive-evaluator fallback — exact but
    without delay guarantees.  O(1) construction; this is what a
    budget-exhausted [Nd_engine.prepare] degrades to. *)

val graph : t -> Nd_graph.Cgraph.t

val arity : t -> int

val vars : t -> Nd_logic.Fo.var array

val top : t -> Answer.t
(** The arity-k {!Answer} structure (for stats / ablation hooks). *)

val compiled_levels : t -> bool array
(** Per arity level [1..k]: was that projection compiled (vs. scanned)? *)

val next_solution : t -> int array -> int array option
(** [next_solution t ā]: the smallest solution [≥ ā] (Theorem 2.3).
    [ā] must have arity k with entries in [0, n).  The returned array
    is freshly allocated and owned by the caller; all intermediate
    work runs in per-level scratch buffers pooled on [t], so the call
    performs no other steady-state allocation. *)

val first : t -> int array option

val test : t -> int array -> bool
(** Corollary 2.4. *)

val update :
  ?pool:Nd_util.Pool.t -> t -> Nd_graph.Cgraph.t -> touched:int list -> unit
(** Absorb one mutation into every compiled projection level (see
    {!Answer.update}); [g'] must be exactly one
    {!Nd_graph.Cgraph.apply} step from the currently indexed graph.
    Uncompiled levels scan through the level above and need no
    maintenance. *)

val influence_radius : t -> int option
(** Max {!Answer.influence_radius} over the compiled levels; [None] if
    any level answers through the global fallback. *)

val has_sentences : t -> bool
(** Whether any level's disjuncts carry (globally evaluated) sentence
    literals; see {!Answer.has_sentences}. *)
