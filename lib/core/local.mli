(** Bag-local evaluation contexts.

    The answering phase repeatedly evaluates local formulas [ψ(ā_I)]
    inside induced subgraphs [G★[X]] for bags [X] of a neighborhood
    cover.  This module materializes the induced subgraphs lazily, keeps
    a distance-cached {!Nd_eval.Naive} context per bag, and memoizes
    satisfaction checks in a per-bag table — parallel bag-jobs working
    distinct bags share no mutable state (see DESIGN S14).

    This is the implementation substitute for the paper's per-bag
    λ-recursion (Steps 9–11 of the preprocessing) whose constants are
    non-elementary; see DESIGN.md.  Correctness is identical — only the
    per-bag oracle differs. *)

type t

val make : Nd_graph.Cgraph.t -> Nd_nowhere.Cover.t -> t

val rebind : t -> Nd_graph.Cgraph.t -> Nd_nowhere.Cover.t -> dirty_bags:int list -> unit
(** Incremental maintenance: point the table at the mutated graph and
    (possibly grown) patched cover, drop the materialized contexts and
    purge the memo entries of every bag in [dirty_bags] — they will be
    re-materialized lazily against the new graph on next use.  Clean
    bags keep their contexts: their induced subgraphs are unchanged. *)

val bag_graph : t -> int -> Nd_graph.Cgraph.t * int array
(** The induced subgraph of the bag and its [to_orig] map. *)

val sat : t -> bag:int -> Nd_logic.Fo.t -> (Nd_logic.Fo.var * int) list -> bool
(** [sat t ~bag φ env]: does [G[X_bag] ⊨ φ(env)]?  Environment values
    are original-graph vertices and must belong to the bag.  Memoized
    on (bag, φ, env). *)

val stats : t -> int * int
(** (bags materialized, memo entries). *)
