open Nd_util
open Nd_graph

(* Observed delay, in cost-model operations ({!Nd_util.Metrics.ops}),
   between consecutive outputs — the quantity Corollary 2.5 bounds by a
   constant independent of [n]. *)
let h_delay = Metrics.hist "enum.delay_ops"

let[@inline] timed_next t tup =
  Nd_trace.with_span "enum.next" @@ fun () ->
  if Metrics.enabled () then begin
    let before = Metrics.ops () in
    let r = Next.next_solution t tup in
    Metrics.observe h_delay (Metrics.ops () - before);
    r
  end
  else Next.next_solution t tup

let to_seq_from t start =
  let n = Cgraph.n (Next.graph t) in
  let rec from tup () =
    match tup with
    | None -> Seq.Nil
    | Some tup -> (
        match timed_next t tup with
        | None -> Seq.Nil
        | Some sol -> Seq.Cons (sol, from (Nd_util.Tuple.succ ~n sol)))
  in
  if n = 0 then Seq.empty else from (Some start)

let to_seq t = to_seq_from t (Nd_util.Tuple.min (Next.arity t))

let iter ?limit f t =
  let count = ref 0 in
  let seq = to_seq t in
  let rec go seq =
    match limit with
    | Some l when !count >= l -> ()
    | _ -> (
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (sol, rest) ->
            incr count;
            f sol;
            go rest)
  in
  go seq

let to_list ?limit t =
  let acc = ref [] in
  iter ?limit (fun sol -> acc := sol :: !acc) t;
  List.rev !acc

let count t =
  let c = ref 0 in
  iter (fun _ -> incr c) t;
  !c

let delays t ~first f =
  let ds = ref [] in
  let t0 = Unix.gettimeofday () in
  let last = ref t0 in
  let saw_first = ref false in
  iter
    (fun sol ->
      let now = Unix.gettimeofday () in
      if not !saw_first then begin
        first := now -. t0;
        saw_first := true
      end
      else ds := (now -. !last) :: !ds;
      last := now;
      f sol)
    t;
  Array.of_list (List.rev !ds)
