(** Constant-time distance testing (Proposition 4.2).

    After a preprocessing of the graph, [test t a b] decides
    [dist(a,b) ≤ r] in time independent of [|G|].

    The construction follows Section 4.2 literally, by induction on the
    number of rounds Splitter needs:

    + compute an (r,2r)-neighborhood cover [𝒳];
    + for every bag [X], compute Splitter's answer [s_X] to the center
      [c_X], and the rings [R_i = {w ∈ X | dist_{G[X]}(w, s_X) ≤ i}];
    + recurse on [X' = G[X ∖ {s_X}]] — one Splitter round fewer;
    + [test a b]: [dist_G(a,b) ≤ r] iff [b ∈ 𝒳(a)] and, inside the bag,
      either the path avoids [s_X] (recursive test in [X']) or passes
      through it ([ring a + ring b ≤ r]), with the two degenerate
      [a = s_X] / [b = s_X] cases.

    The recursion bottoms out on small graphs, when a shrinkage guard
    detects that the cover-and-recurse step has stalled (one vertex per
    round — the regime outside the nowhere dense guarantee), or when
    the depth budget is exhausted; the base case stores each vertex's
    r-ball as a sorted table. *)

type t

val build :
  ?pool:Nd_util.Pool.t ->
  ?base_threshold:int ->
  ?depth_budget:int ->
  Nd_graph.Cgraph.t ->
  r:int ->
  t
(** Defaults: [base_threshold = 256], [depth_budget = 20].

    [pool] parallelizes the construction over bags (at the top recursion
    level) and over base-table blocks; per-bag work and the merged stats
    are identical to the sequential build regardless of job count (see
    DESIGN S14). *)

val radius : t -> int

val test : t -> int -> int -> bool
(** [test t a b]: is [dist_G(a,b) ≤ r]? *)

val patch : t -> Nd_graph.Cgraph.t -> dirty:int array -> unit
(** Incremental maintenance after a graph mutation.  [patch t g ~dirty]
    recomputes, in the mutated graph [g], the r-ball of every vertex in
    [dirty] and records it as an override shadowing the recursive
    structure; {!test} consults overrides on either endpoint first.

    Soundness requires [dirty] to contain every vertex whose r-ball
    differs between the indexed graph and [g] — i.e. the r-neighborhood
    of the mutation's endpoints taken in {e both} the old and new graph
    (a vertex outside both balls cannot gain or lose a ≤ r path through
    the mutated edge).  Distances between two clean vertices are
    unchanged, so the frozen recursive structure stays authoritative for
    them. *)

val override_count : t -> int
(** Number of patched vertices currently shadowing the base structure. *)

type stats = {
  levels : int;  (** maximum recursion depth reached *)
  bags : int;  (** total bags over all levels *)
  base_pairs : int;  (** pairs stored in base-case tables *)
  budget_hits : int;  (** base cases forced by the depth budget *)
}

val stats : t -> stats
