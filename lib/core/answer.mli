(** The answering machinery of Lemma 5.2: after preprocessing a graph
    for a k-ary query [φ(x̄, x_k)], upon input of a (k-1)-tuple [ā] and
    a vertex [b], return the smallest [b' ≥ b] with [G ⊨ φ(ā, b')].

    Preprocessing (mirroring Section 5.2.1):
    + a {!Dist_index} with the compiled type threshold [r] (Step 2);
    + a neighborhood cover of radius
      [R = max(2r, k·r, (k-1)·r + L)] with kernels [K_{R-r}(X)]
      (Steps 3–4; the kernel radius is chosen so that membership in a
      kernel certifies distance ≤ r to the bag's assigned vertices,
      and exclusion certifies distance > r);
    + global evaluation of sentence literals (Step 5's [ξ] check);
    + per disjunct whose last-position component is a singleton: the
      label set [L = {v | G[X(v)] ⊨ ψ(v)}] (Step 12) and its skip
      pointers over the kernels (Step 13);
    + lazy bag-local contexts standing in for the per-bag λ-recursion
      of Steps 8–11 (see DESIGN.md).

    The answering phase follows Section 5.2.2: determine the prefix
    type [τ'], and per compatible disjunct either search within the
    anchor bag (Case II) or combine kernel-local scans with a SKIP
    lookup (Case I); return the minimum over disjuncts. *)

type t

val build : ?pool:Nd_util.Pool.t -> Nd_graph.Cgraph.t -> Compile.t -> t
(** [pool] runs the preprocessing's independent per-bag jobs (context
    materialization, kernels, label sets) and the distance index build
    on the pool's domains; the resulting structure — and the ops
    counters it charges — is identical for every job count (DESIGN
    S14). *)

val graph : t -> Nd_graph.Cgraph.t

val compiled : t -> Compile.t

val arity : t -> int

val next_in_last : t -> prefix:int array -> from:int -> int option
(** [prefix] has length k-1.  Returns the smallest [b' ≥ from] with
    [G ⊨ φ(prefix, b')], or [None]. *)

val holds : t -> int array -> bool
(** Corollary 2.4 for this query: test a full k-tuple. *)

val update :
  ?pool:Nd_util.Pool.t -> t -> Nd_graph.Cgraph.t -> touched:int list -> unit
(** Bounded-scope maintenance after a mutation.  [update t g' ~touched]
    absorbs the mutation that produced [g'] from the currently indexed
    graph, where [touched] are the mutation's endpoint vertices
    ({!Nd_graph.Cgraph.mutation_vertices}).  The dirty region is the
    cover-radius neighborhood of [touched] in the old and new graphs;
    only structures rooted there are rebuilt: dist-index overrides,
    cover re-housing, kernels and label sets of dirty bags, bag-local
    contexts, Case-II candidate balls.  The global SKIP structure is
    marked stale and rebuilt lazily on next Case-I use.  Fallback
    handles swap their evaluation context (trivially exact).

    Must be called once per mutation, with [g'] exactly one
    {!Nd_graph.Cgraph.apply} step from the graph currently indexed —
    batching is the caller's loop. *)

val influence_radius : t -> int option
(** The radius [R] bounding how far a mutation's effect reaches into
    this structure's index (the cover radius); [None] for fallback
    handles, whose direct evaluation has global reach. *)

val has_sentences : t -> bool
(** Whether any disjunct carries sentence literals — their truth is
    global, so a mutation can flip answers arbitrarily far from its
    endpoints (callers must not assume bounded influence on cached
    answers). *)

type work = {
  mutable scan_steps : int;  (** candidates examined in bag/kernel scans *)
  mutable skip_queries : int;
  mutable dist_tests : int;
  mutable local_sats : int;
}

val work : t -> work
(** Cumulative answering-phase work counters (for the benches). *)

val reset_work : t -> unit

val use_skip : t -> bool -> unit
(** Ablation hook (experiment A1): with [false], Case I falls back to a
    linear scan of the label set instead of the SKIP pointers. *)
