(** Constant-delay enumeration (Corollary 2.5).

    Solutions are produced one by one, without repetition, in
    increasing lexicographic order: after outputting [ā], the next
    output is the smallest solution [≥ ā+1], obtained from the
    Theorem 2.3 data structure in constant time. *)

val to_seq : Next.t -> int array Seq.t
(** Lazily enumerate all solutions in lexicographic order. *)

val to_seq_from : Next.t -> int array -> int array Seq.t
(** [to_seq_from t start] enumerates the solutions [≥ start] in
    lexicographic order.  [to_seq t] is [to_seq_from t (Tuple.min k)].
    When metrics are enabled, each underlying [next_solution] call is
    wrapped with an operation-count delta observed into the
    ["enum.delay_ops"] histogram. *)

val iter : ?limit:int -> (int array -> unit) -> Next.t -> unit

val to_list : ?limit:int -> Next.t -> int array list

val count : Next.t -> int

val delays : Next.t -> first:float ref -> (int array -> unit) -> float array
(** Instrumented enumeration: run the full enumeration, store the time
    to the first solution in [first] (seconds), invoke the callback on
    each solution and return the array of inter-solution delays in
    seconds (the quantity Corollary 2.5 bounds). *)
