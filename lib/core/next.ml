open Nd_util
open Nd_graph
open Nd_logic

let m_next_calls = Metrics.counter "next.calls"
let m_test_calls = Metrics.counter "test.calls"

type t = {
  mutable g : Cgraph.t;
  k : int;
  vars : Fo.var array;
  queries : Fo.t array;  (* queries.(j-1) = φ_j, the arity-j projection *)
  answers : Answer.t option array;  (* answers.(j-1); always Some at j = k *)
}

let skeleton g phi =
  let fvs = Fo.free_vars phi in
  let k = List.length fvs in
  if k = 0 then invalid_arg "Next.build: sentence (use Tester)";
  let vars = Array.of_list fvs in
  let queries = Array.make k phi in
  for j = k - 1 downto 1 do
    (* φ_j = ∃ x_{j+1} φ_{j+1} *)
    queries.(j - 1) <- Fo.simplify (Fo.Exists (vars.(j), queries.(j)))
  done;
  (g, k, vars, queries)

let build ?pool g phi =
  let g, k, vars, queries = skeleton g phi in
  let answers =
    Array.init k (fun idx ->
        let q = queries.(idx) in
        let comp = Nd_trace.phase "compile" (fun () -> Compile.compile q) in
        let build () =
          Nd_trace.phase "answer.build" (fun () -> Answer.build ?pool g comp)
        in
        match comp with
        | Compile.Compiled _ -> Some (build ())
        | Compile.Fallback _ -> if idx = k - 1 then Some (build ()) else None)
  in
  { g; k; vars; queries; answers }

let build_fallback g phi ~reason =
  let g, k, vars, queries = skeleton g phi in
  (* Only the top level carries an Answer; the lower projections are
     handled by the extendability scans of [next_c], which need nothing
     but the level above.  Construction is O(1) beyond the skeleton —
     that is the point: this is the degraded handle a budget-exhausted
     prepare falls back to. *)
  let answers =
    Array.init k (fun idx ->
        if idx = k - 1 then
          Some (Answer.build g (Compile.Fallback { query = phi; vars; reason }))
        else None)
  in
  { g; k; vars; queries; answers }

let graph t = t.g
let arity t = t.k
let vars t = t.vars

let top t =
  match t.answers.(t.k - 1) with Some a -> a | None -> assert false

let compiled_levels t =
  Array.mapi
    (fun idx a ->
      match a with
      | Some a -> (
          match Answer.compiled a with
          | Compile.Compiled _ -> true
          | Compile.Fallback _ -> idx < t.k - 1)
      | None -> false)
    t.answers

(* next value of coordinate j (1-based arity j) given its (j-1)-prefix *)
let rec next_c t j prefix from =
  let n = Cgraph.n t.g in
  if from >= n then None
  else
    match t.answers.(j - 1) with
    | Some a -> Answer.next_in_last a ~prefix ~from
    | None ->
        (* extendability scan through the level above *)
        let rec go c =
          Budget.tick ();
          if c >= n then None
          else if extendable t j (Array.append prefix [| c |]) then Some c
          else go (c + 1)
        in
        go (max 0 from)

and extendable t j p = next_c t (j + 1) p 0 <> None

(* smallest solution of φ_j that is ≥ t̄ (arity j) *)
let rec next_full t j (tup : int array) =
  let prefix = Array.sub tup 0 (j - 1) in
  match next_c t j prefix tup.(j - 1) with
  | Some b -> Some (Array.append prefix [| b |])
  | None ->
      if j = 1 then None
      else begin
        match Nd_util.Tuple.succ ~n:(Cgraph.n t.g) prefix with
        | None -> None
        | Some p1 -> (
            match next_full t (j - 1) p1 with
            | None -> None
            | Some p' -> (
                match next_c t j p' 0 with
                | Some b -> Some (Array.append p' [| b |])
                | None ->
                    (* p' solves ∃x_j φ_j, so an extension must exist *)
                    assert false))
      end

let next_solution t a =
  if Array.length a <> t.k then invalid_arg "Next.next_solution: arity";
  Array.iter
    (fun x ->
      if x < 0 || x >= Cgraph.n t.g then
        invalid_arg "Next.next_solution: vertex out of range")
    a;
  Metrics.incr m_next_calls;
  next_full t t.k a

let first t =
  if Cgraph.n t.g = 0 then None
  else next_solution t (Nd_util.Tuple.min t.k)

let test t a =
  Metrics.incr m_test_calls;
  match next_solution t a with
  | Some b -> Nd_util.Tuple.equal a b
  | None -> false

let update ?pool t g' ~touched =
  t.g <- g';
  Array.iter
    (function Some a -> Answer.update ?pool a g' ~touched | None -> ())
    t.answers

let influence_radius t =
  Array.fold_left
    (fun acc a ->
      match (acc, a) with
      | None, _ | _, None -> acc
      | Some _, Some a -> (
          match Answer.influence_radius a with
          | None -> None
          | Some r -> Option.map (max r) acc))
    (Some 0) t.answers

let has_sentences t =
  Array.exists
    (function Some a -> Answer.has_sentences a | None -> false)
    t.answers
