open Nd_util
open Nd_graph
open Nd_logic

let m_next_calls = Metrics.counter "next.calls"
let m_test_calls = Metrics.counter "test.calls"

type t = {
  mutable g : Cgraph.t;
  k : int;
  vars : Fo.var array;
  queries : Fo.t array;  (* queries.(j-1) = φ_j, the arity-j projection *)
  answers : Answer.t option array;  (* answers.(j-1); always Some at j = k *)
  (* Per-level scratch buffers so steady-state [next_solution] allocates
     only its final (caller-owned) copy.  Indexed by arity level j in
     [1, k]; each level owns its own buffers and the recursion only ever
     descends level-by-level, so no call ever aliases a buffer it is
     still reading.  [Answer.next_in_last] treats its prefix as
     read-only, which is what makes lending these out safe. *)
  pbuf : int array array;  (* pbuf.(j): (j-1)-prefix scratch *)
  sbuf : int array array;  (* sbuf.(j): the level-j solution being built *)
  ebuf : int array array;  (* ebuf.(j): extendability-scan candidate *)
}

let scratch k =
  ( Array.init (k + 1) (fun j -> Array.make (max 0 (j - 1)) 0),
    Array.init (k + 1) (fun j -> Array.make j 0),
    Array.init (k + 1) (fun j -> Array.make j 0) )

let skeleton g phi =
  let fvs = Fo.free_vars phi in
  let k = List.length fvs in
  if k = 0 then invalid_arg "Next.build: sentence (use Tester)";
  let vars = Array.of_list fvs in
  let queries = Array.make k phi in
  for j = k - 1 downto 1 do
    (* φ_j = ∃ x_{j+1} φ_{j+1} *)
    queries.(j - 1) <- Fo.simplify (Fo.Exists (vars.(j), queries.(j)))
  done;
  (g, k, vars, queries)

let build ?pool g phi =
  let g, k, vars, queries = skeleton g phi in
  let answers =
    Array.init k (fun idx ->
        let q = queries.(idx) in
        let comp = Nd_trace.phase "compile" (fun () -> Compile.compile q) in
        let build () =
          Nd_trace.phase "answer.build" (fun () -> Answer.build ?pool g comp)
        in
        match comp with
        | Compile.Compiled _ -> Some (build ())
        | Compile.Fallback _ -> if idx = k - 1 then Some (build ()) else None)
  in
  let pbuf, sbuf, ebuf = scratch k in
  { g; k; vars; queries; answers; pbuf; sbuf; ebuf }

let build_fallback g phi ~reason =
  let g, k, vars, queries = skeleton g phi in
  (* Only the top level carries an Answer; the lower projections are
     handled by the extendability scans of [next_c], which need nothing
     but the level above.  Construction is O(1) beyond the skeleton —
     that is the point: this is the degraded handle a budget-exhausted
     prepare falls back to. *)
  let answers =
    Array.init k (fun idx ->
        if idx = k - 1 then
          Some (Answer.build g (Compile.Fallback { query = phi; vars; reason }))
        else None)
  in
  let pbuf, sbuf, ebuf = scratch k in
  { g; k; vars; queries; answers; pbuf; sbuf; ebuf }

let graph t = t.g
let arity t = t.k
let vars t = t.vars

let top t =
  match t.answers.(t.k - 1) with Some a -> a | None -> assert false

let compiled_levels t =
  Array.mapi
    (fun idx a ->
      match a with
      | Some a -> (
          match Answer.compiled a with
          | Compile.Compiled _ -> true
          | Compile.Fallback _ -> idx < t.k - 1)
      | None -> false)
    t.answers

(* next value of coordinate j (1-based arity j) given its (j-1)-prefix *)
let rec next_c t j prefix from =
  let n = Cgraph.n t.g in
  if from >= n then None
  else
    match t.answers.(j - 1) with
    | Some a -> Answer.next_in_last a ~prefix ~from
    | None ->
        (* extendability scan through the level above; the candidate
           lives in this level's scratch buffer — the prefix is blitted
           once and only the last coordinate varies over the scan *)
        let cand = t.ebuf.(j) in
        Array.blit prefix 0 cand 0 (j - 1);
        let rec go c =
          Budget.tick ();
          if c >= n then None
          else begin
            cand.(j - 1) <- c;
            if extendable t j cand then Some c else go (c + 1)
          end
        in
        go (max 0 from)

and extendable t j p = next_c t (j + 1) p 0 <> None

(* smallest solution of φ_j that is ≥ t̄ (arity j), written into
   sbuf.(j); [false] when none exists.  [tup] is read-only here and
   only its first j coordinates are inspected. *)
let rec next_full_into t j (tup : int array) =
  let prefix = t.pbuf.(j) in
  Array.blit tup 0 prefix 0 (j - 1);
  match next_c t j prefix tup.(j - 1) with
  | Some b ->
      let out = t.sbuf.(j) in
      Array.blit prefix 0 out 0 (j - 1);
      out.(j - 1) <- b;
      true
  | None ->
      if j = 1 then false
      else if not (Nd_util.Tuple.incr ~n:(Cgraph.n t.g) prefix) then false
      else if not (next_full_into t (j - 1) prefix) then false
      else begin
        let p' = t.sbuf.(j - 1) in
        match next_c t j p' 0 with
        | Some b ->
            let out = t.sbuf.(j) in
            Array.blit p' 0 out 0 (j - 1);
            out.(j - 1) <- b;
            true
        | None ->
            (* p' solves ∃x_j φ_j, so an extension must exist *)
            assert false
      end

let validate_input t a =
  if Array.length a <> t.k then invalid_arg "Next.next_solution: arity";
  Array.iter
    (fun x ->
      if x < 0 || x >= Cgraph.n t.g then
        invalid_arg "Next.next_solution: vertex out of range")
    a

let next_solution t a =
  validate_input t a;
  Metrics.incr m_next_calls;
  if next_full_into t t.k a then Some (Array.copy t.sbuf.(t.k)) else None

let first t =
  if Cgraph.n t.g = 0 then None
  else next_solution t (Nd_util.Tuple.min t.k)

let test t a =
  Metrics.incr m_test_calls;
  validate_input t a;
  Metrics.incr m_next_calls;
  next_full_into t t.k a && Nd_util.Tuple.equal a t.sbuf.(t.k)

let update ?pool t g' ~touched =
  t.g <- g';
  Array.iter
    (function Some a -> Answer.update ?pool a g' ~touched | None -> ())
    t.answers

let influence_radius t =
  Array.fold_left
    (fun acc a ->
      match (acc, a) with
      | None, _ | _, None -> acc
      | Some _, Some a -> (
          match Answer.influence_radius a with
          | None -> None
          | Some r -> Option.map (max r) acc))
    (Some 0) t.answers

let has_sentences t =
  Array.exists
    (function Some a -> Answer.has_sentences a | None -> false)
    t.answers
