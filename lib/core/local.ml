open Nd_graph
open Nd_nowhere
open Nd_logic

(* The memo is per bag (not one table over all bags): bag contexts are
   materialized by parallel bag-jobs, and per-bag tables mean two
   domains working distinct bags never share a mutable structure.  It
   also makes the per-bag work — and hence the sharded ops counters —
   independent of which domain ran the bag, which the determinism gate
   relies on. *)
type bag_ctx = {
  ctx : Nd_eval.Naive.ctx;
  to_orig : int array;
  memo : (Fo.t * (Fo.var * int) list, bool) Hashtbl.t;
}

type t = {
  mutable g : Cgraph.t;
  mutable cover : Cover.t;
  mutable ctxs : bag_ctx option array;
}

let make g cover =
  { g; cover; ctxs = Array.make (Array.length cover.Cover.bags) None }

let rebind t g cover ~dirty_bags =
  t.g <- g;
  t.cover <- cover;
  let nbags = Array.length cover.Cover.bags in
  if nbags > Array.length t.ctxs then begin
    let ctxs = Array.make nbags None in
    Array.blit t.ctxs 0 ctxs 0 (Array.length t.ctxs);
    t.ctxs <- ctxs
  end;
  (* dropping a bag's context drops its memo with it *)
  List.iter
    (fun b -> if b < Array.length t.ctxs then t.ctxs.(b) <- None)
    dirty_bags

let force t bag =
  match t.ctxs.(bag) with
  | Some c -> c
  | None ->
      let sub, to_orig = Cgraph.induced t.g t.cover.Cover.bags.(bag) in
      let c =
        {
          ctx = Nd_eval.Naive.ctx ~cache:true sub;
          to_orig;
          memo = Hashtbl.create 64;
        }
      in
      t.ctxs.(bag) <- Some c;
      c

let bag_graph t bag =
  let c = force t bag in
  (Nd_eval.Naive.graph c.ctx, c.to_orig)

let sat t ~bag phi env =
  let c = force t bag in
  let key = (phi, env) in
  match Hashtbl.find_opt c.memo key with
  | Some b -> b
  | None ->
      let local_env =
        List.map
          (fun (x, v) ->
            match Cgraph.local_of_orig c.to_orig v with
            | Some l -> (x, l)
            | None ->
                invalid_arg
                  (Printf.sprintf "Local.sat: vertex %d not in bag %d" v bag))
          env
      in
      let b = Nd_eval.Naive.sat c.ctx ~env:local_env phi in
      Hashtbl.replace c.memo key b;
      b

let stats t =
  Array.fold_left
    (fun (mat, entries) c ->
      match c with
      | Some c -> (mat + 1, entries + Hashtbl.length c.memo)
      | None -> (mat, entries))
    (0, 0) t.ctxs
