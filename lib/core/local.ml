open Nd_graph
open Nd_nowhere
open Nd_logic

type bag_ctx = { ctx : Nd_eval.Naive.ctx; to_orig : int array }

type t = {
  mutable g : Cgraph.t;
  mutable cover : Cover.t;
  mutable ctxs : bag_ctx option array;
  memo : (int * Fo.t * (Fo.var * int) list, bool) Hashtbl.t;
  mutable materialized : int;
}

let make g cover =
  {
    g;
    cover;
    ctxs = Array.make (Array.length cover.Cover.bags) None;
    memo = Hashtbl.create 4096;
    materialized = 0;
  }

let rebind t g cover ~dirty_bags =
  t.g <- g;
  t.cover <- cover;
  let nbags = Array.length cover.Cover.bags in
  if nbags > Array.length t.ctxs then begin
    let ctxs = Array.make nbags None in
    Array.blit t.ctxs 0 ctxs 0 (Array.length t.ctxs);
    t.ctxs <- ctxs
  end;
  List.iter
    (fun b -> if b < Array.length t.ctxs then t.ctxs.(b) <- None)
    dirty_bags;
  let dirty = List.sort_uniq compare dirty_bags in
  Hashtbl.filter_map_inplace
    (fun (bag, _, _) v -> if List.mem bag dirty then None else Some v)
    t.memo

let force t bag =
  match t.ctxs.(bag) with
  | Some c -> c
  | None ->
      let sub, to_orig = Cgraph.induced t.g t.cover.Cover.bags.(bag) in
      let c = { ctx = Nd_eval.Naive.ctx ~cache:true sub; to_orig } in
      t.ctxs.(bag) <- Some c;
      t.materialized <- t.materialized + 1;
      c

let bag_graph t bag =
  let c = force t bag in
  (Nd_eval.Naive.graph c.ctx, c.to_orig)

let sat t ~bag phi env =
  let key = (bag, phi, env) in
  match Hashtbl.find_opt t.memo key with
  | Some b -> b
  | None ->
      let c = force t bag in
      let local_env =
        List.map
          (fun (x, v) ->
            match Cgraph.local_of_orig c.to_orig v with
            | Some l -> (x, l)
            | None ->
                invalid_arg
                  (Printf.sprintf "Local.sat: vertex %d not in bag %d" v bag))
          env
      in
      let b = Nd_eval.Naive.sat c.ctx ~env:local_env phi in
      Hashtbl.replace t.memo key b;
      b

let stats t = (t.materialized, Hashtbl.length t.memo)
