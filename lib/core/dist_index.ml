open Nd_util
open Nd_graph
open Nd_nowhere

type node =
  | Base of int array array
      (* per vertex: the sorted ball N_r(v) ∖ {v}; an explicit table *)
  | Rec of { cover : Cover.t; per_bag : bag_data array }

and bag_data = {
  s : int;  (* s_X, a vertex of this level's graph *)
  ring : int array;
      (* per bag-member position: dist_{G[X]}(member, s_X), or -1 if > r *)
  child_vertices : int array;  (* sorted; the bag minus s_X *)
  child : node;  (* index over the graph induced by child_vertices *)
}

type t = {
  r : int;
  root : node;
  overrides : (int, int array) Hashtbl.t;
      (* vertex ↦ its current sorted r-ball ∖ {v}, shadowing [root] after
         a mutation; consulted first by [test] (distance is symmetric, so
         an override on either endpoint is authoritative) *)
  mutable n_levels : int;
  mutable n_bags : int;
  mutable n_base_pairs : int;
  mutable n_budget_hits : int;
}

type stats = { levels : int; bags : int; base_pairs : int; budget_hits : int }

let build_base t g ~r =
  let n = Cgraph.n g in
  let srch = Bfs.searcher g in
  let balls =
    Array.init n (fun a ->
        let ball = Bfs.sball srch a ~radius:r in
        let without_self =
          Array.of_list (List.filter (fun v -> v <> a) (Array.to_list ball))
        in
        t.n_base_pairs <- t.n_base_pairs + Array.length without_self;
        without_self)
  in
  Base balls

let rec build_node t g ~r ~threshold ~budget ~level ~hint =
  Budget.poll ();
  t.n_levels <- max t.n_levels level;
  if Cgraph.n g <= threshold || budget = 0 then begin
    if budget = 0 && Cgraph.n g > threshold then
      t.n_budget_hits <- t.n_budget_hits + 1;
    build_base t g ~r
  end
  else if
    (* Cost guards, from sampled ball sizes.  The explicit table costs
       ~|N_r| registers per vertex and is the best choice whenever that
       is moderate.  Recursing pays only when r-balls are large yet the
       cover overlap (≈ |N_2r| / |N_r|, the bags-per-vertex ratio) is
       small — the hub-dominated regime where Splitter's move dissolves
       the neighborhood (stars, deep grids).  A large growth ratio
       (expander-like regions, dense controls) means the recursion
       would multiply total size per level; table instead. *)
    let n = Cgraph.n g in
    let probes =
      (* evenly spaced ids, plus the inherited bag center, which is the
         vertex most likely to have a graph-spanning ball *)
      List.sort_uniq compare
        ((match hint with Some h -> [ h ] | None -> [])
        @ List.init 8 (fun i -> i * (n - 1) / 7))
    in
    let srch = Bfs.searcher g in
    let sum_r = ref 0 and sum_2r = ref 0 in
    let huge_r = ref false and huge_2r = ref false in
    List.iter
      (fun v ->
        let br = Bfs.sball_size srch v ~radius:r in
        let b2 = Bfs.sball_size srch v ~radius:(2 * r) in
        sum_r := !sum_r + br;
        sum_2r := !sum_2r + b2;
        if 10 * br >= 9 * n then huge_r := true;
        if 10 * b2 >= 9 * n then huge_2r := true)
      probes;
    let nprobes = List.length probes in
    (* table whenever the per-vertex ball budget is moderate: recursion
       only wins in hub regimes where r-balls grow with n *)
    !sum_r <= max threshold (n / 32) * nprobes
    || !sum_2r > 8 * !sum_r
    || ((not !huge_r) && !huge_2r)
  then build_base t g ~r
  else begin
    let cover = Cover.compute g ~r in
    t.n_bags <- t.n_bags + Cover.bag_count cover;
    let per_bag =
      Array.mapi
        (fun id bag ->
          let center = cover.Cover.centers.(id) in
          let sub, to_orig = Cgraph.induced g bag in
          let c_local =
            match Cgraph.local_of_orig bag center with
            | Some i -> i
            | None -> assert false
          in
          (* Splitter's answer when Connector plays the bag's center *)
          let s_local =
            Splitter.splitter_center
              { Splitter.graph = sub; to_orig }
              ~connector:c_local
          in
          let s = to_orig.(s_local) in
          (* rings: distance to s_X inside G[X] *)
          let ring = Bfs.dist_upto sub s_local ~radius:r in
          let child_vertices =
            Array.of_list (List.filter (fun v -> v <> s) (Array.to_list bag))
          in
          let child_graph, _ = Cgraph.induced g child_vertices in
          let child =
            (* second shrinkage guard, per bag: only recurse into a
               child at most half the current graph, so the depth is
               logarithmic and the per-level duplication cannot
               compound (the regime beyond this is where the paper's
               λ-bound hides non-elementary constants) — otherwise
               table it *)
            if 2 * Array.length child_vertices >= Cgraph.n g then
              build_base t child_graph ~r
            else begin
              let hint =
                if center = s then None
                else
                  let i = Sorted.lower_bound child_vertices center in
                  if
                    i < Array.length child_vertices
                    && child_vertices.(i) = center
                  then Some i
                  else None
              in
              build_node t child_graph ~r ~threshold ~budget:(budget - 1)
                ~level:(level + 1) ~hint
            end
          in
          { s; ring; child_vertices; child })
        cover.Cover.bags
    in
    Rec { cover; per_bag }
  end

let m_base_pairs = Metrics.counter "dist.base_pairs"
let m_levels = Metrics.counter "dist.levels"
let m_tests = Metrics.counter ~ops:true "dist.tests"

let build ?(base_threshold = 256) ?(depth_budget = 20) g ~r =
  if r < 0 then invalid_arg "Dist_index.build: negative radius";
  Nd_trace.phase "dist_index.build" @@ fun () ->
  Budget.enter "dist_index";
  let t =
    {
      r;
      root = Base [||];
      overrides = Hashtbl.create 16;
      n_levels = 0;
      n_bags = 0;
      n_base_pairs = 0;
      n_budget_hits = 0;
    }
  in
  let root =
    build_node t g ~r ~threshold:base_threshold ~budget:depth_budget ~level:0
      ~hint:None
  in
  Metrics.add m_base_pairs t.n_base_pairs;
  Metrics.add m_levels t.n_levels;
  { t with root }

let radius t = t.r

let rec test_node node ~r a b =
  if a = b then true
  else
    match node with
    | Base balls -> Sorted.mem balls.(a) b
    | Rec { cover; per_bag } ->
        let bag_id = cover.Cover.assigned.(a) in
        let bag = cover.Cover.bags.(bag_id) in
        if not (Sorted.mem bag b) then false
        else begin
          let bd = per_bag.(bag_id) in
          let pos v =
            let i = Sorted.lower_bound bag v in
            assert (i < Array.length bag && bag.(i) = v);
            i
          in
          if a = bd.s then bd.ring.(pos b) >= 0
          else if b = bd.s then bd.ring.(pos a) >= 0
          else begin
            let ra = bd.ring.(pos a) and rb = bd.ring.(pos b) in
            if ra >= 0 && rb >= 0 && ra + rb <= r then true
            else begin
              (* path avoiding s_X: recurse into X' *)
              let la = Sorted.lower_bound bd.child_vertices a in
              let lb = Sorted.lower_bound bd.child_vertices b in
              test_node bd.child ~r la lb
            end
          end
        end

let test t a b =
  Budget.tick ();
  Metrics.incr m_tests;
  if a = b then true
  else
    match Hashtbl.find_opt t.overrides a with
    | Some ball -> Sorted.mem ball b
    | None -> (
        match Hashtbl.find_opt t.overrides b with
        | Some ball -> Sorted.mem ball a
        | None -> test_node t.root ~r:t.r a b)

let m_overrides = Metrics.counter "dist.overrides"

let patch t g ~dirty =
  Budget.enter "dist_index";
  let srch = Bfs.searcher g in
  Array.iter
    (fun a ->
      Budget.tick ();
      let ball = Bfs.sball srch a ~radius:t.r in
      let without_self =
        Array.of_list (List.filter (fun v -> v <> a) (Array.to_list ball))
      in
      Hashtbl.replace t.overrides a without_self;
      Metrics.incr m_overrides)
    dirty

let override_count t = Hashtbl.length t.overrides

let stats t =
  {
    levels = t.n_levels;
    bags = t.n_bags;
    base_pairs = t.n_base_pairs;
    budget_hits = t.n_budget_hits;
  }
