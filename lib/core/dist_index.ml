open Nd_util
open Nd_graph
open Nd_nowhere

type node =
  | Base of int array array
      (* per vertex: the sorted ball N_r(v) ∖ {v}; an explicit table *)
  | Rec of { cover : Cover.t; per_bag : bag_data array }

and bag_data = {
  s : int;  (* s_X, a vertex of this level's graph *)
  ring : int array;
      (* per bag-member position: dist_{G[X]}(member, s_X), or -1 if > r *)
  child_vertices : int array;  (* sorted; the bag minus s_X *)
  child : node;  (* index over the graph induced by child_vertices *)
}

type t = {
  r : int;
  root : node;
  overrides : (int, int array) Hashtbl.t;
      (* vertex ↦ its current sorted r-ball ∖ {v}, shadowing [root] after
         a mutation; consulted first by [test] (distance is symmetric, so
         an override on either endpoint is authoritative) *)
  mutable n_levels : int;
  mutable n_bags : int;
  mutable n_base_pairs : int;
  mutable n_budget_hits : int;
}

type stats = { levels : int; bags : int; base_pairs : int; budget_hits : int }

(* Per-job stats accumulator: parallel bag-jobs each fill their own and
   the caller merges (sum / max — commutative, so the merged totals are
   independent of job count and interleaving).  Kept apart from [t] so
   no job ever writes a shared mutable field. *)
type acc = {
  mutable a_levels : int;
  mutable a_bags : int;
  mutable a_base_pairs : int;
  mutable a_budget_hits : int;
}

let fresh_acc () =
  { a_levels = 0; a_bags = 0; a_base_pairs = 0; a_budget_hits = 0 }

let merge_acc into a =
  into.a_levels <- max into.a_levels a.a_levels;
  into.a_bags <- into.a_bags + a.a_bags;
  into.a_base_pairs <- into.a_base_pairs + a.a_base_pairs;
  into.a_budget_hits <- into.a_budget_hits + a.a_budget_hits

let build_base ?pool acc g ~r =
  let n = Cgraph.n g in
  let ball_of srch a =
    let ball = Bfs.sball srch a ~radius:r in
    Array.of_list (List.filter (fun v -> v <> a) (Array.to_list ball))
  in
  let balls =
    match pool with
    | Some p when Pool.jobs p > 1 && n > 1 ->
        (* block-wise rather than per-vertex so each participant
           amortizes one BFS scratch searcher over its block; the ops
           counted per ball do not depend on searcher reuse, so the
           shard-summed totals match the sequential walk exactly *)
        let out = Array.make n [||] in
        let blocks = min n (4 * Pool.jobs p) in
        Pool.run p ~n:blocks (fun b ->
            let lo = b * n / blocks and hi = (b + 1) * n / blocks in
            if lo < hi then begin
              let srch = Bfs.searcher g in
              for a = lo to hi - 1 do
                out.(a) <- ball_of srch a
              done
            end);
        out
    | _ ->
        let srch = Bfs.searcher g in
        Array.init n (fun a -> ball_of srch a)
  in
  Array.iter
    (fun b -> acc.a_base_pairs <- acc.a_base_pairs + Array.length b)
    balls;
  Base balls

let rec build_node ?pool acc g ~r ~threshold ~budget ~level ~hint =
  Budget.poll ();
  acc.a_levels <- max acc.a_levels level;
  if Cgraph.n g <= threshold || budget = 0 then begin
    if budget = 0 && Cgraph.n g > threshold then
      acc.a_budget_hits <- acc.a_budget_hits + 1;
    build_base ?pool acc g ~r
  end
  else if
    (* Cost guards, from sampled ball sizes.  The explicit table costs
       ~|N_r| registers per vertex and is the best choice whenever that
       is moderate.  Recursing pays only when r-balls are large yet the
       cover overlap (≈ |N_2r| / |N_r|, the bags-per-vertex ratio) is
       small — the hub-dominated regime where Splitter's move dissolves
       the neighborhood (stars, deep grids).  A large growth ratio
       (expander-like regions, dense controls) means the recursion
       would multiply total size per level; table instead. *)
    let n = Cgraph.n g in
    let probes =
      (* evenly spaced ids, plus the inherited bag center, which is the
         vertex most likely to have a graph-spanning ball *)
      List.sort_uniq compare
        ((match hint with Some h -> [ h ] | None -> [])
        @ List.init 8 (fun i -> i * (n - 1) / 7))
    in
    let srch = Bfs.searcher g in
    let sum_r = ref 0 and sum_2r = ref 0 in
    let huge_r = ref false and huge_2r = ref false in
    List.iter
      (fun v ->
        let br = Bfs.sball_size srch v ~radius:r in
        let b2 = Bfs.sball_size srch v ~radius:(2 * r) in
        sum_r := !sum_r + br;
        sum_2r := !sum_2r + b2;
        if 10 * br >= 9 * n then huge_r := true;
        if 10 * b2 >= 9 * n then huge_2r := true)
      probes;
    let nprobes = List.length probes in
    (* table whenever the per-vertex ball budget is moderate: recursion
       only wins in hub regimes where r-balls grow with n *)
    !sum_r <= max threshold (n / 32) * nprobes
    || !sum_2r > 8 * !sum_r
    || ((not !huge_r) && !huge_2r)
  then build_base ?pool acc g ~r
  else begin
    let cover = Cover.compute g ~r in
    acc.a_bags <- acc.a_bags + Cover.bag_count cover;
    (* The pure per-bag build job: reads only the (immutable) cover and
       graph, writes only its own result and stats accumulator.  The
       recursion below a bag stays inside the bag's job — the pool is
       never passed down (Pool.run is not reentrant), only the top
       level fans out. *)
    let build_bag acc id bag =
      let center = cover.Cover.centers.(id) in
      let sub, to_orig = Cgraph.induced g bag in
      let c_local =
        match Cgraph.local_of_orig bag center with
        | Some i -> i
        | None -> assert false
      in
      (* Splitter's answer when Connector plays the bag's center *)
      let s_local =
        Splitter.splitter_center
          { Splitter.graph = sub; to_orig }
          ~connector:c_local
      in
      let s = to_orig.(s_local) in
      (* rings: distance to s_X inside G[X] *)
      let ring = Bfs.dist_upto sub s_local ~radius:r in
      let child_vertices =
        Array.of_list (List.filter (fun v -> v <> s) (Array.to_list bag))
      in
      let child_graph, _ = Cgraph.induced g child_vertices in
      let child =
        (* second shrinkage guard, per bag: only recurse into a
           child at most half the current graph, so the depth is
           logarithmic and the per-level duplication cannot
           compound (the regime beyond this is where the paper's
           λ-bound hides non-elementary constants) — otherwise
           table it *)
        if 2 * Array.length child_vertices >= Cgraph.n g then
          build_base acc child_graph ~r
        else begin
          let hint =
            if center = s then None
            else
              let i = Sorted.lower_bound child_vertices center in
              if
                i < Array.length child_vertices
                && child_vertices.(i) = center
              then Some i
              else None
          in
          build_node acc child_graph ~r ~threshold ~budget:(budget - 1)
            ~level:(level + 1) ~hint
        end
      in
      { s; ring; child_vertices; child }
    in
    let per_bag =
      let nb = Array.length cover.Cover.bags in
      match pool with
      | Some p when Pool.jobs p > 1 && nb > 1 ->
          let out = Array.make nb None in
          let accs = Array.init nb (fun _ -> fresh_acc ()) in
          Pool.run p ~n:nb (fun id ->
              out.(id) <- Some (build_bag accs.(id) id cover.Cover.bags.(id)));
          (* merge per-bag stats in canonical bag order *)
          Array.iter (fun a -> merge_acc acc a) accs;
          Array.map (function Some bd -> bd | None -> assert false) out
      | _ -> Array.mapi (fun id bag -> build_bag acc id bag) cover.Cover.bags
    in
    Rec { cover; per_bag }
  end

let m_base_pairs = Metrics.counter "dist.base_pairs"
let m_levels = Metrics.counter "dist.levels"
let m_tests = Metrics.counter ~ops:true "dist.tests"

let build ?pool ?(base_threshold = 256) ?(depth_budget = 20) g ~r =
  if r < 0 then invalid_arg "Dist_index.build: negative radius";
  Nd_trace.phase "dist_index.build" @@ fun () ->
  Budget.enter "dist_index";
  let acc = fresh_acc () in
  let root =
    build_node ?pool acc g ~r ~threshold:base_threshold ~budget:depth_budget
      ~level:0 ~hint:None
  in
  Metrics.add m_base_pairs acc.a_base_pairs;
  Metrics.add m_levels acc.a_levels;
  {
    r;
    root;
    overrides = Hashtbl.create 16;
    n_levels = acc.a_levels;
    n_bags = acc.a_bags;
    n_base_pairs = acc.a_base_pairs;
    n_budget_hits = acc.a_budget_hits;
  }

let radius t = t.r

let rec test_node node ~r a b =
  if a = b then true
  else
    match node with
    | Base balls -> Sorted.mem balls.(a) b
    | Rec { cover; per_bag } ->
        let bag_id = cover.Cover.assigned.(a) in
        let bag = cover.Cover.bags.(bag_id) in
        if not (Sorted.mem bag b) then false
        else begin
          let bd = per_bag.(bag_id) in
          let pos v =
            let i = Sorted.lower_bound bag v in
            assert (i < Array.length bag && bag.(i) = v);
            i
          in
          if a = bd.s then bd.ring.(pos b) >= 0
          else if b = bd.s then bd.ring.(pos a) >= 0
          else begin
            let ra = bd.ring.(pos a) and rb = bd.ring.(pos b) in
            if ra >= 0 && rb >= 0 && ra + rb <= r then true
            else begin
              (* path avoiding s_X: recurse into X' *)
              let la = Sorted.lower_bound bd.child_vertices a in
              let lb = Sorted.lower_bound bd.child_vertices b in
              test_node bd.child ~r la lb
            end
          end
        end

let test t a b =
  Budget.tick ();
  Metrics.incr m_tests;
  if a = b then true
  else
    match Hashtbl.find_opt t.overrides a with
    | Some ball -> Sorted.mem ball b
    | None -> (
        match Hashtbl.find_opt t.overrides b with
        | Some ball -> Sorted.mem ball a
        | None -> test_node t.root ~r:t.r a b)

let m_overrides = Metrics.counter "dist.overrides"

let patch t g ~dirty =
  Budget.enter "dist_index";
  let srch = Bfs.searcher g in
  Array.iter
    (fun a ->
      Budget.tick ();
      let ball = Bfs.sball srch a ~radius:t.r in
      let without_self =
        Array.of_list (List.filter (fun v -> v <> a) (Array.to_list ball))
      in
      Hashtbl.replace t.overrides a without_self;
      Metrics.incr m_overrides)
    dirty

let override_count t = Hashtbl.length t.overrides

let stats t =
  {
    levels = t.n_levels;
    bags = t.n_bags;
    base_pairs = t.n_base_pairs;
    budget_hits = t.n_budget_hits;
  }
