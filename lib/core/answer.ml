open Nd_util
open Nd_graph
open Nd_logic
open Nd_nowhere

type work = {
  mutable scan_steps : int;
  mutable skip_queries : int;
  mutable dist_tests : int;
  mutable local_sats : int;
}

(* The per-structure [work] counters above feed the ablation benches;
   the global Metrics mirrors below feed the cost-model clock
   ({!Nd_util.Metrics.ops}) that the engine measures enumeration delay
   in.  Distance tests are counted inside {!Dist_index} itself. *)
let m_scan = Metrics.counter ~ops:true "answer.scan_steps"
let m_skip = Metrics.counter ~ops:true "answer.skip_queries"
let m_local = Metrics.counter ~ops:true "answer.local_sats"

(* per-disjunct data for the J = {k} case (Case I) *)
type unary_data = {
  mutable l_sorted : int array;  (* the label set L, sorted *)
  l_flag : Bitset.t;  (* O(1) membership *)
  mutable skip : Skip.t option;  (* None when k = 1 (no kernels needed) *)
  mutable skip_stale : bool;
      (* set by [update]; the SKIP structure is global, so it is rebuilt
         lazily on the next Case-I use rather than per mutation *)
  mutable kernel_l : (int, int array) Hashtbl.t;
      (* bag id -> sorted (K(X) ∩ L), materialized lazily *)
}

type disjunct_data = {
  d : Compile.disjunct;
  j : int list;  (* component of the last position *)
  others : int list list;  (* remaining components *)
  j_local : Fo.t;  (* local formula of J *)
  unary : unary_data option;  (* present iff J is a singleton *)
  mutable live : bool;
      (* sentence literals hold in the current graph; mutations can flip
         this, so dead disjuncts keep their data and are merely masked *)
}

type compiled_state = {
  mutable g : Cgraph.t;
  c : Compile.compiled;
  k : int;
  dist : Dist_index.t option;  (* None when k = 1 *)
  mutable cover : Cover.t;
  mutable kernels : int array array option;
      (* per bag, when Case I data exists *)
  local : Local.t;
  djs : disjunct_data array;
  sentences : (Fo.t, bool) Hashtbl.t;
      (* sentence literal ↦ its truth in the current graph *)
  ball_cache : (int, int array) Hashtbl.t;
      (* anchor vertex ↦ its sorted radius-r ball (Case II candidates) *)
  mutable searcher : Bfs.searcher;
  w : work;
  mutable skip_enabled : bool;
}

type fallback_state = {
  mutable fg : Cgraph.t;
  fquery : Fo.t;
  fvars : Fo.var array;
  mutable fctx : Nd_eval.Naive.ctx;
  fw : work;
}

type state = C of compiled_state | F of fallback_state

type t = { comp : Compile.t; state : state }

let cover_radius (c : Compile.compiled) =
  let k = Array.length c.vars in
  let r = c.radius in
  max (2 * r) (max (k * r) (((k - 1) * r) + c.locality))

let kernel_radius c = cover_radius c - c.radius

(* ---------------------------------------------------------------- *)

let build_compiled ?pool g (c : Compile.compiled) =
  let k = Array.length c.vars in
  let w = { scan_steps = 0; skip_queries = 0; dist_tests = 0; local_sats = 0 } in
  let dist =
    if k >= 2 then Some (Dist_index.build ?pool g ~r:c.radius) else None
  in
  let cover = Cover.compute g ~r:(cover_radius c) in
  let local = Local.make g cover in
  (* Materialize every bag context now: this work belongs to the
     preprocessing phase (the paper's Step 4), not to the first
     answering calls that happen to touch a bag.  Each bag's
     materialization is an independent bag-job (it writes only that
     bag's slot in the Local table), so a pool fans them out. *)
  Nd_trace.phase "answer.local_eval" (fun () ->
      Budget.enter "local_eval";
      let nb = Array.length cover.Cover.bags in
      let mat bag =
        Budget.poll ();
        ignore (Local.bag_graph local bag)
      in
      match pool with
      | Some p when Pool.jobs p > 1 && nb > 1 -> Pool.run p ~n:nb mat
      | _ ->
          for bag = 0 to nb - 1 do
            mat bag
          done);
  (* Step 5: evaluate the sentence literals once, globally. *)
  let sentence_vals =
    Nd_trace.phase "answer.sentences" @@ fun () ->
    Budget.enter "sentences";
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (dj : Compile.disjunct) ->
        List.iter
          (fun (phi, _) ->
            if not (Hashtbl.mem tbl phi) then
              Hashtbl.replace tbl phi
                (Nd_eval.Naive.model_check (Nd_eval.Naive.ctx g) phi))
          dj.Compile.sentences)
      c.disjuncts;
    tbl
  in
  let is_live (dj : Compile.disjunct) =
    List.for_all
      (fun (phi, pol) -> Hashtbl.find sentence_vals phi = pol)
      dj.Compile.sentences
  in
  let last = k - 1 in
  (* Build answering data for every disjunct, live or not: mutations can
     flip a sentence literal, so a disjunct that is dead today may be
     needed tomorrow — it is masked by its [live] flag, not dropped. *)
  let needs_case1 =
    k >= 2
    && List.exists
         (fun (dj : Compile.disjunct) ->
           Dtype.component_of dj.Compile.tau last = [ last ])
         c.disjuncts
  in
  let kernels =
    if needs_case1 then
      Nd_trace.phase "answer.kernels" @@ fun () ->
      Budget.enter "kernels";
      let compute bag = Kernel.compute g ~bag ~p:(kernel_radius c) in
      Some
        (match pool with
        | Some p when Pool.jobs p > 1 ->
            Pool.map_array p compute cover.Cover.bags
        | _ -> Array.map compute cover.Cover.bags)
    else None
  in
  let kernels_of v =
    match kernels with
    | None -> []
    | Some ks ->
        List.filter
          (fun x -> Sorted.mem ks.(x) v)
          (Array.to_list cover.Cover.bags_of.(v))
  in
  (* Step 12: label sets, shared between disjuncts with equal ψ. *)
  let lsets = Hashtbl.create 8 in
  let lset_of psi =
    match Hashtbl.find_opt lsets psi with
    | Some v -> v
    | None ->
        let n = Cgraph.n g in
        let flag = Bitset.create n in
        let env_of v =
          match Fo.free_vars psi with
          | [ x ] -> [ (x, v) ]
          | [] -> []
          | _ -> invalid_arg "Answer: non-unary label formula"
        in
        Nd_trace.phase "answer.labels" (fun () ->
            Budget.enter "labels";
            (* Per-bag hit lists are independent bag-jobs (each touches
               only its own bag's context and memo); the Bitset merge
               shares words across bags, so it stays sequential, in
               canonical bag order. *)
            let nb = Array.length cover.Cover.assigned_members in
            let bag_hits bag_id =
              Budget.poll ();
              Array.of_list
                (List.filter
                   (fun v -> Local.sat local ~bag:bag_id psi (env_of v))
                   (Array.to_list cover.Cover.assigned_members.(bag_id)))
            in
            let hits =
              match pool with
              | Some p when Pool.jobs p > 1 && nb > 1 ->
                  let out = Array.make nb [||] in
                  Pool.run p ~n:nb (fun b -> out.(b) <- bag_hits b);
                  out
              | _ -> Array.init nb bag_hits
            in
            Array.iter (Array.iter (fun v -> Bitset.add flag v)) hits);
        let sorted = Array.of_list (Bitset.to_list flag) in
        let skip =
          match kernels with
          | Some ks when k >= 2 ->
              Nd_trace.phase "skip.build" (fun () ->
                  Some
                    (Skip.build ~kernels:ks ~kernels_of ~l:sorted ~n ~k:(k - 1)))
          | _ -> None
        in
        let v =
          {
            l_sorted = sorted;
            l_flag = flag;
            skip;
            skip_stale = false;
            kernel_l = Hashtbl.create 8;
          }
        in
        Hashtbl.replace lsets psi v;
        v
  in
  let djs =
    Array.of_list
      (List.map
         (fun (dj : Compile.disjunct) ->
           let j = Dtype.component_of dj.Compile.tau last in
           let others =
             List.filter
               (fun comp -> not (List.mem last comp))
               (Dtype.components dj.Compile.tau)
           in
           let j_local =
             match List.assoc_opt j dj.Compile.locals with
             | Some phi -> phi
             | None -> Fo.True
           in
           let unary = if j = [ last ] then Some (lset_of j_local) else None in
           { d = dj; j; others; j_local; unary; live = is_live dj })
         c.disjuncts)
  in
  {
    g;
    c;
    k;
    dist;
    cover;
    kernels;
    local;
    djs;
    sentences = sentence_vals;
    ball_cache = Hashtbl.create 256;
    searcher = Bfs.searcher g;
    w;
    skip_enabled = true;
  }

let build ?pool g comp =
  match comp with
  | Compile.Compiled c -> { comp; state = C (build_compiled ?pool g c) }
  | Compile.Fallback f ->
      {
        comp;
        state =
          F
            {
              fg = g;
              fquery = f.query;
              fvars = f.vars;
              fctx = Nd_eval.Naive.ctx g;
              fw =
                { scan_steps = 0; skip_queries = 0; dist_tests = 0; local_sats = 0 };
            };
      }

let graph t = match t.state with C s -> s.g | F f -> f.fg
let compiled t = t.comp
let arity t = Compile.arity t.comp
let work t = match t.state with C s -> s.w | F f -> f.fw

let reset_work t =
  let w = work t in
  w.scan_steps <- 0;
  w.skip_queries <- 0;
  w.dist_tests <- 0;
  w.local_sats <- 0

let use_skip t b = match t.state with C s -> s.skip_enabled <- b | F _ -> ()

(* ---------------------------------------------------------------- *)
(* Answering phase. *)

let dist_le s a b =
  s.w.dist_tests <- s.w.dist_tests + 1;
  match s.dist with
  | Some idx -> Dist_index.test idx a b
  | None -> assert false

let local_sat s ~bag phi env =
  s.w.local_sats <- s.w.local_sats + 1;
  Metrics.incr m_local;
  Local.sat s.local ~bag phi env

(* env for a component: positions ↦ tuple values *)
let comp_env s comp (values : int -> int) =
  List.map (fun pos -> (s.c.Compile.vars.(pos), values pos)) comp

(* check the components not containing the last position *)
let others_hold s (dd : disjunct_data) prefix =
  List.for_all
    (fun comp ->
      match List.assoc_opt comp dd.d.Compile.locals with
      | None | Some Fo.True -> true
      | Some phi ->
          let anchor = prefix.(List.hd comp) in
          let bag = s.cover.Cover.assigned.(anchor) in
          local_sat s ~bag phi (comp_env s comp (fun p -> prefix.(p))))
    dd.others

(* Rebuild a stale SKIP structure against the current graph/cover.
   [update] marks rather than rebuilds because SKIP is a global O(n)
   structure shared across mutations — one rebuild absorbs any number
   of preceding mutations, and read-free workloads never pay for it. *)
let ensure_skip s u =
  if u.skip_stale then begin
    (match s.kernels with
    | Some ks when s.k >= 2 ->
        let kernels_of v =
          List.filter
            (fun x -> Sorted.mem ks.(x) v)
            (Array.to_list s.cover.Cover.bags_of.(v))
        in
        Nd_trace.phase "skip.build" (fun () ->
            u.skip <-
              Some
                (Skip.build ~kernels:ks ~kernels_of ~l:u.l_sorted
                   ~n:(Cgraph.n s.g) ~k:(s.k - 1)))
    | _ -> u.skip <- None);
    u.skip_stale <- false
  end

(* Case I: J = {last}.  Solutions are the label-set members at distance
   > r from every prefix value. *)
let case1 s (dd : disjunct_data) prefix from =
  let u = match dd.unary with Some u -> u | None -> assert false in
  let far v =
    Array.for_all (fun a -> not (dist_le s v a)) prefix
  in
  if s.k = 1 then Sorted.next_geq u.l_sorted from
  else if not s.skip_enabled then begin
    (* ablation: plain scan of L *)
    let rec go i =
      if i >= Array.length u.l_sorted then None
      else begin
        s.w.scan_steps <- s.w.scan_steps + 1;
        Metrics.incr m_scan;
        let v = u.l_sorted.(i) in
        if far v then Some v else go (i + 1)
      end
    in
    go (Sorted.lower_bound u.l_sorted from)
  end
  else begin
    let bags =
      List.sort_uniq compare
        (Array.to_list (Array.map (fun a -> s.cover.Cover.assigned.(a)) prefix))
    in
    (* skip candidate: not in any kernel of the prefix bags ⇒ far *)
    s.w.skip_queries <- s.w.skip_queries + 1;
    Metrics.incr m_skip;
    ensure_skip s u;
    let skip = match u.skip with Some sk -> sk | None -> assert false in
    let cand0 = Skip.skip skip ~b:from ~bags in
    (* kernel candidates: scan K(X_κ) ∩ L in increasing order, checking
       farness via the distance index.  The scan never needs to pass the
       best candidate found so far — the SKIP result in particular —
       which keeps hub-heavy instances from degenerating into a full
       kernel walk. *)
    let kernels = match s.kernels with Some ks -> ks | None -> assert false in
    let best = ref cand0 in
    let kernel_scan bag =
      let kl =
        match Hashtbl.find_opt u.kernel_l bag with
        | Some a -> a
        | None ->
            let a = Sorted.inter kernels.(bag) u.l_sorted in
            Hashtbl.replace u.kernel_l bag a;
            a
      in
      let rec go i =
        if i >= Array.length kl then ()
        else begin
          let v = kl.(i) in
          match !best with
          | Some b when v >= b -> ()
          | _ ->
              s.w.scan_steps <- s.w.scan_steps + 1;
        Metrics.incr m_scan;
              if far v then best := Some v else go (i + 1)
        end
      in
      go (Sorted.lower_bound kl from)
    in
    List.iter kernel_scan bags;
    !best
  end

(* Case II: |J| ≥ 2.  Any solution is within distance r of some prefix
   value at a τ-neighbor position of the last coordinate, so the
   candidate set is that (sorted) r-ball — a constant-size set on
   sparse graphs — intersected with the bag of the anchor, in which the
   local formula is evaluated. *)
let case2 s (dd : disjunct_data) prefix from =
  let last = s.k - 1 in
  let anchor_pos =
    match
      List.filter
        (fun p -> p <> last && Dtype.mem dd.d.Compile.tau p last)
        dd.j
    with
    | [] -> assert false (* J is τ-connected and contains last *)
    | p :: _ -> p
  in
  let anchor = prefix.(anchor_pos) in
  let bag_id = s.cover.Cover.assigned.(anchor) in
  let candidates =
    match Hashtbl.find_opt s.ball_cache anchor with
    | Some b -> b
    | None ->
        let b = Bfs.sball s.searcher anchor ~radius:s.c.Compile.radius in
        Hashtbl.replace s.ball_cache anchor b;
        b
  in
  let type_ok v =
    let ok = ref true in
    for i = 0 to s.k - 2 do
      if !ok then begin
        let close = dist_le s v prefix.(i) in
        let want = Dtype.mem dd.d.Compile.tau i last in
        if close <> want then ok := false
      end
    done;
    !ok
  in
  let rec go i =
    if i >= Array.length candidates then None
    else begin
      s.w.scan_steps <- s.w.scan_steps + 1;
        Metrics.incr m_scan;
      let v = candidates.(i) in
      if
        type_ok v
        && (Fo.equal dd.j_local Fo.True
           || local_sat s ~bag:bag_id dd.j_local
                (comp_env s dd.j (fun p -> if p = last then v else prefix.(p))))
      then Some v
      else go (i + 1)
    end
  in
  go (Sorted.lower_bound candidates from)

let prefix_type s prefix =
  Dtype.of_tuple ~dist_le:(fun a b -> dist_le s a b) prefix

let next_in_last_compiled s ~prefix ~from =
  if Array.length prefix <> s.k - 1 then
    invalid_arg "Answer.next_in_last: prefix arity mismatch";
  if from >= Cgraph.n s.g then None
  else begin
    let from = max 0 from in
    let tau' = if s.k = 1 then Dtype.create 0 [] else prefix_type s prefix in
    Array.fold_left
      (fun acc dd ->
        if not dd.live then acc
        else if not (Dtype.compatible tau' dd.d.Compile.tau) then acc
        else if not (others_hold s dd prefix) then acc
        else begin
          let cand =
            if dd.j = [ s.k - 1 ] then case1 s dd prefix from
            else case2 s dd prefix from
          in
          match (acc, cand) with
          | None, c -> c
          | acc, None -> acc
          | Some a, Some b -> Some (min a b)
        end)
      None s.djs
  end

let next_in_last_fallback f ~prefix ~from =
  let k = Array.length f.fvars in
  if Array.length prefix <> k - 1 then
    invalid_arg "Answer.next_in_last: prefix arity mismatch";
  let n = Cgraph.n f.fg in
  let env v =
    Array.to_list (Array.mapi (fun i a -> (f.fvars.(i), a)) prefix)
    @ [ (f.fvars.(k - 1), v) ]
  in
  let rec go v =
    if v >= n then None
    else begin
      f.fw.scan_steps <- f.fw.scan_steps + 1;
      Metrics.incr m_scan;
      if Nd_eval.Naive.sat f.fctx ~env:(env v) f.fquery then Some v
      else go (v + 1)
    end
  in
  go (max 0 from)

let next_in_last t ~prefix ~from =
  Budget.tick ();
  match t.state with
  | C s -> next_in_last_compiled s ~prefix ~from
  | F f -> next_in_last_fallback f ~prefix ~from

let holds t a =
  let k = arity t in
  if Array.length a <> k then invalid_arg "Answer.holds: arity mismatch";
  let prefix = Array.sub a 0 (k - 1) in
  match next_in_last t ~prefix ~from:a.(k - 1) with
  | Some b -> b = a.(k - 1)
  | None -> false

(* ---------------------------------------------------------------- *)
(* Incremental maintenance (the update pipeline's answering layer). *)

let influence_radius t =
  match t.state with
  | C s -> Some (cover_radius s.c)
  | F _ -> None

let has_sentences t =
  match t.state with
  | C s -> Hashtbl.length s.sentences > 0
  | F _ -> false

let m_upd_dirty = Metrics.counter "answer.update_dirty"
let m_upd_bags = Metrics.counter "answer.update_bags"

let update_compiled ?pool s g' ~touched =
  let old_g = s.g in
  let rc = cover_radius s.c in
  (* Dirty region: every vertex whose ≤ rc-ball can differ between the
     old and new graph — the rc-neighborhood of the touched vertices
     taken in BOTH graphs (a ≤ rc path through the mutated edge pins
     its endpoints inside one of these balls). *)
  let ball_union g =
    List.concat_map
      (fun v -> Array.to_list (Bfs.ball g v ~radius:rc))
      touched
  in
  let dirty =
    Array.of_list (List.sort_uniq compare (ball_union old_g @ ball_union g'))
  in
  Metrics.add m_upd_dirty (Array.length dirty);
  s.g <- g';
  s.searcher <- Bfs.searcher g';
  (* 1. distance index: shadow the dirty balls (rc ≥ 2·radius ≥ radius,
     so [dirty] covers every vertex whose radius-ball changed). *)
  (match s.dist with Some idx -> Dist_index.patch idx g' ~dirty | None -> ());
  (* 2. cover repair: re-house dirty vertices whose balls escaped. *)
  let old_cover = s.cover in
  let cover', fresh = Cover.patch g' old_cover ~dirty in
  s.cover <- cover';
  (* Bags whose induced subgraph changed: those containing a touched
     vertex (an edge mutation alters G[X] only when both endpoints are
     in X; a color flip when the vertex is), plus the fresh bags. *)
  let ctx_bags =
    List.sort_uniq compare
      (fresh
      @ List.concat_map
          (fun v ->
            if v < Array.length old_cover.Cover.bags_of then
              Array.to_list old_cover.Cover.bags_of.(v)
            else [])
          touched)
  in
  (* Bags whose kernel changed: kernel membership of b ∈ X depends on
     N_p(b), p = kernel_radius ≤ rc, so exactly the bags meeting the
     dirty region. *)
  let kernel_bags =
    List.sort_uniq compare
      (fresh
      @ List.concat_map
          (fun v -> Array.to_list old_cover.Cover.bags_of.(v))
          (Array.to_list dirty))
  in
  Metrics.add m_upd_bags (List.length kernel_bags);
  (* 3. per-bag kernels (Case I machinery), only where they changed. *)
  (match s.kernels with
  | None -> ()
  | Some ks ->
      let nb = Array.length cover'.Cover.bags in
      let ks' = Array.make nb [||] in
      Array.blit ks 0 ks' 0 (Array.length ks);
      let p = kernel_radius s.c in
      let kb = Array.of_list kernel_bags in
      let rebuild i =
        Budget.poll ();
        let b = kb.(i) in
        ks'.(b) <- Kernel.compute g' ~bag:cover'.Cover.bags.(b) ~p
      in
      (match pool with
      | Some pl when Pool.jobs pl > 1 && Array.length kb > 1 ->
          Pool.run pl ~n:(Array.length kb) rebuild
      | _ ->
          for i = 0 to Array.length kb - 1 do
            rebuild i
          done);
      s.kernels <- Some ks');
  (* 4. bag-local contexts: drop only the changed bags' tables, then
     re-materialize them eagerly through the same bag-job seam the
     prepare phase uses — eager rather than first-use so the work (and
     the sharded ops counters) is identical across job counts. *)
  Local.rebind s.local g' cover' ~dirty_bags:ctx_bags;
  (let cb = Array.of_list ctx_bags in
   let mat i =
     Budget.poll ();
     ignore (Local.bag_graph s.local cb.(i))
   in
   match pool with
   | Some pl when Pool.jobs pl > 1 && Array.length cb > 1 ->
       Pool.run pl ~n:(Array.length cb) mat
   | _ ->
       for i = 0 to Array.length cb - 1 do
         mat i
       done);
  (* 5. label sets: re-evaluate ψ-membership for every vertex whose
     evaluation context changed — the assigned members of changed bags
     (covers re-housed vertices: their new bag is fresh). *)
  let relabel =
    List.sort_uniq compare
      (List.concat_map
         (fun b -> Array.to_list cover'.Cover.assigned_members.(b))
         ctx_bags)
  in
  let unaries =
    Array.fold_left
      (fun acc dd ->
        match dd.unary with
        | Some u when not (List.exists (fun (_, u') -> u' == u) acc) ->
            (dd.j_local, u) :: acc
        | _ -> acc)
      [] s.djs
  in
  List.iter
    (fun (psi, u) ->
      let env_of v =
        match Fo.free_vars psi with
        | [ x ] -> [ (x, v) ]
        | [] -> []
        | _ -> invalid_arg "Answer: non-unary label formula"
      in
      List.iter
        (fun v ->
          Budget.tick ();
          let bag = cover'.Cover.assigned.(v) in
          if Local.sat s.local ~bag psi (env_of v) then Bitset.add u.l_flag v
          else Bitset.remove u.l_flag v)
        relabel;
      u.l_sorted <- Array.of_list (Bitset.to_list u.l_flag);
      Hashtbl.reset u.kernel_l;
      u.skip_stale <- true)
    unaries;
  (* 6. Case-II candidate balls rooted in the dirty region. *)
  Array.iter (Hashtbl.remove s.ball_cache) dirty;
  (* 7. sentence literals are global: re-check them (free when the
     query has none) and re-mask the disjuncts. *)
  if Hashtbl.length s.sentences > 0 then begin
    let ctx = Nd_eval.Naive.ctx g' in
    Hashtbl.iter
      (fun phi _ ->
        Hashtbl.replace s.sentences phi (Nd_eval.Naive.model_check ctx phi))
      (Hashtbl.copy s.sentences);
    Array.iter
      (fun dd ->
        dd.live <-
          List.for_all
            (fun (phi, pol) -> Hashtbl.find s.sentences phi = pol)
            dd.d.Compile.sentences)
      s.djs
  end

let update ?pool t g' ~touched =
  match t.state with
  | C s -> update_compiled ?pool s g' ~touched
  | F f ->
      (* the fallback evaluates directly against the graph: swap it *)
      f.fg <- g';
      f.fctx <- Nd_eval.Naive.ctx g'
