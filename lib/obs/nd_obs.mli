(** Fleet-wide observability: cross-process trace propagation, the
    merged timeline, aggregated Prometheus, and the crash flight
    recorder.

    PR 4 gave one process spans, a Chrome export and a Prometheus
    scrape; PRs 6–8 turned the system into a fleet where each process's
    telemetry is an island.  This module is the glue that makes the
    fleet observable as one system, in three pillars (DESIGN S17):

    - {e trace-context propagation} ({!Ctx}): the line protocol's
      optional trailing [trace=<trace_id>:<parent_span>] request
      attribute.  The router stamps every fan-out with its own span id;
      a worker opens its [server.request] span as a child of the
      propagated parent (recorded as [ctx.trace]/[ctx.span] span
      attrs); {!Merge} resolves the references across process
      boundaries.
    - {e fleet metrics aggregation} ({!Prom}, {!Lhist}): re-label each
      replica's exposition with [shard]/[replica], merge family blocks
      (one HELP/TYPE per family), and add fleet-level derived gauges
      and per-shard histograms.
    - {e crash flight recorder} ({!Flight}): a bounded ring of a
      worker's last N request events, mirrored to an append-only file
      so an abnormal exit ([kill -9] included) leaves the recent past
      on disk for the supervisor to harvest into a post-mortem.

    The module is deliberately engine-free (depends only on
    {!Nd_util} and {!Nd_trace}); {!Nd_server} and {!Nd_cluster} thread
    it through the serving tier. *)

val json_escape : string -> string
(** JSON string-content escaping shared by the event-row writers. *)

val now_us : unit -> int
(** Wall-clock microseconds ([gettimeofday] scaled) — the timestamp
    base of event-log rows and post-mortems. *)

(** The [trace=<trace_id>:<parent_span>] request attribute.

    Grammar: the {e last} whitespace-separated token of a request line,
    [trace=] followed by a non-empty trace id over [A-Za-z0-9._-] and a
    [:]-separated non-negative decimal span id.  A malformed token is a
    structured [err user] naming the attribute — never a protocol
    desync (the line is still consumed, the reply still terminated). *)
module Ctx : sig
  type t = { trace_id : string; span : int }

  val encode : t -> string
  (** [trace=<id>:<span>]. *)

  val parse : string -> (t, string) result
  (** Parse one [trace=…] token; [Error] is the human reason embedded
      in the [err user] reply. *)

  val attrs : t -> (string * string) list
  (** The span attributes ([ctx.trace], [ctx.span]) a server attaches
      to its [server.request] span so {!Merge} can re-parent it. *)

  val split_line : string -> string * (t, string) result option
  (** Split a request line into the base request and, when its last
      token starts with [trace=], that token's parse.  [None]: no
      trace attribute present. *)

  val stamp : string -> t -> string
  (** Append an encoded context to an outgoing request line. *)
end

(** Stitching per-process Chrome trace shards into one cross-process
    timeline.

    Every process exports its own shard ({!Nd_trace.save_chrome}) whose
    top-level [process] member names its trace id.  [merge] remaps each
    shard's span ids into one global namespace (pid = shard index + 1,
    tids preserved as in-process lanes), then resolves every root
    span's [ctx.trace]/[ctx.span] attrs against the other shards:
    a resolved reference re-parents the span across the process
    boundary; an unresolved one (evicted parent, missing shard) is
    {e flagged} with a [ctx.orphan] arg, never dropped. *)
module Merge : sig
  type report = {
    r_processes : int;
    r_events : int;
    r_linked : int;  (** cross-process parent references resolved *)
    r_orphans : int;  (** references flagged [ctx.orphan] *)
  }

  val merge : string list -> (string * report, string) result
  (** [merge docs] is the merged Chrome document plus the link report.
      Shards must carry distinct trace ids. *)

  type verdict = {
    v_processes : int;
    v_events : int;
    v_server_requests : int;
        (** [server.request] spans whose propagated context resolved *)
    v_contained : int;
        (** of those, spans whose parent chain reaches a
            [router.request] span; the rest must reach another
            router-side root ([router.probe], [router.catchup]) or
            [validate] errors *)
    v_orphans : int;  (** events flagged [ctx.orphan] *)
  }

  val default_slack_us : float
  (** Containment slack across process boundaries (500us): processes
      share a wall clock but clamp it monotonically per domain. *)

  val validate : ?slack_us:float -> string -> (verdict, string) result
  (** Validate a merged document: complete events only, containment on
      every resolved parent edge within [slack_us], and the fleet
      acceptance rule — every resolved propagated [server.request]
      span must reach a router-side ancestor ([router.request] for
      query traffic, counted in [v_contained]; [router.probe] /
      [router.catchup] for the router's own timers).  Orphan-flagged
      events (parent evicted from a bounded ring upstream) are
      tolerated and counted, never dropped. *)
end

(** Aggregating Prometheus text expositions across the fleet. *)
module Prom : sig
  val escape_label : string -> string

  val relabel : labels:(string * string) list -> string -> string
  (** Insert [labels] at the front of every sample line's label list
      (creating one on unlabelled samples); HELP/TYPE lines pass
      through.  This is how a replica's scrape gains its
      [shard]/[replica] identity. *)

  val merge : string list -> string
  (** Merge expositions: one HELP/TYPE block per family (first seen
      wins — required, since per-family TYPE must be unique), with
      every source's samples grouped under it, in first-seen family
      order. *)

  val gauge : name:string -> help:string -> int -> string
  (** A one-sample gauge family block (fleet-derived values like
      [nd_fleet_epoch]). *)
end

(** Caller-synchronized labelled histograms — the per-shard merge-pull
    latency families the router adds to the aggregated exposition.
    Buckets are the same power-of-two ladder as
    {!Nd_trace.Prometheus.render} (0, 1, 2, … up to
    {!Nd_util.Metrics.hist_clamp}); observations saturate into the top
    bucket.  Not internally locked: the router observes and renders
    under its own request lock. *)
module Lhist : sig
  type t

  val create : name:string -> help:string -> label:string -> unit -> t
  (** [label] is the key each series is distinguished by (["shard"]). *)

  val observe : t -> label:string -> int -> unit
  val render : t -> string
  (** The full family block; [""] when no series has been observed. *)
end

(** The crash flight recorder: a bounded ring of JSONL event lines,
    mirrored to an append-only file so the last N events survive
    [kill -9].  The file is compacted (rewritten to the ring contents
    via tmp + rename) when it grows past 8x capacity, so it stays
    bounded too.

    Lifecycle under [fodb serve --blackbox DIR --supervise]: the worker
    records a [(boot)] row (with its post-replay epoch) and then one
    row per handled request; on an abnormal exit the supervisor
    {!harvest}s the file, writes a post-mortem (crash cause, restart
    decision, last recorded epoch, the harvested rows) and
    {!truncate}s the flight file so the restarted worker's [(boot)]
    row starts a fresh recording. *)
module Flight : sig
  type t

  val default_capacity : int
  (** 256 events. *)

  val create : ?capacity:int -> ?path:string -> unit -> t
  (** [path]: mirror every event to this append-only file (opened in
      append mode — an existing recording is continued, not clobbered).
      Without it the ring is memory-only (tests).
      @raise Invalid_argument on a non-positive capacity. *)

  val record : t -> string -> unit
  (** Append one event line (a complete JSON object, no newline).
      Evicts the oldest ring entry past capacity; flushes the mirror
      file per event so a [kill -9] loses at most the in-flight
      line. *)

  val events : t -> string list
  (** Ring contents, oldest first. *)

  val close : t -> unit

  val harvest : src:string -> capacity:int -> string list
  (** The last [capacity] lines of a (dead) worker's flight file;
      [[]] when the file is missing. *)

  val last_epoch : string list -> int option
  (** The ["epoch"] field of the last harvested row that carries one —
      the epoch the worker died at, which must equal the restarted
      worker's boot epoch once the journal replays. *)

  val write_postmortem :
    path:string ->
    cause:string ->
    decision:string ->
    last_epoch:int option ->
    events:string list ->
    unit
  (** Write the post-mortem JSONL (tmp + rename): a header row
      [{"kind":"postmortem","ts_us":…,"cause":…,"decision":…,
      "last_epoch":…,"events":N}] followed by the harvested rows
      verbatim. *)

  val truncate : string -> unit
  (** Empty a flight file (the supervisor, after harvesting). *)
end
