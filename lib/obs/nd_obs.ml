module Metrics = Nd_util.Metrics
module Json = Nd_trace.Json

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* ---------------- trace-context request attribute ---------------- *)

module Ctx = struct
  type t = { trace_id : string; span : int }

  let prefix = "trace="

  let id_ok s =
    s <> ""
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
           | _ -> false)
         s

  let encode { trace_id; span } = Printf.sprintf "%s%s:%d" prefix trace_id span

  let has_prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix

  let parse tok =
    if not (has_prefix tok) then Error "missing trace= prefix"
    else
      let plen = String.length prefix in
      let payload = String.sub tok plen (String.length tok - plen) in
      match String.rindex_opt payload ':' with
      | None -> Error "want trace=<id>:<span>"
      | Some i -> (
          let id = String.sub payload 0 i in
          let sp = String.sub payload (i + 1) (String.length payload - i - 1) in
          if not (id_ok id) then
            Error "trace id must be non-empty [A-Za-z0-9._-]+"
          else
            match int_of_string_opt sp with
            | Some s when s >= 0 -> Ok { trace_id = id; span = s }
            | _ -> Error "span must be a non-negative integer")

  let attrs { trace_id; span } =
    [ ("ctx.trace", trace_id); ("ctx.span", string_of_int span) ]

  let split_line line =
    match String.rindex_opt line ' ' with
    | Some i ->
        let tok = String.sub line (i + 1) (String.length line - i - 1) in
        if has_prefix tok then
          (String.trim (String.sub line 0 i), Some (parse tok))
        else (line, None)
    | None -> (line, None)

  let stamp line t = line ^ " " ^ encode t
end

(* ---------------- cross-process trace merge ---------------- *)

module Merge = struct
  type report = {
    r_processes : int;
    r_events : int;
    r_linked : int;
    r_orphans : int;
  }

  (* One parsed Chrome event, with the structured args the exporter
     writes split out from the free-form string attrs. *)
  type ev = {
    e_name : string;
    e_tid : int;
    e_ts : float;
    e_dur : float;
    e_sid : int;
    e_parent : int;
    e_ops : int;
    e_attrs : (string * string) list;
  }

  let parse_shard label doc =
    match Json.parse doc with
    | Error e -> Error (Printf.sprintf "%s: not valid JSON: %s" label e)
    | Ok j -> (
        let trace_id =
          match Json.member "process" j with
          | Some p -> (
              match Json.member "trace_id" p with
              | Some (Json.Str s) when s <> "" -> s
              | _ -> label)
          | None -> label
        in
        match Json.member "traceEvents" j with
        | Some (Json.Arr events) -> (
            let bad = ref None in
            let evs =
              List.filter_map
                (fun e ->
                  if !bad <> None then None
                  else
                    let num k =
                      match Json.member k e with
                      | Some (Json.Num f) -> Some f
                      | _ -> None
                    in
                    let arg_num k =
                      match Json.member "args" e with
                      | Some a -> (
                          match Json.member k a with
                          | Some (Json.Num f) -> Some (int_of_float f)
                          | _ -> None)
                      | None -> None
                    in
                    let arg_strs () =
                      match Json.member "args" e with
                      | Some (Json.Obj fields) ->
                          List.filter_map
                            (fun (k, v) ->
                              match v with
                              | Json.Str s -> Some (k, s)
                              | _ -> None)
                            fields
                      | _ -> []
                    in
                    let name =
                      match Json.member "name" e with
                      | Some (Json.Str s) -> s
                      | _ -> ""
                    in
                    match
                      (num "ts", num "dur", arg_num "sid", arg_num "parent")
                    with
                    | Some ts, Some dur, Some sid, Some parent ->
                        Some
                          {
                            e_name = name;
                            e_tid =
                              (match num "tid" with
                              | Some t -> int_of_float t
                              | None -> 1);
                            e_ts = ts;
                            e_dur = dur;
                            e_sid = sid;
                            e_parent = parent;
                            e_ops =
                              (match arg_num "ops" with
                              | Some o -> o
                              | None -> 0);
                            e_attrs = arg_strs ();
                          }
                    | _ ->
                        bad :=
                          Some
                            (Printf.sprintf "%s: event missing ts/dur/sid/parent"
                               label);
                        None)
                events
            in
            match !bad with
            | Some e -> Error e
            | None -> Ok (trace_id, evs))
        | _ -> Error (Printf.sprintf "%s: missing traceEvents array" label))

  let merge docs =
    if docs = [] then Error "no trace shards to merge"
    else
      let rec parse_all i acc = function
        | [] -> Ok (List.rev acc)
        | d :: rest -> (
            match parse_shard (Printf.sprintf "shard%d" i) d with
            | Error e -> Error e
            | Ok s -> parse_all (i + 1) (s :: acc) rest)
      in
      match parse_all 0 [] docs with
      | Error e -> Error e
      | Ok shards ->
          (* per-process sid offsets into one global namespace *)
          let offsets = Array.make (List.length shards) 0 in
          let _ =
            List.fold_left
              (fun (i, off) (_, evs) ->
                offsets.(i) <- off;
                let mx =
                  List.fold_left (fun m e -> max m e.e_sid) 0 evs
                in
                (i + 1, off + mx))
              (0, 0) shards
          in
          let dup = ref None in
          let index : (string * int, int) Hashtbl.t = Hashtbl.create 256 in
          List.iteri
            (fun i (tid, evs) ->
              List.iter
                (fun e ->
                  let key = (tid, e.e_sid) in
                  if Hashtbl.mem index key then
                    dup :=
                      Some
                        (Printf.sprintf
                           "duplicate span %d under trace id %S (shards must \
                            have distinct trace ids)"
                           e.e_sid tid)
                  else Hashtbl.replace index key (offsets.(i) + e.e_sid))
                evs)
            shards;
          (match !dup with
          | Some e -> Error e
          | None ->
              let linked = ref 0 and orphans = ref 0 and total = ref 0 in
              let b = Buffer.create 4096 in
              Buffer.add_string b "{\"processes\":[";
              List.iteri
                (fun i (tid, _) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_string b
                    (Printf.sprintf "{\"pid\":%d,\"trace_id\":\"%s\"}" (i + 1)
                       (json_escape tid)))
                shards;
              Buffer.add_string b "],\"traceEvents\":[";
              let first = ref true in
              List.iteri
                (fun i (_, evs) ->
                  List.iter
                    (fun e ->
                      incr total;
                      let gsid = offsets.(i) + e.e_sid in
                      let orphaned = ref false in
                      let gparent =
                        if e.e_parent <> 0 then offsets.(i) + e.e_parent
                        else
                          match
                            ( List.assoc_opt "ctx.trace" e.e_attrs,
                              List.assoc_opt "ctx.span" e.e_attrs )
                          with
                          | Some rt, Some rs -> (
                              match int_of_string_opt rs with
                              | Some rsp when rsp > 0 -> (
                                  match Hashtbl.find_opt index (rt, rsp) with
                                  | Some g ->
                                      incr linked;
                                      g
                                  | None ->
                                      (* flagged, never dropped: the remote
                                         parent was evicted or its shard is
                                         missing from the merge *)
                                      incr orphans;
                                      orphaned := true;
                                      0)
                              | _ -> 0)
                          | _ -> 0
                      in
                      if !first then first := false else Buffer.add_char b ',';
                      Buffer.add_string b "{\"name\":\"";
                      Buffer.add_string b (json_escape e.e_name);
                      Buffer.add_string b
                        (Printf.sprintf
                           "\",\"cat\":\"fodb\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.0f,\"dur\":%.0f,\"args\":{\"sid\":%d,\"parent\":%d,\"ops\":%d"
                           (i + 1) e.e_tid e.e_ts e.e_dur gsid gparent e.e_ops);
                      List.iter
                        (fun (k, v) ->
                          Buffer.add_string b ",\"";
                          Buffer.add_string b (json_escape k);
                          Buffer.add_string b "\":\"";
                          Buffer.add_string b (json_escape v);
                          Buffer.add_string b "\"")
                        e.e_attrs;
                      if !orphaned then
                        Buffer.add_string b ",\"ctx.orphan\":\"unresolved\"";
                      Buffer.add_string b "}}")
                    evs)
                shards;
              Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
              Ok
                ( Buffer.contents b,
                  {
                    r_processes = List.length shards;
                    r_events = !total;
                    r_linked = !linked;
                    r_orphans = !orphans;
                  } ))

  type verdict = {
    v_processes : int;
    v_events : int;
    v_server_requests : int;
    v_contained : int;
    v_orphans : int;
  }

  let default_slack_us = 500.

  let validate ?(slack_us = default_slack_us) doc =
    match Json.parse doc with
    | Error e -> Error ("not valid JSON: " ^ e)
    | Ok j -> (
        let processes =
          match Json.member "processes" j with
          | Some (Json.Arr l) -> List.length l
          | _ -> 0
        in
        match Json.member "traceEvents" j with
        | Some (Json.Arr ([] )) -> Error "traceEvents is empty"
        | Some (Json.Arr events) -> (
            let tbl : (int, float * float * int * string) Hashtbl.t =
              Hashtbl.create 256
            in
            let err = ref None in
            let fail m = if !err = None then err := Some m in
            let orphans = ref 0 in
            let parsed =
              List.filter_map
                (fun e ->
                  let num k =
                    match Json.member k e with
                    | Some (Json.Num f) -> Some f
                    | _ -> None
                  in
                  let args = Json.member "args" e in
                  let arg_num k =
                    match args with
                    | Some a -> (
                        match Json.member k a with
                        | Some (Json.Num f) -> Some (int_of_float f)
                        | _ -> None)
                    | None -> None
                  in
                  let arg_str k =
                    match args with
                    | Some a -> (
                        match Json.member k a with
                        | Some (Json.Str s) -> Some s
                        | _ -> None)
                    | None -> None
                  in
                  let name =
                    match Json.member "name" e with
                    | Some (Json.Str s) -> s
                    | _ -> ""
                  in
                  (match Json.member "ph" e with
                  | Some (Json.Str "X") -> ()
                  | _ -> fail "merged event is not a complete (X) event");
                  if arg_str "ctx.orphan" <> None then incr orphans;
                  match (num "ts", num "dur", arg_num "sid", arg_num "parent")
                  with
                  | Some ts, Some dur, Some sid, Some parent ->
                      if ts < 0. || dur < 0. then fail "negative ts/dur";
                      Hashtbl.replace tbl sid (ts, dur, parent, name);
                      Some
                        ( sid, ts, dur, parent, name, arg_str "ctx.trace",
                          arg_str "ctx.orphan" <> None )
                  | _ ->
                      fail "merged event missing ts/dur/sid/parent";
                      None)
                events
            in
            match !err with
            | Some e -> Error e
            | None ->
                (* containment on every resolved parent edge, with a
                   cross-process slack: processes share a wall clock but
                   clamp it monotonically per domain, so edges may skew
                   by more than the single-process 1us *)
                List.iter
                  (fun (sid, ts, dur, parent, _, _, _) ->
                    if !err = None && parent <> 0 then
                      match Hashtbl.find_opt tbl parent with
                      | None -> ()
                      | Some (pts, pdur, _, _) ->
                          if
                            ts +. slack_us < pts
                            || ts +. dur > pts +. pdur +. slack_us
                          then
                            fail
                              (Printf.sprintf
                                 "span %d not contained in parent %d" sid
                                 parent))
                  parsed;
                (* the acceptance rule: every ctx-carrying server.request
                   whose context resolved must climb to a router-side
                   root — the router's request span for query traffic
                   (counted in v_contained), or the probe/catch-up
                   timers the router also stamps.  An unresolved context
                   was flagged ctx.orphan at merge time (its parent was
                   evicted from a bounded ring upstream): it stays
                   visible in the document and in v_orphans, but cannot
                   witness containment either way, so it is exempt. *)
                let server_requests = ref 0 and contained = ref 0 in
                let rec router_root steps sid =
                  if steps >= 64 then None
                  else
                    match Hashtbl.find_opt tbl sid with
                    | None -> None
                    | Some (_, _, parent, name) ->
                        if name = "router.request" then Some name
                        else if parent <> 0 then router_root (steps + 1) parent
                        else if String.starts_with ~prefix:"router." name then
                          (* a rootless router-side span: the probe /
                             catch-up timers and off-request scrapes
                             stamp their fan-outs too *)
                          Some name
                        else None
                in
                List.iter
                  (fun (_, _, _, parent, name, ctx, orphan) ->
                    if name = "server.request" && ctx <> None && not orphan
                    then begin
                      incr server_requests;
                      match
                        if parent = 0 then None else router_root 0 parent
                      with
                      | Some "router.request" -> incr contained
                      | Some _ -> ()
                      | None ->
                          if !err = None then
                            fail
                              "a propagated server.request span does not \
                               reach a router-side ancestor"
                    end)
                  parsed;
                (match !err with
                | Some e -> Error e
                | None ->
                    Ok
                      {
                        v_processes = processes;
                        v_events = List.length events;
                        v_server_requests = !server_requests;
                        v_contained = !contained;
                        v_orphans = !orphans;
                      }))
        | _ -> Error "missing traceEvents array")
end

(* ---------------- Prometheus aggregation ---------------- *)

module Prom = struct
  let escape_label v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let relabel ~labels text =
    if labels = [] then text
    else
      let ins =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             labels)
      in
      String.split_on_char '\n' text
      |> List.map (fun line ->
             if line = "" || line.[0] = '#' then line
             else
               match String.index_opt line '{' with
               | Some bi ->
                   String.sub line 0 (bi + 1)
                   ^ ins ^ ","
                   ^ String.sub line (bi + 1) (String.length line - bi - 1)
               | None -> (
                   match String.index_opt line ' ' with
                   | None -> line
                   | Some sp ->
                       String.sub line 0 sp ^ "{" ^ ins ^ "}"
                       ^ String.sub line sp (String.length line - sp)))
      |> String.concat "\n"

  type block = {
    b_help : string;
    mutable b_type : string option;
    mutable b_samples : string list;  (* newest first *)
  }

  let merge texts =
    let order = ref [] in
    let blocks : (string, block) Hashtbl.t = Hashtbl.create 32 in
    let pre = ref [] in
    let fam_of_header line pfx =
      let rest = String.sub line (String.length pfx)
                   (String.length line - String.length pfx) in
      match String.index_opt rest ' ' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    List.iter
      (fun text ->
        let current = ref None in
        String.split_on_char '\n' text
        |> List.iter (fun line ->
               let starts p =
                 String.length line >= String.length p
                 && String.sub line 0 (String.length p) = p
               in
               if String.trim line = "" then ()
               else if starts "# HELP " then begin
                 let name = fam_of_header line "# HELP " in
                 (match Hashtbl.find_opt blocks name with
                 | Some _ -> ()
                 | None ->
                     Hashtbl.replace blocks name
                       { b_help = line; b_type = None; b_samples = [] };
                     order := name :: !order);
                 current := Some name
               end
               else if starts "# TYPE " then begin
                 let name = fam_of_header line "# TYPE " in
                 (match Hashtbl.find_opt blocks name with
                 | Some blk -> if blk.b_type = None then blk.b_type <- Some line
                 | None ->
                     Hashtbl.replace blocks name
                       {
                         b_help = "# HELP " ^ name ^ " (undocumented)";
                         b_type = Some line;
                         b_samples = [];
                       };
                     order := name :: !order);
                 current := Some name
               end
               else if line.[0] = '#' then ()
               else
                 match !current with
                 | Some name ->
                     let blk = Hashtbl.find blocks name in
                     blk.b_samples <- line :: blk.b_samples
                 | None -> pre := line :: !pre))
      texts;
    let b = Buffer.create 4096 in
    List.iter
      (fun line ->
        Buffer.add_string b line;
        Buffer.add_char b '\n')
      (List.rev !pre);
    List.iter
      (fun name ->
        let blk = Hashtbl.find blocks name in
        Buffer.add_string b blk.b_help;
        Buffer.add_char b '\n';
        (match blk.b_type with
        | Some t ->
            Buffer.add_string b t;
            Buffer.add_char b '\n'
        | None -> ());
        List.iter
          (fun line ->
            Buffer.add_string b line;
            Buffer.add_char b '\n')
          (List.rev blk.b_samples))
      (List.rev !order);
    Buffer.contents b

  let gauge ~name ~help v =
    Printf.sprintf "# HELP %s %s\n# TYPE %s gauge\n%s %d\n" name help name name
      v
end

(* ---------------- labelled histograms ---------------- *)

module Lhist = struct
  let bounds =
    let rec go acc b =
      if b > Metrics.hist_clamp then List.rev acc else go (b :: acc) (b * 2)
    in
    Array.of_list (0 :: go [] 1)

  let max_bound = bounds.(Array.length bounds - 1)

  type series = {
    l : string;
    counts : int array;
    mutable count : int;
    mutable sum : int;
  }

  type t = {
    name : string;
    help : string;
    label_key : string;
    mutable series : series list;  (* insertion order *)
  }

  let create ~name ~help ~label () = { name; help; label_key = label; series = [] }

  let observe t ~label v =
    let v = if v < 0 then 0 else if v > max_bound then max_bound else v in
    let s =
      match List.find_opt (fun s -> s.l = label) t.series with
      | Some s -> s
      | None ->
          let s =
            { l = label; counts = Array.make (Array.length bounds) 0;
              count = 0; sum = 0 }
          in
          t.series <- t.series @ [ s ];
          s
    in
    let i = ref 0 in
    while bounds.(!i) < v do
      incr i
    done;
    s.counts.(!i) <- s.counts.(!i) + 1;
    s.count <- s.count + 1;
    s.sum <- s.sum + v

  let render t =
    if t.series = [] then ""
    else begin
      let b = Buffer.create 512 in
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n# TYPE %s histogram\n" t.name t.help
           t.name);
      List.iter
        (fun s ->
          let lv = Prom.escape_label s.l in
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + s.counts.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{%s=\"%s\",le=\"%d\"} %d\n" t.name
                   t.label_key lv le !cum))
            bounds;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n" t.name
               t.label_key lv s.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum{%s=\"%s\"} %d\n" t.name t.label_key lv
               s.sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count{%s=\"%s\"} %d\n" t.name t.label_key lv
               s.count))
        t.series;
      Buffer.contents b
    end
end

(* ---------------- crash flight recorder ---------------- *)

module Flight = struct
  let default_capacity = 256

  type t = {
    capacity : int;
    ring : string array;
    mutable head : int;
    mutable count : int;
    mutable appended : int;
    path : string option;
    mutable oc : out_channel option;
    m : Mutex.t;
  }

  let create ?(capacity = default_capacity) ?path () =
    if capacity <= 0 then
      invalid_arg "Nd_obs.Flight.create: capacity must be positive";
    let oc =
      Option.map
        (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
        path
    in
    {
      capacity;
      ring = Array.make capacity "";
      head = 0;
      count = 0;
      appended = 0;
      path;
      oc;
      m = Mutex.create ();
    }

  (* Rewrite the on-disk file down to the ring contents (tmp + rename,
     so a crash mid-compaction cannot lose the recent past). *)
  let compact_locked t =
    match t.path with
    | None -> ()
    | Some p ->
        (match t.oc with Some oc -> close_out_noerr oc | None -> ());
        let tmp = p ^ ".tmp" in
        let oc = open_out tmp in
        for i = 0 to t.count - 1 do
          output_string oc
            t.ring.((t.head - t.count + i + t.capacity) mod t.capacity);
          output_char oc '\n'
        done;
        close_out oc;
        Sys.rename tmp p;
        t.oc <- Some (open_out_gen [ Open_append; Open_creat ] 0o644 p);
        t.appended <- t.count

  let record t line =
    Mutex.protect t.m (fun () ->
        t.ring.(t.head) <- line;
        t.head <- (t.head + 1) mod t.capacity;
        if t.count < t.capacity then t.count <- t.count + 1;
        match t.oc with
        | None -> ()
        | Some oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc;
            t.appended <- t.appended + 1;
            if t.appended > 8 * t.capacity then compact_locked t)

  let events t =
    Mutex.protect t.m (fun () ->
        List.init t.count (fun i ->
            t.ring.((t.head - t.count + i + t.capacity) mod t.capacity)))

  let close t =
    Mutex.protect t.m (fun () ->
        match t.oc with
        | Some oc ->
            close_out_noerr oc;
            t.oc <- None
        | None -> ())

  (* -- post-mortem side: static helpers over a dead worker's file -- *)

  let read_lines path =
    match open_in_bin path with
    | exception Sys_error _ -> []
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let text = really_input_string ic (in_channel_length ic) in
            String.split_on_char '\n' text
            |> List.map String.trim
            |> List.filter (fun l -> l <> ""))

  let harvest ~src ~capacity =
    let lines = read_lines src in
    let n = List.length lines in
    if n <= capacity then lines
    else List.filteri (fun i _ -> i >= n - capacity) lines

  let last_epoch events =
    List.fold_left
      (fun acc line ->
        match Json.parse line with
        | Ok j -> (
            match Json.member "epoch" j with
            | Some (Json.Num e) -> Some (int_of_float e)
            | _ -> acc)
        | Error _ -> acc)
      None events

  let write_postmortem ~path ~cause ~decision ~last_epoch ~events =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc
          "{\"kind\":\"postmortem\",\"ts_us\":%d,\"cause\":\"%s\",\"decision\":\"%s\",\"last_epoch\":%s,\"events\":%d}\n"
          (now_us ()) (json_escape cause) (json_escape decision)
          (match last_epoch with
          | Some e -> string_of_int e
          | None -> "null")
          (List.length events);
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          events);
    Sys.rename tmp path

  let truncate path = close_out (open_out path)
end
