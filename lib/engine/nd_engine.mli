(** The query-engine façade: one handle owning the full paper pipeline.

    [prepare] runs the preprocessing of Theorem 2.3 — compilation into
    distance types, sentence evaluation, neighborhood cover and kernels,
    distance index, skip pointers — and returns a handle answering the
    paper's three query modes:

    - {!next}: smallest solution [≥ ā] (Theorem 2.3);
    - {!test}: membership of a tuple in [q(G)] (Corollary 2.4);
    - {!seq} / {!enumerate}: constant-delay enumeration in
      lexicographic order (Corollary 2.5).

    The handle also owns a Theorem 3.1 {!Nd_ram.Store} acting as a
    solution cache: solutions discovered by sequential enumeration (and
    by [next] calls contiguous with the cached region) are inserted
    into the store, and later [next] / [test] calls that fall inside
    the cached region are served from it — [find] in constant time,
    [succ_geq] likewise — instead of re-running the live pipeline.
    The cache maintains a lexicographic {e frontier}: every solution
    [≤ frontier] is stored, so store answers inside the frontier are
    exact.  [cache_limit] caps insertions (the store costs
    [O(n^ε)] registers per key).

    With [~metrics:true], {!Nd_util.Metrics} is enabled and the
    pipeline's cost-model probes (register touches, scan steps,
    distance tests, phase timers, delay histograms) become observable
    through {!stats}. *)

type t

type degradation = [ `None | `Fallback of string | `Stale_rebuild of string ]
(** How the handle was built: [`None] means the full Theorem 2.3
    pipeline ran to completion; [`Fallback reason] means preprocessing
    exhausted its resource budget and the handle answers through the
    naive evaluator — {e still exact}, but without the constant-delay
    guarantee.  [`Stale_rebuild reason] means a mutation's dirty region
    exceeded the stale threshold and {!update} fell back to a full
    (budgeted) re-prepare — the handle is a first-class compiled handle
    ({!degraded} stays [false]); the rung records why the incremental
    path was abandoned. *)

val prepare :
  ?epsilon:float ->
  ?metrics:bool ->
  ?cache_limit:int ->
  ?budget:Nd_util.Budget.t ->
  ?paranoid:bool ->
  ?jobs:int ->
  Nd_graph.Cgraph.t ->
  Nd_logic.Fo.t ->
  t
(** [prepare g phi] preprocesses [g] for [phi] (any arity; sentences
    are handled by model checking, as in Theorem 5.3).

    [jobs] (default 1) fans the preprocessing's independent per-bag
    jobs out over that many domains ({!Nd_util.Pool}); the prepared
    structure, every answer it gives, and the deterministic ops
    counters are identical for every job count (DESIGN S14).  The
    worker domains live only for the duration of the build; later
    {!update} calls re-spawn them for their dirty set.
    @raise Invalid_argument when [jobs < 1].

    [epsilon] (default 0.5) sizes the solution store ([d = ⌈n^ε⌉]).
    [metrics] (default false) enables the global {!Nd_util.Metrics}
    registry before preprocessing (it is never disabled here; the
    registry is shared and cumulative — call {!reset_metrics} first
    for a clean slate).  [cache_limit] (default 100_000) bounds the
    number of cached solutions; [0] disables the cache.

    [budget] governs {e preprocessing only}: it is installed as the
    ambient {!Nd_util.Budget} for the duration of the build, and if any
    ceiling trips, [prepare] does {e not} fail — it degrades to an
    exact fallback handle (see {!degradation}) whose construction is
    O(1).  The budget object records the exhausted phase
    ({!Nd_util.Budget.exhausted}), which {!stats} surfaces.  To bound
    the {e answering} phases as well, install a budget around the query
    calls ({!Nd_util.Budget.with_installed}); exhaustion there raises
    {!Nd_error.Budget_exceeded}.

    [paranoid] (default false) differentially re-checks a sample of
    emitted solutions (the first few, then every power-of-two-th)
    against the naive evaluator, raising
    {!Nd_error.Internal_invariant} on any disagreement.  The checks run
    outside any installed budget. *)

val degradation : t -> degradation

val degraded : t -> bool

(** {1 Handle accessors} *)

val graph : t -> Nd_graph.Cgraph.t
val query : t -> Nd_logic.Fo.t
val arity : t -> int
val epsilon : t -> float

val jobs : t -> int
(** The job count the handle was prepared with (1 for loaded
    snapshots); {!update} reuses it for its dirty-set bag-jobs. *)

val compiled : t -> bool
(** Whether the top-level query lies in the compiled (guarded-local)
    fragment.  [false] for sentences and fallback queries — answers
    are still exact, via direct evaluation. *)

val compiled_levels : t -> bool array
(** Per arity level [1..k] of the projection tower (empty for
    sentences). *)

(** {1 Query modes} *)

val next : t -> int array -> int array option
(** [next t ā]: the smallest solution [≥ ā] (Theorem 2.3).  For a
    sentence pass [[||]].
    @raise Nd_error.User_error on arity mismatch or out-of-range
    vertex — uniformly, whatever the handle's kind (sentence, compiled,
    fallback, degraded). *)

val test : t -> int array -> bool
(** Corollary 2.4: is [ā ∈ q(G)]? *)

val first : t -> int array option

val holds : t -> bool
(** [q(G) ≠ ∅]; for a sentence, its truth value. *)

val seq : t -> int array Seq.t
(** Corollary 2.5: all solutions, lazily, in lexicographic order,
    without repetition.  A sentence yields [ [||] ] once iff it
    holds. *)

val enumerate : ?limit:int -> (int array -> unit) -> t -> unit

val to_list : ?limit:int -> t -> int array list

val count : t -> Nd_core.Count.result
(** [|q(G)|] without materializing solutions when the query's shape
    allows pseudo-linear counting (see {!Nd_core.Count}). *)

val count_enumerated : t -> int
(** [|q(G)|] by full enumeration (warms the solution cache). *)

(** {1 Incremental updates}

    The Theorem 3.1 store budgets [O(n^ε)] per update; these entry
    points extend that spirit to the whole pipeline.  A mutation is
    absorbed by {e bounded-scope maintenance}: only the structures
    rooted in the mutation's reach (its cover-radius neighborhood) are
    rebuilt — dist-index overrides, re-housed cover bags, dirty-bag
    kernels and label sets, bag-local tables — and only the cached
    solutions at or beyond the lex-least dirty tuple are evicted (the
    frontier is pulled back just below it).  When the dirty fraction
    exceeds [stale_threshold], updating degenerates to a budgeted full
    re-prepare recorded as [`Stale_rebuild] (see {!degradation}). *)

val update : ?stale_threshold:float -> t -> Nd_graph.Cgraph.mutation -> unit
(** [update t mut] applies [mut] to the handle's graph
    ({!Nd_graph.Cgraph.apply} — existing readers of the old view stay
    valid) and maintains every layer so subsequent {!next}/{!test}/
    {!seq} answers are identical to a from-scratch [prepare] on the
    mutated graph.  [stale_threshold] (default 0.3) is the dirty
    fraction beyond which a full re-prepare is cheaper than patching.

    Sentence handles re-check the sentence; handles whose query carries
    sentence literals keep bounded structure maintenance but reset the
    whole solution cache (sentence truth has global reach); fallback
    (degraded) handles swap their evaluation context and reset the
    cache.

    @raise Nd_error.User_error on out-of-range vertices/colors or a
    self-loop. *)

val update_batch : ?stale_threshold:float -> t -> Nd_graph.Cgraph.mutation list -> unit
(** Absorb a journal of mutations in order (left to right). *)

val epoch : t -> int
(** The handle's graph epoch ({!Nd_graph.Cgraph.epoch}): number of
    mutations absorbed since the graph was built. *)

val default_stale_threshold : float

val use_skip : t -> bool -> unit
(** Ablation hook: with [false], Case I answering falls back to linear
    label-set scans instead of SKIP pointers.  No-op for sentences and
    fallback queries. *)

(** {1 Solution cache} *)

val cache_size : t -> int
(** Number of solutions currently held by the Theorem 3.1 store. *)

val cache_complete : t -> bool
(** The cache holds {e every} solution (a full enumeration finished
    within [cache_limit]); all further queries are served from it. *)

(** {1 Instrumentation} *)

val reset_metrics : unit -> unit
(** Zero the global {!Nd_util.Metrics} registry (counters, phase
    timers, histograms).  Affects all handles. *)

module Stats : sig
  type t = {
    n : int;
    m : int;
    colors : int;
    epoch : int;  (** mutations absorbed by the handle's graph *)
    updates : int;  (** [engine.updates] counter at snapshot time *)
    query : string;
    arity : int;
    compiled : bool;
    compiled_levels : bool list;
    epsilon : float;
    metrics_enabled : bool;
    phases : (string * float) list;  (** cumulative seconds per phase *)
    counters : (string * int) list;
    ops : int;  (** the cost-model operation total, {!Nd_util.Metrics.ops} *)
    hists : (string * Nd_util.Metrics.hist_stats) list;
    solutions_emitted : int;
    max_delay_ops : int;
        (** largest observed ops-delta between consecutive outputs —
            the quantity Corollary 2.5 bounds (0 when metrics are
            off or nothing was enumerated) *)
    cache_size : int;
    cache_limit : int;
    cache_complete : bool;
    degraded : bool;
    degradation_mode : string;
        (** ["none"], ["fallback"] or ["stale_rebuild"] *)
    degradation_reason : string option;
    paranoid : bool;
    paranoid_checks : int;  (** differential re-checks performed so far *)
    budget_exhausted : Nd_error.budget_info option;
        (** the first ceiling the handle's budget crossed, naming the
            phase — [None] when no budget was given or it never
            tripped *)
  }

  val to_json : t -> string
  (** Single-line JSON object, schema ["nd-engine-stats/1"].
      Hand-rolled (no JSON dependency); strings are escaped. *)

  val pp : Format.formatter -> t -> unit
end

val stats : t -> Stats.t
(** Snapshot of the handle plus the {e global} metrics registry.
    Counter/phase/histogram sections reflect everything since the last
    {!reset_metrics}, and are empty when metrics were never enabled. *)

(** {1 Structure inspection}

    Read-only reports over the sub-structures the engine is built
    from, for the CLI's [cover] / [splitter] / [stats] commands and
    diagnostics.  These run independently of any {!t} handle. *)

module Inspect : sig
  type cover_report = {
    r : int;
    bags : int;
    degree : int;  (** max bags meeting at one vertex *)
    weight : int;  (** [Σ|X|] *)
    verified : (unit, string) result;
  }

  val cover : Nd_graph.Cgraph.t -> r:int -> cover_report
  (** Compute and certify an (r,2r)-neighborhood cover
      (Theorem 4.4). *)

  val splitter_rounds :
    ?max_rounds:int -> Nd_graph.Cgraph.t -> r:int -> int option
  (** Measured λ of the (λ,r)-splitter game (Definition 4.5) with the
      center strategy against the greedy adversary; [None] if Splitter
      does not win within [max_rounds] (default 64). *)

  type graph_report = {
    gn : int;
    gm : int;
    gcolors : int;
    degree_max : int;
    degree_median : int;
    wcol : (int * Nd_nowhere.Wcol.profile) list;
        (** weak r-accessibility profiles per radius *)
  }

  val graph_stats :
    ?wcol_radii:int list -> Nd_graph.Cgraph.t -> graph_report
  (** Sparsity statistics ([wcol_radii] defaults to [[1; 2]]). *)

  val unsafe_inject_stale_view : t -> Nd_graph.Cgraph.mutation -> unit
  (** Fault injection for the {!Nd_ram.Chaos.Stale_view} class
      (test/CI use only): mutate the handle's graph {e without} running
      any of {!update}'s maintenance, leaving the answering structures
      serving a stale view.  The handle is now {e lying}; the point is
      to prove detection — a [~paranoid:true] handle must raise
      [Nd_error.Internal_invariant] when an emitted tuple fails the
      differential re-check against the current graph.  Never call this
      outside a fault-injection harness. *)
end

(** {1 Persistence boundary}

    The seam between the engine and the on-disk snapshot codec
    ([Nd_snapshot]): {!Persist.export} detaches the preprocessing
    product of Theorem 2.3 from a live handle as an opaque, closure-free
    value the codec can marshal, and {!Persist.import} reattaches it —
    after cross-checking it against the graph and query the caller
    expects, so a payload transplanted from a different snapshot (or
    presented with the wrong inputs) is rejected instead of silently
    answering for the wrong instance.  The engine knows nothing of
    files, versions or checksums; the codec knows nothing of the
    engine's internals. *)

module Persist : sig
  type payload
  (** The preprocessing product: the Next/Tester pipeline (carrying the
      graph once, by sharing) plus the query and build parameters.
      Pure data — marshal-safe by construction. *)

  type cache_payload
  (** The solution cache as a plain ordered key list plus its frontier
      state.  Kept separate so a loaded handle re-inserts every key
      through the ordinary [Store.add] path — serialized registers are
      never trusted as a live Theorem 3.1 structure. *)

  val export : t -> payload * cache_payload option
  (** @raise Nd_error.User_error on a degraded handle: it holds no
      preprocessing product, only the naive fallback, so persisting it
      would snapshot nothing of value. *)

  val import :
    graph:Nd_graph.Cgraph.t ->
    query:Nd_logic.Fo.t ->
    payload ->
    cache_payload option ->
    (t, string) result
  (** Rebuild a live handle.  [Error] (never an exception) when the
      payload is internally inconsistent or does not belong to
      [graph]/[query].  The result has no budget and paranoid mode off;
      install either around subsequent calls as usual. *)

  val cache_entries : cache_payload -> int

  (** {2 Warm store images}

      The flat Theorem 3.1 store serializes as raw register banks (see
      {!Nd_ram.Store.Raw}), which a snapshot codec can rebuild — or
      memory-map — without replaying [Store.add] per key.  A
      [store_image] is that adopted store plus the cache's frontier
      state; {!import_with_image} is the warm-path counterpart of
      {!import}. *)

  type store_image = {
    si_store : unit Nd_ram.Store.t;
    si_frontier : Nd_util.Tuple.t option;
    si_full : bool;
    si_complete : bool;
    si_limit : int;
  }

  val export_image : t -> store_image option
  (** The live cache state, for codecs that serialize the store's
      register banks directly.  [None] for sentences, cache-disabled
      handles, or handles whose cache was never created.  The store in
      the image is the handle's live store — read-only use only. *)

  val import_with_image :
    graph:Nd_graph.Cgraph.t ->
    query:Nd_logic.Fo.t ->
    payload ->
    store_image ->
    (t, string) result
  (** Rebuild a live handle adopting [img]'s store wholesale.  The
      caller (the snapshot codec) vouches for the store's internal
      validity — {!Nd_ram.Store.Raw.import_unit} vets every register —
      while this function rejects images that don't belong to the
      payload: geometry or cache-limit mismatch, out-of-range frontier,
      a full flag inconsistent with the store's cardinality, or a
      sentence payload. *)
end
