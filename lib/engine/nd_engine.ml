open Nd_util
open Nd_graph
open Nd_logic
module Store = Nd_ram.Store

(* Same histogram the direct Enumerate path observes into; the engine
   measures its own next-calls (cache-served or live) so both entry
   points report delay in the same unit. *)
let h_delay = Metrics.hist "enum.delay_ops"
let m_cache_hits = Metrics.counter "engine.cache_hits"
let m_cache_inserts = Metrics.counter "engine.cache_inserts"

type cache = {
  store : unit Store.t;
  limit : int;
  frontier : Tuple.t;
      (* a fixed k-buffer, meaningful only when [frontier_set]; updated
         by blit so steady-state enumeration allocates nothing here.
         Invariant: every solution ≤ frontier is stored. *)
  mutable frontier_set : bool;
  mutable full : bool;  (* limit reached: stop inserting, freeze frontier *)
  mutable complete : bool;  (* every solution is stored *)
}

type query_state = { nx : Nd_core.Next.t; cache : cache option }

type kind =
  | Sentence of Nd_core.Tester.t
  | Lazy_sentence of bool Lazy.t
      (* degraded k = 0 handle: model checking deferred to first use *)
  | Query of query_state

type degradation = [ `None | `Fallback of string | `Stale_rebuild of string ]

type t = {
  mutable g : Cgraph.t;
  phi : Fo.t;
  k : int;
  epsilon : float;
  cache_limit : int;
  jobs : int;
  mutable kind : kind;
  mutable degradation : degradation;
  budget : Budget.t option;
  paranoid : bool;
  mutable emitted : int;
  mutable paranoid_checks : int;
}

let default_cache_limit = 100_000

(* Pools are with-scoped, never stored on the handle: a handle's
   lifetime is unbounded and domains are a scarce resource (the runtime
   caps them around 128), so each prepare/update spins its workers up
   and joins them before returning. *)
let with_jobs jobs f =
  if jobs > 1 then Pool.with_pool ~jobs (fun p -> f (Some p)) else f None

(* Run [f] with the ambient budget masked: paranoid cross-checks and
   degraded-handle construction are correctness machinery, not work the
   caller's budget should account (or abort). *)
let unbudgeted f =
  let prev = Budget.installed () in
  Budget.install None;
  Fun.protect ~finally:(fun () -> Budget.install prev) f

let make_cache ~cache_limit ~epsilon g k =
  if cache_limit > 0 && Cgraph.n g > 0 then
    Some
      {
        store = Store.create ~n:(Cgraph.n g) ~k ~epsilon;
        limit = cache_limit;
        frontier = Array.make k 0;
        frontier_set = false;
        full = false;
        complete = false;
      }
  else None

let prepare ?(epsilon = 0.5) ?(metrics = false) ?(cache_limit = default_cache_limit)
    ?budget ?(paranoid = false) ?(jobs = 1) g phi =
  if metrics then Metrics.enable ();
  if cache_limit < 0 then invalid_arg "Nd_engine.prepare: negative cache_limit";
  if jobs < 1 then invalid_arg "Nd_engine.prepare: jobs must be >= 1";
  let k = Fo.arity phi in
  let full_prepare pool () =
    Nd_trace.phase "engine.prepare" @@ fun () ->
    if k = 0 then Sentence (Nd_core.Tester.build g phi)
    else
      let nx = Nd_core.Next.build ?pool g phi in
      Query { nx; cache = make_cache ~cache_limit ~epsilon g k }
  in
  let kind, degradation =
    with_jobs jobs @@ fun pool ->
    match budget with
    | None -> (full_prepare pool (), `None)
    | Some b -> (
        match Budget.with_budget b (full_prepare pool) with
        | Ok kind -> (kind, `None)
        | Error info ->
            (* Preprocessing ran out of resources: degrade to an exact
               handle with no delay guarantees instead of failing.  The
               degraded construction is O(1) and runs unbudgeted. *)
            let reason = Nd_error.describe_budget info in
            let kind =
              unbudgeted @@ fun () ->
              if k = 0 then
                Lazy_sentence
                  (lazy (Nd_eval.Naive.model_check (Nd_eval.Naive.ctx g) phi))
              else
                let nx = Nd_core.Next.build_fallback g phi ~reason in
                Query { nx; cache = make_cache ~cache_limit ~epsilon g k }
            in
            (kind, `Fallback reason))
  in
  {
    g;
    phi;
    k;
    epsilon;
    cache_limit;
    jobs;
    kind;
    degradation;
    budget;
    paranoid;
    emitted = 0;
    paranoid_checks = 0;
  }

let graph t = t.g
let query t = t.phi
let arity t = t.k
let epsilon t = t.epsilon
let jobs t = t.jobs

let degradation t = t.degradation

(* A stale-rebuild handle went through a full (possibly budgeted)
   re-prepare: it is a first-class compiled handle, not a degraded one.
   The rung records *why* the incremental path was abandoned. *)
let degraded t =
  match t.degradation with
  | `None | `Stale_rebuild _ -> false
  | `Fallback _ -> true

let epoch t = Cgraph.epoch t.g

let compiled_levels t =
  match t.kind with
  | Sentence _ | Lazy_sentence _ -> [||]
  | Query q -> Nd_core.Next.compiled_levels q.nx

let compiled t =
  match t.kind with
  | Sentence _ | Lazy_sentence _ -> false
  | Query q ->
      let lv = Nd_core.Next.compiled_levels q.nx in
      Array.length lv > 0 && lv.(Array.length lv - 1)

(* ---------------------------------------------------------------- *)
(* The solution cache.

   Soundness hinges on the frontier invariant: every solution ≤ the
   frontier is in the store.  A live answer at query point [ā] may be
   inserted exactly when the invariant guarantees no uncached solution
   precedes it, i.e. when [ā ≤ frontier+1]: the result [s̄] is then the
   smallest solution ≥ ā, and every solution < ā is ≤ frontier, so
   after inserting [s̄] every solution ≤ s̄ is cached and the frontier
   advances to [s̄].  Sequential enumeration from the minimum tuple
   satisfies this at every step; random-access [next] calls benefit
   opportunistically. *)

let cmp = Tuple.compare

let within_frontier c a =
  c.complete || (c.frontier_set && cmp a c.frontier <= 0)

let contiguous t c a =
  (not c.full) && (not c.complete)
  &&
  if not c.frontier_set then cmp a (Tuple.min t.k) = 0
  else
    let f = c.frontier in
    (
      cmp a f <= 0
      ||
      match Tuple.succ ~n:(Cgraph.n t.g) f with
      | Some sf -> cmp a sf <= 0
      | None -> false)

(* Record a live answer obtained at query point [a] (which must satisfy
   [contiguous]).  Runs outside the measured delay window: cache
   maintenance is O(n^ε) bookkeeping, not answering cost. *)
let cache_record t c a r =
  if contiguous t c a then
    match r with
    | Some sol ->
        Store.add c.store sol ();
        Metrics.incr m_cache_inserts;
        if not (c.frontier_set && cmp sol c.frontier <= 0) then begin
          Array.blit sol 0 c.frontier 0 t.k;
          c.frontier_set <- true;
          (* a frontier at the maximum tuple covers the whole domain *)
          if Tuple.is_max ~n:(Cgraph.n t.g) sol then c.complete <- true
        end;
        if Store.cardinal c.store >= c.limit then c.full <- true
    | None -> c.complete <- true

(* Returns the answer plus the live query point, when the live pipeline
   was consulted (for cache recording by the caller). *)
let next_query t q a =
  match q.cache with
  | Some c when within_frontier c a -> (
      match Store.succ_geq c.store a with
      | Some (key, ()) when c.complete || cmp key c.frontier <= 0 ->
          Metrics.incr m_cache_hits;
          (Some key, None)
      | _ ->
          if c.complete then (None, None)
          else (
            (* no cached solution in [a, frontier]: resume live past it;
               [within_frontier] without [complete] implies the frontier
               buffer is set *)
            match Tuple.succ ~n:(Cgraph.n t.g) c.frontier with
            | None -> (None, None)
            | Some sf -> (Nd_core.Next.next_solution q.nx sf, Some sf)))
  | _ -> (Nd_core.Next.next_solution q.nx a, Some a)

(* Every tuple entering the engine is validated here — identically for
   sentences, compiled queries and fallback/degraded handles — and a bad
   tuple is a caller mistake, not an internal failure: User_error. *)
let check_tuple t a =
  if Array.length a <> t.k then
    Nd_error.user_errorf "Nd_engine: tuple arity mismatch (query arity %d, got %d)"
      t.k (Array.length a);
  Array.iter
    (fun x ->
      if x < 0 || x >= Cgraph.n t.g then
        Nd_error.user_errorf "Nd_engine: vertex %d out of range [0, %d)" x
          (Cgraph.n t.g))
    a

(* Paranoid mode: differentially re-check a sample of emitted solutions
   against the naive evaluator.  A disagreement means the compiled
   pipeline (or a corrupted store) produced a wrong answer — an
   internal invariant violation, never a user error. *)
let paranoid_sample t sol =
  if t.paranoid then begin
    let i = t.emitted in
    if i < 4 || i land (i - 1) = 0 (* first few, then powers of two *) then begin
      t.paranoid_checks <- t.paranoid_checks + 1;
      let ok =
        unbudgeted @@ fun () ->
        Nd_eval.Naive.holds (Nd_eval.Naive.ctx t.g) t.phi sol
      in
      if not ok then
        Nd_error.invariantf
          "Nd_engine(paranoid): emitted tuple %s is not a solution of %s"
          (Tuple.to_string sol) (Fo.to_string t.phi)
    end
  end

let next t a =
  match t.kind with
  | Sentence ts ->
      check_tuple t a;
      if Nd_core.Tester.holds_sentence ts then Some [||] else None
  | Lazy_sentence v ->
      check_tuple t a;
      if Lazy.force v then Some [||] else None
  | Query q ->
      check_tuple t a;
      let observe = Metrics.enabled () in
      let before = if observe then Metrics.ops () else 0 in
      let r, live_at =
        Nd_trace.with_span "engine.next" (fun () -> next_query t q a)
      in
      if observe then Metrics.observe h_delay (Metrics.ops () - before);
      (match (q.cache, live_at) with
      | Some c, Some qp -> cache_record t c qp r
      | _ -> ());
      (match r with
      | Some sol ->
          paranoid_sample t sol;
          t.emitted <- t.emitted + 1
      | None -> ());
      r

let test t a =
  match t.kind with
  | Sentence ts ->
      check_tuple t a;
      Nd_core.Tester.holds_sentence ts
  | Lazy_sentence v ->
      check_tuple t a;
      Lazy.force v
  | Query q -> (
      check_tuple t a;
      match q.cache with
      | Some c when within_frontier c a ->
          Metrics.incr m_cache_hits;
          Store.mem c.store a
      | _ -> Nd_core.Next.test q.nx a)

let first t =
  match t.kind with
  | Sentence _ | Lazy_sentence _ -> next t [||]
  | Query _ -> if Cgraph.n t.g = 0 then None else next t (Tuple.min t.k)

let holds t = first t <> None

let seq t =
  match t.kind with
  | Sentence _ | Lazy_sentence _ ->
      fun () ->
        if holds t then Seq.Cons ([||], fun () -> Seq.Nil) else Seq.Nil
  | Query _ ->
      let n = Cgraph.n t.g in
      if n = 0 then Seq.empty
      else
        let rec from tup () =
          match tup with
          | None -> Seq.Nil
          | Some tup -> (
              match next t tup with
              | None -> Seq.Nil
              | Some sol -> Seq.Cons (sol, from (Tuple.succ ~n sol)))
        in
        from (Some (Tuple.min t.k))

let enumerate ?limit f t =
  let count = ref 0 in
  let rec go s =
    match limit with
    | Some l when !count >= l -> ()
    | _ -> (
        match s () with
        | Seq.Nil -> ()
        | Seq.Cons (sol, rest) ->
            incr count;
            f sol;
            go rest)
  in
  go (seq t)

let to_list ?limit t =
  let acc = ref [] in
  enumerate ?limit (fun sol -> acc := sol :: !acc) t;
  List.rev !acc

let count t = Nd_core.Count.count t.g t.phi

let count_enumerated t =
  let c = ref 0 in
  enumerate (fun _ -> incr c) t;
  !c

let use_skip t b =
  match t.kind with
  | Sentence _ | Lazy_sentence _ -> ()
  | Query q -> Nd_core.Answer.use_skip (Nd_core.Next.top q.nx) b

let cache_size t =
  match t.kind with
  | Query { cache = Some c; _ } -> Store.cardinal c.store
  | _ -> 0

let cache_complete t =
  match t.kind with
  | Query { cache = Some c; _ } -> c.complete
  | _ -> false

let reset_metrics () = Metrics.reset ()

(* ---------------------------------------------------------------- *)
(* Incremental updates: absorb graph mutations without re-prepare.

   The bounded-maintenance argument: the compiled pipeline's answer on
   a tuple ā depends on the graph only within the cover radius R of
   ā's coordinates (distance atoms reach ≤ r ≤ R, local formulas are
   evaluated inside bags, and a bag's influence on any vertex it serves
   is ≤ R).  So a mutation at vertices T can only change answers on
   tuples with a coordinate in Reach = N_R(T) (taken in the old and the
   new graph) — every structure rooted outside Reach stays exact, and
   every cached solution strictly below the lex-least tuple meeting
   Reach stays exact too.  Sentence literals are the exception (their
   truth is global); handles carrying them keep bounded *structure*
   maintenance but drop the whole cache. *)

let m_updates = Metrics.counter "engine.updates"
let m_update_dirty = Metrics.counter "engine.update_dirty"
let m_stale_rebuilds = Metrics.counter "engine.stale_rebuilds"
let m_cache_evicted = Metrics.counter "engine.cache_evicted"

let default_stale_threshold = 0.3

let validate_mutation t mut =
  let n = Cgraph.n t.g in
  let chk v =
    if v < 0 || v >= n then
      Nd_error.user_errorf "Nd_engine.update: vertex %d out of range [0, %d)" v
        n
  in
  match mut with
  | Cgraph.Add_edge (u, v) | Cgraph.Remove_edge (u, v) ->
      chk u;
      chk v;
      if u = v then Nd_error.user_errorf "Nd_engine.update: self-loop %d" u
  | Cgraph.Set_color { color; vertex; _ } ->
      chk vertex;
      if color < 0 || color >= Cgraph.color_count t.g then
        Nd_error.user_errorf "Nd_engine.update: color %d out of range [0, %d)"
          color (Cgraph.color_count t.g)

(* Full re-prepare on the already-swapped graph: the stale-rebuild rung
   of the degradation ladder.  Budgeted like the original prepare; if
   even that is exhausted we fall one rung further, to `Fallback. *)
let stale_rebuild t reason =
  let full_prepare pool () =
    Nd_trace.phase "engine.prepare" @@ fun () ->
    if t.k = 0 then Sentence (Nd_core.Tester.build t.g t.phi)
    else
      let nx = Nd_core.Next.build ?pool t.g t.phi in
      Query { nx; cache = make_cache ~cache_limit:t.cache_limit ~epsilon:t.epsilon t.g t.k }
  in
  Metrics.incr m_stale_rebuilds;
  with_jobs t.jobs @@ fun pool ->
  match t.budget with
  | None ->
      t.kind <- full_prepare pool ();
      t.degradation <- `Stale_rebuild reason
  | Some b -> (
      match Budget.with_budget b (full_prepare pool) with
      | Ok kind ->
          t.kind <- kind;
          t.degradation <- `Stale_rebuild reason
      | Error info ->
          let why = Nd_error.describe_budget info in
          let kind =
            unbudgeted @@ fun () ->
            if t.k = 0 then
              Lazy_sentence
                (lazy (Nd_eval.Naive.model_check (Nd_eval.Naive.ctx t.g) t.phi))
            else
              let nx = Nd_core.Next.build_fallback t.g t.phi ~reason:why in
              Query { nx; cache = make_cache ~cache_limit:t.cache_limit ~epsilon:t.epsilon t.g t.k }
          in
          t.kind <- kind;
          t.degradation <- `Fallback why)

(* Drop every cached key ≥ the lex-least tuple with a coordinate in the
   reach set, and pull the frontier back just below it.  Keys strictly
   below have no coordinate in reach (any tuple containing one is ≥
   [0;…;0;min reach]), so their solution status is untouched by the
   mutation and the frontier invariant survives. *)
let invalidate_cache t c reach_min =
  let dirty_first = Array.make t.k 0 in
  dirty_first.(t.k - 1) <- reach_min;
  let rec drain () =
    match Store.succ_geq c.store dirty_first with
    | Some (key, ()) ->
        Store.remove c.store key;
        Metrics.incr m_cache_evicted;
        drain ()
    | None -> ()
  in
  drain ();
  (if c.frontier_set && cmp c.frontier dirty_first >= 0 then
     match Tuple.pred ~n:(Cgraph.n t.g) dirty_first with
     | Some p -> Array.blit p 0 c.frontier 0 t.k
     | None -> c.frontier_set <- false);
  (* the mutated region may hold solutions the cache has never seen *)
  c.complete <- false;
  c.full <- Store.cardinal c.store >= c.limit

let reset_cache t q =
  t.kind <-
    Query
      {
        nx = q.nx;
        cache = make_cache ~cache_limit:t.cache_limit ~epsilon:t.epsilon t.g t.k;
      }

let update ?(stale_threshold = default_stale_threshold) t mut =
  validate_mutation t mut;
  Nd_trace.phase "engine.update" @@ fun () ->
  Metrics.incr m_updates;
  let old_g = t.g in
  let g' = Cgraph.apply old_g mut in
  t.g <- g';
  let touched = Cgraph.mutation_vertices mut in
  match t.kind with
  | Sentence _ -> t.kind <- Sentence (Nd_core.Tester.build g' t.phi)
  | Lazy_sentence _ ->
      t.kind <-
        Lazy_sentence
          (lazy (Nd_eval.Naive.model_check (Nd_eval.Naive.ctx g') t.phi))
  | Query q -> (
      match Nd_core.Next.influence_radius q.nx with
      | None ->
          (* fallback pipeline: direct evaluation has global reach —
             swap its context and start the cache over *)
          Nd_core.Next.update q.nx g' ~touched;
          reset_cache t q
      | Some rr ->
          let reach =
            List.sort_uniq compare
              (List.concat_map
                 (fun v ->
                   Array.to_list (Bfs.ball old_g v ~radius:rr)
                   @ Array.to_list (Bfs.ball g' v ~radius:rr))
                 touched)
          in
          Metrics.add m_update_dirty (List.length reach);
          let n = Cgraph.n g' in
          if n > 0 && float_of_int (List.length reach) > stale_threshold *. float_of_int n
          then
            stale_rebuild t
              (Printf.sprintf
                 "dirty fraction %.2f exceeds stale threshold %.2f"
                 (float_of_int (List.length reach) /. float_of_int n)
                 stale_threshold)
          else begin
            (* a short-lived pool per update: the dirty set re-runs the
               same bag-jobs the prepare phase fanned out *)
            with_jobs t.jobs (fun pool ->
                Nd_core.Next.update ?pool q.nx g' ~touched);
            if Nd_core.Next.has_sentences q.nx then
              (* sentence truth is global: no bounded cache region *)
              reset_cache t q
            else
              match (q.cache, reach) with
              | Some c, w0 :: _ -> invalidate_cache t c w0
              | _ -> ()
          end)

let update_batch ?stale_threshold t muts =
  List.iter (update ?stale_threshold t) muts

(* ---------------------------------------------------------------- *)

module Stats = struct
  type t = {
    n : int;
    m : int;
    colors : int;
    epoch : int;
    updates : int;
    query : string;
    arity : int;
    compiled : bool;
    compiled_levels : bool list;
    epsilon : float;
    metrics_enabled : bool;
    phases : (string * float) list;
    counters : (string * int) list;
    ops : int;
    hists : (string * Metrics.hist_stats) list;
    solutions_emitted : int;
    max_delay_ops : int;
    cache_size : int;
    cache_limit : int;
    cache_complete : bool;
    degraded : bool;
    degradation_mode : string;
    degradation_reason : string option;
    paranoid : bool;
    paranoid_checks : int;
    budget_exhausted : Nd_error.budget_info option;
  }

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let jfloat f = Printf.sprintf "%.9g" f
  let jbool b = if b then "true" else "false"

  let jobj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ v) fields)
    ^ "}"

  let jarr vs = "[" ^ String.concat "," vs ^ "]"

  let hist_json (h : Metrics.hist_stats) =
    jobj
      [
        ("count", string_of_int h.Metrics.count);
        ("max", string_of_int h.Metrics.max);
        ("mean", jfloat h.Metrics.mean);
        ("p50", string_of_int h.Metrics.p50);
        ("p95", string_of_int h.Metrics.p95);
        ("p99", string_of_int h.Metrics.p99);
      ]

  let to_json t =
    jobj
      [
        ("schema", "\"nd-engine-stats/1\"");
        ( "graph",
          jobj
            [
              ("n", string_of_int t.n);
              ("m", string_of_int t.m);
              ("colors", string_of_int t.colors);
              ("epoch", string_of_int t.epoch);
              ("updates", string_of_int t.updates);
            ] );
        ( "query",
          jobj
            [
              ("text", "\"" ^ escape t.query ^ "\"");
              ("arity", string_of_int t.arity);
              ("compiled", jbool t.compiled);
              ("levels", jarr (List.map jbool t.compiled_levels));
            ] );
        ("epsilon", jfloat t.epsilon);
        ("metrics_enabled", jbool t.metrics_enabled);
        ("phases_s", jobj (List.map (fun (k, v) -> (k, jfloat v)) t.phases));
        ( "counters",
          jobj (List.map (fun (k, v) -> (k, string_of_int v)) t.counters) );
        ("ops", string_of_int t.ops);
        ("hists", jobj (List.map (fun (k, h) -> (k, hist_json h)) t.hists));
        ( "enumeration",
          jobj
            [
              ("solutions_emitted", string_of_int t.solutions_emitted);
              ("max_delay_ops", string_of_int t.max_delay_ops);
            ] );
        ( "cache",
          jobj
            [
              ("size", string_of_int t.cache_size);
              ("limit", string_of_int t.cache_limit);
              ("complete", jbool t.cache_complete);
            ] );
        ( "degradation",
          jobj
            (("mode", "\"" ^ escape t.degradation_mode ^ "\"")
            ::
            (match t.degradation_reason with
            | Some r -> [ ("reason", "\"" ^ escape r ^ "\"") ]
            | None -> [])) );
        ( "paranoid",
          jobj
            [
              ("enabled", jbool t.paranoid);
              ("checks", string_of_int t.paranoid_checks);
            ] );
        ( "budget",
          match t.budget_exhausted with
          | None -> jobj [ ("exhausted", jbool false) ]
          | Some info ->
              jobj
                [
                  ("exhausted", jbool true);
                  ("phase", "\"" ^ escape info.Nd_error.phase ^ "\"");
                  ( "resource",
                    "\"" ^ Nd_error.resource_name info.Nd_error.resource ^ "\"" );
                  ("limit", string_of_int info.Nd_error.limit);
                  ("used", string_of_int info.Nd_error.used);
                ] );
      ]

  let pp ppf t =
    let open Format in
    fprintf ppf "graph: n=%d m=%d colors=%d@." t.n t.m t.colors;
    fprintf ppf "query: %s (arity %d, %s)@." t.query t.arity
      (if t.compiled then "compiled" else "fallback/sentence");
    fprintf ppf "epsilon: %g@." t.epsilon;
    if not t.metrics_enabled then
      fprintf ppf "metrics: disabled (pass ~metrics:true / --stats)@."
    else begin
      if t.phases <> [] then begin
        fprintf ppf "phases:@.";
        List.iter
          (fun (name, s) -> fprintf ppf "  %-24s %8.4fs@." name s)
          t.phases
      end;
      if t.counters <> [] then begin
        fprintf ppf "counters:@.";
        List.iter
          (fun (name, v) -> fprintf ppf "  %-24s %10d@." name v)
          t.counters
      end;
      fprintf ppf "ops total: %d@." t.ops;
      if t.hists <> [] then begin
        fprintf ppf "histograms (per call):@.";
        List.iter
          (fun (name, (h : Metrics.hist_stats)) ->
            fprintf ppf
              "  %-24s count=%d max=%d mean=%.1f p50=%d p95=%d p99=%d@." name
              h.Metrics.count h.Metrics.max h.Metrics.mean h.Metrics.p50
              h.Metrics.p95 h.Metrics.p99)
          t.hists
      end;
      fprintf ppf "enumeration: %d solutions emitted, max delay %d ops@."
        t.solutions_emitted t.max_delay_ops
    end;
    fprintf ppf "solution cache: %d keys%s (limit %d)@." t.cache_size
      (if t.cache_complete then ", complete" else "")
      t.cache_limit;
    (match t.degradation_reason with
    | Some r -> fprintf ppf "degradation: %s (%s)@." t.degradation_mode r
    | None -> ());
    if t.paranoid then
      fprintf ppf "paranoid: %d differential checks passed@." t.paranoid_checks;
    match t.budget_exhausted with
    | Some info -> fprintf ppf "budget: %s@." (Nd_error.describe_budget info)
    | None -> ()
end

let stats t : Stats.t =
  let hists = Metrics.hists () in
  let max_delay =
    match List.assoc_opt "enum.delay_ops" hists with
    | Some h -> h.Metrics.max
    | None -> 0
  in
  {
    Stats.n = Cgraph.n t.g;
    m = Cgraph.m t.g;
    colors = Cgraph.color_count t.g;
    epoch = Cgraph.epoch t.g;
    updates = Metrics.value m_updates;
    query = Fo.to_string t.phi;
    arity = t.k;
    compiled = compiled t;
    compiled_levels = Array.to_list (compiled_levels t);
    epsilon = t.epsilon;
    metrics_enabled = Metrics.enabled ();
    phases = Metrics.phases ();
    counters = Metrics.counters ();
    ops = Metrics.ops ();
    hists;
    solutions_emitted = t.emitted;
    max_delay_ops = max_delay;
    cache_size = cache_size t;
    cache_limit = t.cache_limit;
    cache_complete = cache_complete t;
    degraded = degraded t;
    degradation_mode =
      (match t.degradation with
      | `None -> "none"
      | `Fallback _ -> "fallback"
      | `Stale_rebuild _ -> "stale_rebuild");
    degradation_reason =
      (match t.degradation with
      | `None -> None
      | `Fallback r | `Stale_rebuild r -> Some r);
    paranoid = t.paranoid;
    paranoid_checks = t.paranoid_checks;
    budget_exhausted = Option.bind t.budget Budget.exhausted;
  }

(* ---------------------------------------------------------------- *)

module Inspect = struct
  module Cover = Nd_nowhere.Cover
  module Splitter = Nd_nowhere.Splitter
  module Wcol = Nd_nowhere.Wcol

  type cover_report = {
    r : int;
    bags : int;
    degree : int;
    weight : int;
    verified : (unit, string) result;
  }

  let cover g ~r =
    let c = Cover.compute g ~r in
    {
      r;
      bags = Cover.bag_count c;
      degree = Cover.degree c;
      weight = Cover.weight c;
      verified = Cover.verify g c;
    }

  let splitter_rounds ?(max_rounds = 64) g ~r =
    Splitter.measured_lambda g ~r ~max_rounds
      ~splitter:Splitter.splitter_center

  type graph_report = {
    gn : int;
    gm : int;
    gcolors : int;
    degree_max : int;
    degree_median : int;
    wcol : (int * Wcol.profile) list;
  }

  (* Chaos.Stale_view, provoked: swap the handle's graph without ANY
     maintenance, so the answering structures keep serving the old
     world.  Paranoid mode re-checks emitted tuples against the naive
     evaluator on [t.g] — the now-current graph — and must trip. *)
  let unsafe_inject_stale_view t mut = t.g <- Cgraph.apply t.g mut

  let graph_stats ?(wcol_radii = [ 1; 2 ]) g =
    let n = Cgraph.n g in
    let degs = Array.init n (Cgraph.degree g) in
    Array.sort compare degs;
    {
      gn = n;
      gm = Cgraph.m g;
      gcolors = Cgraph.color_count g;
      degree_max = (if n = 0 then 0 else degs.(n - 1));
      degree_median = (if n = 0 then 0 else degs.(n / 2));
      wcol = List.map (fun r -> (r, Wcol.profile g ~r)) wcol_radii;
    }
end

(* ---------------------------------------------------------------- *)
(* Persistence boundary.

   The snapshot codec (Nd_snapshot) must not see the engine's
   internals, and the engine must not know about files, checksums or
   corruption; [Persist] is the seam between them.  A payload is the
   closure-free preprocessing product (Next/Tester pipeline, which by
   marshal sharing carries the graph exactly once) plus the query;
   the solution cache travels separately as a plain key list so a
   loaded handle rebuilds its Theorem 3.1 store through the ordinary
   [Store.add] path instead of trusting serialized registers. *)

module Persist = struct
  type core = P_sentence of Nd_core.Tester.t | P_query of Nd_core.Next.t

  type payload = {
    p_g : Cgraph.t;
    p_phi : Fo.t;
    p_k : int;
    p_epsilon : float;
    p_cache_limit : int;
    p_core : core;
  }

  type cache_payload = {
    c_keys : Tuple.t array;  (* increasing; replayed through Store.add *)
    c_frontier : Tuple.t option;
    c_full : bool;
    c_complete : bool;
  }

  let cache_entries cp = Array.length cp.c_keys

  let export t =
    (match t.degradation with
    | `Fallback r ->
        Nd_error.user_errorf
          "Nd_engine.Persist.export: refusing to snapshot a degraded handle \
           (%s); it holds no preprocessing product worth persisting"
          r
    (* stale-rebuild handles went through a full re-prepare: first class *)
    | `None | `Stale_rebuild _ -> ());
    let core, cache =
      match t.kind with
      | Sentence ts -> (P_sentence ts, None)
      | Lazy_sentence _ ->
          (* lazy sentences are only ever built on the degraded path,
             which the check above already rejected *)
          assert false
      | Query q ->
          let cache =
            Option.map
              (fun c ->
                let keys = ref [] in
                Store.iter (fun key () -> keys := key :: !keys) c.store;
                {
                  c_keys = Array.of_list (List.rev !keys);
                  c_frontier =
                    (if c.frontier_set then Some (Array.copy c.frontier)
                     else None);
                  c_full = c.full;
                  c_complete = c.complete;
                })
              q.cache
          in
          (P_query q.nx, cache)
    in
    ( {
        p_g = t.g;
        p_phi = t.phi;
        p_k = t.k;
        p_epsilon = t.epsilon;
        p_cache_limit = t.cache_limit;
        p_core = core;
      },
      cache )

  (* Cheap cross-checks between a decoded payload and what the caller
     asked for.  The per-section CRCs already reject random corruption;
     these reject *coherent* wrong data — a section transplanted from a
     different (internally valid) snapshot, or a snapshot presented
     with the wrong graph or query. *)
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt

  let check_payload ~graph ~query p =
    if Fo.to_string p.p_phi <> Fo.to_string query then
      err "payload query %s does not match requested %s"
        (Fo.to_string p.p_phi) (Fo.to_string query)
    else if p.p_k <> Fo.arity p.p_phi then
      err "payload arity %d inconsistent with its query" p.p_k
    else if not (Cgraph.equal p.p_g graph) then
      err "payload graph (n=%d, m=%d) differs from the graph presented at load"
        (Cgraph.n p.p_g) (Cgraph.m p.p_g)
    else if p.p_cache_limit < 0 || p.p_epsilon <= 0. then
      err "payload carries nonsensical parameters"
    else Ok ()

  (* The one way a decoded payload becomes a live handle: no budget,
     paranoid mode off, single-job — install either around subsequent
     calls as usual. *)
  let handle p kind =
    {
      g = p.p_g;
      phi = p.p_phi;
      k = p.p_k;
      epsilon = p.p_epsilon;
      cache_limit = p.p_cache_limit;
      jobs = 1;
      kind;
      degradation = `None;
      budget = None;
      paranoid = false;
      emitted = 0;
      paranoid_checks = 0;
    }

  let import ~graph ~query p cache_p =
    match check_payload ~graph ~query p with
    | Error _ as e -> e
    | Ok () ->
    if
      (* cache keys are replayed through the live Store.add below, so
         they must be vetted first: a key of the wrong arity or with an
         out-of-range vertex (a cache section transplanted from another
         instance) must yield Error, not an exception mid-replay *)
      match cache_p with
      | None -> false
      | Some cp ->
          let n = Cgraph.n p.p_g in
          let bad key =
            Array.length key <> p.p_k
            || Array.exists (fun v -> v < 0 || v >= n) key
          in
          Array.exists bad cp.c_keys
          || match cp.c_frontier with Some f -> bad f | None -> false
    then err "cache payload carries keys outside the graph's vertex range"
    else
      let mk_cache cp =
        match
          make_cache ~cache_limit:p.p_cache_limit ~epsilon:p.p_epsilon p.p_g
            p.p_k
        with
        | None -> None
        | Some c ->
            Array.iter (fun key -> Store.add c.store key ()) cp.c_keys;
            (match cp.c_frontier with
            | Some f ->
                Array.blit f 0 c.frontier 0 p.p_k;
                c.frontier_set <- true
            | None -> ());
            c.full <- cp.c_full;
            c.complete <- cp.c_complete;
            Some c
      in
      match (p.p_core, p.p_k) with
      | P_sentence ts, 0 -> Ok (handle p (Sentence ts))
      | P_query nx, k when k > 0 ->
          let cache = Option.bind cache_p mk_cache in
          Ok (handle p (Query { nx; cache }))
      | _ -> err "payload core does not match its arity"

  (* ------------------------------------------------------------ *)
  (* Warm path: adopt an already-materialized Theorem 3.1 store
     instead of replaying its keys through [Store.add].  The snapshot
     codec is responsible for the *internal* validity of the store
     (it rebuilds one through [Store.Raw.import_unit], which vets
     every register); the checks here reject a structurally sound
     store that belongs to a different payload. *)

  type store_image = {
    si_store : unit Store.t;
    si_frontier : Tuple.t option;
    si_full : bool;
    si_complete : bool;
    si_limit : int;
  }

  let export_image t =
    match t.kind with
    | Query { cache = Some c; _ } ->
        Some
          {
            si_store = c.store;
            si_frontier =
              (if c.frontier_set then Some (Array.copy c.frontier) else None);
            si_full = c.full;
            si_complete = c.complete;
            si_limit = c.limit;
          }
    | _ -> None

  let import_with_image ~graph ~query p img =
    match check_payload ~graph ~query p with
    | Error _ as e -> e
    | Ok () -> (
        let sn, sk, _, _, _, scard, _, _ = Store.Raw.dims img.si_store in
        let n = Cgraph.n p.p_g in
        if sn <> n || sk <> p.p_k then
          err "store image geometry (n=%d, k=%d) does not match the payload"
            sn sk
        else if p.p_cache_limit <= 0 then
          err "store image present but the payload has caching disabled"
        else if img.si_limit <> p.p_cache_limit then
          err "store image cache limit %d differs from the payload's %d"
            img.si_limit p.p_cache_limit
        else if img.si_full <> (scard >= img.si_limit) then
          err "store image full flag inconsistent with its cardinality"
        else if
          match img.si_frontier with
          | None -> false
          | Some f ->
              Array.length f <> p.p_k
              || Array.exists (fun v -> v < 0 || v >= n) f
        then err "store image frontier outside the graph's vertex range"
        else
          match p.p_core with
          | P_sentence _ -> err "store image attached to a sentence payload"
          | P_query nx ->
              let c =
                {
                  store = img.si_store;
                  limit = img.si_limit;
                  frontier = Array.make p.p_k 0;
                  frontier_set = false;
                  full = img.si_full;
                  complete = img.si_complete;
                }
              in
              (match img.si_frontier with
              | Some f ->
                  Array.blit f 0 c.frontier 0 p.p_k;
                  c.frontier_set <- true
              | None -> ());
              Ok (handle p (Query { nx; cache = Some c })))
end
