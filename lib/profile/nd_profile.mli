(** Empirical constant-delay profiler — the measurable face of
    Corollary 2.5.

    [run] enumerates one query over one zoo family at several sizes,
    with the cost-model instrumentation on, and reports per-answer
    delay — in machine ops (the unit the paper's bound is stated in)
    and in wall time — as percentiles per size.  The verdict
    [delay_invariant] is the machine-checkable claim: the {e max}
    per-answer op count does not grow with the instance, i.e. observed
    delay is a constant independent of |G|.

    Wall-time percentiles are reported for the curious but are {e not}
    part of the verdict: wall clocks share the machine with the
    allocator and the OS, while op counts are deterministic. *)

type point = {
  n_target : int;  (** requested size (the [--sizes] entry) *)
  n_actual : int;  (** vertex count actually built *)
  answers : int;  (** solutions enumerated (after [limit]) *)
  prepare_s : float;
  ops_p50 : int;
  ops_p95 : int;
  ops_p99 : int;
  ops_max : int;  (** the number the verdict quantifies over *)
  wall_us_p50 : float;
  wall_us_p95 : float;
  wall_us_p99 : float;
  wall_us_max : float;
}

type report = {
  spec : string;  (** zoo family name, e.g. ["grid"] *)
  query : string;
  tolerance : float;
  points : point list;  (** one per size, ascending *)
  delay_invariant : bool;
}

val delay_invariant : tolerance:float -> int list -> bool
(** [delay_invariant ~tolerance maxes]: do the per-size max delays look
    size-invariant?  True iff [max ≤ tolerance × min + 0.5] over the
    non-empty list (the +0.5 absorbs off-by-one measurement jitter at
    tiny op counts).  [tolerance] is a ratio ≥ 1. *)

val run :
  ?query:string ->
  ?colors:int ->
  ?seed:int ->
  ?limit:int ->
  ?tolerance:float ->
  spec:string ->
  sizes:int list ->
  unit ->
  report
(** Profile [spec] (a {!Nd_graph.Gen.families} name) at each size.
    Defaults: query ["dist(x,y) <= 2"], colors 0, seed 7, limit 20000
    answers per size, tolerance 1.2.  Enables {!Nd_util.Metrics}
    (restoring its previous state afterwards) and resets it between
    sizes; the solution cache is disabled so every answer is produced
    live.
    @raise Invalid_argument on an unknown family or empty sizes. *)

val to_json : report -> string
(** One-line JSON document, schema [nd-profile/1]. *)

val print : report -> unit
(** Human-readable table on stdout, ending with the machine-greppable
    verdict line [delay-invariant: true|false]. *)
