module Metrics = Nd_util.Metrics
module Gen = Nd_graph.Gen
module B = Nd_bench_util

type point = {
  n_target : int;
  n_actual : int;
  answers : int;
  prepare_s : float;
  ops_p50 : int;
  ops_p95 : int;
  ops_p99 : int;
  ops_max : int;
  wall_us_p50 : float;
  wall_us_p95 : float;
  wall_us_p99 : float;
  wall_us_max : float;
}

type report = {
  spec : string;
  query : string;
  tolerance : float;
  points : point list;
  delay_invariant : bool;
}

let delay_invariant ~tolerance maxes =
  match maxes with
  | [] -> false
  | m :: ms ->
      let lo = List.fold_left min m ms and hi = List.fold_left max m ms in
      float_of_int hi <= (tolerance *. float_of_int lo) +. 0.5

let family spec =
  match List.find_opt (fun (f : Gen.family) -> f.name = spec) Gen.families with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Nd_profile.run: unknown family %S (known: %s)" spec
           (String.concat ", "
              (List.map (fun (f : Gen.family) -> f.name) Gen.families)))

let point ~fam ~phi ~colors ~seed ~limit n_target =
  let g = fam.Gen.build n_target in
  let g =
    if colors > 0 then Gen.randomly_color ~seed ~colors g else g
  in
  Metrics.reset ();
  let eng, prepare_s =
    B.time (fun () -> Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi)
  in
  let deltas = ref [] in
  let answers = ref 0 in
  let t_prev = ref (Unix.gettimeofday ()) in
  Nd_engine.enumerate ~limit
    (fun _ ->
      let now = Unix.gettimeofday () in
      deltas := (now -. !t_prev) *. 1e6 :: !deltas;
      t_prev := now;
      incr answers)
    eng;
  let walls = Array.of_list (List.rev !deltas) in
  let wp p = if Array.length walls = 0 then 0. else B.percentile walls p in
  let ops =
    match List.assoc_opt "enum.delay_ops" (Metrics.hists ()) with
    | Some (s : Metrics.hist_stats) -> s
    | None -> { Metrics.count = 0; max = 0; mean = 0.; p50 = 0; p95 = 0; p99 = 0 }
  in
  {
    n_target;
    n_actual = Nd_graph.Cgraph.n g;
    answers = !answers;
    prepare_s;
    ops_p50 = ops.Metrics.p50;
    ops_p95 = ops.Metrics.p95;
    ops_p99 = ops.Metrics.p99;
    ops_max = ops.Metrics.max;
    wall_us_p50 = wp 50.;
    wall_us_p95 = wp 95.;
    wall_us_p99 = wp 99.;
    wall_us_max = wp 100.;
  }

let run ?(query = "dist(x,y) <= 2") ?(colors = 0) ?(seed = 7) ?(limit = 20000)
    ?(tolerance = 1.2) ~spec ~sizes () =
  if sizes = [] then invalid_arg "Nd_profile.run: empty sizes";
  if tolerance < 1. then invalid_arg "Nd_profile.run: tolerance must be >= 1";
  let fam = family spec in
  let phi = Nd_logic.Parse.formula query in
  let was_enabled = Metrics.enabled () in
  let sizes = List.sort_uniq compare sizes in
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      if not was_enabled then Metrics.disable ())
    (fun () ->
      let points =
        List.map (fun n -> point ~fam ~phi ~colors ~seed ~limit n) sizes
      in
      let maxes =
        List.filter_map
          (fun p -> if p.answers > 0 then Some p.ops_max else None)
          points
      in
      {
        spec;
        query;
        tolerance;
        points;
        delay_invariant = delay_invariant ~tolerance maxes;
      })

(* ---------------- output ---------------- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let point_json p =
    Printf.sprintf
      "{\"n_target\":%d,\"n_actual\":%d,\"answers\":%d,\"prepare_s\":%.6f,\"ops\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d},\"wall_us\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"max\":%.3f}}"
      p.n_target p.n_actual p.answers p.prepare_s p.ops_p50 p.ops_p95 p.ops_p99
      p.ops_max p.wall_us_p50 p.wall_us_p95 p.wall_us_p99 p.wall_us_max
  in
  Printf.sprintf
    "{\"schema\":\"nd-profile/1\",\"spec\":\"%s\",\"query\":\"%s\",\"tolerance\":%.3f,\"points\":[%s],\"delay_invariant\":%b}"
    (escape r.spec) (escape r.query) r.tolerance
    (String.concat "," (List.map point_json r.points))
    r.delay_invariant

let print r =
  Printf.printf "delay profile: %s  query %S  (ops = cost-model operations)\n"
    r.spec r.query;
  B.print_table
    ~title:"per-answer delay vs instance size"
    ~header:
      [ "n"; "answers"; "prep"; "ops p50"; "p95"; "p99"; "max"; "wall p50";
        "max" ]
    (List.map
       (fun p ->
         [
           string_of_int p.n_actual;
           string_of_int p.answers;
           B.ns p.prepare_s;
           string_of_int p.ops_p50;
           string_of_int p.ops_p95;
           string_of_int p.ops_p99;
           string_of_int p.ops_max;
           B.ns (p.wall_us_p50 *. 1e-6);
           B.ns (p.wall_us_max *. 1e-6);
         ])
       r.points);
  B.note
    (Printf.sprintf
       "verdict: max ops-per-answer within %.2fx across sizes = Corollary \
        2.5 observed"
       r.tolerance);
  Printf.printf "delay-invariant: %b\n" r.delay_invariant
