(** Crash-safe snapshot persistence for prepared engine handles.

    Theorem 2.3's preprocessing is pseudo-linear in [|G|] with a
    non-elementary constant in the query — far too expensive to redo on
    every process start.  A snapshot persists the whole preprocessing
    product of a prepared {!Nd_engine.t} (the Theorem 3.1 register-trie
    solution cache, cover/kernel structures, distance index and skip
    pointers, via {!Nd_engine.Persist}) in a versioned, checksummed
    binary file, so a fresh process {!load}s in milliseconds what
    {!Nd_engine.prepare} computes in seconds.

    {2 File format (version 3)}

    {v
    +----------------------+
    | magic    "FODBSNAP"  |  8 bytes
    | version  u32 LE      |  4 bytes  (= 3; 2 still readable)
    | sections u32 LE      |  4 bytes  (= 4; 3 in version 2)
    +----------------------+
    | tag "META" | len u32 | crc32 u32 | payload …
    | tag "ENGN" | len u32 | crc32 u32 | payload …
    | tag "CACH" | len u32 | crc32 u32 | payload …
    | tag "STOR" | len u32 | crc32 u32 | payload …   (version ≥ 3)
    +----------------------+  exact EOF — trailing bytes are corruption
    v}

    [META] is a hand-rolled, version-stable record: builder OCaml
    version, query text + hash, arity, epsilon, graph fingerprint
    (n, m, colors, order-insensitive edge/color hash), the graph's
    {e mutation epoch} ({!Nd_graph.Cgraph.epoch} — new in version 2),
    creation time, cached-solution count.  [ENGN] and [CACH] are
    marshaled {!Nd_engine.Persist} values.

    [STOR] (new in version 3) is the flat Theorem 3.1 store dumped as
    raw register banks: a hand-rolled header (geometry, cardinality,
    cache limit, frontier state), the tag bytes, then the payload bank
    and key arena as little-endian 8-byte words, padded so the word
    region sits 8-byte-aligned {e in the file}.  A warm load adopts
    those pages directly — on a 64-bit little-endian host by
    [Unix.map_file] (private copy-on-write mapping, so the live store
    never writes back), elsewhere by a straight byte copy — and in
    either case the image is re-vetted register by register
    ({!Nd_ram.Store.Raw.import_unit}) before it becomes a live store.
    [CACH] is retained as the portable fallback rung: [load ~warm:false],
    version-2 files, and store-less snapshots all replay it through
    [Store.add].

    {2 The corruption → fallback ladder}

    Loading trusts nothing: magic, version and section layout are
    checked first, then every section's CRC-32, then META is decoded
    and cross-checked against the graph and query the caller presents,
    and only then — with all checksums standing — are the marshaled
    sections deserialized, and the decoded payload is cross-checked
    {e again} against graph and query ({!Nd_engine.Persist.import}),
    which catches coherent-but-wrong data such as a section
    transplanted from a different valid snapshot.  Every failure is a
    {!corruption} value, never an exception and never a live handle;
    {!load_or_rebuild} turns any of them into a budgeted
    {!Nd_engine.prepare} so corrupt disks degrade service, never deny
    it. *)

type corruption =
  | Truncated of { expected : int; actual : int }
      (** The file ends before its declared structure does. *)
  | Bad_magic  (** Not a snapshot file (or a damaged leader). *)
  | Version_skew of { found : string; expected : string }
      (** Format version or builder OCaml version differs; marshaled
          sections are only trusted byte-compatible within a version. *)
  | Bad_layout of string
      (** Section tags missing, out of order, or trailing bytes. *)
  | Checksum of { section : string }  (** A section failed its CRC-32. *)
  | Mismatch of string
      (** Valid snapshot of the {e wrong instance}: graph fingerprint
          or query differs from what the caller presented. *)
  | Stale_epoch of { snapshot : int; current : int }
      (** ABA detection: the presented graph is structurally identical
          to the snapshotted one but its mutation epoch differs — it
          was mutated and reverted since the save, so the snapshot's
          cached state belongs to a different history.  Structure
          checks cannot see this; only the epoch counter can. *)
  | Decode of string
      (** A checksummed section failed to decode or cross-check. *)

val describe : corruption -> string

val fingerprint : Nd_graph.Cgraph.t -> int
(** Order-insensitive structural hash over vertices, edges and colors
    (32-bit).  Cheap pre-filter; {!load} additionally performs an exact
    graph comparison before returning a handle. *)

val save : ?format:int -> path:string -> Nd_engine.t -> int
(** Serialize a prepared handle; returns the bytes written.  The write
    is atomic (temp file + rename), so a crash mid-save leaves either
    the old snapshot or none — never a torn file at [path].
    [format] (default 3) selects the file format; [~format:2] writes
    the previous layout without the STOR section, for readers of that
    vintage.
    @raise Invalid_argument on an unsupported format.
    @raise Nd_error.User_error on a degraded handle ({!Nd_engine.Persist.export}).
    @raise Sys_error on I/O failure. *)

val load :
  ?warm:bool ->
  path:string ->
  Nd_graph.Cgraph.t ->
  Nd_logic.Fo.t ->
  (Nd_engine.t, corruption) result
(** Verify and revive a snapshot for exactly this graph and query.  On
    [Error], nothing was deserialized into a live handle.  [Sys_error]
    (unreadable file) is folded into [Truncated].

    [warm] (default [true]) permits the STOR fast path: the store is
    adopted from its serialized banks (memory-mapped when the host
    allows) instead of replaying the CACH key list.  [~warm:false]
    forces the replay rung — same resulting handle, portable speed. *)

type route =
  | Replayed  (** CACH key list replayed through [Store.add]. *)
  | Warm of { mapped : bool }
      (** STOR banks adopted; [mapped] tells pages were memory-mapped
          rather than copied. *)

val describe_route : route -> string

val load_routed :
  ?warm:bool ->
  path:string ->
  Nd_graph.Cgraph.t ->
  Nd_logic.Fo.t ->
  (Nd_engine.t * route, corruption) result
(** {!load}, also reporting which rung revived the solution cache. *)

type outcome =
  | Loaded  (** The snapshot verified end-to-end. *)
  | Rebuilt of corruption
      (** The snapshot was rejected (why) and the handle was rebuilt
          from scratch with {!Nd_engine.prepare}. *)

val load_or_rebuild :
  ?epsilon:float ->
  ?metrics:bool ->
  ?cache_limit:int ->
  ?budget:Nd_util.Budget.t ->
  ?paranoid:bool ->
  ?warm:bool ->
  ?journal:Nd_graph.Cgraph.mutation list ->
  path:string ->
  Nd_graph.Cgraph.t ->
  Nd_logic.Fo.t ->
  Nd_engine.t * outcome
(** The graceful-degradation entry point: {!load}, falling back on any
    corruption to a fresh budgeted {!Nd_engine.prepare} (which itself
    degrades further to the naive-backed handle if the budget trips).
    The optional parameters govern only the rebuild path; a successful
    load keeps the snapshot's own epsilon and cache.

    [journal] (default [[]]) is the mutation log recorded since the
    snapshot was saved, in application order.  The presented [graph]
    must be the {e snapshotted} (pre-journal) one.  On a successful
    load the journal is replayed through {!Nd_engine.update} — bounded
    maintenance per entry instead of a re-prepare; on a rebuild the
    journal is folded into the graph first and the handle is prepared
    on the final state directly.  Either way the returned handle
    answers for the post-journal graph. *)

(** {1 Introspection} *)

type section = {
  tag : string;
  off : int;  (** payload offset in the file *)
  len : int;
  crc : int;
}

type info = {
  version : int;
  warmable : bool;
      (** A STOR section is present with a store image and this host
          can memory-map its bank pages. *)
  ocaml_version : string;
  query : string;
  query_hash : int;
  arity : int;
  epsilon : float;
  graph_n : int;
  graph_m : int;
  graph_colors : int;
  graph_fingerprint : int;
  graph_epoch : int;  (** {!Nd_graph.Cgraph.epoch} at save time *)
  cached_solutions : int;
  created : float;  (** unix time at save *)
  sections : section list;
}

val layout : path:string -> (section list, corruption) result
(** Structural parse only (magic, version, section table) — no CRC
    verification, no decoding.  What the fault-injection suite uses to
    aim {!Nd_ram.Chaos.Disk} at specific fields. *)

val info : path:string -> (info, corruption) result
(** Full verification of header + all CRCs + META decode, without
    deserializing the engine sections.  What [fodb snapshot info]
    prints. *)
