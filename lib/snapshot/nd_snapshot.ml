open Nd_util
open Nd_graph
open Nd_logic

let magic = "FODBSNAP"
let format_version = 3

(* v2 files carry the cache only as a Marshal'd key list; v3 appends the
   STOR section with the flat store's raw register banks.  Both are
   readable; [save ~format:2] still writes the old layout. *)
let tags_of = function
  | 2 -> [ "META"; "ENGN"; "CACH" ]
  | _ -> [ "META"; "ENGN"; "CACH"; "STOR" ]

let m_loads = Metrics.counter "snapshot.loads"
let m_fallbacks = Metrics.counter "snapshot.load_fallbacks"
let m_bytes = Metrics.counter "snapshot.bytes_written"
let m_warm = Metrics.counter "snapshot.warm_loads"
let m_mapped = Metrics.counter "snapshot.mapped_loads"

(* The bank pages are meaningful to map only when an OCAML int spans the
   full 64-bit word and the host agrees with the little-endian pages. *)
let mappable = Sys.int_size = 63 && not Sys.big_endian

type corruption =
  | Truncated of { expected : int; actual : int }
  | Bad_magic
  | Version_skew of { found : string; expected : string }
  | Bad_layout of string
  | Checksum of { section : string }
  | Mismatch of string
  | Stale_epoch of { snapshot : int; current : int }
  | Decode of string

let describe = function
  | Truncated { expected; actual } ->
      Printf.sprintf "truncated: structure needs %d bytes, file has %d"
        expected actual
  | Bad_magic -> "not a snapshot file (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "version skew: snapshot has %s, this build expects %s"
        found expected
  | Bad_layout m -> "malformed layout: " ^ m
  | Checksum { section } ->
      Printf.sprintf "checksum mismatch in section %s" section
  | Mismatch m -> "instance mismatch: " ^ m
  | Stale_epoch { snapshot; current } ->
      Printf.sprintf
        "stale epoch: snapshot was taken at graph epoch %d, presented graph \
         is at epoch %d (same structure, different mutation history)"
        snapshot current
  | Decode m -> "decode failure: " ^ m

exception C of corruption

let corrupt c = raise (C c)

(* ---------------- graph fingerprint ---------------- *)

(* Order-insensitive: per-element hashes summed mod 2^32, so logically
   equal graphs fingerprint equal no matter the edge iteration order. *)
let fingerprint g =
  let acc = ref 0 in
  let add x = acc := (!acc + x) land 0xFFFFFFFF in
  add (Hashtbl.hash (`N (Cgraph.n g)));
  add (Hashtbl.hash (`M (Cgraph.m g)));
  add (Hashtbl.hash (`C (Cgraph.color_count g)));
  Cgraph.fold_edges
    (fun u v () -> add (Hashtbl.hash (`E (min u v, max u v))))
    g ();
  for c = 0 to Cgraph.color_count g - 1 do
    Array.iter
      (fun v -> add (Hashtbl.hash (`Col (c, v))))
      (Cgraph.color_members g ~color:c)
  done;
  !acc

(* ---------------- little-endian primitives ---------------- *)

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_f64 b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

(* bank words: OCaml ints sign-extended to 8 little-endian bytes *)
let put_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.unsafe_chr ((v asr (8 * i)) land 0xFF))
  done

type cursor = { cs : string; mutable pos : int; stop : int }

let need cur n what =
  if cur.pos + n > cur.stop then corrupt (Decode (what ^ ": short section"))

let get_u32 cur what =
  need cur 4 what;
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code cur.cs.[cur.pos + i] lsl (8 * i))
  done;
  cur.pos <- cur.pos + 4;
  !v

let get_str cur what =
  let n = get_u32 cur what in
  need cur n what;
  let s = String.sub cur.cs cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_f64 cur what =
  need cur 8 what;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (Char.code cur.cs.[cur.pos + i])) (8 * i))
  done;
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits !bits

(* ---------------- structure ---------------- *)

type section = { tag : string; off : int; len : int; crc : int }

type info = {
  version : int;
  warmable : bool;
  ocaml_version : string;
  query : string;
  query_hash : int;
  arity : int;
  epsilon : float;
  graph_n : int;
  graph_m : int;
  graph_colors : int;
  graph_fingerprint : int;
  graph_epoch : int;
  cached_solutions : int;
  created : float;
  sections : section list;
}

(* a bare u32 read during structural parsing — header overruns are
   Truncated, not Decode, because nothing has been verified yet *)
let hdr_u32 s pos total =
  if pos + 4 > total then corrupt (Truncated { expected = pos + 4; actual = total });
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code s.[pos + i] lsl (8 * i))
  done;
  !v

let parse_structure s =
  let total = String.length s in
  if total < 16 then corrupt (Truncated { expected = 16; actual = total });
  if String.sub s 0 8 <> magic then corrupt Bad_magic;
  let v = hdr_u32 s 8 total in
  if v <> 2 && v <> format_version then
    corrupt
      (Version_skew
         {
           found = "format " ^ string_of_int v;
           expected = Printf.sprintf "format 2 or %d" format_version;
         });
  let tags = tags_of v in
  let nsect = hdr_u32 s 12 total in
  if nsect <> List.length tags then
    corrupt
      (Bad_layout
         (Printf.sprintf "header declares %d sections, format has %d" nsect
            (List.length tags)));
  let pos = ref 16 in
  let sections =
    List.map
      (fun want ->
        if !pos + 12 > total then
          corrupt (Truncated { expected = !pos + 12; actual = total });
        let tag = String.sub s !pos 4 in
        let len = hdr_u32 s (!pos + 4) total in
        let crc = hdr_u32 s (!pos + 8) total in
        if tag <> want then
          corrupt
            (Bad_layout
               (Printf.sprintf "found section %S where %S belongs" tag want));
        let off = !pos + 12 in
        if off + len > total then
          corrupt (Truncated { expected = off + len; actual = total });
        pos := off + len;
        { tag; off; len; crc })
      tags
  in
  if !pos <> total then
    corrupt (Bad_layout (Printf.sprintf "%d trailing bytes" (total - !pos)));
  (v, sections)

let verify_crcs s sections =
  List.iter
    (fun sec ->
      if Crc32.string ~off:sec.off ~len:sec.len s <> sec.crc then
        corrupt (Checksum { section = sec.tag }))
    sections

let find_section sections tag = List.find (fun s -> s.tag = tag) sections

(* ---------------- META codec ---------------- *)

let encode_meta eng =
  let g = Nd_engine.graph eng in
  let qtext = Fo.to_string (Nd_engine.query eng) in
  let b = Buffer.create 128 in
  put_str b Sys.ocaml_version;
  put_str b qtext;
  put_u32 b (Crc32.string qtext);
  put_u32 b (Nd_engine.arity eng);
  put_f64 b (Nd_engine.epsilon eng);
  put_u32 b (Cgraph.n g);
  put_u32 b (Cgraph.m g);
  put_u32 b (Cgraph.color_count g);
  put_u32 b (fingerprint g);
  put_u32 b (Cgraph.epoch g);
  put_f64 b (Unix.gettimeofday ());
  put_u32 b (Nd_engine.cache_size eng);
  Buffer.contents b

let decode_meta s sec ~version ~warmable ~sections =
  let cur = { cs = s; pos = sec.off; stop = sec.off + sec.len } in
  let ocaml_version = get_str cur "meta" in
  let query = get_str cur "meta" in
  let query_hash = get_u32 cur "meta" in
  let arity = get_u32 cur "meta" in
  let epsilon = get_f64 cur "meta" in
  let graph_n = get_u32 cur "meta" in
  let graph_m = get_u32 cur "meta" in
  let graph_colors = get_u32 cur "meta" in
  let graph_fingerprint = get_u32 cur "meta" in
  let graph_epoch = get_u32 cur "meta" in
  let created = get_f64 cur "meta" in
  let cached_solutions = get_u32 cur "meta" in
  if cur.pos <> cur.stop then corrupt (Decode "meta: trailing bytes in section");
  if query_hash <> Crc32.string query then
    corrupt (Decode "meta: query hash inconsistent with query text");
  {
    version;
    warmable;
    ocaml_version;
    query;
    query_hash;
    arity;
    epsilon;
    graph_n;
    graph_m;
    graph_colors;
    graph_fingerprint;
    graph_epoch;
    cached_solutions;
    created;
    sections;
  }

let check_meta meta ~graph ~query =
  if meta.ocaml_version <> Sys.ocaml_version then
    corrupt
      (Version_skew
         {
           found = "ocaml " ^ meta.ocaml_version;
           expected = "ocaml " ^ Sys.ocaml_version;
         });
  let qtext = Fo.to_string query in
  if meta.query <> qtext then
    corrupt
      (Mismatch
         (Printf.sprintf "snapshot is for query %s, load requested %s"
            meta.query qtext));
  if
    meta.graph_n <> Cgraph.n graph
    || meta.graph_m <> Cgraph.m graph
    || meta.graph_colors <> Cgraph.color_count graph
    || meta.graph_fingerprint <> fingerprint graph
  then
    corrupt
      (Mismatch
         (Printf.sprintf
            "snapshot graph (n=%d, m=%d, fp=%08x) is not the presented graph \
             (n=%d, m=%d, fp=%08x)"
            meta.graph_n meta.graph_m meta.graph_fingerprint (Cgraph.n graph)
            (Cgraph.m graph) (fingerprint graph)));
  (* ABA detection: a mutate-and-revert history produces a graph that is
     structurally identical to the snapshotted one (fingerprint and the
     exact [Persist.import] comparison both pass) yet whose cached
     solutions may have been observed against intermediate states.  The
     epoch counter is the only witness, so a skew here is corruption,
     not a match. *)
  if meta.graph_epoch <> Cgraph.epoch graph then
    corrupt
      (Stale_epoch { snapshot = meta.graph_epoch; current = Cgraph.epoch graph })

(* ---------------- STOR codec ---------------- *)

(* The flat store's register banks as raw little-endian pages:

     u32 present | u32 n,k,d,h | f64 epsilon
   | u32 free,card,klen,vlen,limit | u32 full,complete,frontier_set
   | k × u32 frontier | free tag bytes
   | u32 padlen | padlen zero bytes      (pads banks to 8-byte file offset)
   | free × i64 payload bank | klen·k × i64 key arena

   [payload_off] is the absolute file offset of this section's payload;
   the pad is computed against it so the i64 region is 8-aligned in the
   *file*, which is what lets a warm load hand the pages to
   [Unix.map_file] untranslated. *)

let encode_stor ~payload_off ~epsilon img =
  let b = Buffer.create 256 in
  (match img with
  | None -> put_u32 b 0
  | Some (img : Nd_engine.Persist.store_image) ->
      let st = img.si_store in
      (* canonical minimal banks: no dead arena slots in the file *)
      Nd_ram.Store.Raw.compact st;
      let n, k, d, h, free, card, klen, vlen = Nd_ram.Store.Raw.dims st in
      put_u32 b 1;
      put_u32 b n;
      put_u32 b k;
      put_u32 b d;
      put_u32 b h;
      put_f64 b epsilon;
      put_u32 b free;
      put_u32 b card;
      put_u32 b klen;
      put_u32 b vlen;
      put_u32 b img.si_limit;
      put_u32 b (Bool.to_int img.si_full);
      put_u32 b (Bool.to_int img.si_complete);
      (match img.si_frontier with
      | Some f ->
          put_u32 b 1;
          Array.iter (fun v -> put_u32 b v) f
      | None ->
          put_u32 b 0;
          for _ = 1 to k do
            put_u32 b 0
          done);
      Buffer.add_string b (Nd_ram.Store.Raw.tags_blob st);
      let off = payload_off + Buffer.length b + 4 in
      let pad = (8 - (off mod 8)) mod 8 in
      put_u32 b pad;
      for _ = 1 to pad do
        Buffer.add_char b '\000'
      done;
      for i = 0 to free - 1 do
        put_i64 b (Nd_ram.Store.Raw.payload_word st i)
      done;
      for i = 0 to (klen * k) - 1 do
        put_i64 b (Nd_ram.Store.Raw.key_word st i)
      done);
  Buffer.contents b

let get_i64_at s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor !v
        (Int64.shift_left (Int64.of_int (Char.code s.[pos + i])) (8 * i))
  done;
  (* bank words are OCaml ints: the 64th bit is pure sign extension *)
  Int64.to_int !v

let get_flag cur what =
  match get_u32 cur what with
  | 0 -> false
  | 1 -> true
  | v -> corrupt (Decode (Printf.sprintf "%s: flag byte holds %d" what v))

(* Decode the STOR section into a vetted store image.  [map_fd], when
   the host qualifies, memory-maps the bank pages (private, copy-on-
   write) instead of copying them; any mapping failure falls back to
   the byte-copy silently — the bytes are the same either way. *)
let decode_stor s sec ~meta ~map_fd =
  let cur = { cs = s; pos = sec.off; stop = sec.off + sec.len } in
  if not (get_flag cur "stor") then begin
    if cur.pos <> cur.stop then corrupt (Decode "stor: trailing bytes");
    None
  end
  else begin
    let n = get_u32 cur "stor" in
    let k = get_u32 cur "stor" in
    let d = get_u32 cur "stor" in
    let h = get_u32 cur "stor" in
    let epsilon = get_f64 cur "stor" in
    let free = get_u32 cur "stor" in
    let card = get_u32 cur "stor" in
    let klen = get_u32 cur "stor" in
    let vlen = get_u32 cur "stor" in
    let limit = get_u32 cur "stor" in
    let full = get_flag cur "stor" in
    let complete = get_flag cur "stor" in
    let frontier_set = get_flag cur "stor" in
    if epsilon <> meta.epsilon then
      corrupt (Decode "stor: epsilon differs from the META section");
    if k <> meta.arity && meta.arity > 0 then
      corrupt (Decode "stor: arity differs from the META section");
    let frontier = Array.make (max 1 k) 0 in
    for i = 0 to k - 1 do
      frontier.(i) <- get_u32 cur "stor"
    done;
    need cur free "stor";
    let tags = Bytes.create free in
    Bytes.blit_string s cur.pos tags 0 free;
    cur.pos <- cur.pos + free;
    let pad = get_u32 cur "stor" in
    if pad > 7 then corrupt (Decode "stor: oversized alignment pad");
    need cur pad "stor";
    cur.pos <- cur.pos + pad;
    let bank_off = cur.pos in
    if bank_off mod 8 <> 0 then
      corrupt (Decode "stor: bank pages not 8-byte aligned");
    let words = free + (klen * k) in
    need cur (words * 8) "stor";
    cur.pos <- cur.pos + (words * 8);
    if cur.pos <> cur.stop then corrupt (Decode "stor: trailing bytes");
    let mapped_banks =
      match map_fd with
      | Some fd when mappable && words > 0 -> (
          try
            let g =
              Unix.map_file fd ~pos:(Int64.of_int bank_off) Bigarray.int
                Bigarray.c_layout false [| words |]
            in
            let a = Bigarray.array1_of_genarray g in
            Some (Bigarray.Array1.sub a 0 free, Bigarray.Array1.sub a free (klen * k))
          with Unix.Unix_error _ | Sys_error _ -> None)
      | _ -> None
    in
    let mapped = mapped_banks <> None in
    let pay, karena =
      match mapped_banks with
      | Some banks -> banks
      | None ->
          let mk len off =
            let a =
              Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len)
            in
            Bigarray.Array1.fill a 0;
            for i = 0 to len - 1 do
              Bigarray.Array1.set a i (get_i64_at s (off + (i * 8)))
            done;
            a
          in
          (mk free bank_off, mk (klen * k) (bank_off + (free * 8)))
    in
    match
      Nd_ram.Store.Raw.import_unit ~n ~k ~epsilon ~d ~h ~free ~card ~klen
        ~vlen ~tags ~pay ~karena
    with
    | Error m -> corrupt (Decode m)
    | Ok st ->
        Some
          ( {
              Nd_engine.Persist.si_store = st;
              si_frontier = (if frontier_set then Some frontier else None);
              si_full = full;
              si_complete = complete;
              si_limit = limit;
            },
            mapped )
  end

(* ---------------- file I/O ---------------- *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> corrupt (Truncated { expected = 16; actual = 0 })

(* A warm load must read the bytes it verifies and map the pages it
   adopts from the SAME open file description: saves publish by atomic
   rename, so holding one fd pins one inode — no window where the CRCs
   were checked against one file and the mapping serves another. *)
let with_snapshot_fd path f =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ ->
      corrupt (Truncated { expected = 16; actual = 0 })
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let len = (Unix.fstat fd).Unix.st_size in
          let buf = Bytes.create len in
          let pos = ref 0 in
          (try
             while !pos < len do
               let r = Unix.read fd buf !pos (len - !pos) in
               if r = 0 then raise Exit;
               pos := !pos + r
             done
           with Exit | Unix.Unix_error _ -> ());
          if !pos < len then corrupt (Truncated { expected = len; actual = !pos });
          f fd (Bytes.unsafe_to_string buf))

(* ---------------- save ---------------- *)

let save ?(format = format_version) ~path eng =
  if format <> 2 && format <> format_version then
    invalid_arg "Nd_snapshot.save: unsupported format";
  Nd_trace.phase "snapshot.save" @@ fun () ->
  let payload, cache = Nd_engine.Persist.export eng in
  let marshal what v =
    try Marshal.to_string v []
    with Invalid_argument m ->
      Nd_error.invariantf
        "Nd_snapshot.save: %s payload is not marshal-safe (%s) — a closure \
         leaked into the preprocessing product" what m
  in
  let engn, cach =
    Nd_trace.with_span "snapshot.marshal" @@ fun () ->
    (marshal "engine" payload, marshal "cache" cache)
  in
  let meta = encode_meta eng in
  let sections = [ ("META", meta); ("ENGN", engn); ("CACH", cach) ] in
  let sections =
    if format < 3 then sections
    else begin
      (* STOR is last so its absolute payload offset — which fixes the
         bank alignment pad — is known before encoding it *)
      let payload_off =
        List.fold_left (fun o (_, p) -> o + 12 + String.length p) 16 sections
        + 12
      in
      let stor =
        Nd_trace.with_span "snapshot.stor" @@ fun () ->
        encode_stor ~payload_off
          ~epsilon:(Nd_engine.epsilon eng)
          (Nd_engine.Persist.export_image eng)
      in
      sections @ [ ("STOR", stor) ]
    end
  in
  let b =
    Buffer.create
      (List.fold_left (fun a (_, p) -> a + String.length p) 64 sections)
  in
  Buffer.add_string b magic;
  put_u32 b format;
  put_u32 b (List.length sections);
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string b tag;
      put_u32 b (String.length payload);
      put_u32 b (Crc32.string payload);
      Buffer.add_string b payload)
    sections;
  let doc = Buffer.contents b in
  (* atomic publish: a crash mid-write leaves the old snapshot (or
     nothing) at [path], never a torn file *)
  Nd_trace.with_span "snapshot.write" (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      (try
         output_string oc doc;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path);
  Metrics.add m_bytes (String.length doc);
  String.length doc

(* ---------------- load ---------------- *)

let layout ~path =
  match parse_structure (read_file path) with
  | _, sections -> Ok sections
  | exception C c -> Error c

(* Whether a parsed file offers the warm path: a v3 STOR section whose
   present flag is set, on a host whose ints can adopt the pages. *)
let stor_present s sections =
  match List.find_opt (fun sec -> sec.tag = "STOR") sections with
  | Some sec -> sec.len >= 4 && hdr_u32 s sec.off (sec.off + sec.len) = 1
  | None -> false

let info ~path =
  match
    let s = read_file path in
    let version, sections = parse_structure s in
    verify_crcs s sections;
    let warmable = mappable && stor_present s sections in
    decode_meta s (find_section sections "META") ~version ~warmable ~sections
  with
  | i -> Ok i
  | exception C c -> Error c

type route = Replayed | Warm of { mapped : bool }

let describe_route = function
  | Replayed -> "cache replayed through Store.add"
  | Warm { mapped = true } -> "store banks memory-mapped"
  | Warm { mapped = false } -> "store banks copied"

let load_routed ?(warm = true) ~path graph query =
  Nd_trace.phase "snapshot.load" @@ fun () ->
  match
    with_snapshot_fd path @@ fun fd s ->
    let version, sections =
      Nd_trace.with_span "snapshot.verify" @@ fun () ->
      let version, sections = parse_structure s in
      verify_crcs s sections;
      (version, sections)
    in
    let meta =
      decode_meta s
        (find_section sections "META")
        ~version
        ~warmable:(mappable && stor_present s sections)
        ~sections
    in
    check_meta meta ~graph ~query;
    (* All checksums and cross-checks stand: only now touch Marshal.
       Everything it reads was produced by [save] in a build with the
       same format and OCaml version. *)
    let unmarshal : 'a. section -> 'a =
     fun sec ->
      try Marshal.from_string s sec.off
      with e ->
        corrupt
          (Decode
             (Printf.sprintf "section %s failed to deserialize (%s)" sec.tag
                (Printexc.to_string e)))
    in
    let payload : Nd_engine.Persist.payload =
      Nd_trace.with_span "snapshot.unmarshal" (fun () ->
          unmarshal (find_section sections "ENGN"))
    in
    let image =
      if not (warm && version >= 3) then None
      else
        Nd_trace.with_span "snapshot.stor" (fun () ->
            decode_stor s
              (find_section sections "STOR")
              ~meta
              ~map_fd:(if mappable then Some fd else None))
    in
    match image with
    | Some (img, mapped) -> (
        (* the STOR banks carry the whole cache: CACH stays untouched *)
        match
          Nd_trace.with_span "snapshot.import" (fun () ->
              Nd_engine.Persist.import_with_image ~graph ~query payload img)
        with
        | Ok eng ->
            Metrics.incr m_loads;
            Metrics.incr m_warm;
            if mapped then Metrics.incr m_mapped;
            (eng, Warm { mapped })
        | Error m -> corrupt (Decode ("import rejected store image: " ^ m)))
    | None -> (
        let cache : Nd_engine.Persist.cache_payload option =
          Nd_trace.with_span "snapshot.unmarshal" (fun () ->
              unmarshal (find_section sections "CACH"))
        in
        match
          Nd_trace.with_span "snapshot.import" (fun () ->
              Nd_engine.Persist.import ~graph ~query payload cache)
        with
        | Ok eng ->
            Metrics.incr m_loads;
            (eng, Replayed)
        | Error m -> corrupt (Decode ("import rejected payload: " ^ m)))
  with
  | result -> Ok result
  | exception C c -> Error c

let load ?warm ~path graph query =
  Result.map fst (load_routed ?warm ~path graph query)

type outcome = Loaded | Rebuilt of corruption

let m_replayed = Metrics.counter "snapshot.journal_replayed"

let load_or_rebuild ?epsilon ?metrics ?cache_limit ?budget ?paranoid ?warm
    ?(journal = []) ~path graph query =
  match load ?warm ~path graph query with
  | Ok eng ->
      (* revive at the snapshotted state, then absorb the journal through
         the incremental pipeline — mutations recorded since the save
         cost bounded maintenance each, not a re-prepare *)
      List.iter (fun m -> Nd_engine.update eng m) journal;
      Metrics.add m_replayed (List.length journal);
      (eng, Loaded)
  | Error c ->
      Metrics.incr m_fallbacks;
      let g = List.fold_left Cgraph.apply graph journal in
      let eng =
        Nd_engine.prepare ?epsilon ?metrics ?cache_limit ?budget ?paranoid g
          query
      in
      (eng, Rebuilt c)
