open Nd_util
open Nd_graph
open Nd_logic

let magic = "FODBSNAP"
let format_version = 2
let tags = [ "META"; "ENGN"; "CACH" ]

let m_loads = Metrics.counter "snapshot.loads"
let m_fallbacks = Metrics.counter "snapshot.load_fallbacks"
let m_bytes = Metrics.counter "snapshot.bytes_written"

type corruption =
  | Truncated of { expected : int; actual : int }
  | Bad_magic
  | Version_skew of { found : string; expected : string }
  | Bad_layout of string
  | Checksum of { section : string }
  | Mismatch of string
  | Stale_epoch of { snapshot : int; current : int }
  | Decode of string

let describe = function
  | Truncated { expected; actual } ->
      Printf.sprintf "truncated: structure needs %d bytes, file has %d"
        expected actual
  | Bad_magic -> "not a snapshot file (bad magic)"
  | Version_skew { found; expected } ->
      Printf.sprintf "version skew: snapshot has %s, this build expects %s"
        found expected
  | Bad_layout m -> "malformed layout: " ^ m
  | Checksum { section } ->
      Printf.sprintf "checksum mismatch in section %s" section
  | Mismatch m -> "instance mismatch: " ^ m
  | Stale_epoch { snapshot; current } ->
      Printf.sprintf
        "stale epoch: snapshot was taken at graph epoch %d, presented graph \
         is at epoch %d (same structure, different mutation history)"
        snapshot current
  | Decode m -> "decode failure: " ^ m

exception C of corruption

let corrupt c = raise (C c)

(* ---------------- graph fingerprint ---------------- *)

(* Order-insensitive: per-element hashes summed mod 2^32, so logically
   equal graphs fingerprint equal no matter the edge iteration order. *)
let fingerprint g =
  let acc = ref 0 in
  let add x = acc := (!acc + x) land 0xFFFFFFFF in
  add (Hashtbl.hash (`N (Cgraph.n g)));
  add (Hashtbl.hash (`M (Cgraph.m g)));
  add (Hashtbl.hash (`C (Cgraph.color_count g)));
  Cgraph.fold_edges
    (fun u v () -> add (Hashtbl.hash (`E (min u v, max u v))))
    g ();
  for c = 0 to Cgraph.color_count g - 1 do
    Array.iter
      (fun v -> add (Hashtbl.hash (`Col (c, v))))
      (Cgraph.color_members g ~color:c)
  done;
  !acc

(* ---------------- little-endian primitives ---------------- *)

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_f64 b f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

type cursor = { cs : string; mutable pos : int; stop : int }

let need cur n what =
  if cur.pos + n > cur.stop then corrupt (Decode (what ^ ": short section"))

let get_u32 cur what =
  need cur 4 what;
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code cur.cs.[cur.pos + i] lsl (8 * i))
  done;
  cur.pos <- cur.pos + 4;
  !v

let get_str cur what =
  let n = get_u32 cur what in
  need cur n what;
  let s = String.sub cur.cs cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_f64 cur what =
  need cur 8 what;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (Char.code cur.cs.[cur.pos + i])) (8 * i))
  done;
  cur.pos <- cur.pos + 8;
  Int64.float_of_bits !bits

(* ---------------- structure ---------------- *)

type section = { tag : string; off : int; len : int; crc : int }

type info = {
  version : int;
  ocaml_version : string;
  query : string;
  query_hash : int;
  arity : int;
  epsilon : float;
  graph_n : int;
  graph_m : int;
  graph_colors : int;
  graph_fingerprint : int;
  graph_epoch : int;
  cached_solutions : int;
  created : float;
  sections : section list;
}

(* a bare u32 read during structural parsing — header overruns are
   Truncated, not Decode, because nothing has been verified yet *)
let hdr_u32 s pos total =
  if pos + 4 > total then corrupt (Truncated { expected = pos + 4; actual = total });
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code s.[pos + i] lsl (8 * i))
  done;
  !v

let parse_structure s =
  let total = String.length s in
  if total < 16 then corrupt (Truncated { expected = 16; actual = total });
  if String.sub s 0 8 <> magic then corrupt Bad_magic;
  let v = hdr_u32 s 8 total in
  if v <> format_version then
    corrupt
      (Version_skew
         {
           found = "format " ^ string_of_int v;
           expected = "format " ^ string_of_int format_version;
         });
  let nsect = hdr_u32 s 12 total in
  if nsect <> List.length tags then
    corrupt
      (Bad_layout
         (Printf.sprintf "header declares %d sections, format has %d" nsect
            (List.length tags)));
  let pos = ref 16 in
  let sections =
    List.map
      (fun want ->
        if !pos + 12 > total then
          corrupt (Truncated { expected = !pos + 12; actual = total });
        let tag = String.sub s !pos 4 in
        let len = hdr_u32 s (!pos + 4) total in
        let crc = hdr_u32 s (!pos + 8) total in
        if tag <> want then
          corrupt
            (Bad_layout
               (Printf.sprintf "found section %S where %S belongs" tag want));
        let off = !pos + 12 in
        if off + len > total then
          corrupt (Truncated { expected = off + len; actual = total });
        pos := off + len;
        { tag; off; len; crc })
      tags
  in
  if !pos <> total then
    corrupt (Bad_layout (Printf.sprintf "%d trailing bytes" (total - !pos)));
  sections

let verify_crcs s sections =
  List.iter
    (fun sec ->
      if Crc32.string ~off:sec.off ~len:sec.len s <> sec.crc then
        corrupt (Checksum { section = sec.tag }))
    sections

let find_section sections tag = List.find (fun s -> s.tag = tag) sections

(* ---------------- META codec ---------------- *)

let encode_meta eng =
  let g = Nd_engine.graph eng in
  let qtext = Fo.to_string (Nd_engine.query eng) in
  let b = Buffer.create 128 in
  put_str b Sys.ocaml_version;
  put_str b qtext;
  put_u32 b (Crc32.string qtext);
  put_u32 b (Nd_engine.arity eng);
  put_f64 b (Nd_engine.epsilon eng);
  put_u32 b (Cgraph.n g);
  put_u32 b (Cgraph.m g);
  put_u32 b (Cgraph.color_count g);
  put_u32 b (fingerprint g);
  put_u32 b (Cgraph.epoch g);
  put_f64 b (Unix.gettimeofday ());
  put_u32 b (Nd_engine.cache_size eng);
  Buffer.contents b

let decode_meta s sec ~version ~sections =
  let cur = { cs = s; pos = sec.off; stop = sec.off + sec.len } in
  let ocaml_version = get_str cur "meta" in
  let query = get_str cur "meta" in
  let query_hash = get_u32 cur "meta" in
  let arity = get_u32 cur "meta" in
  let epsilon = get_f64 cur "meta" in
  let graph_n = get_u32 cur "meta" in
  let graph_m = get_u32 cur "meta" in
  let graph_colors = get_u32 cur "meta" in
  let graph_fingerprint = get_u32 cur "meta" in
  let graph_epoch = get_u32 cur "meta" in
  let created = get_f64 cur "meta" in
  let cached_solutions = get_u32 cur "meta" in
  if cur.pos <> cur.stop then corrupt (Decode "meta: trailing bytes in section");
  if query_hash <> Crc32.string query then
    corrupt (Decode "meta: query hash inconsistent with query text");
  {
    version;
    ocaml_version;
    query;
    query_hash;
    arity;
    epsilon;
    graph_n;
    graph_m;
    graph_colors;
    graph_fingerprint;
    graph_epoch;
    cached_solutions;
    created;
    sections;
  }

let check_meta meta ~graph ~query =
  if meta.ocaml_version <> Sys.ocaml_version then
    corrupt
      (Version_skew
         {
           found = "ocaml " ^ meta.ocaml_version;
           expected = "ocaml " ^ Sys.ocaml_version;
         });
  let qtext = Fo.to_string query in
  if meta.query <> qtext then
    corrupt
      (Mismatch
         (Printf.sprintf "snapshot is for query %s, load requested %s"
            meta.query qtext));
  if
    meta.graph_n <> Cgraph.n graph
    || meta.graph_m <> Cgraph.m graph
    || meta.graph_colors <> Cgraph.color_count graph
    || meta.graph_fingerprint <> fingerprint graph
  then
    corrupt
      (Mismatch
         (Printf.sprintf
            "snapshot graph (n=%d, m=%d, fp=%08x) is not the presented graph \
             (n=%d, m=%d, fp=%08x)"
            meta.graph_n meta.graph_m meta.graph_fingerprint (Cgraph.n graph)
            (Cgraph.m graph) (fingerprint graph)));
  (* ABA detection: a mutate-and-revert history produces a graph that is
     structurally identical to the snapshotted one (fingerprint and the
     exact [Persist.import] comparison both pass) yet whose cached
     solutions may have been observed against intermediate states.  The
     epoch counter is the only witness, so a skew here is corruption,
     not a match. *)
  if meta.graph_epoch <> Cgraph.epoch graph then
    corrupt
      (Stale_epoch { snapshot = meta.graph_epoch; current = Cgraph.epoch graph })

(* ---------------- file I/O ---------------- *)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error _ -> corrupt (Truncated { expected = 16; actual = 0 })

(* ---------------- save ---------------- *)

let save ~path eng =
  Nd_trace.phase "snapshot.save" @@ fun () ->
  let payload, cache = Nd_engine.Persist.export eng in
  let marshal what v =
    try Marshal.to_string v []
    with Invalid_argument m ->
      Nd_error.invariantf
        "Nd_snapshot.save: %s payload is not marshal-safe (%s) — a closure \
         leaked into the preprocessing product" what m
  in
  let engn, cach =
    Nd_trace.with_span "snapshot.marshal" @@ fun () ->
    (marshal "engine" payload, marshal "cache" cache)
  in
  let meta = encode_meta eng in
  let b =
    Buffer.create (String.length engn + String.length cach + String.length meta + 64)
  in
  Buffer.add_string b magic;
  put_u32 b format_version;
  put_u32 b (List.length tags);
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string b tag;
      put_u32 b (String.length payload);
      put_u32 b (Crc32.string payload);
      Buffer.add_string b payload)
    [ ("META", meta); ("ENGN", engn); ("CACH", cach) ];
  let doc = Buffer.contents b in
  (* atomic publish: a crash mid-write leaves the old snapshot (or
     nothing) at [path], never a torn file *)
  Nd_trace.with_span "snapshot.write" (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      (try
         output_string oc doc;
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp path);
  Metrics.add m_bytes (String.length doc);
  String.length doc

(* ---------------- load ---------------- *)

let layout ~path =
  match parse_structure (read_file path) with
  | sections -> Ok sections
  | exception C c -> Error c

let info ~path =
  match
    let s = read_file path in
    let sections = parse_structure s in
    verify_crcs s sections;
    decode_meta s (find_section sections "META") ~version:format_version
      ~sections
  with
  | i -> Ok i
  | exception C c -> Error c

let load ~path graph query =
  Nd_trace.phase "snapshot.load" @@ fun () ->
  match
    let s = read_file path in
    let sections =
      Nd_trace.with_span "snapshot.verify" @@ fun () ->
      let sections = parse_structure s in
      verify_crcs s sections;
      sections
    in
    let meta =
      decode_meta s (find_section sections "META") ~version:format_version
        ~sections
    in
    check_meta meta ~graph ~query;
    (* All checksums and cross-checks stand: only now touch Marshal.
       Everything it reads was produced by [save] in a build with the
       same format and OCaml version. *)
    let unmarshal : 'a. section -> 'a =
     fun sec ->
      try Marshal.from_string s sec.off
      with e ->
        corrupt
          (Decode
             (Printf.sprintf "section %s failed to deserialize (%s)" sec.tag
                (Printexc.to_string e)))
    in
    let payload : Nd_engine.Persist.payload =
      Nd_trace.with_span "snapshot.unmarshal" (fun () ->
          unmarshal (find_section sections "ENGN"))
    in
    let cache : Nd_engine.Persist.cache_payload option =
      Nd_trace.with_span "snapshot.unmarshal" (fun () ->
          unmarshal (find_section sections "CACH"))
    in
    match
      Nd_trace.with_span "snapshot.import" (fun () ->
          Nd_engine.Persist.import ~graph ~query payload cache)
    with
    | Ok eng ->
        Metrics.incr m_loads;
        eng
    | Error m -> corrupt (Decode ("import rejected payload: " ^ m))
  with
  | eng -> Ok eng
  | exception C c -> Error c

type outcome = Loaded | Rebuilt of corruption

let m_replayed = Metrics.counter "snapshot.journal_replayed"

let load_or_rebuild ?epsilon ?metrics ?cache_limit ?budget ?paranoid
    ?(journal = []) ~path graph query =
  match load ~path graph query with
  | Ok eng ->
      (* revive at the snapshotted state, then absorb the journal through
         the incremental pipeline — mutations recorded since the save
         cost bounded maintenance each, not a re-prepare *)
      List.iter (fun m -> Nd_engine.update eng m) journal;
      Metrics.add m_replayed (List.length journal);
      (eng, Loaded)
  | Error c ->
      Metrics.incr m_fallbacks;
      let g = List.fold_left Cgraph.apply graph journal in
      let eng =
        Nd_engine.prepare ?epsilon ?metrics ?cache_limit ?budget ?paranoid g
          query
      in
      (eng, Rebuilt c)
