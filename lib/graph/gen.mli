(** Graph generators: concrete representatives of the classes the paper
    places on the sparsity ladder (Section 2), plus dense controls.

    Nowhere dense families (in increasing generality):
    - bounded degree: {!path}, {!cycle}, {!bounded_degree};
    - bounded treewidth: {!balanced_tree}, {!random_tree}, {!caterpillar},
      {!partial_ktree};
    - planar / bounded expansion: {!grid}, {!planar_grid};
    - nowhere dense but {e unbounded} expansion: {!subdivided_clique}
      with subdivision length growing with the clique size.

    Dense (somewhere dense) controls: {!complete}, {!erdos_renyi} with
    constant edge probability.

    All random generators are deterministic in their [seed]. *)

val path : int -> Cgraph.t

val cycle : int -> Cgraph.t

val complete : int -> Cgraph.t

val star : int -> Cgraph.t

val grid : int -> int -> Cgraph.t
(** [grid w h]: the w×h grid; vertex [(x,y)] has id [y*w + x]. *)

val planar_grid : ?seed:int -> int -> int -> Cgraph.t
(** [grid w h] plus one random diagonal per face — still planar, with a
    less regular structure. *)

val balanced_tree : branching:int -> depth:int -> Cgraph.t

val random_tree : ?seed:int -> int -> Cgraph.t
(** Uniform attachment: vertex [i] links to a uniformly random earlier
    vertex. *)

val caterpillar : ?seed:int -> int -> Cgraph.t
(** A spine path with random legs. *)

val bounded_degree : ?seed:int -> int -> max_degree:int -> Cgraph.t
(** Random graph where no vertex exceeds [max_degree]; edge count is
    pushed close to [n·max_degree/2]. *)

val partial_ktree : ?seed:int -> int -> width:int -> keep:float -> Cgraph.t
(** Random k-tree on [n] vertices of the given [width], each non-skeleton
    edge kept with probability [keep]; treewidth ≤ [width]. *)

val subdivided_clique : q:int -> sub:int -> Cgraph.t
(** The clique [K_q] with every edge subdivided [sub] times (i.e.
    replaced by a path with [sub] inner vertices).  With [sub ≥ q] these
    graphs have no short dense shallow minors; the family
    [{subdivided_clique ~q ~sub:q}] is nowhere dense yet has unbounded
    expansion. *)

val erdos_renyi : ?seed:int -> int -> p:float -> Cgraph.t

val disjoint_union : Cgraph.t -> Cgraph.t -> Cgraph.t

val randomly_color : ?seed:int -> colors:int -> Cgraph.t -> Cgraph.t
(** Give each vertex each color independently with probability 1/2
    (replacing any existing colors).  With [colors = c] the result is a
    c-colored graph in the paper's sense. *)

type family = {
  name : string;
  build : int -> Cgraph.t;  (** approximate target size -> graph *)
  nowhere_dense : bool;
}

val families : family list
(** The benchmark zoo: every family above instantiated at natural
    parameters, sized by vertex-count target. *)

val spec_grammar : string
(** Human-readable list of the accepted generator specs, for error
    messages and [--help] texts. *)

val of_spec : ?seed:int -> string -> Cgraph.t
(** Build a graph from a generator spec such as ["grid:30x30"],
    ["tree:1000"] or ["bdeg:5000:4"].  Dispatch is on the token before
    the first [':'].  Accepted forms: {!spec_grammar}.
    @raise Invalid_argument on an unknown head token or malformed
    numeric field. *)
