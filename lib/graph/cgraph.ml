open Nd_util

type t = {
  adj : int array array;
  colors : Bitset.t array;
  m : int;
  epoch : int;
}

type mutation =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Set_color of { color : int; vertex : int; present : bool }

let create ~n ?(colors = [||]) edges =
  if n < 0 then invalid_arg "Cgraph.create: negative n";
  Array.iter
    (fun b ->
      if Bitset.capacity b <> n then
        invalid_arg "Cgraph.create: color capacity mismatch")
    colors;
  let deg = Array.make n 0 in
  let edges =
    List.sort_uniq compare
      (List.map
         (fun (u, v) ->
           if u = v then invalid_arg "Cgraph.create: self-loop";
           if u < 0 || u >= n || v < 0 || v >= n then
             invalid_arg "Cgraph.create: vertex out of range";
           if u < v then (u, v) else (v, u))
         edges)
  in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (Array.sort compare) adj;
  { adj; colors = Array.map Bitset.copy colors; m = List.length edges;
    epoch = 0 }

let n g = Array.length g.adj
let m g = g.m
let size g = n g + g.m
let color_count g = Array.length g.colors
let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)
let has_edge g u v = Sorted.mem g.adj.(u) v
let has_color g ~color v = Bitset.mem g.colors.(color) v

let color_members g ~color =
  Array.of_list (Bitset.to_list g.colors.(color))

let fold_edges f g init =
  let acc = ref init in
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then acc := f u v !acc) nbrs)
    g.adj;
  !acc

let local_of_orig to_orig v =
  let i = Sorted.lower_bound to_orig v in
  if i < Array.length to_orig && to_orig.(i) = v then Some i else None

let induced g xs =
  if not (Sorted.is_sorted_strict xs) then
    invalid_arg "Cgraph.induced: vertex set must be sorted strictly";
  let k = Array.length xs in
  let adj =
    Array.init k (fun i ->
        let nbrs = g.adj.(xs.(i)) in
        let local = ref [] in
        Array.iter
          (fun w ->
            match local_of_orig xs w with
            | Some j -> local := j :: !local
            | None -> ())
          nbrs;
        let a = Array.of_list (List.rev !local) in
        Array.sort compare a;
        a)
  in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 adj / 2 in
  let colors =
    Array.map
      (fun b ->
        let b' = Bitset.create k in
        Array.iteri (fun i v -> if Bitset.mem b v then Bitset.add b' i) xs;
        b')
      g.colors
  in
  ({ adj; colors; m; epoch = 0 }, Array.copy xs)

let with_extra_colors g extra =
  Array.iter
    (fun b ->
      if Bitset.capacity b <> n g then
        invalid_arg "Cgraph.with_extra_colors: capacity mismatch")
    extra;
  { g with colors = Array.append g.colors (Array.map Bitset.copy extra) }

let remove_vertex g v =
  let xs =
    Array.of_list (List.filter (fun u -> u <> v) (List.init (n g) Fun.id))
  in
  induced g xs

let equal a b =
  a.adj = b.adj
  && Array.length a.colors = Array.length b.colors
  && Array.for_all2 Bitset.equal a.colors b.colors

let epoch g = g.epoch

let check_vertex g what v =
  if v < 0 || v >= n g then
    invalid_arg (Printf.sprintf "Cgraph.apply: %s vertex %d out of range" what v)

let row_insert row v =
  let len = Array.length row in
  let i = Sorted.lower_bound row v in
  let out = Array.make (len + 1) v in
  Array.blit row 0 out 0 i;
  Array.blit row i out (i + 1) (len - i);
  out

let row_delete row v =
  let len = Array.length row in
  let i = Sorted.lower_bound row v in
  let out = Array.make (len - 1) 0 in
  Array.blit row 0 out 0 i;
  Array.blit row (i + 1) out i (len - 1 - i);
  out

let apply g mut =
  match mut with
  | Add_edge (u, v) ->
      if u = v then invalid_arg "Cgraph.apply: self-loop";
      check_vertex g "add-edge" u;
      check_vertex g "add-edge" v;
      if has_edge g u v then { g with epoch = g.epoch + 1 }
      else begin
        let adj = Array.copy g.adj in
        adj.(u) <- row_insert adj.(u) v;
        adj.(v) <- row_insert adj.(v) u;
        { g with adj; m = g.m + 1; epoch = g.epoch + 1 }
      end
  | Remove_edge (u, v) ->
      if u = v then invalid_arg "Cgraph.apply: self-loop";
      check_vertex g "remove-edge" u;
      check_vertex g "remove-edge" v;
      if not (has_edge g u v) then { g with epoch = g.epoch + 1 }
      else begin
        let adj = Array.copy g.adj in
        adj.(u) <- row_delete adj.(u) v;
        adj.(v) <- row_delete adj.(v) u;
        { g with adj; m = g.m - 1; epoch = g.epoch + 1 }
      end
  | Set_color { color; vertex; present } ->
      check_vertex g "set-color" vertex;
      if color < 0 || color >= color_count g then
        invalid_arg
          (Printf.sprintf "Cgraph.apply: color %d out of range" color);
      let colors = Array.copy g.colors in
      let b = Bitset.copy colors.(color) in
      if present then Bitset.add b vertex else Bitset.remove b vertex;
      colors.(color) <- b;
      { g with colors; epoch = g.epoch + 1 }

let mutation_vertices = function
  | Add_edge (u, v) | Remove_edge (u, v) -> [ u; v ]
  | Set_color { vertex; _ } -> [ vertex ]

let mutation_to_string = function
  | Add_edge (u, v) -> Printf.sprintf "add-edge %d %d" u v
  | Remove_edge (u, v) -> Printf.sprintf "remove-edge %d %d" u v
  | Set_color { color; vertex; present } ->
      Printf.sprintf "set-color %d %d %s" color vertex
        (if present then "on" else "off")

let mutation_of_string s =
  let int_of w =
    match int_of_string_opt w with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Cgraph.mutation_of_string: %S" s)
  in
  match
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun w -> w <> "")
  with
  | [ "add-edge"; u; v ] -> Add_edge (int_of u, int_of v)
  | [ "remove-edge"; u; v ] -> Remove_edge (int_of u, int_of v)
  | [ "set-color"; c; v; ("on" | "off") as fl ] ->
      Set_color { color = int_of c; vertex = int_of v; present = fl = "on" }
  | _ -> invalid_arg (Printf.sprintf "Cgraph.mutation_of_string: %S" s)

let pp fmt g =
  Format.fprintf fmt "@[<v>graph: %d vertices, %d edges, %d colors@," (n g)
    g.m (color_count g);
  Array.iteri
    (fun u nbrs ->
      if Array.length nbrs > 0 then
        Format.fprintf fmt "  %d -> %s@," u
          (String.concat ","
             (List.map string_of_int (Array.to_list nbrs))))
    g.adj;
  Format.fprintf fmt "@]"
