(** Colored graphs — the structures the paper works over (Section 2).

    A [c]-colored graph is a finite structure over the schema
    [σ_c = {E, C_0, …, C_{c-1}}] with [E] a symmetric binary relation and
    the [C_i] unary.  Vertices are [0 .. n-1]; the linear order on the
    domain required by the paper is the natural order on vertex ids.

    The representation is immutable: adjacency lists are sorted arrays
    (so edge tests are O(log deg)) and each color is a bitset. *)

type t

val create : n:int -> ?colors:Nd_util.Bitset.t array -> (int * int) list -> t
(** [create ~n ~colors edges] builds a graph on vertices [0..n-1].
    Edges are undirected, deduplicated; self-loops are rejected.
    Every color bitset must have capacity [n]. *)

val n : t -> int
(** Number of vertices, the paper's [|G|]. *)

val m : t -> int
(** Number of (undirected) edges. *)

val size : t -> int
(** [n + m], the paper's [‖G‖]. *)

val color_count : t -> int

val neighbors : t -> int -> int array
(** Sorted; do not mutate. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val has_color : t -> color:int -> int -> bool

val color_members : t -> color:int -> int array
(** Sorted vertex ids carrying the color. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Each undirected edge [{u,v}] visited once, with [u < v]. *)

val induced : t -> int array -> t * int array
(** [induced g xs] is the substructure [G[X]] induced by the sorted
    vertex set [xs], together with the [to_orig] map: local vertex [i]
    of the result is original vertex [to_orig.(i)].  Colors restrict.
    Local ids preserve the original order, so lexicographic enumeration
    in the subgraph is consistent with the parent order. *)

val local_of_orig : int array -> int -> int option
(** [local_of_orig to_orig v]: the local id of original vertex [v], if a
    member.  O(log). *)

val with_extra_colors : t -> Nd_util.Bitset.t array -> t
(** σ'-expansion: append color relations (Section 2).  Capacities must
    equal [n]. *)

val remove_vertex : t -> int -> t * int array
(** [remove_vertex g v] is [G[V∖{v}]] with its [to_orig] map — the
    operation performed on a bag after Splitter's move. *)

val equal : t -> t -> bool
(** Structural equality on adjacency and colors.  The {!epoch} counter is
    deliberately excluded: two graphs with identical structure reached
    through different mutation histories are [equal]. *)

val pp : Format.formatter -> t -> unit

(** {1 Mutations}

    The update pipeline's first layer.  A graph value stays immutable —
    {!apply} is persistent (structure-sharing: only the touched adjacency
    rows / color bitset are rebuilt), so existing readers of the old view
    remain valid while the engine absorbs the change.  Each application
    bumps the {!epoch} counter, which higher layers (engine stats, the
    snapshot codec's stale-epoch rung) use to detect divergence. *)

type mutation =
  | Add_edge of int * int  (** add an undirected edge; idempotent *)
  | Remove_edge of int * int  (** remove an undirected edge; idempotent *)
  | Set_color of { color : int; vertex : int; present : bool }
      (** set unary-relation membership [C_color(vertex)] *)

val apply : t -> mutation -> t
(** [apply g mut] is [g] with [mut] applied and [epoch] incremented.
    O(deg) for edge mutations, O(n/word) for color mutations; [g] itself
    is unchanged.  Raises [Invalid_argument] on out-of-range vertices or
    colors, or on self-loops.  Adding a present edge or removing an
    absent one is a structural no-op that still bumps the epoch. *)

val epoch : t -> int
(** Number of mutations this value has absorbed since [create]
    (0 for freshly built graphs; derived views such as {!induced} reset
    to 0). *)

val mutation_vertices : mutation -> int list
(** The vertices a mutation touches — the seed of the dirty region. *)

val mutation_to_string : mutation -> string
(** Wire syntax: ["add-edge U V"], ["remove-edge U V"],
    ["set-color C V on|off"].  Inverse of {!mutation_of_string}. *)

val mutation_of_string : string -> mutation
(** Parse the wire syntax above (whitespace-tolerant).
    Raises [Invalid_argument] on malformed input. *)
