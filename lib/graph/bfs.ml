(* BFS queue pops are the machine-op unit of all neighborhood
   exploration (cover growth, kernels, distance-index bases, ball
   materialization), so they belong on the cost-model ops clock — this
   is also what lets an ops budget meter the preprocessing phases. *)
let m_expansions = Nd_util.Metrics.counter ~ops:true "bfs.expansions"

let multi_dist_from_depth g sources ~radius =
  let n = Cgraph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun (v, d0) ->
      if d0 <= radius && (dist.(v) = -1 || dist.(v) > d0) then begin
        dist.(v) <- d0;
        Queue.push v q
      end)
    sources;
  (* Initial depths are 0 or 1 in all our uses, so a plain queue keeps
     the monotonicity required for BFS correctness. *)
  while not (Queue.is_empty q) do
    Nd_util.Metrics.incr m_expansions;
    Nd_util.Budget.tick ();
    let v = Queue.pop q in
    if dist.(v) < radius then
      Array.iter
        (fun w ->
          if dist.(w) = -1 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.push w q
          end)
        (Cgraph.neighbors g v)
  done;
  dist

let multi_dist_upto g sources ~radius =
  multi_dist_from_depth g (List.map (fun v -> (v, 0)) sources) ~radius

let dist_upto g src ~radius = multi_dist_upto g [ src ] ~radius

let ball g v ~radius =
  let dist = dist_upto g v ~radius in
  let acc = ref [] in
  for u = Cgraph.n g - 1 downto 0 do
    if dist.(u) >= 0 then acc := u :: !acc
  done;
  Array.of_list !acc

let ball_of_set g vs ~radius =
  let dist = multi_dist_upto g vs ~radius in
  let acc = ref [] in
  for u = Cgraph.n g - 1 downto 0 do
    if dist.(u) >= 0 then acc := u :: !acc
  done;
  Array.of_list !acc

let dist g u v =
  let d = dist_upto g u ~radius:max_int in
  if d.(v) = -1 then None else Some d.(v)

type searcher = {
  sg : Cgraph.t;
  sdist : int array;
  touched : int Queue.t;
  frontier : int Queue.t;
}

let searcher g =
  {
    sg = g;
    sdist = Array.make (Cgraph.n g) (-1);
    touched = Queue.create ();
    frontier = Queue.create ();
  }

let sball_run s src ~radius =
  s.sdist.(src) <- 0;
  Queue.push src s.touched;
  Queue.push src s.frontier;
  while not (Queue.is_empty s.frontier) do
    Nd_util.Metrics.incr m_expansions;
    Nd_util.Budget.tick ();
    let v = Queue.pop s.frontier in
    if s.sdist.(v) < radius then
      Array.iter
        (fun w ->
          if s.sdist.(w) = -1 then begin
            s.sdist.(w) <- s.sdist.(v) + 1;
            Queue.push w s.touched;
            Queue.push w s.frontier
          end)
        (Cgraph.neighbors s.sg v)
  done

let sball s src ~radius =
  sball_run s src ~radius;
  let out = Array.make (Queue.length s.touched) 0 in
  let i = ref 0 in
  Queue.iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    s.touched;
  Queue.iter (fun v -> s.sdist.(v) <- -1) s.touched;
  Queue.clear s.touched;
  Array.sort compare out;
  out

let sball_size s src ~radius =
  sball_run s src ~radius;
  let size = Queue.length s.touched in
  Queue.iter (fun v -> s.sdist.(v) <- -1) s.touched;
  Queue.clear s.touched;
  size

let eccentricity_center g xs =
  if Array.length xs = 0 then invalid_arg "Bfs.eccentricity_center: empty";
  let sub, to_orig = Cgraph.induced g xs in
  let far_from v =
    let d = dist_upto sub v ~radius:max_int in
    let best = ref v and bd = ref 0 in
    Array.iteri
      (fun u du ->
        if du > !bd then begin
          best := u;
          bd := du
        end)
      d;
    (!best, d)
  in
  let a, _ = far_from 0 in
  let b, da = far_from a in
  (* midpoint of a shortest a-b path approximates the center *)
  let db = dist_upto sub b ~radius:max_int in
  let target = (da.(b) + 1) / 2 in
  let best = ref 0 and score = ref max_int in
  for v = 0 to Cgraph.n sub - 1 do
    if da.(v) >= 0 && db.(v) >= 0 && da.(v) + db.(v) = da.(b) then begin
      let s = abs (da.(v) - target) in
      if s < !score then begin
        score := s;
        best := v
      end
    end
  done;
  to_orig.(!best)
