open Nd_util

let path n = Cgraph.create ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Cgraph.create ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Cgraph.create ~n !edges

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Cgraph.create ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid w h =
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges
    done
  done;
  Cgraph.create ~n:(w * h) !edges

let planar_grid ?(seed = 0) w h =
  let rng = Random.State.make [| seed; w; h |] in
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1)) :: !edges;
      if x + 1 < w && y + 1 < h then
        if Random.State.bool rng then
          edges := (id x y, id (x + 1) (y + 1)) :: !edges
        else edges := (id (x + 1) y, id x (y + 1)) :: !edges
    done
  done;
  Cgraph.create ~n:(w * h) !edges

let balanced_tree ~branching ~depth =
  if branching < 1 then invalid_arg "Gen.balanced_tree";
  let rec count d = if d = 0 then 1 else 1 + (branching * count (d - 1)) in
  let n =
    if branching = 1 then depth + 1
    else
      (int_of_float (float_of_int branching ** float_of_int (depth + 1)) - 1)
      / (branching - 1)
  in
  ignore count;
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / branching, v) :: !edges
  done;
  Cgraph.create ~n !edges

let random_tree ?(seed = 0) n =
  let rng = Random.State.make [| seed; n |] in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (Random.State.int rng v, v) :: !edges
  done;
  Cgraph.create ~n !edges

let caterpillar ?(seed = 0) n =
  let rng = Random.State.make [| seed; n; 7 |] in
  let spine = max 1 (n / 3) in
  let edges = ref [] in
  for v = 1 to spine - 1 do
    edges := (v - 1, v) :: !edges
  done;
  for v = spine to n - 1 do
    edges := (Random.State.int rng spine, v) :: !edges
  done;
  Cgraph.create ~n !edges

let bounded_degree ?(seed = 0) n ~max_degree =
  let rng = Random.State.make [| seed; n; max_degree |] in
  let deg = Array.make n 0 in
  let seen = Hashtbl.create (n * max_degree) in
  let edges = ref [] in
  let attempts = n * max_degree * 4 in
  for _ = 1 to attempts do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && deg.(u) < max_degree && deg.(v) < max_degree
       && not (Hashtbl.mem seen (u, v))
    then begin
      Hashtbl.add seen (u, v) ();
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      edges := (u, v) :: !edges
    end
  done;
  Cgraph.create ~n !edges

let partial_ktree ?(seed = 0) n ~width ~keep =
  if width < 1 || n < width + 1 then invalid_arg "Gen.partial_ktree";
  let rng = Random.State.make [| seed; n; width |] in
  (* grow a k-tree: cliques.(i) is a (width+1)-clique id list *)
  let cliques = ref [ List.init (width + 1) Fun.id ] in
  let ncliques = ref 1 in
  let edges = ref [] in
  for i = 0 to width do
    for j = i + 1 to width do
      edges := (i, j) :: !edges
    done
  done;
  for v = width + 1 to n - 1 do
    let c = List.nth !cliques (Random.State.int rng !ncliques) in
    (* drop one element of the clique, attach v to the rest *)
    let drop = Random.State.int rng (width + 1) in
    let kept = List.filteri (fun i _ -> i <> drop) c in
    List.iter
      (fun u ->
        if Random.State.float rng 1.0 <= keep then edges := (u, v) :: !edges)
      kept;
    cliques := (v :: kept) :: !cliques;
    incr ncliques
  done;
  Cgraph.create ~n !edges

let subdivided_clique ~q ~sub =
  if q < 2 || sub < 0 then invalid_arg "Gen.subdivided_clique";
  let next = ref q in
  let edges = ref [] in
  for i = 0 to q - 1 do
    for j = i + 1 to q - 1 do
      if sub = 0 then edges := (i, j) :: !edges
      else begin
        let prev = ref i in
        for _ = 1 to sub do
          edges := (!prev, !next) :: !edges;
          prev := !next;
          incr next
        done;
        edges := (!prev, j) :: !edges
      end
    done
  done;
  Cgraph.create ~n:!next !edges

let erdos_renyi ?(seed = 0) n ~p =
  let rng = Random.State.make [| seed; n |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (i, j) :: !edges
    done
  done;
  Cgraph.create ~n !edges

let disjoint_union a b =
  let na = Cgraph.n a in
  let n = na + Cgraph.n b in
  let edges =
    Cgraph.fold_edges (fun u v acc -> (u, v) :: acc) a []
    |> Cgraph.fold_edges (fun u v acc -> (u + na, v + na) :: acc) b
  in
  let colors =
    let ca = Cgraph.color_count a and cb = Cgraph.color_count b in
    Array.init (max ca cb) (fun c ->
        let bs = Bitset.create n in
        if c < ca then
          Array.iter (fun v -> Bitset.add bs v) (Cgraph.color_members a ~color:c);
        if c < cb then
          Array.iter
            (fun v -> Bitset.add bs (v + na))
            (Cgraph.color_members b ~color:c);
        bs)
  in
  Cgraph.create ~n ~colors edges

let randomly_color ?(seed = 0) ~colors g =
  let rng = Random.State.make [| seed; Cgraph.n g; colors |] in
  let n = Cgraph.n g in
  let sets =
    Array.init colors (fun _ ->
        let bs = Bitset.create n in
        for v = 0 to n - 1 do
          if Random.State.bool rng then Bitset.add bs v
        done;
        bs)
  in
  let plain =
    Cgraph.create ~n (Cgraph.fold_edges (fun u v acc -> (u, v) :: acc) g [])
  in
  Cgraph.with_extra_colors plain sets

type family = { name : string; build : int -> Cgraph.t; nowhere_dense : bool }

let isqrt x = int_of_float (sqrt (float_of_int x))

let families =
  [
    { name = "path"; build = path; nowhere_dense = true };
    {
      name = "random-tree";
      build = (fun n -> random_tree ~seed:42 n);
      nowhere_dense = true;
    };
    {
      name = "grid";
      build = (fun n -> grid (isqrt n) (isqrt n));
      nowhere_dense = true;
    };
    {
      name = "planar-grid";
      build = (fun n -> planar_grid ~seed:42 (isqrt n) (isqrt n));
      nowhere_dense = true;
    };
    {
      name = "bounded-deg-4";
      build = (fun n -> bounded_degree ~seed:42 n ~max_degree:4);
      nowhere_dense = true;
    };
    {
      name = "partial-3tree";
      build = (fun n -> partial_ktree ~seed:42 n ~width:3 ~keep:0.6);
      nowhere_dense = true;
    };
    {
      name = "subdiv-clique";
      build =
        (fun n ->
          (* K_q with q-subdivided edges has q + q*(q-1)/2*q vertices;
             pick q so the size is close to n *)
          let q = max 3 (int_of_float (float_of_int (2 * n) ** (1. /. 3.))) in
          subdivided_clique ~q ~sub:q);
      nowhere_dense = true;
    };
    {
      name = "clique";
      build = (fun n -> complete (max 3 (isqrt n)));
      nowhere_dense = false;
    };
    {
      name = "dense-gnp";
      build = (fun n -> erdos_renyi ~seed:42 (max 8 (isqrt n * 2)) ~p:0.3);
      nowhere_dense = false;
    };
  ]

(* ---------------------------------------------------------------- *)
(* Generator specs ("grid:30x30", "bdeg:5000:4", …), the CLI / bench
   surface syntax.  Dispatch is on the head token up to the first ':',
   so specs sharing a prefix ("planar" vs "planar-grid"-style additions)
   cannot shadow each other. *)

let spec_grammar =
  "grid:WxH, planar:WxH, tree:N, path:N, cycle:N, star:N, clique:N, \
   bdeg:N:D, ktree:N:W, subdiv:Q, gnp:N:P"

let of_spec ?(seed = 1) spec =
  let fail () =
    invalid_arg
      (Printf.sprintf "unknown graph spec %S (try %s)" spec spec_grammar)
  in
  let int s = match int_of_string_opt s with Some v -> v | None -> fail () in
  let float_ s =
    match float_of_string_opt s with Some v -> v | None -> fail ()
  in
  let dims wh =
    match String.split_on_char 'x' wh with
    | [ w; h ] -> (int w, int h)
    | _ -> fail ()
  in
  match String.split_on_char ':' spec with
  | [ "grid"; wh ] ->
      let w, h = dims wh in
      grid w h
  | [ "planar"; wh ] ->
      let w, h = dims wh in
      planar_grid ~seed w h
  | [ "tree"; n ] -> random_tree ~seed (int n)
  | [ "path"; n ] -> path (int n)
  | [ "cycle"; n ] -> cycle (int n)
  | [ "star"; n ] -> star (int n)
  | [ "clique"; n ] -> complete (int n)
  | [ "bdeg"; n; d ] -> bounded_degree ~seed (int n) ~max_degree:(int d)
  | [ "ktree"; n; w ] -> partial_ktree ~seed (int n) ~width:(int w) ~keep:0.6
  | [ "subdiv"; q ] ->
      let q = int q in
      subdivided_clique ~q ~sub:q
  | [ "gnp"; n; p ] -> erdos_renyi ~seed (int n) ~p:(float_ p)
  | _ -> fail ()
