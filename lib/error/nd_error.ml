type budget_resource = Ops | Time | Memory

type budget_info = {
  phase : string;
  resource : budget_resource;
  limit : int;
  used : int;
}

exception User_error of string
exception Budget_exceeded of budget_info
exception Internal_invariant of string

let user_errorf fmt = Printf.ksprintf (fun s -> raise (User_error s)) fmt
let invariantf fmt = Printf.ksprintf (fun s -> raise (Internal_invariant s)) fmt

let resource_name = function
  | Ops -> "ops"
  | Time -> "time_ms"
  | Memory -> "memory_words"

let describe_budget i =
  Printf.sprintf "budget exceeded in phase %s: %s used %d > limit %d" i.phase
    (resource_name i.resource) i.used i.limit

let message = function
  | User_error m -> Some m
  | Budget_exceeded i -> Some (describe_budget i)
  | Internal_invariant m -> Some ("internal invariant violated: " ^ m)
  | _ -> None

let exit_code = function
  | User_error _ -> Some 2
  | Budget_exceeded _ -> Some 3
  | Internal_invariant _ -> Some 4
  | _ -> None

let () =
  Printexc.register_printer (fun e ->
      match e with
      | User_error _ | Budget_exceeded _ | Internal_invariant _ ->
          Option.map (fun m -> "Nd_error: " ^ m) (message e)
      | _ -> None)
