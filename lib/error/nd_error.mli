(** Structured error taxonomy for the whole pipeline.

    A production engine built on Theorem 2.3 distinguishes three ways a
    call can fail, and they must stay distinguishable all the way to the
    process boundary (the [fodb] CLI maps them to exit codes):

    - {!User_error} (exit 2): the caller handed us something malformed —
      wrong tuple arity, out-of-range vertex, unparsable query, unknown
      graph spec.  Always the caller's fault; retrying with fixed input
      succeeds.
    - {!Budget_exceeded} (exit 3): a resource ceiling installed through
      {!Nd_util.Budget} was crossed.  The computation was abandoned
      cooperatively; the payload names the phase and the consumed
      totals.  Nothing is wrong with the input — retry with a larger
      budget, or accept the degraded (naive-backed, still exact) answers
      {!Nd_engine.prepare} falls back to.
    - {!Internal_invariant} (exit 4): the library caught itself lying —
      a data-structure invariant walker failed, or paranoid-mode
      differential checking found a solution the naive evaluator
      rejects.  Always a bug (or injected fault); never retry.

    The exceptions live in a dependency-free library so every layer
    (util → ram → core → engine → CLI) can raise and match them. *)

type budget_resource = Ops | Time | Memory

type budget_info = {
  phase : string;  (** innermost phase label active when the ceiling broke *)
  resource : budget_resource;
  limit : int;  (** the ceiling: ops, milliseconds, or heap words *)
  used : int;  (** consumed total at the failing check, same unit *)
}

exception User_error of string
exception Budget_exceeded of budget_info
exception Internal_invariant of string

val user_errorf : ('a, unit, string, 'b) format4 -> 'a
(** [user_errorf fmt ...] raises {!User_error} with a formatted message. *)

val invariantf : ('a, unit, string, 'b) format4 -> 'a
(** [invariantf fmt ...] raises {!Internal_invariant}. *)

val resource_name : budget_resource -> string
(** ["ops"], ["time_ms"], ["memory_words"] — stable, used in JSON. *)

val describe_budget : budget_info -> string
(** One-line human rendering, e.g.
    ["budget exceeded in phase cover.compute: ops used 4812 > limit 1"]. *)

val message : exn -> string option
(** Human message for the three taxonomy exceptions, [None] otherwise. *)

val exit_code : exn -> int option
(** [Some 2] / [Some 3] / [Some 4] for the taxonomy, [None] otherwise. *)
