(** Fault-tolerant shard-per-bag cluster serving: ownership, the k-way
    merge, and the epoch-fencing router.

    The paper's [(r,2r)]-neighborhood cover is a natural sharding key:
    every vertex has a {e home bag} containing its whole r-ball, so the
    solution space of a query partitions by the home bag of a tuple's
    first coordinate.  A fleet of shard workers — each an ordinary
    {!Nd_server} over its own prepared handle, answering only the
    solutions it owns (see {!Nd_server.config.owner}) — therefore emits
    disjoint, strictly-ascending sub-streams of the single-node
    lexicographic solution order, and a router reconstitutes the exact
    single-node answer stream with a duplicate-free ascending k-way
    merge.  The constant-delay enumeration contract survives sharding
    because the merge is the same discipline the solution cache already
    uses.

    Fault tolerance is the point of the tier.  Replication rides on
    machinery earlier PRs built: snapshots are the replica bootstrap,
    the mutation journal is the replication log, graph {e epochs} are
    the consistency token.  The router fences on epochs — it never
    merges streams observed at different epochs — and degrades loudly
    ([err unavailable]) rather than silently returning partial answers.

    {2 Modules}

    - {!Ownership} — the deterministic vertex → shard map derived from
      the cover of the boot graph.
    - {!Merge} — the pure, pull-driven, duplicate-free ascending k-way
      merge (property-tested on its own).
    - {!Router} — the fleet front-end: same line protocol as
      {!Nd_server}, plus fencing, failover and replica lifecycle.

    {2 CLI grammar}

    The [fodb] entry points this library backs:

    {v
    fodb router -g SPEC -q QUERY --shards N --endpoint S:PATH ...
         [--socket PATH]
         [--probe-interval-ms N] [--no-fence] [--retry-after-ms N]
         [--max-enumerate K] [--event-log FILE]
    v}

    connects to already-running shard workers ([--endpoint S:PATH], one
    per replica, repeated; [S] is the shard id) and serves the merged
    line protocol on [--socket] (or stdio).  [SPEC]/[QUERY] must match
    the fleet's: the router re-derives the same {!Ownership} map from
    the same boot graph.

    {v
    fodb cluster -g SPEC -q QUERY --shards N [--replicas R] [--dir D]
         [--socket PATH] [--supervise] [--differential]
         [--mutations M] [--kill-replica S:R]
         [--probe-interval-ms N] [--no-fence]
         [--chaos-link S:R] [--chaos-garbage BYTES] [--chaos-chunk N]
         [--chaos-delay-ms N] [--chaos-cut-reply-after N]
         [--epsilon E] [--colors K] [--seed S] [--event-log FILE]
    v}

    launches the whole fleet locally: [N×R] shard worker processes
    (each [fodb serve --shard-index s --shard-count N], bootstrapped
    from a snapshot saved by the harness with a per-worker journal,
    optionally under [--supervise]), threads selected router↔shard
    links through an in-process {!Nd_ram.Chaos.Net} proxy
    ([--chaos-link S:R], profile from the [--chaos-*] flags), and runs
    the router over them.
    With [--differential] it instead enumerates the whole answer set
    through the router — after replicating [--mutations M] scripted
    mutations through it, and [kill -9]-ing the worker of replica
    [--kill-replica S:R] after the first merged page so the supervisor's
    bootstrap-from-snapshot + journal-replay path is on the answer path
    — compares byte-for-byte against a single-node engine on the same
    mutated graph, prints a verdict and exits non-zero on mismatch.

    {2 DESIGN}

    S16 in DESIGN.md walks the router state machine, the epoch-fence
    protocol, the failover ladder and the replica lifecycle
    (bootstrap → catch-up → in-rotation → fenced) in full. *)

(** The deterministic vertex → shard partition.

    Home bags of the [(r,2r)]-cover are dealt round-robin to shards
    ([bag mod shards]); a tuple is owned by the shard of its first
    coordinate's home bag, and the (unique) arity-0 solution by shard
    0.  Every process of the fleet — each worker and the router —
    computes the map independently from the {e boot} graph (the graph
    as loaded, before any journal replay or mutation), so the partition
    is identical fleet-wide and stable across restarts: mutations
    change answers, never ownership.  Totality and disjointness do not
    depend on cover quality, so the partition stays exact even as
    mutations degrade the cover's locality. *)
module Ownership : sig
  type t

  val compute : ?r:int -> Nd_graph.Cgraph.t -> shards:int -> t
  (** Cover the boot graph at radius [r] (default 1) and deal home bags
      to [shards] round-robin.
      @raise Invalid_argument when [shards < 1] or [r < 1]. *)

  val shards : t -> int
  val n : t -> int  (** vertices of the boot graph *)

  val shard_of_vertex : t -> int -> int
  (** @raise Invalid_argument when the vertex is out of range. *)

  val shard_of_tuple : t -> int array -> int
  (** The owning shard: [shard_of_vertex] of the first coordinate; [0]
      for the empty tuple. *)

  val owner : t -> shard:int -> int array -> bool
  (** The predicate to install as {!Nd_server.config.owner} on shard
      [shard]. *)
end

(** The duplicate-free ascending lexicographic k-way merge, pull-driven
    so the router can resume any stream after a failover.

    A {e stream} is addressed by [pull sh lb] — the smallest element of
    stream [sh] that is [>= lb], or [None] — which is exactly the
    shards' [next] verb.  Because [pull] is memoryless given the lower
    bound, the merge needs no per-stream state that could be lost in a
    failover: re-asking a different replica of the same shard with the
    same bound resumes the stream with no gap and no duplicate. *)
module Merge : sig
  val merge_pull :
    n:int ->
    k:int ->
    start:int array option ->
    shards:int ->
    pull:(int -> int array -> int array option) ->
    int array list * int array option
  (** [merge_pull ~n ~k ~start ~shards ~pull] is [(page, next)]: up to
      [k] elements of the merged stream from lower bound [start]
      ([None] = already exhausted), in strictly ascending lexicographic
      order with cross-stream duplicates emitted once, and the lower
      bound the next page resumes from ([None] = exhausted).  [n] is
      the vertex count (for {!Nd_util.Tuple.succ}).  Exceptions from
      [pull] propagate — the router uses that for its unavailable
      rung. *)
end

(** The router: the fleet's front-end, speaking the same one-line
    request / terminator-line reply protocol as {!Nd_server}.

    {2 Protocol}

    [next]/[test]/[enumerate]/[update]/[batch-update]/[epoch]/[reset]/
    [stats]/[metrics]/[health]/[quit], with single-node reply shapes —
    a client cannot tell a router from a shard except through [health]
    and [stats].  Two differences:

    - [err unavailable rid=<n> span=<s> shard=<id> retry-after-ms=<n> …]
      is the degradation rung: the request needed shard [<id>] and no
      replica of it could be used at the fleet epoch.  Loud, structured
      and retry-able — never a silently partial answer.
    - [health] summarizes the fleet:
      [health ok shards=N replicas=N live=N fenced=N epoch=N
      requests=N ok=N user=N unavailable=N failovers=N
      fence_refusals=N catchups=N probes=N].

    [stats] replies with one [nd-router-stats/1] JSON line mirroring
    {!stats}; [metrics] replies with the {e aggregated fleet
    exposition} (see {!scrape_metrics}) rather than just the router's
    own registry.

    {2 Trace propagation}

    Request lines accept the same optional trailing
    [trace=<trace_id>:<parent_span>] attribute as {!Nd_server} (same
    grammar, same [err user] on a malformed token).  Each request runs
    inside a [router.request] span; every upstream call (fan-out pulls,
    fence probes, catch-up replays, failover retries, metric scrapes)
    is a [router.call] child span, and when tracing is enabled the
    outgoing request is stamped with the router's own trace context —
    so a worker's [server.request] span re-parents under the router's
    [router.call] in the merged timeline ({!Nd_obs.Merge}).  Error
    replies and event-log rows carry the [router.request] span id as
    their [span] join key.

    {2 Epoch fencing}

    The fleet epoch is the router's count of mutations it has applied
    (initialized from the fleet's maximum at first contact).  Before a
    replica contributes to any reply, the router probes its [epoch]
    (once per request per replica — requests are serialized, so the
    epoch cannot move under a request) and refuses the replica unless
    it matches: a lagging replica is {e fenced} (dropped from
    rotation, [fence_refusals] incremented, an event-log row written)
    and caught up by replaying the missing journal suffix via
    [batch-update]; it is readmitted only once its epoch equals the
    fleet's.  A replica {e ahead} of the fleet (mutated behind the
    router's back) is fenced permanently.  Mixed-epoch merges are
    therefore impossible by construction, not by convention.

    {2 Failover ladder}

    Per request and per shard group, replicas are tried in order:
    fence-check, then the call.  Transport failures (connect exhaustion
    — see {!Nd_server.Client.connect} — reset, EOF mid-reply) drop the
    replica's connection, count a [failover], and move to the next
    replica; [err overloaded] sleeps the advertised floor with full
    jitter and moves on; [err user]/[err budget]/[err internal] are
    deterministic verdicts and pass through to the client.  When the
    ladder exhausts a group, the reply is [err unavailable] with
    [retry-after-ms] — and the probe timer keeps working to bring the
    group back.

    {2 Updates}

    Mutations are applied to a leader replica first (any usable one);
    only after the leader accepts is the mutation fanned to every other
    replica, journaled (the catch-up log) and the fleet epoch advanced,
    so a rejected mutation changes nothing anywhere.  Followers that
    miss the fan-out are fenced and caught up later.

    {2 Drain}

    {!request_stop} makes new requests answer [err shutting-down];
    {!drain} waits until in-flight requests (merges included) have
    finished, so callers stop shards only once no merge is mid-pull. *)
module Router : sig
  type conn = {
    transport : Nd_server.Client.transport;
    read_reply : float -> string list option;
        (** read one already-queued reply, waiting at most the given
            seconds for its first line ([None] when nothing arrives) —
            the resync primitive the connect handshake uses to absorb a
            garbage-injected extra reply (see DESIGN S16); endpoints
            that cannot be desynced may return [None] unconditionally *)
    close : unit -> unit;
  }

  type endpoint
  (** One replica: a shard id plus a way to (re)connect to it. *)

  val endpoint :
    shard:int ->
    label:string ->
    (unit -> (conn, string) Stdlib.result) ->
    endpoint
  (** A custom endpoint; [label] names it in events and stats. *)

  val socket_endpoint :
    ?connect:Nd_server.Client.connect_policy -> shard:int -> string -> endpoint
  (** A worker behind a Unix-domain socket path, dialed with
      {!Nd_server.Client.connect} (bounded, backoff-scheduled). *)

  val local_endpoint : shard:int -> label:string -> Nd_server.t -> endpoint
  (** An in-process worker: each connect opens a fresh
      {!Nd_server.session} — the deterministic fixture tests and the
      bench build fleets from. *)

  type config = {
    fence : bool;
        (** per-request epoch fencing (default [true]; the bench's
            probe-overhead arm turns it off to price it) *)
    probe_interval_ms : int;
        (** background health/epoch probe period; [0] (default in
            tests) disables the timer — {!probe} can always be called
            directly *)
    retries : int;  (** extra failover passes over a group's ladder *)
    backoff_ms : int;  (** backoff cap before the first retry *)
    jitter : int -> int;  (** {!Nd_util.Backoff.full_jitter} or [none] *)
    sleep_ms : int -> unit;  (** injectable for tests *)
    retry_after_ms : int;  (** floor advertised in [err unavailable] *)
    max_enumerate : int;  (** page-size cap/default, as in {!Nd_server} *)
    event_log : (string -> unit) option;
        (** JSONL sink; same row shape as {!Nd_server}'s ([ts_us]
            microsecond timestamps, [span] carrying the
            [router.request] span id), plus a ["shard"] attribute on
            shard-scoped rows and the router-only statuses
            ["unavailable"]/["fenced"], and lifecycle rows with [cmd]
            ["(fence)"], ["(catchup)"], ["(failover)"], ["(probe)"] *)
  }

  val default_config : config

  type t

  val create :
    ?config:config -> ownership:Ownership.t -> arity:int -> endpoint list -> t
  (** @raise Invalid_argument when some shard in
      [0 .. Ownership.shards - 1] has no endpoint, an endpoint names a
      shard out of range, or [arity]/[max_enumerate]/[retry_after_ms]
      is out of range. *)

  val session : t -> t
  (** Fresh enumeration cursor and quit flag, everything else shared —
      one per client connection, as in {!Nd_server.session}. *)

  val handle : t -> string -> string list
  (** Process one request line; never raises.  Same contract as
      {!Nd_server.handle}. *)

  val probe : t -> unit
  (** One probe round: [health] every replica, record epoch and mode,
      fence lagging replicas, attempt catch-up, readmit at the fleet
      epoch.  The probe timer calls this; exposed for deterministic
      tests and for the catch-up bench. *)

  val start_probes : t -> Thread.t option
  (** Start the probe timer ([None] when [probe_interval_ms = 0]); the
      thread exits after {!request_stop}. *)

  val quitting : t -> bool
  val request_stop : t -> unit

  val drain : ?timeout_ms:int -> t -> bool
  (** Wait (up to [timeout_ms], default 5000) for in-flight requests to
      quiesce; [true] when the router is idle. *)

  val serve : t -> in_channel -> out_channel -> unit
  val serve_socket : ?backlog:int -> t -> path:string -> unit

  val scrape_metrics : t -> string
  (** The aggregated fleet exposition: the router's own process
      registry, fleet-derived gauges ([nd_fleet_epoch],
      [nd_fleet_live_replicas], [nd_fleet_fenced_replicas]), the
      per-shard merge-pull latency histogram ([nd_router_pull_us]) and
      every live replica's scrape re-labelled with [shard]/[replica],
      merged into one valid document ({!Nd_obs.Prom.merge}).  Takes
      the router lock; the [metrics] protocol verb replies with the
      same document.  Fenced or unreachable replicas are omitted. *)

  type stats = {
    requests : int;
    ok : int;
    user_errors : int;
    unavailable : int;  (** requests refused with [err unavailable] *)
    failovers : int;  (** replica-to-replica transport failovers *)
    fence_refusals : int;  (** lagging replicas refused a merge *)
    catchups : int;  (** journal-replay catch-ups that readmitted *)
    probes : int;  (** replica probes performed *)
    fleet_epoch : int;  (** [-1] until first contact *)
    live : int;
    fenced : int;
  }

  val stats : t -> stats

  val replica_states : t -> (int * string * string) list
  (** [(shard, label, state)] per replica; [state] is ["live"] or
      ["fenced: <reason>"].  For tests and the harness's summary. *)
end
