open Nd_util

(* Router-side mirror counters; the authoritative counts live on the
   router's shared record so `health` works with instrumentation off. *)
let m_requests = Metrics.counter "router.requests"
let m_ok = Metrics.counter "router.replies_ok"
let m_err_user = Metrics.counter "router.errors.user"
let m_unavailable = Metrics.counter "router.errors.unavailable"
let m_failovers = Metrics.counter "router.failovers"
let m_fence_refusals = Metrics.counter "router.fence_refusals"
let m_catchups = Metrics.counter "router.catchups"
let m_probes = Metrics.counter "router.probes"
let h_latency = Metrics.hist "router.request_us"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let fmt_tuple a =
  String.concat "," (Array.to_list (Array.map string_of_int a))

let parse_tuple s =
  if String.trim s = "" then [||]
  else
    Array.of_list
      (List.map
         (fun field ->
           match int_of_string_opt (String.trim field) with
           | Some v -> v
           | None ->
               Nd_error.user_errorf
                 "bad tuple %S (expected comma-separated integers)" s)
         (String.split_on_char ',' s))

(* ---------------- Ownership ---------------- *)

module Ownership = struct
  type t = { shards : int; n : int; shard_of : int array }

  (* Home bags dealt round-robin: deterministic given the boot graph,
     so every fleet process derives the identical partition.  Totality
     and disjointness hold for any bag assignment, so mutations (which
     never add vertices) cannot break the partition — only erode its
     locality, which is a performance property, not a correctness
     one. *)
  let compute ?(r = 1) g ~shards =
    if shards < 1 then invalid_arg "Ownership.compute: shards must be >= 1";
    if r < 1 then invalid_arg "Ownership.compute: r must be >= 1";
    let n = Nd_graph.Cgraph.n g in
    let shard_of =
      if n = 0 then [||]
      else
        let cov = Nd_nowhere.Cover.compute g ~r in
        Array.map (fun bag -> bag mod shards) cov.Nd_nowhere.Cover.assigned
    in
    { shards; n; shard_of }

  let shards t = t.shards
  let n t = t.n

  let shard_of_vertex t v =
    if v < 0 || v >= t.n then
      invalid_arg (Printf.sprintf "Ownership.shard_of_vertex: %d out of range" v)
    else t.shard_of.(v)

  let shard_of_tuple t tup =
    if Array.length tup = 0 then 0 else shard_of_vertex t tup.(0)

  let owner t ~shard tup =
    if Array.length tup = 0 then shard = 0
    else
      let v = tup.(0) in
      v >= 0 && v < t.n && t.shard_of.(v) = shard
end

(* ---------------- Merge ---------------- *)

module Merge = struct
  (* Pull-driven k-way merge.  Heads are cached between emissions: a
     head strictly above the current bound is still valid, so each
     emission re-pulls only the streams whose head was consumed (or
     duplicated) — about one pull per emitted element for disjoint
     streams.  [pull sh lb] being memoryless given [lb] is what makes
     failover resumption free: the caller may answer a re-pull from a
     different replica. *)
  let merge_pull ~n ~k ~start ~shards ~pull =
    match start with
    | None -> ([], None)
    | Some lb0 ->
        let heads = Array.make shards None in
        let exhausted = Array.make shards false in
        let acc = ref [] in
        let count = ref 0 in
        let lb = ref (Some lb0) in
        let continue = ref true in
        while !continue && !count < k do
          match !lb with
          | None -> continue := false
          | Some l ->
              for sh = 0 to shards - 1 do
                if not exhausted.(sh) then
                  match heads.(sh) with
                  | Some h when Tuple.compare h l >= 0 -> ()
                  | _ -> (
                      match pull sh l with
                      | Some h -> heads.(sh) <- Some h
                      | None ->
                          heads.(sh) <- None;
                          exhausted.(sh) <- true)
              done;
              let best = ref None in
              for sh = 0 to shards - 1 do
                match (heads.(sh), !best) with
                | Some h, None -> best := Some h
                | Some h, Some b when Tuple.compare h b < 0 -> best := Some h
                | _ -> ()
              done;
              (match !best with
              | None ->
                  lb := None;
                  continue := false
              | Some b ->
                  acc := b :: !acc;
                  incr count;
                  (* duplicates across streams are emitted once: every
                     head equal to the winner is consumed *)
                  for sh = 0 to shards - 1 do
                    match heads.(sh) with
                    | Some h when Tuple.equal h b -> heads.(sh) <- None
                    | _ -> ()
                  done;
                  lb := Tuple.succ ~n b;
                  if !lb = None then continue := false)
        done;
        (List.rev !acc, !lb)
end

(* ---------------- Router ---------------- *)

module Router = struct
  module Client = Nd_server.Client

  type conn = {
    transport : Client.transport;
    read_reply : float -> string list option;
    close : unit -> unit;
  }

  type endpoint = {
    ep_shard : int;
    ep_label : string;
    ep_dial : unit -> (conn, string) result;
  }

  let endpoint ~shard ~label dial =
    { ep_shard = shard; ep_label = label; ep_dial = dial }

  (* Buffered fd transport with a read-one-reply primitive.  Channels
     would hide buffered bytes from select, which the handshake's
     resync probe needs; this reader owns its buffer. *)
  let fd_conn fd =
    let buf = Buffer.create 256 in
    let chunk = Bytes.create 4096 in
    let take_line () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> None
      | Some i ->
          Buffer.clear buf;
          Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
          let last = if i > 0 && s.[i - 1] = '\r' then i - 1 else i in
          Some (String.sub s 0 last)
    in
    (* `Line / `Timeout / raises on EOF and hard errors so the caller's
       transport classification fires *)
    let recv_line ~deadline =
      let rec loop () =
        match take_line () with
        | Some l -> `Line l
        | None -> (
            let now = Unix.gettimeofday () in
            if now >= deadline then `Timeout
            else
              match Unix.select [ fd ] [] [] (Float.min 0.5 (deadline -. now)) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
              | [], _, _ -> loop ()
              | _ -> (
                  match Unix.read fd chunk 0 (Bytes.length chunk) with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
                  | 0 -> raise End_of_file
                  | n ->
                      Buffer.add_subbytes buf chunk 0 n;
                      loop ()))
      in
      loop ()
    in
    let is_terminator l = l = "ok" || l = "bye" || starts_with "err " l in
    let read_rest first =
      (* the rest of a started reply gets a generous fixed deadline *)
      let deadline = Unix.gettimeofday () +. 600. in
      let rec go acc =
        let l =
          match recv_line ~deadline with
          | `Line l -> l
          | `Timeout -> raise (Sys_error "reply stalled")
        in
        let acc = l :: acc in
        if is_terminator l then List.rev acc else go acc
      in
      if is_terminator first then [ first ] else go [ first ]
    in
    let send_line s =
      let msg = s ^ "\n" in
      let len = String.length msg in
      let rec go off =
        if off < len then
          match Unix.write_substring fd msg off (len - off) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | n -> go (off + n)
      in
      go 0
    in
    {
      transport =
        (fun req ->
          send_line req;
          match recv_line ~deadline:(Unix.gettimeofday () +. 600.) with
          | `Line l -> read_rest l
          | `Timeout -> raise (Sys_error "reply stalled"));
      read_reply =
        (fun wait ->
          match recv_line ~deadline:(Unix.gettimeofday () +. wait) with
          | `Line l -> Some (read_rest l)
          | `Timeout -> None);
      close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
    }

  let socket_endpoint ?connect ~shard path =
    endpoint ~shard ~label:path (fun () ->
        match Client.connect ?policy:connect path with
        | Error m -> Error m
        | Ok fd -> Ok (fd_conn fd))

  let local_endpoint ~shard ~label srv =
    endpoint ~shard ~label (fun () ->
        let s = Nd_server.session srv in
        Ok
          {
            transport = (fun req -> Nd_server.handle s req);
            read_reply = (fun _ -> None);
            close = ignore;
          })

  type config = {
    fence : bool;
    probe_interval_ms : int;
    retries : int;
    backoff_ms : int;
    jitter : int -> int;
    sleep_ms : int -> unit;
    retry_after_ms : int;
    max_enumerate : int;
    event_log : (string -> unit) option;
  }

  let default_config =
    {
      fence = true;
      probe_interval_ms = 0;
      retries = 1;
      backoff_ms = 20;
      jitter = Backoff.full_jitter ();
      sleep_ms =
        (fun ms ->
          try ignore (Unix.select [] [] [] (float ms /. 1000.))
          with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      retry_after_ms = 100;
      max_enumerate = 1000;
      event_log = None;
    }

  type rstate = Live | Fenced of string

  type replica = {
    r_shard : int;
    r_label : string;
    r_dial : unit -> (conn, string) result;
    mutable r_conn : conn option;
    mutable r_epoch : int;  (* last observed; -1 unknown *)
    mutable r_state : rstate;
    mutable r_checked : int;  (* request serial of the last fence check *)
    mutable r_usable : bool;  (* fence verdict cached under r_checked *)
  }

  type group = { reps : replica array; mutable pref : int }

  (* The journal is the catch-up log: (epoch-after, wire syntax) per
     mutation the router has replicated, newest first, capped — a
     replica lagging past the horizon stays fenced rather than being
     fed a hole. *)
  let journal_cap = 4096

  type shared = {
    own : Ownership.t;
    arity : int;
    cfg : config;
    groups : group array;
    lock : Mutex.t;
    adm : Mutex.t;
    stop : bool ref;
    mutable inflight : int;
    mutable serial : int;
    mutable fleet_epoch : int;  (* -1 until first contact *)
    mutable journal : (int * string) list;
    mutable c_requests : int;
    mutable c_ok : int;
    mutable c_user : int;
    mutable c_unavailable : int;
    mutable c_failovers : int;
    mutable c_fence_refusals : int;
    mutable c_catchups : int;
    mutable c_probes : int;
    pull_hist : Nd_obs.Lhist.t;
  }

  type cursor = Unstarted | At of int array | Exhausted

  type t = { rs : shared; mutable cursor : cursor; mutable quit : bool }

  type stats = {
    requests : int;
    ok : int;
    user_errors : int;
    unavailable : int;
    failovers : int;
    fence_refusals : int;
    catchups : int;
    probes : int;
    fleet_epoch : int;
    live : int;
    fenced : int;
  }

  exception Unavailable of int
  exception Shard_error of string * string

  let create ?(config = default_config) ~ownership ~arity endpoints =
    (* the router writes to upstream sockets whose worker may die at
       any moment; a broken pipe must surface as EPIPE (a transport
       error → failover), never as a fatal signal — and that holds for
       in-process use (tests, the differential harness) too, not just
       for serve_socket *)
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
    if arity < 0 then invalid_arg "Router.create: arity must be >= 0";
    if config.max_enumerate <= 0 then
      invalid_arg "Router.create: max_enumerate must be positive";
    if config.retry_after_ms < 0 then
      invalid_arg "Router.create: retry_after_ms must be >= 0";
    let shards = Ownership.shards ownership in
    List.iter
      (fun ep ->
        if ep.ep_shard < 0 || ep.ep_shard >= shards then
          invalid_arg
            (Printf.sprintf "Router.create: endpoint %s names shard %d of %d"
               ep.ep_label ep.ep_shard shards))
      endpoints;
    let groups =
      Array.init shards (fun sh ->
          let reps =
            List.filter_map
              (fun ep ->
                if ep.ep_shard = sh then
                  Some
                    {
                      r_shard = sh;
                      r_label = ep.ep_label;
                      r_dial = ep.ep_dial;
                      r_conn = None;
                      r_epoch = -1;
                      r_state = Live;
                      r_checked = -1;
                      r_usable = true;
                    }
                else None)
              endpoints
          in
          if reps = [] then
            invalid_arg
              (Printf.sprintf "Router.create: shard %d has no endpoint" sh);
          { reps = Array.of_list reps; pref = 0 })
    in
    {
      rs =
        {
          own = ownership;
          arity;
          cfg = config;
          groups;
          lock = Mutex.create ();
          adm = Mutex.create ();
          stop = ref false;
          inflight = 0;
          serial = 0;
          fleet_epoch = -1;
          journal = [];
          c_requests = 0;
          c_ok = 0;
          c_user = 0;
          c_unavailable = 0;
          c_failovers = 0;
          c_fence_refusals = 0;
          c_catchups = 0;
          c_probes = 0;
          pull_hist =
            Nd_obs.Lhist.create ~name:"nd_router_pull_us"
              ~help:"Per-shard merge-pull latency (microseconds)." ~label:"shard"
              ();
        };
      cursor = Unstarted;
      quit = false;
    }

  let session t = { t with cursor = Unstarted; quit = false }
  let quitting t = t.quit
  let request_stop t = t.rs.stop := true

  (* ---------------- event log ---------------- *)

  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let ev (rs : shared) ?shard ?(span = 0) ~rid ~cmd ~status ~latency_us ~lines
      () =
    match rs.cfg.event_log with
    | None -> ()
    | Some sink ->
        sink
          (Printf.sprintf
             "{\"ts_us\":%d,\"rid\":%d,\"span\":%d,\"cmd\":\"%s\",\"status\":\"%s\",\"latency_us\":%d,\"lines\":%d%s}"
             (Nd_obs.now_us ()) rid span (json_escape cmd) status latency_us
             lines
             (match shard with
             | None -> ""
             | Some s -> Printf.sprintf ",\"shard\":%d" s))

  (* ---------------- replica plumbing ---------------- *)

  let epoch_of_line l =
    match String.split_on_char ' ' l with
    | "epoch" :: n :: _ -> int_of_string_opt n
    | _ -> None

  let parse_epoch_reply = function
    | first :: _ -> epoch_of_line first
    | [] -> None

  let drop_conn rep =
    match rep.r_conn with
    | Some c ->
        rep.r_conn <- None;
        (try c.close () with _ -> ())
    | None -> ()

  let fence (rs : shared) rep reason =
    (match rep.r_state with
    | Fenced _ -> ()
    | Live ->
        ev rs ~shard:rep.r_shard ~rid:0 ~cmd:"(fence)" ~status:"fenced"
          ~latency_us:0 ~lines:0 ());
    rep.r_state <- Fenced reason

  let readmit (rs : shared) rep =
    match rep.r_state with
    | Live -> ()
    | Fenced _ ->
        rep.r_state <- Live;
        ev rs ~shard:rep.r_shard ~rid:0 ~cmd:"(readmit)" ~status:"ok"
          ~latency_us:0 ~lines:0 ()

  (* The connect handshake doubles as the epoch read and as the resync
     against injected garbage: garbage merged into our first line (or
     sent as its own line) makes the worker emit one extra [err user]
     reply; reading the queued true reply — or cleanly resending when
     the lines merged and no reply is pending — restores the
     one-reply-per-request discipline before the connection is used. *)
  let handshake (c : conn) =
    match c.transport "epoch" with
    | exception End_of_file -> Error "eof in handshake"
    | exception Sys_error m -> Error m
    | exception Unix.Unix_error (e, fn, _) ->
        Error (Unix.error_message e ^ " in " ^ fn)
    | r -> (
        match parse_epoch_reply r with
        | Some e -> Ok e
        | None -> (
            match Client.status_of_reply r with
            | Client.Err_reply ("user", _) -> (
                match
                  try `R (c.read_reply 0.3) with
                  | End_of_file -> `T "eof in handshake"
                  | Sys_error m -> `T m
                with
                | `T m -> Error m
                | `R (Some r2) -> (
                    match parse_epoch_reply r2 with
                    | Some e -> Ok e
                    | None -> Error "handshake desync")
                | `R None -> (
                    (* merged-line shape: the garbage swallowed our
                       probe; a clean resend gets a clean reply *)
                    match c.transport "epoch" with
                    | exception End_of_file -> Error "eof in handshake"
                    | exception Sys_error m -> Error m
                    | exception Unix.Unix_error (e, fn, _) ->
                        Error (Unix.error_message e ^ " in " ^ fn)
                    | r3 -> (
                        match parse_epoch_reply r3 with
                        | Some e -> Ok e
                        | None -> Error "handshake desync")))
            | _ -> Error "unexpected handshake reply"))

  let connected rep =
    match rep.r_conn with
    | Some c -> Ok c
    | None -> (
        match rep.r_dial () with
        | Error m -> Error m
        | Ok c -> (
            match handshake c with
            | Ok e ->
                rep.r_epoch <- e;
                rep.r_conn <- Some c;
                Ok c
            | Error m ->
                (try c.close () with _ -> ());
                Error m))

  (* Every upstream call is a [router.call] span, and — when tracing is
     on — the outgoing request is stamped with the router's trace
     context so the worker's [server.request] span becomes its child in
     the merged timeline (DESIGN S17). *)
  let raw_call rep req =
    let verb =
      match String.index_opt req ' ' with
      | None -> req
      | Some i -> String.sub req 0 i
    in
    Nd_trace.with_span "router.call"
      ~attrs:
        [
          ("shard", string_of_int rep.r_shard);
          ("replica", rep.r_label);
          ("verb", verb);
        ]
    @@ fun () ->
    let req =
      if Nd_trace.enabled () then
        Nd_obs.Ctx.stamp req
          {
            Nd_obs.Ctx.trace_id = Nd_trace.trace_id ();
            span = Nd_trace.current_span_id ();
          }
      else req
    in
    match connected rep with
    | Error m -> `Transport m
    | Ok c -> (
        match c.transport req with
        | exception End_of_file ->
            drop_conn rep;
            `Transport "eof"
        | exception Sys_error m ->
            drop_conn rep;
            `Transport m
        | exception Unix.Unix_error (e, fn, _) ->
            drop_conn rep;
            `Transport (Unix.error_message e ^ " in " ^ fn)
        | reply -> (
            match Client.status_of_reply reply with
            | Client.Transport_error m ->
                drop_conn rep;
                `Transport m
            | st -> `Reply (reply, st)))

  let body lines =
    match List.rev lines with _terminator :: rev -> List.rev rev | [] -> []

  (* strip the shard's own rid=/span= join keys off a relayed error
     message: the router re-stamps its own *)
  let strip_keys msg =
    let rec go = function
      | tok :: rest
        when starts_with "rid=" tok || starts_with "span=" tok ->
          go rest
      | toks -> String.concat " " toks
    in
    go (String.split_on_char ' ' msg)

  let update_reply_epoch lines =
    match lines with first :: _ -> epoch_of_line first | [] -> None

  (* journal-suffix replay: exact by epoch arithmetic — the replica's
     probed epoch says precisely how many entries it is missing, so a
     transport-ambiguous mutation is never double-applied *)
  let catch_up (rs : shared) rep =
    if rs.fleet_epoch < 0 || rep.r_epoch < 0 then false
    else
      let missing =
        List.rev (List.filter (fun (e, _) -> e > rep.r_epoch) rs.journal)
      in
      let len = List.length missing in
      let contiguous =
        len > 0
        && rep.r_epoch + len = rs.fleet_epoch
        && fst (List.hd missing) = rep.r_epoch + 1
      in
      if not contiguous then false
      else
        Nd_trace.with_span "router.catchup"
          ~attrs:
            [
              ("shard", string_of_int rep.r_shard);
              ("entries", string_of_int len);
            ]
        @@ fun () ->
        let wire = String.concat ";" (List.map snd missing) in
        match raw_call rep ("batch-update " ^ wire) with
        | `Reply (r, Client.Ok_reply) -> (
            match update_reply_epoch (body r) with
            | Some e when e = rs.fleet_epoch ->
                rep.r_epoch <- e;
                rs.c_catchups <- rs.c_catchups + 1;
                Metrics.incr m_catchups;
                ev rs ~shard:rep.r_shard ~rid:0 ~cmd:"(catchup)" ~status:"ok"
                  ~latency_us:0 ~lines:len ();
                readmit rs rep;
                true
            | _ -> false)
        | _ -> false

  (* First contact: learn every reachable replica's epoch and adopt the
     maximum as the fleet epoch.  Run as its own round before any merge
     so adoption can never change the fence mid-request. *)
  let init_fleet (rs : shared) =
    let best = ref (-1) in
    Array.iter
      (fun g ->
        Array.iter
          (fun rep ->
            match connected rep with
            | Ok _ -> if rep.r_epoch > !best then best := rep.r_epoch
            | Error _ -> ())
          g.reps)
      rs.groups;
    if !best >= 0 then rs.fleet_epoch <- !best

  (* The fence: one epoch probe per replica per request (requests are
     serialized under the router lock, so the fleet epoch cannot move
     under a request).  [`Usable] is the only verdict that lets a
     replica contribute to a merge. *)
  let fence_check (rs : shared) rep =
    if not rs.cfg.fence then `Usable
    else begin
      if rs.fleet_epoch < 0 then init_fleet rs;
      if rep.r_checked = rs.serial then
        if rep.r_usable then `Usable else `Refused "fenced this request"
      else begin
        rep.r_checked <- rs.serial;
        rep.r_usable <- false;
        match raw_call rep "epoch" with
        | `Transport m -> `Transport m
        | `Reply (r, _) -> (
            match parse_epoch_reply r with
            | None -> `Refused "unparseable epoch reply"
            | Some e ->
                rep.r_epoch <- e;
                if rs.fleet_epoch < 0 then rs.fleet_epoch <- e;
                if e = rs.fleet_epoch then begin
                  readmit rs rep;
                  rep.r_usable <- true;
                  `Usable
                end
                else begin
                  rs.c_fence_refusals <- rs.c_fence_refusals + 1;
                  Metrics.incr m_fence_refusals;
                  if e < rs.fleet_epoch then begin
                    fence rs rep
                      (Printf.sprintf "lagging: epoch %d < fleet %d" e
                         rs.fleet_epoch);
                    if catch_up rs rep then begin
                      rep.r_usable <- true;
                      `Usable
                    end
                    else `Refused "lagging behind fleet epoch"
                  end
                  else begin
                    (* mutated behind the router's back; no safe way to
                       roll it back — permanent fence *)
                    fence rs rep
                      (Printf.sprintf "ahead of fleet: epoch %d > %d" e
                         rs.fleet_epoch);
                    `Refused "ahead of fleet epoch"
                  end
                end)
      end
    end

  let use_replica (rs : shared) rep req =
    match fence_check rs rep with
    | `Refused r -> `Refused r
    | `Transport m ->
        fence rs rep ("transport: " ^ m);
        `Transport m
    | `Usable -> (
        match raw_call rep req with
        | `Transport m ->
            fence rs rep ("transport: " ^ m);
            `Transport m
        | `Reply (r, st) ->
            if not rs.cfg.fence then readmit rs rep;
            `Reply (r, st))

  (* The failover ladder: replicas in rotation order starting from the
     last one that worked, fenced ones last (they get a revival chance
     through [fence_check] once the live ones are exhausted).  Transport
     failures move on immediately; [err overloaded] sleeps the
     advertised floor (jittered) first; deterministic verdicts pass
     through.  The ladder runs [1 + retries] passes, then the group is
     declared unavailable. *)
  let group_call (rs : shared) sh req =
    let g = rs.groups.(sh) in
    let nreps = Array.length g.reps in
    let order =
      let rot = Array.init nreps (fun i -> (g.pref + i) mod nreps) in
      let live, fenced =
        Array.fold_right
          (fun i (l, f) ->
            match g.reps.(i).r_state with
            | Live -> (i :: l, f)
            | Fenced _ -> (l, i :: f))
          rot ([], [])
      in
      Array.of_list (live @ fenced)
    in
    let sched = Backoff.schedule ~max_ms:1_000 rs.cfg.backoff_ms in
    let total = nreps * (1 + rs.cfg.retries) in
    let rec go attempt =
      if attempt > total then begin
        rs.c_unavailable <- rs.c_unavailable + 1;
        Metrics.incr m_unavailable;
        raise (Unavailable sh)
      end
      else begin
        let idx = order.((attempt - 1) mod nreps) in
        let rep = g.reps.(idx) in
        let wrap = attempt mod nreps = 0 in
        let move ~slept =
          if wrap && not slept then
            rs.cfg.sleep_ms
              (Backoff.delay_ms ~jitter:rs.cfg.jitter sched
                 ~attempt:(attempt / nreps));
          go (attempt + 1)
        in
        match use_replica rs rep req with
        | `Refused _ -> go (attempt + 1)
        | `Transport _ ->
            rs.c_failovers <- rs.c_failovers + 1;
            Metrics.incr m_failovers;
            ev rs ~shard:sh ~rid:0 ~cmd:"(failover)" ~status:"transport"
              ~latency_us:0 ~lines:0 ();
            move ~slept:false
        | `Reply (lines, st) -> (
            match st with
            | Client.Ok_reply ->
                g.pref <- idx;
                body lines
            | Client.Err_reply ("overloaded", msg) ->
                rs.cfg.sleep_ms
                  (Backoff.delay_after_ms ~jitter:rs.cfg.jitter
                     ~at_least_ms:(Client.retry_after_of_msg msg)
                     sched
                     ~attempt:(1 + ((attempt - 1) / nreps)));
                move ~slept:true
            | Client.Err_reply ("shutting-down", _) | Client.Closed ->
                (* the replica is draining (or ended the session): its
                   sibling should answer *)
                drop_conn rep;
                rs.c_failovers <- rs.c_failovers + 1;
                Metrics.incr m_failovers;
                ev rs ~shard:sh ~rid:0 ~cmd:"(failover)" ~status:"transport"
                  ~latency_us:0 ~lines:0 ();
                move ~slept:false
            | Client.Err_reply (cls, msg) ->
                (* user/budget/internal: a deterministic verdict — the
                   same graph gives the same answer everywhere *)
                raise (Shard_error (cls, strip_keys msg))
            | Client.Transport_error _ -> assert false)
      end
    in
    go 1

  (* ---------------- verbs ---------------- *)

  let group_next t sh lb =
    let t0 = Unix.gettimeofday () in
    let reply = group_call t.rs sh ("next " ^ fmt_tuple lb) in
    Nd_obs.Lhist.observe t.rs.pull_hist ~label:(string_of_int sh)
      (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
    match reply with
    | [ one ] when one = "none" -> None
    | [ one ] when starts_with "sol " one ->
        Some (parse_tuple (String.sub one 4 (String.length one - 4)))
    | other ->
        Nd_error.invariantf "shard %d: bad next reply %S" sh
          (String.concat "/" other)

  let fan_next t tup =
    let rs = t.rs in
    let best = ref None in
    for sh = 0 to Ownership.shards rs.own - 1 do
      match group_next t sh tup with
      | None -> ()
      | Some sol -> (
          match !best with
          | None -> best := Some sol
          | Some b -> if Tuple.compare sol b < 0 then best := Some sol)
    done;
    !best

  let page t k =
    let rs = t.rs in
    let arity = rs.arity in
    let n = Ownership.n rs.own in
    let start =
      match t.cursor with
      | Exhausted -> None
      | At a -> Some a
      | Unstarted -> if arity > 0 && n = 0 then None else Some (Tuple.min arity)
    in
    let sols, next =
      Merge.merge_pull ~n ~k ~start
        ~shards:(Ownership.shards rs.own)
        ~pull:(fun sh lb -> group_next t sh lb)
    in
    t.cursor <- (match next with Some a -> At a | None -> Exhausted);
    (sols, next = None)

  let cmd_enumerate t arg =
    let k =
      if arg = "" then t.rs.cfg.max_enumerate
      else
        match int_of_string_opt arg with
        | Some k when k > 0 -> min k t.rs.cfg.max_enumerate
        | _ -> Nd_error.user_errorf "enumerate: bad page size %S" arg
    in
    let sols, exhausted = page t k in
    List.map (fun s -> "sol " ^ fmt_tuple s) sols
    @ [
        Printf.sprintf "end %d%s" (List.length sols)
          (if exhausted then " complete" else "");
      ]

  (* Replication: leader-first.  The mutation list is validated locally,
     then offered to replicas in order; the first acceptance is the
     leader's and fixes the new fleet epoch, after which the fan-out to
     the rest is best-effort — a replica that misses it is fenced by its
     next epoch probe and caught up from the journal.  A deterministic
     rejection before any acceptance aborts with nothing applied
     anywhere (engine mutations validate before applying, so a replica
     that died mid-call can only have applied a *valid* mutation, which
     epoch arithmetic reconciles — see {!catch_up}). *)
  let cmd_update t line muts =
    let rs = t.rs in
    let k = List.length muts in
    let wires = List.map Nd_graph.Cgraph.mutation_to_string muts in
    let leader = ref None in
    let failed_groups = ref [] in
    Array.iteri
      (fun sh g ->
        let applied_here = ref false in
        Array.iter
          (fun rep ->
            match use_replica rs rep line with
            | `Reply (r, Client.Ok_reply) ->
                applied_here := true;
                (match update_reply_epoch (body r) with
                | Some e -> rep.r_epoch <- e
                | None -> ());
                if !leader = None then leader := Some (body r)
            | `Reply (_, Client.Err_reply (cls, msg)) ->
                if !leader = None then raise (Shard_error (cls, strip_keys msg))
                else
                  (* post-acceptance divergence: the same mutation was
                     rejected here but applied elsewhere — never trust
                     this replica again without a catch-up *)
                  fence rs rep ("rejected replicated mutation: " ^ cls)
            | `Reply (_, _) | `Refused _ -> ()
            | `Transport _ ->
                rs.c_failovers <- rs.c_failovers + 1;
                Metrics.incr m_failovers)
          g.reps;
        if not !applied_here then failed_groups := sh :: !failed_groups)
      rs.groups;
    match !leader with
    | None ->
        rs.c_unavailable <- rs.c_unavailable + 1;
        Metrics.incr m_unavailable;
        raise (Unavailable (match !failed_groups with s :: _ -> s | [] -> 0))
    | Some reply_body ->
        let new_fleet =
          match update_reply_epoch reply_body with
          | Some e -> e
          | None -> Nd_error.invariantf "unparseable update reply from leader"
        in
        let base = new_fleet - k in
        List.iteri
          (fun i wire ->
            rs.journal <- (base + i + 1, wire) :: rs.journal)
          wires;
        (match
           List.filteri (fun i _ -> i < journal_cap) rs.journal
         with
        | capped -> rs.journal <- capped);
        rs.fleet_epoch <- new_fleet;
        t.cursor <- Unstarted;
        reply_body

  let parse_muts verb arg =
    if String.trim arg = "" then
      Nd_error.user_errorf "%s: missing mutation" verb
    else
      let muts =
        List.filter_map
          (fun s ->
            let s = String.trim s in
            if s = "" then None else Some (Nd_graph.Cgraph.mutation_of_string s))
          (String.split_on_char ';' arg)
      in
      if muts = [] then Nd_error.user_errorf "%s: no mutations given" verb
      else muts

  let live_fenced (rs : shared) =
    let live = ref 0 and fenced = ref 0 in
    Array.iter
      (fun g ->
        Array.iter
          (fun rep ->
            match rep.r_state with
            | Live -> incr live
            | Fenced _ -> incr fenced)
          g.reps)
      rs.groups;
    (!live, !fenced)

  let stats t =
    let rs = t.rs in
    let live, fenced = live_fenced rs in
    {
      requests = rs.c_requests;
      ok = rs.c_ok;
      user_errors = rs.c_user;
      unavailable = rs.c_unavailable;
      failovers = rs.c_failovers;
      fence_refusals = rs.c_fence_refusals;
      catchups = rs.c_catchups;
      probes = rs.c_probes;
      fleet_epoch = rs.fleet_epoch;
      live;
      fenced;
    }

  let stats_json t =
    let s = stats t in
    Printf.sprintf
      "{\"schema\":\"nd-router-stats/1\",\"requests\":%d,\"ok\":%d,\"user_errors\":%d,\"unavailable\":%d,\"failovers\":%d,\"fence_refusals\":%d,\"catchups\":%d,\"probes\":%d,\"fleet_epoch\":%d,\"live\":%d,\"fenced\":%d}"
      s.requests s.ok s.user_errors s.unavailable s.failovers s.fence_refusals
      s.catchups s.probes s.fleet_epoch s.live s.fenced

  let cmd_health t =
    let rs = t.rs in
    let s = stats t in
    [
      Printf.sprintf
        "health ok shards=%d replicas=%d live=%d fenced=%d epoch=%d \
         requests=%d ok=%d user=%d unavailable=%d failovers=%d \
         fence_refusals=%d catchups=%d probes=%d"
        (Array.length rs.groups)
        (Array.fold_left (fun acc g -> acc + Array.length g.reps) 0 rs.groups)
        s.live s.fenced s.fleet_epoch s.requests s.ok s.user_errors
        s.unavailable s.failovers s.fence_refusals s.catchups s.probes;
    ]

  let replica_states t =
    let acc = ref [] in
    Array.iter
      (fun g ->
        Array.iter
          (fun rep ->
            let state =
              match rep.r_state with
              | Live -> "live"
              | Fenced reason -> "fenced: " ^ reason
            in
            acc := (rep.r_shard, rep.r_label, state) :: !acc)
          g.reps)
      t.rs.groups;
    List.rev !acc

  (* One merged exposition for the whole fleet: the router's own
     process metrics, the fleet-derived gauges, the per-shard pull
     histogram, and every live replica's scrape re-labelled with its
     shard/replica identity.  Fenced replicas are skipped (their staleness
     is already visible through [nd_fleet_fenced_replicas]); a replica
     whose scrape fails transport-wise is silently omitted — the scrape
     must never take the fleet down. *)
  let scrape_metrics_locked t =
    let rs = t.rs in
    let live, fenced = live_fenced rs in
    let gauges =
      [
        Nd_obs.Prom.gauge ~name:"nd_fleet_epoch"
          ~help:"Fleet epoch adopted by the router (-1 before first contact)."
          rs.fleet_epoch;
        Nd_obs.Prom.gauge ~name:"nd_fleet_live_replicas"
          ~help:"Replicas currently admitted to merges." live;
        Nd_obs.Prom.gauge ~name:"nd_fleet_fenced_replicas"
          ~help:"Replicas currently fenced." fenced;
      ]
    in
    let hist = Nd_obs.Lhist.render rs.pull_hist in
    let shards = ref [] in
    Array.iter
      (fun g ->
        Array.iteri
          (fun idx rep ->
            match rep.r_state with
            | Fenced _ -> ()
            | Live -> (
                match raw_call rep "metrics" with
                | `Reply (r, Client.Ok_reply) ->
                    shards :=
                      Nd_obs.Prom.relabel
                        ~labels:
                          [
                            ("shard", string_of_int rep.r_shard);
                            ("replica", string_of_int idx);
                          ]
                        (String.concat "\n" (body r))
                      :: !shards
                | `Reply _ | `Transport _ -> ()))
          g.reps)
      rs.groups;
    Nd_obs.Prom.merge
      ((Nd_trace.Prometheus.render_current () :: gauges)
      @ (if hist = "" then [] else [ hist ])
      @ List.rev !shards)

  let scrape_metrics t =
    Mutex.protect t.rs.lock (fun () -> scrape_metrics_locked t)

  let split_command line =
    match String.index_opt line ' ' with
    | None -> (line, "")
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

  let dispatch t line =
    let rs = t.rs in
    let cmd, arg = split_command line in
    match cmd with
    | "quit" ->
        t.quit <- true;
        `Bye
    | "next" ->
        let tup = parse_tuple arg in
        `Ok
          [
            (match fan_next t tup with
            | Some sol -> "sol " ^ fmt_tuple sol
            | None -> "none");
          ]
    | "test" ->
        let tup = parse_tuple arg in
        let sh = Ownership.shard_of_tuple rs.own tup in
        `Ok (group_call rs sh ("test " ^ fmt_tuple tup))
    | "enumerate" -> `Ok (cmd_enumerate t arg)
    | "update" -> `Ok (cmd_update t line (parse_muts "update" arg))
    | "batch-update" -> `Ok (cmd_update t line (parse_muts "batch-update" arg))
    | "epoch" ->
        if rs.fleet_epoch < 0 then init_fleet rs;
        if rs.fleet_epoch < 0 then begin
          rs.c_unavailable <- rs.c_unavailable + 1;
          Metrics.incr m_unavailable;
          raise (Unavailable 0)
        end
        else `Ok [ Printf.sprintf "epoch %d" rs.fleet_epoch ]
    | "reset" ->
        t.cursor <- Unstarted;
        `Ok []
    | "stats" -> `Ok [ stats_json t ]
    | "metrics" ->
        `Ok
          (List.filter
             (fun l -> l <> "")
             (String.split_on_char '\n' (scrape_metrics_locked t)))
    | "health" -> `Ok (cmd_health t)
    | _ ->
        Nd_error.user_errorf
          "unknown command %S (try next/test/enumerate/update/batch-update/epoch/reset/stats/metrics/health/quit)"
          cmd

  let handle t line =
    let rs = t.rs in
    let line = String.trim line in
    if line = "" then []
    else begin
      let base, ctx = Nd_obs.Ctx.split_line line in
      let cmd, _ = split_command base in
      let t0 = Unix.gettimeofday () in
      let rid, stopped =
        Mutex.protect rs.adm (fun () ->
            rs.c_requests <- rs.c_requests + 1;
            Metrics.incr m_requests;
            if !(rs.stop) then (rs.c_requests, true)
            else begin
              rs.inflight <- rs.inflight + 1;
              (rs.c_requests, false)
            end)
      in
      if stopped then begin
        let reply =
          [
            Printf.sprintf "err shutting-down rid=%d span=0 router is draining"
              rid;
          ]
        in
        ev rs ~rid ~cmd ~status:"shutting-down" ~latency_us:0 ~lines:1 ();
        reply
      end
      else
        Fun.protect
          ~finally:(fun () ->
            Mutex.protect rs.adm (fun () -> rs.inflight <- rs.inflight - 1))
        @@ fun () ->
        Mutex.protect rs.lock
        @@ fun () ->
        rs.serial <- rs.serial + 1;
        let status = ref "ok" in
        let shard_attr = ref None in
        let span = ref 0 in
        let err cls m =
          status := cls;
          Printf.sprintf "err %s rid=%d span=%d %s" cls rid !span m
        in
        let ctx_attrs =
          match ctx with Some (Ok c) -> Nd_obs.Ctx.attrs c | _ -> []
        in
        let reply =
          Nd_trace.with_span "router.request"
            ~attrs:(("rid", string_of_int rid) :: ("cmd", cmd) :: ctx_attrs)
          @@ fun () ->
          span := Nd_trace.current_span_id ();
          match
            (match ctx with
            | Some (Error m) ->
                Nd_error.user_errorf "bad trace= attribute: %s" m
            | _ -> ());
            dispatch t base
          with
          | `Ok lines ->
              rs.c_ok <- rs.c_ok + 1;
              Metrics.incr m_ok;
              lines @ [ "ok" ]
          | `Bye ->
              status := "bye";
              [ "bye" ]
          | exception Unavailable sh ->
              shard_attr := Some sh;
              [
                err "unavailable"
                  (Printf.sprintf
                     "shard=%d retry-after-ms=%d no live replica at fleet \
                      epoch"
                     sh rs.cfg.retry_after_ms);
              ]
          | exception Shard_error (cls, msg) ->
              (match cls with
              | "user" ->
                  rs.c_user <- rs.c_user + 1;
                  Metrics.incr m_err_user
              | _ -> ());
              [ err cls msg ]
          | exception (Nd_error.User_error m | Invalid_argument m | Failure m)
            ->
              rs.c_user <- rs.c_user + 1;
              Metrics.incr m_err_user;
              [ err "user" m ]
          | exception Nd_error.Internal_invariant m -> [ err "internal" m ]
          | exception e ->
              [ err "internal" ("uncaught exception: " ^ Printexc.to_string e) ]
        in
        let latency_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
        Metrics.observe h_latency latency_us;
        ev rs ?shard:!shard_attr ~span:!span ~rid ~cmd ~status:!status
          ~latency_us ~lines:(List.length reply) ();
        reply
    end

  (* ---------------- probing ---------------- *)

  let health_tokens line =
    List.fold_left
      (fun (e, m) tok ->
        if starts_with "epoch=" tok then
          (int_of_string_opt (String.sub tok 6 (String.length tok - 6)), m)
        else if starts_with "mode=" tok then
          (e, Some (String.sub tok 5 (String.length tok - 5)))
        else (e, m))
      (None, None)
      (String.split_on_char ' ' line)

  let probe_locked (rs : shared) =
    Nd_trace.with_span "router.probe" @@ fun () ->
    rs.serial <- rs.serial + 1;
    if rs.cfg.fence && rs.fleet_epoch < 0 then init_fleet rs;
    Array.iter
      (fun g ->
        Array.iter
          (fun rep ->
            rs.c_probes <- rs.c_probes + 1;
            Metrics.incr m_probes;
            match raw_call rep "health" with
            | `Transport m -> fence rs rep ("transport: " ^ m)
            | `Reply (r, Client.Ok_reply) -> (
                let epoch, _mode =
                  match body r with
                  | first :: _ -> health_tokens first
                  | [] -> (None, None)
                in
                match epoch with
                | None -> fence rs rep "health reply without epoch"
                | Some e ->
                    rep.r_epoch <- e;
                    if not rs.cfg.fence then readmit rs rep
                    else if rs.fleet_epoch < 0 then rs.fleet_epoch <- e;
                    if rs.cfg.fence then
                      if e = rs.fleet_epoch then readmit rs rep
                      else if e < rs.fleet_epoch then begin
                        fence rs rep
                          (Printf.sprintf "lagging: epoch %d < fleet %d" e
                             rs.fleet_epoch);
                        ignore (catch_up rs rep)
                      end
                      else
                        fence rs rep
                          (Printf.sprintf "ahead of fleet: epoch %d > %d" e
                             rs.fleet_epoch))
            | `Reply _ -> fence rs rep "unhealthy reply to probe")
          g.reps)
      rs.groups

  let probe t = Mutex.protect t.rs.lock (fun () -> probe_locked t.rs)

  let start_probes t =
    let rs = t.rs in
    if rs.cfg.probe_interval_ms <= 0 then None
    else
      Some
        (Thread.create
           (fun () ->
             let slice = 0.05 in
             let rec sleep_until dl =
               if (not !(rs.stop)) && Unix.gettimeofday () < dl then begin
                 (try ignore (Unix.select [] [] [] slice)
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                 sleep_until dl
               end
             in
             let rec loop () =
               if !(rs.stop) then ()
               else begin
                 sleep_until
                   (Unix.gettimeofday ()
                   +. (float_of_int rs.cfg.probe_interval_ms /. 1000.));
                 if not !(rs.stop) then begin
                   (try probe t with _ -> ());
                   loop ()
                 end
               end
             in
             loop ())
           ())

  (* ---------------- drain / serving ---------------- *)

  let drain ?(timeout_ms = 5_000) t =
    let rs = t.rs in
    let dl = Unix.gettimeofday () +. (float_of_int timeout_ms /. 1000.) in
    let rec wait () =
      let idle = Mutex.protect rs.adm (fun () -> rs.inflight = 0) in
      if idle then true
      else if Unix.gettimeofday () >= dl then false
      else begin
        (try ignore (Unix.select [] [] [] 0.01)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        wait ()
      end
    in
    wait ()

  let serve t ic oc =
    let emit lines =
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      flush oc
    in
    let rec loop () =
      if !(t.rs.stop) then emit [ "bye" ]
      else
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            emit (handle t line);
            if t.quit then ()
            else if !(t.rs.stop) then emit [ "bye" ]
            else loop ()
    in
    loop ()

  let serve_socket ?(backlog = 64) t ~path =
    if backlog < 1 then
      invalid_arg "Router.serve_socket: backlog must be >= 1";
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
    (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    @@ fun () ->
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock backlog;
    let reg_m = Mutex.create () in
    let live_fds = ref [] in
    let threads = ref [] in
    let conn fd =
      let s = session t in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try serve s ic oc with Sys_error _ | End_of_file -> ());
      Mutex.protect reg_m (fun () ->
          live_fds := List.filter (fun fd' -> fd' != fd) !live_fds);
      try Unix.close fd with Unix.Unix_error _ -> ()
    in
    let rec accept_loop () =
      if !(t.rs.stop) then ()
      else
        match Unix.select [ sock ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | [], _, _ -> accept_loop ()
        | _ ->
            (match Unix.accept sock with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | fd, _ ->
                Mutex.protect reg_m (fun () -> live_fds := fd :: !live_fds);
                threads := Thread.create conn fd :: !threads);
            accept_loop ()
    in
    accept_loop ();
    (* quiesce in-flight merges before unblocking the readers *)
    ignore (drain t);
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      (Mutex.protect reg_m (fun () -> !live_fds));
    List.iter Thread.join !threads
end
