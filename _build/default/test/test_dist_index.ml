(* Proposition 4.2: the distance index answers dist(a,b) ≤ r exactly. *)

open Nd_graph

let exhaustive name g r =
  let idx = Nd_core.Dist_index.build g ~r in
  let n = Cgraph.n g in
  for a = 0 to n - 1 do
    let d = Bfs.dist_upto g a ~radius:r in
    for b = 0 to n - 1 do
      if (d.(b) >= 0) <> Nd_core.Dist_index.test idx a b then
        Alcotest.failf "%s r=%d: mismatch at (%d,%d)" name r a b
    done
  done

let test_families () =
  List.iter
    (fun (name, g, r) -> exhaustive name g r)
    [
      ("grid", Gen.grid 12 12, 2);
      ("grid-r4", Gen.grid 10 10, 4);
      ("tree", Gen.random_tree ~seed:1 150, 3);
      ("bdeg", Gen.bounded_degree ~seed:1 120 ~max_degree:4, 2);
      ("subdiv", Gen.subdivided_clique ~q:5 ~sub:5, 3);
      ("clique", Gen.complete 40, 2);
      ("star", Gen.star 50, 2);
      ("caterpillar", Gen.caterpillar ~seed:2 100, 3);
      ("disconnected", Gen.disjoint_union (Gen.path 30) (Gen.cycle 30), 5);
    ]

let test_r_zero_and_one () =
  let g = Gen.cycle 10 in
  let idx0 = Nd_core.Dist_index.build g ~r:0 in
  Alcotest.(check bool) "r=0 self" true (Nd_core.Dist_index.test idx0 3 3);
  Alcotest.(check bool) "r=0 neighbor" false (Nd_core.Dist_index.test idx0 3 4);
  let idx1 = Nd_core.Dist_index.build g ~r:1 in
  Alcotest.(check bool) "r=1 neighbor" true (Nd_core.Dist_index.test idx1 3 4);
  Alcotest.(check bool) "r=1 wrap" true (Nd_core.Dist_index.test idx1 0 9);
  Alcotest.(check bool) "r=1 far" false (Nd_core.Dist_index.test idx1 0 5)

let test_forces_recursion () =
  (* tiny base threshold forces several λ-levels; correctness must hold *)
  let g = Gen.grid 14 14 in
  let idx = Nd_core.Dist_index.build ~base_threshold:8 g ~r:2 in
  let s = Nd_core.Dist_index.stats idx in
  Alcotest.(check bool) "recursed" true (s.Nd_core.Dist_index.levels >= 1);
  let n = Cgraph.n g in
  for a = 0 to n - 1 do
    let d = Bfs.dist_upto g a ~radius:2 in
    for b = 0 to n - 1 do
      if (d.(b) >= 0) <> Nd_core.Dist_index.test idx a b then
        Alcotest.failf "deep recursion mismatch at (%d,%d)" a b
    done
  done

let test_budget_fallback () =
  (* depth budget 0 degenerates into the all-pairs table; still exact *)
  let g = Gen.grid 18 18 in
  let idx = Nd_core.Dist_index.build ~base_threshold:8 ~depth_budget:0 g ~r:3 in
  let s = Nd_core.Dist_index.stats idx in
  Alcotest.(check bool) "budget hit" true (s.Nd_core.Dist_index.budget_hits >= 1);
  let n = Cgraph.n g in
  for a = 0 to n - 1 do
    let d = Bfs.dist_upto g a ~radius:3 in
    for b = 0 to n - 1 do
      if (d.(b) >= 0) <> Nd_core.Dist_index.test idx a b then
        Alcotest.failf "budget fallback mismatch at (%d,%d)" a b
    done
  done

let prop_random_graphs =
  QCheck.Test.make ~name:"dist index on random sparse graphs" ~count:25
    QCheck.(triple (int_bound 10000) (int_range 10 60) (int_range 1 4))
    (fun (seed, n, r) ->
      let g = Gen.bounded_degree ~seed n ~max_degree:3 in
      let idx = Nd_core.Dist_index.build g ~r in
      let ok = ref true in
      for a = 0 to n - 1 do
        let d = Bfs.dist_upto g a ~radius:r in
        for b = 0 to n - 1 do
          if (d.(b) >= 0) <> Nd_core.Dist_index.test idx a b then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "exact on all families" `Slow test_families;
    Alcotest.test_case "radius 0 and 1" `Quick test_r_zero_and_one;
    Alcotest.test_case "deep λ-recursion" `Slow test_forces_recursion;
    Alcotest.test_case "depth-budget fallback" `Quick test_budget_fallback;
    QCheck_alcotest.to_alcotest prop_random_graphs;
  ]
