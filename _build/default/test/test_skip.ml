(* Lemma 5.8: SKIP pointers agree with the brute-force definition. *)

open Nd_graph
open Nd_nowhere

let build_env seed n =
  let g = Gen.bounded_degree ~seed n ~max_degree:4 in
  let cover = Cover.compute g ~r:2 in
  let kernels =
    Array.map (fun bag -> Kernel.compute g ~bag ~p:2) cover.Cover.bags
  in
  let kernels_of v =
    List.filter
      (fun x -> Nd_util.Sorted.mem kernels.(x) v)
      (Array.to_list cover.Cover.bags_of.(v))
  in
  let rng = Random.State.make [| seed; 77 |] in
  let l =
    Nd_util.Sorted.of_list
      (List.filter (fun _ -> Random.State.bool rng) (List.init n Fun.id))
  in
  let t = Nd_core.Skip.build ~kernels ~kernels_of ~l ~n ~k:3 in
  (g, cover, t, rng)

let test_differential () =
  List.iter
    (fun seed ->
      let n = 120 in
      let g, cover, t, rng = build_env seed n in
      ignore g;
      let nbags = Array.length cover.Cover.bags in
      for _ = 1 to 400 do
        let b = Random.State.int rng n in
        let bags =
          List.init
            (Random.State.int rng 4)
            (fun _ -> Random.State.int rng nbags)
        in
        let fast = Nd_core.Skip.skip t ~b ~bags in
        let slow = Nd_core.Skip.skip_naive t ~b ~bags in
        if fast <> slow then
          Alcotest.failf "seed %d: SKIP(%d,{%s}) fast=%s slow=%s" seed b
            (String.concat "," (List.map string_of_int bags))
            (match fast with Some v -> string_of_int v | None -> "∅")
            (match slow with Some v -> string_of_int v | None -> "∅")
      done)
    [ 1; 2; 3 ]

let test_empty_bagset () =
  let _, _, t, _ = build_env 9 60 in
  (* with no bags, SKIP(b, ∅) is just the next label ≥ b *)
  for b = 0 to 59 do
    if Nd_core.Skip.skip t ~b ~bags:[] <> Nd_core.Skip.skip_naive t ~b ~bags:[]
    then Alcotest.failf "empty bag set mismatch at %d" b
  done

let test_empty_label_set () =
  let n = 30 in
  let g = Gen.path n in
  let cover = Cover.compute g ~r:1 in
  let kernels =
    Array.map (fun bag -> Kernel.compute g ~bag ~p:1) cover.Cover.bags
  in
  let kernels_of v =
    List.filter
      (fun x -> Nd_util.Sorted.mem kernels.(x) v)
      (Array.to_list cover.Cover.bags_of.(v))
  in
  let t = Nd_core.Skip.build ~kernels ~kernels_of ~l:[||] ~n ~k:2 in
  Alcotest.(check bool) "always none" true
    (List.for_all
       (fun b -> Nd_core.Skip.skip t ~b ~bags:[ 0 ] = None)
       [ 0; 10; 29 ])

let test_sc_bounded () =
  let _, _, t, _ = build_env 5 200 in
  (* pseudo-constant SC sets on a sparse graph: far below the
     combinatorial worst case (every subset of bags at every vertex) *)
  Alcotest.(check bool) "max |SC(b)| small" true (Nd_core.Skip.max_sc t <= 128);
  Alcotest.(check bool) "table near-linear" true
    (Nd_core.Skip.table_size t <= 128 * 200)

let suite =
  [
    Alcotest.test_case "fast = naive on random queries" `Quick test_differential;
    Alcotest.test_case "empty bag set" `Quick test_empty_bagset;
    Alcotest.test_case "empty label set" `Quick test_empty_label_set;
    Alcotest.test_case "SC sets stay small" `Quick test_sc_bounded;
  ]
