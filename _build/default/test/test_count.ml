(* Counting (the Grohe–Schweikardt companion result): the exact
   pseudo-linear counter must agree with full enumeration and with the
   naive evaluator. *)

open Nd_graph
open Nd_logic
module C = Nd_core.Count

let binary_queries =
  [
    "dist(x,y) <= 2";
    "E(x,y)";
    "dist(x,y) > 2 & C1(y)";
    "C0(x) & dist(x,y) > 1 & C1(y)";
    "exists z. E(x,z) & E(z,y)";
    "E(x,y) | (C0(x) & C1(y))";
    "C0(x) & C1(y)";
    "(dist(x,y) > 2 & C0(x)) | (dist(x,y) > 2 & C1(y))";
  ]

let unary_queries =
  [ "C0(x)"; "exists y. E(x,y) & C1(y)"; "forall y. dist(x,y) > 1 | C0(y)" ]

let check g =
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun q ->
      let phi = Parse.formula q in
      let expected =
        Nd_eval.Naive.count ctx ~vars:(Fo.free_vars phi) phi
      in
      let r = C.count g phi in
      if r.C.count <> expected then
        Alcotest.failf "%s: counted %d, naive %d" q r.C.count expected;
      (* compiled binary/unary queries must use the pseudo-linear path *)
      if r.C.method_ <> C.Exact_pseudolinear then
        Alcotest.failf "%s: expected the exact counting path" q)
    (binary_queries @ unary_queries)

let test_grid () = check (Gen.randomly_color ~seed:31 ~colors:2 (Gen.grid 7 7))

let test_tree () =
  check (Gen.randomly_color ~seed:32 ~colors:2 (Gen.random_tree ~seed:31 55))

let test_dense () =
  check (Gen.randomly_color ~seed:33 ~colors:2 (Gen.erdos_renyi ~seed:3 22 ~p:0.3))

let test_sentences_and_fallback () =
  let g = Gen.randomly_color ~seed:34 ~colors:2 (Gen.cycle 12) in
  let s = C.count g (Parse.formula "exists x y. E(x,y)") in
  Alcotest.(check int) "true sentence" 1 s.C.count;
  let f = C.count g (Parse.formula "forall z. C0(z) | E(x,z)") in
  Alcotest.(check bool) "fallback used" true (f.C.method_ = C.Via_enumeration);
  let ctx = Nd_eval.Naive.ctx g in
  Alcotest.(check int) "fallback exact"
    (Nd_eval.Naive.count ctx ~vars:[ "x" ] (Parse.formula "forall z. C0(z) | E(x,z)"))
    f.C.count

let test_ternary_via_enumeration () =
  let g = Gen.randomly_color ~seed:35 ~colors:2 (Gen.path 15) in
  let phi = Parse.formula "E(x,y) & dist(y,z) <= 2" in
  let r = C.count g phi in
  Alcotest.(check bool) "ternary via enumeration" true
    (r.C.method_ = C.Via_enumeration);
  let ctx = Nd_eval.Naive.ctx g in
  Alcotest.(check int) "ternary exact"
    (Nd_eval.Naive.count ctx ~vars:(Fo.free_vars phi) phi)
    r.C.count

let prop_random =
  QCheck.Test.make ~name:"counting = enumeration on random graphs" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 10 35))
    (fun (seed, n) ->
      let g =
        Gen.randomly_color ~seed ~colors:2
          (Gen.bounded_degree ~seed n ~max_degree:3)
      in
      List.for_all
        (fun q ->
          let phi = Parse.formula q in
          let r = C.count g phi in
          r.C.count
          = Nd_core.Enumerate.count (Nd_core.Next.build g phi))
        binary_queries)

let suite =
  [
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "tree" `Quick test_tree;
    Alcotest.test_case "dense control" `Quick test_dense;
    Alcotest.test_case "sentences and fallback" `Quick test_sentences_and_fallback;
    Alcotest.test_case "ternary via enumeration" `Quick test_ternary_via_enumeration;
    QCheck_alcotest.to_alcotest prop_random;
  ]
