(* Unit and property tests for the nd_util substrate. *)

open Nd_util

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.cardinal b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Bitset.add b 63;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "mem 62" false (Bitset.mem b 62);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Alcotest.(check int) "cardinal after remove" 3 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Bitset.to_list b);
  let c = Bitset.copy b in
  Bitset.add c 7;
  Alcotest.(check bool) "copy independent" false (Bitset.mem b 7);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let test_bitset_subset () =
  let a = Bitset.of_list 50 [ 1; 2; 30 ] in
  let b = Bitset.of_list 50 [ 1; 2; 3; 30; 45 ] in
  Alcotest.(check bool) "a ⊆ b" true (Bitset.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (Bitset.subset b a);
  Alcotest.(check bool) "a ⊆ a" true (Bitset.subset a a)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of [0,10)")
    (fun () -> Bitset.add b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> ignore (Bitset.mem b 10))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:200
    QCheck.(list (pair (int_bound 2) (int_bound 62)))
    (fun ops ->
      let b = Bitset.create 63 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 -> (
              Bitset.add b v;
              Hashtbl.replace model v ())
          | 1 -> (
              Bitset.remove b v;
              Hashtbl.remove model v)
          | _ ->
              if Bitset.mem b v <> Hashtbl.mem model v then
                QCheck.Test.fail_report "mem mismatch")
        ops;
      Bitset.cardinal b = Hashtbl.length model
      && Bitset.to_list b = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []))

let test_vec () =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 57 (Vec.get v 57);
  Vec.set v 57 1000;
  Alcotest.(check int) "set" 1000 (Vec.get v 57);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Alcotest.(check int) "last" 98 (Vec.last v);
  Vec.ensure v 200;
  Alcotest.(check int) "ensure grows" 200 (Vec.length v);
  Alcotest.(check int) "ensure fills dummy" (-1) (Vec.get v 150);
  Vec.sort compare v;
  Alcotest.(check int) "sorted first" (-1) (Vec.get v 0);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_tuple_order () =
  Alcotest.(check int) "lex lt" (-1) (Tuple.compare [| 1; 2 |] [| 1; 3 |]);
  Alcotest.(check int) "lex gt" 1 (Tuple.compare [| 2; 0 |] [| 1; 9 |]);
  Alcotest.(check int) "eq" 0 (Tuple.compare [| 4; 4 |] [| 4; 4 |]);
  Alcotest.(check bool) "succ" true
    (Tuple.succ ~n:3 [| 0; 2 |] = Some [| 1; 0 |]);
  Alcotest.(check bool) "succ overflow" true (Tuple.succ ~n:3 [| 2; 2 |] = None);
  Alcotest.(check bool) "pred" true
    (Tuple.pred ~n:3 [| 1; 0 |] = Some [| 0; 2 |]);
  Alcotest.(check bool) "pred underflow" true (Tuple.pred ~n:3 [| 0; 0 |] = None);
  Alcotest.(check string) "to_string" "(3,0,7)" (Tuple.to_string [| 3; 0; 7 |])

let prop_tuple_succ_pred =
  QCheck.Test.make ~name:"tuple pred ∘ succ = id" ~count:500
    QCheck.(pair (int_range 1 5) (list_of_size (Gen.return 3) (int_bound 4)))
    (fun (n, xs) ->
      let t = Array.of_list (List.map (fun x -> x mod n) xs) in
      match Tuple.succ ~n t with
      | None -> Tuple.equal t (Tuple.max ~n 3)
      | Some s -> (
          Tuple.compare s t > 0
          && match Tuple.pred ~n s with
             | Some p -> Tuple.equal p t
             | None -> false))

let test_sorted () =
  let a = Sorted.of_list [ 5; 1; 9; 1; 5; 3 ] in
  Alcotest.(check (list int)) "of_list dedup" [ 1; 3; 5; 9 ] (Array.to_list a);
  Alcotest.(check (option int)) "next_geq" (Some 5) (Sorted.next_geq a 4);
  Alcotest.(check (option int)) "next_geq exact" (Some 5) (Sorted.next_geq a 5);
  Alcotest.(check (option int)) "next_gt" (Some 9) (Sorted.next_gt a 5);
  Alcotest.(check (option int)) "next_gt none" None (Sorted.next_gt a 9);
  Alcotest.(check bool) "mem" true (Sorted.mem a 3);
  Alcotest.(check bool) "not mem" false (Sorted.mem a 4);
  Alcotest.(check (list int)) "inter" [ 3; 5 ]
    (Array.to_list (Sorted.inter a (Sorted.of_list [ 2; 3; 4; 5 ])));
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5; 9 ]
    (Array.to_list (Sorted.union a (Sorted.of_list [ 2; 4; 5 ])))

let prop_sorted_ops =
  QCheck.Test.make ~name:"sorted inter/union vs list model" ~count:300
    QCheck.(pair (list (int_bound 30)) (list (int_bound 30)))
    (fun (xs, ys) ->
      let a = Sorted.of_list xs and b = Sorted.of_list ys in
      let sa = List.sort_uniq compare xs and sb = List.sort_uniq compare ys in
      Array.to_list (Sorted.inter a b)
      = List.filter (fun x -> List.mem x sb) sa
      && Array.to_list (Sorted.union a b) = List.sort_uniq compare (sa @ sb))

let suite =
  [
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset subset" `Quick test_bitset_subset;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    QCheck_alcotest.to_alcotest prop_bitset_model;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "tuple order" `Quick test_tuple_order;
    QCheck_alcotest.to_alcotest prop_tuple_succ_pred;
    Alcotest.test_case "sorted arrays" `Quick test_sorted;
    QCheck_alcotest.to_alcotest prop_sorted_ops;
  ]
