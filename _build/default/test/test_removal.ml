(* Lemma 5.5 (Removal Lemma): G ⊨ φ(b̄) ⟺ H ⊨ φ'(b̄ ∖ ȳ) when the
   pinned positions hold exactly the removed node s. *)

open Nd_graph
open Nd_logic

let check_removal g s query pinned =
  let res = Nd_core.Removal.apply g ~s ~query ~pinned in
  let gctx = Nd_eval.Naive.ctx g in
  let hctx = Nd_eval.Naive.ctx res.Nd_core.Removal.graph in
  let fvs = Fo.free_vars query in
  let kept = List.filter (fun v -> not (List.mem v pinned)) fvs in
  let fvs' = Fo.free_vars res.Nd_core.Removal.query in
  (* φ' speaks about the kept variables only *)
  List.iter
    (fun v ->
      if not (List.mem v kept) then
        Alcotest.failf "pinned variable %s survived in φ'" v)
    fvs';
  let n = Cgraph.n g in
  let h_of_g = Hashtbl.create n in
  Array.iteri
    (fun local orig -> Hashtbl.replace h_of_g orig local)
    res.Nd_core.Removal.to_orig;
  (* enumerate all assignments of the kept variables over V∖{s} *)
  let kept_arr = Array.of_list kept in
  let rec go i env =
    if i = Array.length kept_arr then begin
      let genv = env @ List.map (fun v -> (v, s)) pinned in
      let lhs = Nd_eval.Naive.sat gctx ~env:genv query in
      let henv =
        List.map (fun (v, x) -> (v, Hashtbl.find h_of_g x)) env
      in
      let rhs =
        Nd_eval.Naive.sat hctx ~env:henv res.Nd_core.Removal.query
      in
      if lhs <> rhs then
        Alcotest.failf "mismatch for %s at s=%d env=[%s]: G:%b H:%b"
          (Fo.to_string query) s
          (String.concat ";"
             (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) env))
          lhs rhs
    end
    else
      for x = 0 to n - 1 do
        if x <> s then go (i + 1) ((kept_arr.(i), x) :: env)
      done
  in
  go 0 []

let queries_no_pin =
  [
    "E(x,y)";
    "dist(x,y) <= 2";
    "dist(x,y) <= 3 & ~E(x,y)";
    "exists z. E(x,z) & E(z,y)";
    "forall z. dist(z,x) > 1 | dist(z,y) <= 2";
    "C0(x) | dist(x,y) > 2";
  ]

let test_no_pin () =
  let g = Gen.randomly_color ~seed:3 ~colors:2 (Gen.grid 4 4) in
  List.iter
    (fun q ->
      List.iter
        (fun s -> check_removal g s (Parse.formula q) [])
        [ 0; 5; 15 ])
    queries_no_pin

let test_pinned () =
  let g = Gen.randomly_color ~seed:4 ~colors:2 (Gen.cycle 9) in
  (* pin y := s *)
  List.iter
    (fun q ->
      List.iter
        (fun s -> check_removal g s (Parse.formula q) [ "y" ])
        [ 0; 4; 8 ])
    [ "E(x,y)"; "dist(x,y) <= 2"; "C1(y) & dist(x,y) <= 3"; "x = y" ];
  (* pin both *)
  check_removal g 3 (Parse.formula "dist(x,y) <= 2") [ "x"; "y" ];
  check_removal g 3 (Parse.formula "E(x,y)") [ "x"; "y" ]

let test_colors_added () =
  let g = Gen.path 6 in
  let res =
    Nd_core.Removal.apply g ~s:3 ~query:(Parse.formula "dist(x,y) <= 2") ~pinned:[]
  in
  let h = res.Nd_core.Removal.graph in
  Alcotest.(check int) "H has n-1 vertices" 5 (Cgraph.n h);
  (* D_1 = old neighbors of 3 = {2,4}; D_2 adds {1,5} *)
  let c1 = res.Nd_core.Removal.dist_color 1 in
  let c2 = res.Nd_core.Removal.dist_color 2 in
  let members c =
    Array.to_list
      (Array.map
         (fun l -> res.Nd_core.Removal.to_orig.(l))
         (Cgraph.color_members h ~color:c))
  in
  Alcotest.(check (list int)) "D_1" [ 2; 4 ] (members c1);
  Alcotest.(check (list int)) "D_2" [ 1; 2; 4; 5 ] (members c2)

let prop_random =
  QCheck.Test.make ~name:"removal lemma on random graphs" ~count:20
    QCheck.(pair (int_bound 10000) (int_range 6 12))
    (fun (seed, n) ->
      let g =
        Gen.randomly_color ~seed ~colors:2
          (Gen.bounded_degree ~seed n ~max_degree:3)
      in
      let s = seed mod n in
      List.iter
        (fun q -> check_removal g s (Parse.formula q) [])
        [ "dist(x,y) <= 2"; "exists z. E(x,z) & E(z,y)" ];
      true)

let suite =
  [
    Alcotest.test_case "no pinned variables" `Slow test_no_pin;
    Alcotest.test_case "pinned variables" `Quick test_pinned;
    Alcotest.test_case "distance colors" `Quick test_colors_added;
    QCheck_alcotest.to_alcotest prop_random;
  ]
