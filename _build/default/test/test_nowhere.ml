(* Tests for neighborhood covers, kernels, the splitter game and weak
   coloring numbers. *)

open Nd_graph
open Nd_nowhere

let graphs =
  [
    ("path", Gen.path 80);
    ("cycle", Gen.cycle 60);
    ("grid", Gen.grid 9 9);
    ("tree", Gen.random_tree ~seed:4 100);
    ("bdeg", Gen.bounded_degree ~seed:4 80 ~max_degree:4);
    ("subdiv", Gen.subdivided_clique ~q:5 ~sub:5);
    ("clique", Gen.complete 20);
    ("star", Gen.star 40);
  ]

let test_cover_certified () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun r ->
          let c = Cover.compute g ~r in
          match Cover.verify g c with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s (r=%d): %s" name r e)
        [ 0; 1; 2; 3 ])
    graphs

let test_cover_shape () =
  let g = Gen.grid 20 20 in
  let c = Cover.compute g ~r:2 in
  Alcotest.(check bool) "several bags" true (Cover.bag_count c > 10);
  Alcotest.(check bool) "small degree on a grid" true (Cover.degree c <= 16);
  (* every vertex has an assigned bag containing it *)
  for v = 0 to Cgraph.n g - 1 do
    let bag = c.Cover.assigned.(v) in
    if not (Cover.mem_bag c ~bag v) then
      Alcotest.failf "vertex %d not in its assigned bag" v
  done;
  (* assigned_members is the inverse of assigned *)
  Array.iteri
    (fun id members ->
      Array.iter
        (fun v ->
          if c.Cover.assigned.(v) <> id then
            Alcotest.failf "assigned_members mismatch at %d" v)
        members)
    c.Cover.assigned_members;
  Alcotest.(check int) "members total" (Cgraph.n g)
    (Array.fold_left (fun a m -> a + Array.length m) 0 c.Cover.assigned_members)

let test_cover_weight_bound () =
  let g = Gen.grid 20 20 in
  let c = Cover.compute g ~r:2 in
  Alcotest.(check bool) "Σ|X| ≤ degree·n" true
    (Cover.weight c <= Cover.degree c * Cgraph.n g)

let test_kernel_certified () =
  List.iter
    (fun (name, g) ->
      let c = Cover.compute g ~r:2 in
      Array.iteri
        (fun id bag ->
          if id mod 7 = 0 then
            List.iter
              (fun p ->
                let k = Kernel.compute g ~bag ~p in
                match Kernel.verify g ~bag ~p k with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s bag %d p=%d: %s" name id p e)
              [ 0; 1; 2 ])
        c.Cover.bags)
    graphs

let test_kernel_nesting () =
  let g = Gen.grid 12 12 in
  let bag = Nd_graph.Bfs.ball g 40 ~radius:4 in
  let k1 = Kernel.compute g ~bag ~p:1 in
  let k2 = Kernel.compute g ~bag ~p:2 in
  (* K_2 ⊆ K_1 ⊆ X *)
  Array.iter
    (fun v ->
      if not (Nd_util.Sorted.mem k1 v) then
        Alcotest.failf "kernel not nested at %d" v)
    k2;
  Array.iter
    (fun v ->
      if not (Nd_util.Sorted.mem bag v) then
        Alcotest.failf "kernel outside bag at %d" v)
    k1

let test_kernel_p0 () =
  let g = Gen.path 10 in
  let bag = [| 2; 3; 4 |] in
  let k0 = Kernel.compute g ~bag ~p:0 in
  Alcotest.(check (list int)) "K_0 = X" [ 2; 3; 4 ] (Array.to_list k0)

let test_splitter_wins_sparse () =
  List.iter
    (fun (name, target) ->
      let fam = List.find (fun f -> f.Gen.name = name) Gen.families in
      let g = fam.Gen.build 300 in
      match
        Splitter.measured_lambda g ~r:2 ~max_rounds:25
          ~splitter:Splitter.splitter_center
      with
      | Some l ->
          if l > target then
            Alcotest.failf "%s: needed %d rounds (expected ≤ %d)" name l target
      | None -> Alcotest.failf "%s: splitter lost" name)
    [ ("path", 4); ("random-tree", 6); ("grid", 8); ("bounded-deg-4", 8) ]

let test_splitter_loses_dense () =
  (* on a clique, splitter needs ~n rounds: the game certifies
     somewhere-density *)
  let g = Gen.complete 30 in
  match
    Splitter.measured_lambda g ~r:1 ~max_rounds:10
      ~splitter:Splitter.splitter_center
  with
  | Some l -> Alcotest.failf "clique: unexpectedly won in %d" l
  | None -> ()

let test_splitter_move_in_bag () =
  let g = Gen.grid 10 10 in
  let c = Cover.compute g ~r:2 in
  Array.iteri
    (fun id bag ->
      let s = Splitter.move g ~bag ~center:c.Cover.centers.(id) in
      if not (Nd_util.Sorted.mem bag s) then
        Alcotest.failf "splitter move %d outside bag %d" s id)
    c.Cover.bags

let test_wcol_path_small () =
  let p = Wcol.profile (Gen.path 200) ~r:2 in
  Alcotest.(check bool) "path wcol_2 tiny" true (p.Wcol.max <= 2)

let test_wcol_separates () =
  let sparse = Wcol.profile (Gen.grid 18 18) ~r:2 in
  let dense = Wcol.profile (Gen.complete 40) ~r:2 in
  Alcotest.(check bool) "grid far below clique" true
    (sparse.Wcol.max * 3 < dense.Wcol.max)

let test_degeneracy_order_is_permutation () =
  let g = Gen.bounded_degree ~seed:5 60 ~max_degree:5 in
  let ord = Wcol.degeneracy_order g in
  let seen = Array.make 60 false in
  Array.iter
    (fun r ->
      if r < 0 || r >= 60 || seen.(r) then Alcotest.fail "not a permutation";
      seen.(r) <- true)
    ord

let test_wcol_monotone_in_r () =
  let g = Gen.random_tree ~seed:8 120 in
  let ord = Wcol.degeneracy_order g in
  let c1 = Wcol.wreach_counts g ~r:1 ~order:ord in
  let c2 = Wcol.wreach_counts g ~r:2 ~order:ord in
  Array.iteri
    (fun v x ->
      if c2.(v) < x then Alcotest.failf "wreach shrank at %d" v)
    c1

let suite =
  [
    Alcotest.test_case "covers certified on all families" `Quick test_cover_certified;
    Alcotest.test_case "cover shape on a grid" `Quick test_cover_shape;
    Alcotest.test_case "cover weight bound" `Quick test_cover_weight_bound;
    Alcotest.test_case "kernels certified" `Quick test_kernel_certified;
    Alcotest.test_case "kernel nesting" `Quick test_kernel_nesting;
    Alcotest.test_case "kernel p=0" `Quick test_kernel_p0;
    Alcotest.test_case "splitter wins on sparse families" `Quick test_splitter_wins_sparse;
    Alcotest.test_case "splitter loses on cliques" `Quick test_splitter_loses_dense;
    Alcotest.test_case "splitter moves stay in bag" `Quick test_splitter_move_in_bag;
    Alcotest.test_case "wcol on paths" `Quick test_wcol_path_small;
    Alcotest.test_case "wcol separates sparse from dense" `Quick test_wcol_separates;
    Alcotest.test_case "degeneracy order is a permutation" `Quick
      test_degeneracy_order_is_permutation;
    Alcotest.test_case "wreach monotone in r" `Quick test_wcol_monotone_in_r;
  ]
