(* Tests for the naive evaluator and the Lemma 2.2 translation. *)

open Nd_graph
open Nd_logic

let path_colored =
  (* path 0-1-2-3-4, C0 = {0,4}, C1 = {2} *)
  Cgraph.create ~n:5
    ~colors:
      [| Nd_util.Bitset.of_list 5 [ 0; 4 ]; Nd_util.Bitset.of_list 5 [ 2 ] |]
    [ (0, 1); (1, 2); (2, 3); (3, 4) ]

let test_sat () =
  let ctx = Nd_eval.Naive.ctx path_colored in
  let check name q env expected =
    Alcotest.(check bool) name expected
      (Nd_eval.Naive.sat ctx ~env (Parse.formula q))
  in
  check "edge" "E(x,y)" [ ("x", 0); ("y", 1) ] true;
  check "no edge" "E(x,y)" [ ("x", 0); ("y", 2) ] false;
  check "dist" "dist(x,y) <= 2" [ ("x", 0); ("y", 2) ] true;
  check "dist far" "dist(x,y) <= 2" [ ("x", 0); ("y", 3) ] false;
  check "dist self" "dist(x,y) <= 0" [ ("x", 3); ("y", 3) ] true;
  check "color" "C1(x)" [ ("x", 2) ] true;
  check "exists" "exists z. E(x,z) & C1(z)" [ ("x", 1) ] true;
  check "forall" "forall z. dist(x,z) <= 4" [ ("x", 2) ] true;
  check "forall fails" "forall z. dist(x,z) <= 2" [ ("x", 0) ] false

let test_model_check () =
  let ctx = Nd_eval.Naive.ctx path_colored in
  Alcotest.(check bool) "sentence true" true
    (Nd_eval.Naive.model_check ctx (Parse.formula "exists x y. E(x,y)"));
  Alcotest.(check bool) "sentence false" false
    (Nd_eval.Naive.model_check ctx
       (Parse.formula "exists x. C0(x) & C1(x)"))

let test_eval_all () =
  let ctx = Nd_eval.Naive.ctx path_colored in
  let sols =
    Nd_eval.Naive.eval_all ctx ~vars:[ "x"; "y" ] (Parse.formula "E(x,y)")
  in
  Alcotest.(check int) "edge count doubled" 8 (List.length sols);
  Alcotest.(check bool) "lex sorted" true
    (List.sort Nd_util.Tuple.compare sols = sols);
  let c0 = Nd_eval.Naive.eval_all ctx ~vars:[ "x" ] (Parse.formula "C0(x)") in
  Alcotest.(check bool) "unary" true (c0 = [ [| 0 |]; [| 4 |] ]);
  Alcotest.(check int) "count" 2
    (Nd_eval.Naive.count ctx ~vars:[ "x" ] (Parse.formula "C0(x)"))

let test_cache_consistency () =
  let g = Gen.randomly_color ~seed:1 ~colors:2 (Gen.grid 6 6) in
  let plain = Nd_eval.Naive.ctx g in
  let cached = Nd_eval.Naive.ctx ~cache:true g in
  for u = 0 to 35 do
    for v = 0 to 35 do
      for d = 0 to 4 do
        if Nd_eval.Naive.dist_le plain u v d <> Nd_eval.Naive.dist_le cached u v d
        then Alcotest.failf "cache mismatch at (%d,%d,%d)" u v d
      done
    done
  done

(* Lemma 2.2: query over D ≡ translated query over A'(D). *)
let family_db seed =
  let rng = Random.State.make [| seed |] in
  let domain = 8 in
  let facts rel arity count =
    ( rel,
      List.init count (fun _ ->
          Array.init arity (fun _ -> Random.State.int rng domain)) )
  in
  Rel.create_db
    [ ("R", 2); ("S", 1) ]
    ~domain
    [ facts "R" 2 10; facts "S" 1 3 ]

let translate_queries =
  let open Nd_eval.Translate in
  [
    ("R(x,y)", Atom ("R", [ "x"; "y" ]));
    ("S(x) & R(x,y)", And [ Atom ("S", [ "x" ]); Atom ("R", [ "x"; "y" ]) ]);
    ( "exists z. R(x,z) & R(z,y)",
      Exists ("z", And [ Atom ("R", [ "x"; "z" ]); Atom ("R", [ "z"; "y" ]) ])
    );
    ("~R(x,y) & x != y", And [ Not (Atom ("R", [ "x"; "y" ])); Not (Eq ("x", "y")) ]);
    ( "forall z. R(x,z) -> S(z)",
      Forall ("z", Or [ Not (Atom ("R", [ "x"; "z" ])); Atom ("S", [ "z" ]) ])
    );
  ]

let prop_lemma22 =
  QCheck.Test.make ~name:"Lemma 2.2: φ(D) = ψ(A'(D))" ~count:15
    QCheck.(int_bound 10000)
    (fun seed ->
      let db = family_db seed in
      let e = Rel.encode db in
      let ctx = Nd_eval.Naive.ctx e.Rel.graph in
      List.for_all
        (fun (_, rq) ->
          let direct = Nd_eval.Translate.eval_all_db db rq in
          let psi = Nd_eval.Translate.translate (Rel.schema db) rq in
          let vars = Nd_eval.Translate.free_vars rq in
          let via_graph = Nd_eval.Naive.eval_all ctx ~vars psi in
          (* element ids coincide with vertex ids *)
          direct = via_graph)
        translate_queries)

let test_translate_guard () =
  (* the element guard keeps tuple nodes out of the answers *)
  let db = Rel.create_db [ ("R", 2) ] ~domain:3 [ ("R", [ [| 0; 1 |] ]) ] in
  let e = Rel.encode db in
  let psi =
    Nd_eval.Translate.translate (Rel.schema db)
      (Nd_eval.Translate.Exists
         ("y", Nd_eval.Translate.Atom ("R", [ "x"; "y" ])))
  in
  let ctx = Nd_eval.Naive.ctx e.Rel.graph in
  let sols = Nd_eval.Naive.eval_all ctx ~vars:[ "x" ] psi in
  Alcotest.(check bool) "only element 0 answers" true (sols = [ [| 0 |] ])

let suite =
  [
    Alcotest.test_case "satisfaction" `Quick test_sat;
    Alcotest.test_case "model checking" `Quick test_model_check;
    Alcotest.test_case "eval_all" `Quick test_eval_all;
    Alcotest.test_case "distance cache" `Quick test_cache_consistency;
    Alcotest.test_case "translation element guard" `Quick test_translate_guard;
    QCheck_alcotest.to_alcotest prop_lemma22;
  ]
