test/test_enum.ml: Alcotest Array Cgraph Fo Gen List Nd_core Nd_eval Nd_graph Nd_logic Nd_util Parse QCheck QCheck_alcotest Random
