test/test_pipeline.ml: Alcotest Gen List Nd_core Nd_eval Nd_graph Nd_logic Random Rel
