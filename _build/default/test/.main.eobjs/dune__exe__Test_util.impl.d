test/test_util.ml: Alcotest Array Bitset Gen Hashtbl List Nd_util QCheck QCheck_alcotest Sorted Tuple Vec
