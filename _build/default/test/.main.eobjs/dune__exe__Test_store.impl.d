test/test_store.ml: Alcotest Array Format Gen List Nd_ram Nd_util Option Printf QCheck QCheck_alcotest Random String Tuple
