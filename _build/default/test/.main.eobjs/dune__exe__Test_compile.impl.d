test/test_compile.ml: Alcotest Array Bfs Cgraph Dtype Fo Gen List Nd_core Nd_eval Nd_graph Nd_logic Parse QCheck QCheck_alcotest Random
