test/test_eval.ml: Alcotest Array Cgraph Gen List Nd_eval Nd_graph Nd_logic Nd_util Parse QCheck QCheck_alcotest Random Rel
