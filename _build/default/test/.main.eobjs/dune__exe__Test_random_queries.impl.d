test/test_random_queries.ml: Alcotest Array Fo Gen List Nd_core Nd_eval Nd_graph Nd_logic Nd_util Parse Printf QCheck QCheck_alcotest Random
