test/test_count.ml: Alcotest Fo Gen List Nd_core Nd_eval Nd_graph Nd_logic Parse QCheck QCheck_alcotest
