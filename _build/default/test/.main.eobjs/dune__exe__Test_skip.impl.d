test/test_skip.ml: Alcotest Array Cover Fun Gen Kernel List Nd_core Nd_graph Nd_nowhere Nd_util Random String
