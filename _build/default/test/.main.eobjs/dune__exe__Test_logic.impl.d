test/test_logic.ml: Alcotest Dtype Fo List Nd_eval Nd_graph Nd_logic Parse Printf QCheck QCheck_alcotest
