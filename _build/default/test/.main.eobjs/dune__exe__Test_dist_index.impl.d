test/test_dist_index.ml: Alcotest Array Bfs Cgraph Gen List Nd_core Nd_graph QCheck QCheck_alcotest
