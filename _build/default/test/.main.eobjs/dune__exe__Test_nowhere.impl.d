test/test_nowhere.ml: Alcotest Array Cgraph Cover Gen Kernel List Nd_graph Nd_nowhere Nd_util Splitter Wcol
