test/main.mli:
