test/test_removal.ml: Alcotest Array Cgraph Fo Gen Hashtbl List Nd_core Nd_eval Nd_graph Nd_logic Parse Printf QCheck QCheck_alcotest String
