test/test_paper_examples.ml: Alcotest Array Cgraph Fo Fun Gen List Nd_core Nd_eval Nd_graph Nd_logic Nd_nowhere Nd_util Parse Random
