test/test_graph.ml: Alcotest Array Bfs Bitset Cgraph Fun Gen List Nd_graph Nd_util QCheck QCheck_alcotest Random Rel
