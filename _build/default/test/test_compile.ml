(* Tests for the normal-form compiler: fragment coverage and semantic
   faithfulness of the (τ, locals, sentences) decomposition. *)

open Nd_graph
open Nd_logic
module C = Nd_core.Compile

let is_compiled q =
  match C.compile (Parse.formula q) with C.Compiled _ -> true | _ -> false

let test_fragment_membership () =
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " compiles") true (is_compiled q))
    [
      "E(x,y)";
      "dist(x,y) <= 2";
      "dist(x,y) > 2 & C1(y)";
      "exists z. E(x,z) & E(z,y)";
      "exists z. dist(x,z) <= 2 & dist(z,y) <= 2 & C0(z)";
      "forall z. dist(x,z) > 1 | C0(z)";
      "C0(x) & C1(y) & C2(z)";
      "E(x,y) & E(y,z) & ~E(x,z)";
      "C0(x)";
      "exists z w. E(x,z) & E(z,w) & C0(w)";
      (* miniscoping splits the unguarded ∃ into a closed sentence block *)
      "exists z. C0(z) & C1(x)";
    ]

let test_fallback_cases () =
  (* genuinely non-local pieces must fall back, not mis-compile *)
  List.iter
    (fun q ->
      match C.compile (Parse.formula q) with
      | C.Compiled _ -> Alcotest.failf "%s should not compile" q
      | C.Fallback _ -> ())
    [
      (* the existential witness is only constrained on one branch *)
      "exists z. C0(z) & (E(x,z) | C1(x))";
      (* unguarded universal *)
      "forall z. C0(z) | E(x,z)";
    ]

let test_sentence_blocks () =
  (* closed blocks become sentence literals, not local formulas *)
  match C.compile (Parse.formula "C1(x) & (exists z w. E(z,w))") with
  | C.Compiled c ->
      List.iter
        (fun d ->
          Alcotest.(check int) "one sentence literal" 1
            (List.length d.C.sentences))
        c.C.disjuncts
  | C.Fallback f -> Alcotest.failf "fell back: %s" f.reason

let test_radius_accounts_links () =
  match C.compile (Parse.formula "exists z. E(x,z) & E(z,y)") with
  | C.Compiled c ->
      Alcotest.(check bool) "radius ≥ 2 via link bound" true (c.C.radius >= 2)
  | C.Fallback f -> Alcotest.failf "fell back: %s" f.reason

(* Semantic faithfulness: evaluate the decomposition by hand and compare
   against direct evaluation.  This mirrors property (a) of Theorem 5.4:
   G ⊨ φ(ā) iff for τ = τ_r(ā) some disjunct has all sentences true and
   all locals true on bags covering the components. *)
let eval_decomposition g (c : C.compiled) a =
  let ctx = Nd_eval.Naive.ctx ~cache:true g in
  let k = Array.length c.C.vars in
  let dist_le u v = Nd_eval.Naive.dist_le ctx u v c.C.radius in
  let tau = Dtype.of_tuple ~dist_le a in
  (* evaluate locals inside an L-ball around the component — any bag
     containing N_L(ā_I) must give the same verdict *)
  let cover_r = ((k - 1) * c.C.radius) + c.C.locality in
  List.exists
    (fun (d : C.disjunct) ->
      Dtype.equal d.C.tau tau
      && List.for_all
           (fun (phi, pol) -> Nd_eval.Naive.model_check ctx phi = pol)
           d.C.sentences
      && List.for_all
           (fun (comp, phi) ->
             if Fo.equal phi Fo.True then true
             else begin
               let centers = List.map (fun p -> a.(p)) comp in
               let ball = Bfs.ball_of_set g centers ~radius:cover_r in
               let sub, to_orig = Cgraph.induced g ball in
               let subctx = Nd_eval.Naive.ctx ~cache:true sub in
               let env =
                 List.map
                   (fun p ->
                     match Cgraph.local_of_orig to_orig a.(p) with
                     | Some l -> (c.C.vars.(p), l)
                     | None -> assert false)
                   comp
               in
               Nd_eval.Naive.sat subctx ~env phi
             end)
           d.C.locals)
    c.C.disjuncts

let decomposition_queries =
  [
    "dist(x,y) <= 2";
    "dist(x,y) > 2 & C1(y)";
    "exists z. E(x,z) & E(z,y)";
    "E(x,y) | (C0(x) & C1(y))";
    "forall z. dist(x,z) > 1 | C0(z)";
    "dist(x,z) > 2 & dist(y,z) > 2 & C1(z)";
    "C1(x) & (exists z w. E(z,w) & C0(z))";
  ]

let prop_decomposition_semantics =
  QCheck.Test.make ~name:"decomposition ≡ direct evaluation" ~count:12
    QCheck.(pair (int_bound 10000) (int_range 10 20))
    (fun (seed, n) ->
      let g =
        Gen.randomly_color ~seed ~colors:2
          (Gen.bounded_degree ~seed n ~max_degree:3)
      in
      let ctx = Nd_eval.Naive.ctx g in
      List.for_all
        (fun q ->
          let phi = Parse.formula q in
          match C.compile phi with
          | C.Fallback f -> Alcotest.failf "%s fell back: %s" q f.reason
          | C.Compiled c ->
              let k = Array.length c.C.vars in
              let rng = Random.State.make [| seed; 13 |] in
              let ok = ref true in
              for _ = 1 to 40 do
                let a = Array.init k (fun _ -> Random.State.int rng n) in
                let direct = Nd_eval.Naive.holds ctx phi a in
                let dec = eval_decomposition g c a in
                if direct <> dec then ok := false
              done;
              !ok)
        decomposition_queries)

let suite =
  [
    Alcotest.test_case "fragment membership" `Quick test_fragment_membership;
    Alcotest.test_case "fallback cases" `Quick test_fallback_cases;
    Alcotest.test_case "sentence blocks" `Quick test_sentence_blocks;
    Alcotest.test_case "radius covers link bounds" `Quick test_radius_accounts_links;
    QCheck_alcotest.to_alcotest prop_decomposition_semantics;
  ]
