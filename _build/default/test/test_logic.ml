(* Tests for the FO⁺ front end: AST utilities, parser, distance types. *)

open Nd_logic
module F = Fo

let parse = Parse.formula

let test_parser () =
  let cases =
    [
      ("E(x,y)", F.Edge ("x", "y"));
      ("x = y", F.Eq ("x", "y"));
      ("x != y", F.Not (F.Eq ("x", "y")));
      ("C2(x)", F.Color (2, "x"));
      ("dist(x,y) <= 3", F.Dist_le ("x", "y", 3));
      ("dist(x,y) < 3", F.Dist_le ("x", "y", 2));
      ("dist(x,y) > 3", F.Not (F.Dist_le ("x", "y", 3)));
      ("dist(x,y) >= 3", F.Not (F.Dist_le ("x", "y", 2)));
      ("~E(x,y)", F.Not (F.Edge ("x", "y")));
      ("E(x,y) & E(y,z)", F.And [ F.Edge ("x", "y"); F.Edge ("y", "z") ]);
      ("E(x,y) | E(y,z)", F.Or [ F.Edge ("x", "y"); F.Edge ("y", "z") ]);
      ( "E(x,y) -> E(y,x)",
        F.Or [ F.Not (F.Edge ("x", "y")); F.Edge ("y", "x") ] );
      ("exists z. E(x,z)", F.Exists ("z", F.Edge ("x", "z")));
      ( "forall z w. E(z,w)",
        F.Forall ("z", F.Forall ("w", F.Edge ("z", "w"))) );
      ("true & false", F.And [ F.True; F.False ]);
      ( "exists z. E(x,z) & E(z,y)",
        F.Exists ("z", F.And [ F.Edge ("x", "z"); F.Edge ("z", "y") ]) );
      ( "(exists z. E(x,z)) & C0(x)",
        F.And [ F.Exists ("z", F.Edge ("x", "z")); F.Color (0, "x") ] );
    ]
  in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "parse %S" s)
        true
        (F.equal (parse s) expected))
    cases

let test_parser_named_colors () =
  let phi = Parse.formula ~colors:[ ("Blue", 1); ("Red", 0) ] "Blue(x) & Red(y)" in
  Alcotest.(check bool) "named colors" true
    (F.equal phi (F.And [ F.Color (1, "x"); F.Color (0, "y") ]))

let test_parser_errors () =
  List.iter
    (fun s ->
      match parse s with
      | exception Parse.Syntax_error _ -> ()
      | _ -> Alcotest.failf "expected syntax error for %S" s)
    [ "E(x"; "dist(x,y)"; "exists . E(x,y)"; "E(x,y) &"; "x ="; "Foo(x)"; "" ]

let test_roundtrip () =
  List.iter
    (fun s ->
      let phi = parse s in
      let phi' = parse (F.to_string phi) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %S" s)
        true (F.equal phi phi'))
    [
      "E(x,y) & (C0(x) | C1(y))";
      "exists z. (E(x,z) & dist(z,y) <= 4)";
      "forall z. (dist(x,z) > 2 | C0(z))";
      "~(E(x,y) | E(y,x)) & x != y";
    ]

let test_free_vars () =
  Alcotest.(check (list string)) "order of occurrence" [ "x"; "y" ]
    (F.free_vars (parse "E(x,y) & C0(y)"));
  Alcotest.(check (list string)) "bound not free" [ "x" ]
    (F.free_vars (parse "exists y. E(x,y)"));
  Alcotest.(check (list string)) "sentence" []
    (F.free_vars (parse "exists x y. E(x,y)"));
  Alcotest.(check int) "arity" 3 (F.arity (parse "E(x,y) & E(y,z)"))

let test_qrank () =
  Alcotest.(check int) "qf" 0 (F.qrank (parse "E(x,y) & C0(x)"));
  Alcotest.(check int) "nested" 2 (F.qrank (parse "exists z. E(x,z) & (exists w. E(z,w))"));
  Alcotest.(check int) "parallel" 1
    (F.qrank (parse "(exists z. E(x,z)) & (exists w. E(x,w))"));
  Alcotest.(check int) "max_dist" 7 (F.max_dist (parse "dist(x,y) <= 7 | dist(x,y) <= 2"))

let test_qrank_plus () =
  (* q-rank: dist atoms under quantifiers must obey the f_q budget *)
  let phi = parse "exists z. dist(x,z) <= 3" in
  Alcotest.(check bool) "within budget" true (F.has_qrank_at_most ~q:2 ~l:1 phi);
  let deep = parse "exists z. dist(x,z) <= 1000000" in
  Alcotest.(check bool) "beyond budget" false
    (F.has_qrank_at_most ~q:2 ~l:1 deep)

let test_nnf () =
  let phi = parse "~(E(x,y) & (exists z. C0(z)))" in
  let n = F.nnf phi in
  let rec no_bad_not = function
    | F.Not (F.And _ | F.Or _ | F.Exists _ | F.Forall _ | F.Not _) -> false
    | F.Not _ -> true
    | F.And ps | F.Or ps -> List.for_all no_bad_not ps
    | F.Exists (_, p) | F.Forall (_, p) -> no_bad_not p
    | _ -> true
  in
  Alcotest.(check bool) "negations on atoms only" true (no_bad_not n)

let test_simplify () =
  Alcotest.(check bool) "true & φ" true
    (F.equal (F.simplify (parse "true & E(x,y)")) (F.Edge ("x", "y")));
  Alcotest.(check bool) "false & φ" true
    (F.equal (F.simplify (parse "false & E(x,y)")) F.False);
  Alcotest.(check bool) "x = x" true (F.equal (F.simplify (parse "x = x")) F.True);
  Alcotest.(check bool) "exists over false" true
    (F.equal (F.simplify (F.Exists ("z", F.False))) F.False)

let test_miniscope () =
  let phi = F.Exists ("z", F.And [ F.Edge ("x", "z"); F.Color (0, "y") ]) in
  let ms = F.miniscope phi in
  (* C0(y) does not mention z: must be pulled out *)
  (match ms with
  | F.And parts ->
      Alcotest.(check bool) "factored out" true
        (List.exists (F.equal (F.Color (0, "y"))) parts)
  | _ -> Alcotest.fail "expected a conjunction");
  let phi2 = F.Exists ("z", F.Or [ F.Edge ("x", "z"); F.Edge ("y", "z") ]) in
  (match F.miniscope phi2 with
  | F.Or [ F.Exists _; F.Exists _ ] -> ()
  | _ -> Alcotest.fail "expected ∃ pushed through ∨")

let test_dist_formula_def () =
  (* Definition 4.1 expands to pure FO with the right quantifier count *)
  let f2 = F.dist_formula 2 "x" "y" in
  Alcotest.(check int) "qrank = r" 2 (F.qrank f2);
  Alcotest.(check (list string)) "free vars" [ "x"; "y" ] (F.free_vars f2)

let test_dtype () =
  let taus = Dtype.all 3 in
  Alcotest.(check int) "2^3 types for k=3" 8 (List.length taus);
  let t = Dtype.create 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "mem sym" true (Dtype.mem t 1 0);
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2; 3 ] ]
    (Dtype.components t);
  Alcotest.(check (list int)) "component_of" [ 2; 3 ] (Dtype.component_of t 2);
  let t' = Dtype.restrict t 3 in
  Alcotest.(check (list (list int))) "restrict" [ [ 0; 1 ]; [ 2 ] ]
    (Dtype.components t');
  Alcotest.(check bool) "compatible" true (Dtype.compatible t' t);
  Alcotest.(check bool) "incompatible" false
    (Dtype.compatible (Dtype.create 3 [ (0, 2) ]) t)

let test_dtype_of_tuple () =
  let dist_le a b = abs (a - b) <= 2 in
  let t = Dtype.of_tuple ~dist_le [| 0; 1; 10 |] in
  Alcotest.(check bool) "0-1 close" true (Dtype.mem t 0 1);
  Alcotest.(check bool) "0-2 far" false (Dtype.mem t 0 2)

(* semantic checks of transformations on random graphs *)
let semantically_equal g phi psi =
  let ctx = Nd_eval.Naive.ctx g in
  let vars = F.free_vars phi in
  Nd_eval.Naive.eval_all ctx ~vars phi = Nd_eval.Naive.eval_all ctx ~vars psi

let random_formula_queries =
  [
    "dist(x,y) <= 2 & ~(C0(x) | C1(y))";
    "exists z. (E(x,z) & (C0(z) | dist(z,y) <= 1))";
    "forall z. (dist(x,z) > 1 | C0(z) | z = y)";
    "~(exists z. E(x,z) & E(z,y))";
  ]

let prop_nnf_miniscope_semantics =
  QCheck.Test.make ~name:"nnf/miniscope/simplify preserve semantics" ~count:20
    QCheck.(pair (int_bound 1000) (int_range 8 16))
    (fun (seed, n) ->
      let g =
        Nd_graph.Gen.randomly_color ~seed ~colors:2
          (Nd_graph.Gen.bounded_degree ~seed
             n ~max_degree:3)
      in
      List.for_all
        (fun q ->
          let phi = parse q in
          semantically_equal g phi (F.nnf phi)
          && semantically_equal g phi (F.miniscope (F.nnf phi))
          && semantically_equal g phi (F.simplify phi))
        random_formula_queries)

let prop_dist_formula =
  QCheck.Test.make ~name:"Definition 4.1 dist formula = native atom" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let g = Nd_graph.Gen.random_tree ~seed 12 in
      List.for_all
        (fun r ->
          semantically_equal g
            (F.Dist_le ("x", "y", r))
            (F.dist_formula r "x" "y"))
        [ 0; 1; 2; 3 ])

let suite =
  [
    Alcotest.test_case "parser" `Quick test_parser;
    Alcotest.test_case "parser named colors" `Quick test_parser_named_colors;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "free vars" `Quick test_free_vars;
    Alcotest.test_case "quantifier rank" `Quick test_qrank;
    Alcotest.test_case "q-rank budget" `Quick test_qrank_plus;
    Alcotest.test_case "nnf" `Quick test_nnf;
    Alcotest.test_case "simplify" `Quick test_simplify;
    Alcotest.test_case "miniscope" `Quick test_miniscope;
    Alcotest.test_case "Definition 4.1 structure" `Quick test_dist_formula_def;
    Alcotest.test_case "distance types" `Quick test_dtype;
    Alcotest.test_case "type of a tuple" `Quick test_dtype_of_tuple;
    QCheck_alcotest.to_alcotest prop_nnf_miniscope_semantics;
    QCheck_alcotest.to_alcotest prop_dist_formula;
  ]
