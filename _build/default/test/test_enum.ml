(* End-to-end tests for the main results: Theorem 2.3 (next solution),
   Corollary 2.4 (testing), Corollary 2.5 (ordered constant-delay
   enumeration) — differential against the naive evaluator. *)

open Nd_graph
open Nd_logic

let queries =
  [
    "dist(x,y) <= 2";
    "E(x,y)";
    "dist(x,y) > 2 & C1(y)";
    "exists z. E(x,z) & E(z,y)";
    "C0(x) & C1(y) & dist(x,y) > 1";
    "E(x,y) | (C0(x) & C1(y))";
    "C0(x)";
    "exists z. E(x,z) & C0(z)";
    "forall z. dist(x,z) > 1 | C0(z)";
    "dist(x,z) > 2 & dist(y,z) > 2 & C1(z)";
    "E(x,y) & E(y,z) & ~E(x,z) & x != z";
    "dist(x,y) <= 2 & dist(y,z) <= 2 & C0(x) & C2(z)";
    "x = y";
    "x != y & dist(x,y) > 1";
  ]

let check_graph_queries ?(queries = queries) g =
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun qs ->
      let phi = Parse.formula qs in
      let fvs = Fo.free_vars phi in
      let expected = Nd_eval.Naive.eval_all ctx ~vars:fvs phi in
      let nx = Nd_core.Next.build g phi in
      let got = Nd_core.Enumerate.to_list nx in
      if got <> expected then
        Alcotest.failf "%s: expected %d solutions, got %d (or wrong order)" qs
          (List.length expected) (List.length got);
      (* random membership tests *)
      let k = List.length fvs in
      let n = Cgraph.n g in
      let rng = Random.State.make [| 7; n |] in
      for _ = 1 to 40 do
        let tup = Array.init k (fun _ -> Random.State.int rng n) in
        if Nd_eval.Naive.holds ctx phi tup <> Nd_core.Next.test nx tup then
          Alcotest.failf "%s: test() disagrees on %s" qs
            (Nd_util.Tuple.to_string tup)
      done;
      (* next_solution from random starting points *)
      for _ = 1 to 25 do
        let tup = Array.init k (fun _ -> Random.State.int rng n) in
        let expect =
          List.find_opt (fun s -> Nd_util.Tuple.compare s tup >= 0) expected
        in
        let got = Nd_core.Next.next_solution nx tup in
        if got <> expect then
          Alcotest.failf "%s: next_solution(%s) wrong" qs
            (Nd_util.Tuple.to_string tup)
      done)
    queries

let test_grid () =
  check_graph_queries (Gen.randomly_color ~seed:5 ~colors:3 (Gen.grid 7 7))

let test_tree () =
  check_graph_queries
    (Gen.randomly_color ~seed:6 ~colors:3 (Gen.random_tree ~seed:2 60))

let test_bounded_degree () =
  check_graph_queries
    (Gen.randomly_color ~seed:7 ~colors:3
       (Gen.bounded_degree ~seed:3 50 ~max_degree:3))

let test_dense_control () =
  check_graph_queries
    (Gen.randomly_color ~seed:8 ~colors:3 (Gen.erdos_renyi ~seed:4 25 ~p:0.25))

let test_subdivided_clique () =
  check_graph_queries
    (Gen.randomly_color ~seed:9 ~colors:3 (Gen.subdivided_clique ~q:5 ~sub:5))

let test_disconnected () =
  check_graph_queries
    (Gen.randomly_color ~seed:10 ~colors:3
       (Gen.disjoint_union (Gen.path 20) (Gen.cycle 20)))

let test_enumeration_is_strictly_increasing () =
  let g = Gen.randomly_color ~seed:11 ~colors:2 (Gen.grid 8 8) in
  let nx = Nd_core.Next.build g (Parse.formula "dist(x,y) <= 2") in
  let prev = ref None in
  Nd_core.Enumerate.iter
    (fun sol ->
      (match !prev with
      | Some p ->
          if Nd_util.Tuple.compare p sol >= 0 then
            Alcotest.fail "not strictly increasing"
      | None -> ());
      prev := Some (Array.copy sol))
    nx

let test_limit_and_first () =
  let g = Gen.randomly_color ~seed:12 ~colors:2 (Gen.grid 8 8) in
  let nx = Nd_core.Next.build g (Parse.formula "E(x,y)") in
  let three = Nd_core.Enumerate.to_list ~limit:3 nx in
  Alcotest.(check int) "limit" 3 (List.length three);
  Alcotest.(check bool) "first = head of enumeration" true
    (Nd_core.Next.first nx = Some (List.hd three))

let test_empty_result () =
  let g = Gen.path 30 in
  (* no colors at all: C5 is empty *)
  let nx = Nd_core.Next.build g (Parse.formula "C5(x) & E(x,y)") in
  Alcotest.(check int) "no solutions" 0 (Nd_core.Enumerate.count nx);
  Alcotest.(check bool) "first none" true (Nd_core.Next.first nx = None)

let test_full_relation () =
  let g = Gen.path 5 in
  let nx = Nd_core.Next.build g (Parse.formula "x = x & y = y") in
  Alcotest.(check int) "all pairs" 25 (Nd_core.Enumerate.count nx)

let test_delays_instrumentation () =
  let g = Gen.randomly_color ~seed:16 ~colors:2 (Gen.grid 6 6) in
  let nx = Nd_core.Next.build g (Parse.formula "dist(x,y) <= 2") in
  let first = ref nan in
  let seen = ref 0 in
  let ds = Nd_core.Enumerate.delays nx ~first (fun _ -> incr seen) in
  Alcotest.(check int) "delays count = solutions - 1"
    (max 0 (!seen - 1))
    (Array.length ds);
  Alcotest.(check bool) "first recorded" true (!first >= 0.);
  Alcotest.(check bool) "delays non-negative" true
    (Array.for_all (fun d -> d >= 0.) ds)

let test_tester_sentences () =
  let g = Gen.randomly_color ~seed:13 ~colors:2 (Gen.cycle 12) in
  let t1 = Nd_core.Tester.build g (Parse.formula "exists x y. E(x,y)") in
  Alcotest.(check bool) "true sentence" true (Nd_core.Tester.holds_sentence t1);
  let t2 = Nd_core.Tester.build g (Parse.formula "exists x. C0(x) & C1(x) & ~ x = x") in
  Alcotest.(check bool) "false sentence" false (Nd_core.Tester.holds_sentence t2);
  let t3 = Nd_core.Tester.build g (Parse.formula "E(x,y)") in
  Alcotest.(check bool) "binary test" true
    (Nd_core.Tester.test t3 [| 0; 1 |] && not (Nd_core.Tester.test t3 [| 0; 2 |]))

let test_ablation_no_skip_same_answers () =
  let g = Gen.randomly_color ~seed:14 ~colors:2 (Gen.grid 7 7) in
  let phi = Parse.formula "dist(x,y) > 2 & C1(y)" in
  let nx = Nd_core.Next.build g phi in
  let with_skip = Nd_core.Enumerate.to_list nx in
  Nd_core.Answer.use_skip (Nd_core.Next.top nx) false;
  let without = Nd_core.Enumerate.to_list nx in
  Alcotest.(check bool) "skip ablation changes nothing semantically" true
    (with_skip = without)

let test_fallback_queries () =
  (* out-of-fragment queries still answered correctly via fallback *)
  let g = Gen.randomly_color ~seed:15 ~colors:2 (Gen.random_tree ~seed:5 25) in
  let ctx = Nd_eval.Naive.ctx g in
  List.iter
    (fun qs ->
      let phi = Parse.formula qs in
      (match Nd_core.Compile.compile phi with
      | Nd_core.Compile.Compiled _ -> Alcotest.failf "%s should fall back" qs
      | Nd_core.Compile.Fallback _ -> ());
      let nx = Nd_core.Next.build g phi in
      let got = Nd_core.Enumerate.to_list nx in
      let expected =
        Nd_eval.Naive.eval_all ctx ~vars:(Fo.free_vars phi) phi
      in
      if got <> expected then Alcotest.failf "%s: fallback wrong" qs)
    [ "exists z. C0(z) & (E(x,z) | C1(x))"; "forall z. C0(z) | E(x,z)" ]

let prop_random_differential =
  QCheck.Test.make ~name:"enumeration ≡ naive on random graphs" ~count:15
    QCheck.(pair (int_bound 100000) (int_range 12 40))
    (fun (seed, n) ->
      let g =
        Gen.randomly_color ~seed ~colors:3
          (Gen.bounded_degree ~seed n ~max_degree:3)
      in
      check_graph_queries
        ~queries:
          [
            "dist(x,y) <= 2";
            "dist(x,y) > 2 & C1(y)";
            "exists z. E(x,z) & E(z,y)";
            "E(x,y) | (C0(x) & C1(y))";
          ]
        g;
      true)

let suite =
  [
    Alcotest.test_case "grid" `Slow test_grid;
    Alcotest.test_case "tree" `Slow test_tree;
    Alcotest.test_case "bounded degree" `Slow test_bounded_degree;
    Alcotest.test_case "dense control" `Slow test_dense_control;
    Alcotest.test_case "subdivided clique" `Slow test_subdivided_clique;
    Alcotest.test_case "disconnected graph" `Slow test_disconnected;
    Alcotest.test_case "strictly increasing order" `Quick
      test_enumeration_is_strictly_increasing;
    Alcotest.test_case "limit and first" `Quick test_limit_and_first;
    Alcotest.test_case "empty result" `Quick test_empty_result;
    Alcotest.test_case "full relation" `Quick test_full_relation;
    Alcotest.test_case "delay instrumentation" `Quick test_delays_instrumentation;
    Alcotest.test_case "tester on sentences" `Quick test_tester_sentences;
    Alcotest.test_case "skip ablation equivalence" `Quick
      test_ablation_no_skip_same_answers;
    Alcotest.test_case "fallback queries" `Quick test_fallback_queries;
    QCheck_alcotest.to_alcotest prop_random_differential;
  ]
