(* Tests for colored graphs, BFS, generators and the A'(D) encoding. *)

open Nd_util
open Nd_graph

let test_cgraph_basic () =
  let g =
    Cgraph.create ~n:5
      ~colors:[| Bitset.of_list 5 [ 0; 2 ]; Bitset.of_list 5 [ 4 ] |]
      [ (0, 1); (1, 2); (1, 0); (3, 4) ]
  in
  Alcotest.(check int) "n" 5 (Cgraph.n g);
  Alcotest.(check int) "m dedups" 3 (Cgraph.m g);
  Alcotest.(check int) "size" 8 (Cgraph.size g);
  Alcotest.(check bool) "edge sym" true
    (Cgraph.has_edge g 0 1 && Cgraph.has_edge g 1 0);
  Alcotest.(check bool) "no edge" false (Cgraph.has_edge g 0 3);
  Alcotest.(check int) "degree" 2 (Cgraph.degree g 1);
  Alcotest.(check bool) "color" true (Cgraph.has_color g ~color:0 2);
  Alcotest.(check bool) "no color" false (Cgraph.has_color g ~color:1 2);
  Alcotest.(check (list int)) "members" [ 0; 2 ]
    (Array.to_list (Cgraph.color_members g ~color:0));
  Alcotest.check_raises "self loop" (Invalid_argument "Cgraph.create: self-loop")
    (fun () -> ignore (Cgraph.create ~n:3 [ (1, 1) ]))

let test_induced () =
  let g =
    Cgraph.create ~n:6
      ~colors:[| Bitset.of_list 6 [ 1; 3; 5 ] |]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0); (1, 3) ]
  in
  let sub, to_orig = Cgraph.induced g [| 1; 2; 3; 5 |] in
  Alcotest.(check int) "sub n" 4 (Cgraph.n sub);
  Alcotest.(check int) "sub m" 3 (Cgraph.m sub) (* 1-2, 2-3, 1-3 *);
  Alcotest.(check bool) "edge kept" true (Cgraph.has_edge sub 0 1);
  Alcotest.(check bool) "edge 1-3 kept" true (Cgraph.has_edge sub 0 2);
  Alcotest.(check bool) "5 isolated" true (Cgraph.degree sub 3 = 0);
  Alcotest.(check (list int)) "to_orig" [ 1; 2; 3; 5 ] (Array.to_list to_orig);
  Alcotest.(check bool) "colors restrict" true
    (Cgraph.has_color sub ~color:0 0 && not (Cgraph.has_color sub ~color:0 1));
  Alcotest.(check (option int)) "local_of_orig" (Some 2)
    (Cgraph.local_of_orig to_orig 3);
  Alcotest.(check (option int)) "local_of_orig missing" None
    (Cgraph.local_of_orig to_orig 4)

let test_bfs () =
  let g = Gen.path 10 in
  let d = Bfs.dist_upto g 3 ~radius:4 in
  Alcotest.(check int) "dist 0" 0 d.(3);
  Alcotest.(check int) "dist 4" 4 d.(7);
  Alcotest.(check int) "beyond radius" (-1) d.(8);
  Alcotest.(check (list int)) "ball" [ 1; 2; 3; 4; 5 ]
    (Array.to_list (Bfs.ball g 3 ~radius:2));
  Alcotest.(check (option int)) "exact dist" (Some 6) (Bfs.dist g 0 6);
  let g2 = Gen.disjoint_union (Gen.path 3) (Gen.path 3) in
  Alcotest.(check (option int)) "disconnected" None (Bfs.dist g2 0 4)

let test_generators () =
  Alcotest.(check int) "path edges" 9 (Cgraph.m (Gen.path 10));
  Alcotest.(check int) "cycle edges" 10 (Cgraph.m (Gen.cycle 10));
  Alcotest.(check int) "complete edges" 45 (Cgraph.m (Gen.complete 10));
  Alcotest.(check int) "star edges" 9 (Cgraph.m (Gen.star 10));
  let g = Gen.grid 4 5 in
  Alcotest.(check int) "grid n" 20 (Cgraph.n g);
  Alcotest.(check int) "grid m" 31 (Cgraph.m g);
  let t = Gen.random_tree ~seed:3 100 in
  Alcotest.(check int) "tree m = n-1" 99 (Cgraph.m t);
  let bd = Gen.bounded_degree ~seed:3 200 ~max_degree:4 in
  let maxdeg = ref 0 in
  for v = 0 to 199 do
    maxdeg := max !maxdeg (Cgraph.degree bd v)
  done;
  Alcotest.(check bool) "degree bound respected" true (!maxdeg <= 4);
  let sc = Gen.subdivided_clique ~q:4 ~sub:2 in
  (* 4 + 6 edges × 2 inner vertices; every original edge becomes a path *)
  Alcotest.(check int) "subdiv n" 16 (Cgraph.n sc);
  Alcotest.(check int) "subdiv m" 18 (Cgraph.m sc);
  Alcotest.(check (option int)) "subdiv distance" (Some 3) (Bfs.dist sc 0 1);
  let det1 = Gen.bounded_degree ~seed:9 100 ~max_degree:3 in
  let det2 = Gen.bounded_degree ~seed:9 100 ~max_degree:3 in
  Alcotest.(check bool) "generators deterministic" true (Cgraph.equal det1 det2)

let test_balanced_tree () =
  let t = Gen.balanced_tree ~branching:2 ~depth:3 in
  Alcotest.(check int) "nodes" 15 (Cgraph.n t);
  Alcotest.(check int) "edges" 14 (Cgraph.m t);
  Alcotest.(check (option int)) "leaf depth" (Some 3) (Bfs.dist t 0 14)

let test_remove_vertex () =
  let g = Gen.cycle 5 in
  let h, to_orig = Cgraph.remove_vertex g 2 in
  Alcotest.(check int) "n" 4 (Cgraph.n h);
  Alcotest.(check int) "m" 3 (Cgraph.m h);
  Alcotest.(check (list int)) "map" [ 0; 1; 3; 4 ] (Array.to_list to_orig)

let test_rel_encode () =
  (* R binary, S unary over domain {0..3} *)
  let db =
    Rel.create_db
      [ ("R", 2); ("S", 1) ]
      ~domain:4
      [ ("R", [ [| 0; 1 |]; [| 1; 2 |] ]); ("S", [ [| 3 |] ]) ]
  in
  Alcotest.(check bool) "mem_fact" true (Rel.mem_fact db "R" [| 0; 1 |]);
  Alcotest.(check bool) "not mem_fact" false (Rel.mem_fact db "R" [| 1; 0 |]);
  let e = Rel.encode db in
  let g = e.Rel.graph in
  (* domain 4 + 3 tuple nodes + (2+2+1) subdivision nodes *)
  Alcotest.(check int) "encoded size" 12 (Cgraph.n g);
  (* element 0 at distance 2 from its tuple node *)
  let tuple_nodes = Cgraph.color_members g ~color:(e.Rel.relation_color "R") in
  Alcotest.(check int) "two R-tuples" 2 (Array.length tuple_nodes);
  Alcotest.(check (option int)) "element-to-tuple distance" (Some 2)
    (Bfs.dist g 0 tuple_nodes.(0));
  (* elements marked *)
  Alcotest.(check int) "element color" 4
    (Array.length (Cgraph.color_members g ~color:e.Rel.element_color));
  (* adjacency graph is bipartite-ish: elements at even distance from
     each other *)
  Alcotest.(check (option int)) "dist 0-1 via tuple" (Some 4) (Bfs.dist g 0 1)

let prop_induced_consistent =
  QCheck.Test.make ~name:"induced subgraph = filtered edges" ~count:100
    QCheck.(pair small_int (list (pair (int_bound 19) (int_bound 19))))
    (fun (seed, pairs) ->
      let edges = List.filter (fun (u, v) -> u <> v) pairs in
      let g = Cgraph.create ~n:20 edges in
      let rng = Random.State.make [| seed |] in
      let xs =
        Array.of_list
          (List.filter (fun _ -> Random.State.bool rng) (List.init 20 Fun.id))
      in
      let sub, to_orig = Cgraph.induced g xs in
      let ok = ref true in
      for i = 0 to Cgraph.n sub - 1 do
        for j = 0 to Cgraph.n sub - 1 do
          if i <> j then
            if Cgraph.has_edge sub i j
               <> Cgraph.has_edge g to_orig.(i) to_orig.(j)
            then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "cgraph basics" `Quick test_cgraph_basic;
    Alcotest.test_case "induced subgraphs" `Quick test_induced;
    Alcotest.test_case "bfs" `Quick test_bfs;
    Alcotest.test_case "generators" `Quick test_generators;
    Alcotest.test_case "balanced tree" `Quick test_balanced_tree;
    Alcotest.test_case "remove vertex" `Quick test_remove_vertex;
    Alcotest.test_case "relational encoding A'(D)" `Quick test_rel_encode;
    QCheck_alcotest.to_alcotest prop_induced_consistent;
  ]
