examples/relational_db.mli:
