examples/quickstart.mli:
