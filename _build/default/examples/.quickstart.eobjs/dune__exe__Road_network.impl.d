examples/road_network.ml: Array Bitset Cgraph Fo Gen List Nd_core Nd_eval Nd_graph Nd_logic Nd_util Parse Printf Random Sys Unix
