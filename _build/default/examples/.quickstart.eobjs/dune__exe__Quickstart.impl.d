examples/quickstart.ml: Array Cgraph Fo Fun List Nd_core Nd_graph Nd_logic Nd_util Parse Printf
