examples/social_network.ml: Array Cgraph Fo Gen List Nd_core Nd_graph Nd_logic Parse Printf Random Sys Unix
