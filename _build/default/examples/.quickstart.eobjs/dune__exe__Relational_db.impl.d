examples/relational_db.ml: Array Cgraph List Nd_core Nd_eval Nd_graph Nd_logic Printf Rel
