(* fodb — command-line front end for the nowhere-enum library.

   Graphs come either from a generator spec ("grid:30x30", "tree:1000",
   "bdeg:5000:4", …) or from an edge-list file (one "u v" pair per
   line, optional "c <color> <vertex>" lines).  Queries use the FO⁺
   surface syntax of Nd_logic.Parse.

   Examples:
     fodb enumerate -g grid:20x20 -q "dist(x,y) <= 2" --limit 10
     fodb test      -g tree:500   -q "E(x,y)" --tuple 3,4
     fodb count     -g bdeg:2000:4 -q "C0(x) & dist(x,y) > 2" --colors 2
     fodb cover     -g grid:50x50 -r 2
     fodb splitter  -g clique:30 -r 1
     fodb stats     -g subdiv:8 *)

open Cmdliner
open Nd_graph

(* ---------------- graph loading ---------------- *)

let parse_spec spec =
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf
            "unknown graph spec %S (try grid:WxH, tree:N, path:N, cycle:N, \
             bdeg:N:D, planar:WxH, ktree:N:W, subdiv:Q, clique:N, star:N, \
             gnp:N:P, or a file path)"
            spec))
  in
  match String.split_on_char ':' spec with
  | [ "grid"; wh ] | [ "planar"; wh ] -> (
      match String.split_on_char 'x' wh with
      | [ w; h ] ->
          let w = int_of_string w and h = int_of_string h in
          if String.length spec >= 6 && String.sub spec 0 6 = "planar" then
            Gen.planar_grid ~seed:1 w h
          else Gen.grid w h
      | _ -> fail ())
  | [ "tree"; n ] -> Gen.random_tree ~seed:1 (int_of_string n)
  | [ "path"; n ] -> Gen.path (int_of_string n)
  | [ "cycle"; n ] -> Gen.cycle (int_of_string n)
  | [ "star"; n ] -> Gen.star (int_of_string n)
  | [ "clique"; n ] -> Gen.complete (int_of_string n)
  | [ "bdeg"; n; d ] ->
      Gen.bounded_degree ~seed:1 (int_of_string n) ~max_degree:(int_of_string d)
  | [ "ktree"; n; w ] ->
      Gen.partial_ktree ~seed:1 (int_of_string n) ~width:(int_of_string w)
        ~keep:0.6
  | [ "subdiv"; q ] ->
      let q = int_of_string q in
      Gen.subdivided_clique ~q ~sub:q
  | [ "gnp"; n; p ] ->
      Gen.erdos_renyi ~seed:1 (int_of_string n) ~p:(float_of_string p)
  | _ -> fail ()

let load_file path =
  let ic = open_in path in
  let edges = ref [] and colors = ref [] and maxv = ref (-1) in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char ' ' line with
         | [ "c"; col; v ] ->
             let v = int_of_string v in
             maxv := max !maxv v;
             colors := (int_of_string col, v) :: !colors
         | [ u; v ] ->
             let u = int_of_string u and v = int_of_string v in
             maxv := max !maxv (max u v);
             edges := (u, v) :: !edges
         | _ -> failwith ("bad line: " ^ line)
     done
   with End_of_file -> close_in ic);
  let n = !maxv + 1 in
  let ncolors =
    List.fold_left (fun acc (c, _) -> max acc (c + 1)) 0 !colors
  in
  let sets = Array.init ncolors (fun _ -> Nd_util.Bitset.create n) in
  List.iter (fun (c, v) -> Nd_util.Bitset.add sets.(c) v) !colors;
  Cgraph.create ~n ~colors:sets !edges

let load spec ~colors ~seed =
  let g = if Sys.file_exists spec then load_file spec else parse_spec spec in
  if colors > 0 && Cgraph.color_count g = 0 then
    Gen.randomly_color ~seed ~colors g
  else g

(* ---------------- common options ---------------- *)

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"SPEC" ~doc:"Graph spec or edge-list file.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"FO⁺ query.")

let colors_arg =
  Arg.(
    value & opt int 3
    & info [ "colors" ]
        ~doc:"Random colors to add when the graph has none (default 3).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for coloring.")

let radius_arg =
  Arg.(value & opt int 2 & info [ "r"; "radius" ] ~doc:"Radius parameter.")

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let with_graph_query spec query colors seed f =
  let g = load spec ~colors ~seed in
  let phi = Nd_logic.Parse.formula query in
  Printf.printf "graph: %d vertices, %d edges, %d colors\n" (Cgraph.n g)
    (Cgraph.m g) (Cgraph.color_count g);
  Printf.printf "query: %s (arity %d)\n" (Nd_logic.Fo.to_string phi)
    (Nd_logic.Fo.arity phi);
  (match Nd_core.Compile.compile phi with
  | Nd_core.Compile.Compiled c ->
      Printf.printf "compiled: radius %d, locality %d, %d disjuncts\n"
        c.Nd_core.Compile.radius c.locality (List.length c.disjuncts)
  | Nd_core.Compile.Fallback fb ->
      Printf.printf "fallback evaluation (%s)\n" fb.reason);
  f g phi

(* ---------------- subcommands ---------------- *)

let enumerate spec query colors seed limit =
  with_graph_query spec query colors seed (fun g phi ->
      let nx, prep = time (fun () -> Nd_core.Next.build g phi) in
      Printf.printf "preprocessing: %.3fs\n" prep;
      let printed = ref 0 in
      let _, t =
        time (fun () ->
            Nd_core.Enumerate.iter ?limit
              (fun sol ->
                incr printed;
                print_endline (Nd_util.Tuple.to_string sol))
              nx)
      in
      Printf.printf "%d solutions in %.3fs\n" !printed t)

let count spec query colors seed =
  with_graph_query spec query colors seed (fun g phi ->
      let r, t = time (fun () -> Nd_core.Count.count g phi) in
      Printf.printf "count: %d (%.3fs, %s)\n" r.Nd_core.Count.count t
        (match r.Nd_core.Count.method_ with
        | Nd_core.Count.Exact_pseudolinear -> "pseudo-linear counting"
        | Nd_core.Count.Via_enumeration -> "via enumeration"))

let test spec query colors seed tuple =
  with_graph_query spec query colors seed (fun g phi ->
      let tup =
        Array.of_list (List.map int_of_string (String.split_on_char ',' tuple))
      in
      let nx, prep = time (fun () -> Nd_core.Next.build g phi) in
      let ans, t = time (fun () -> Nd_core.Next.test nx tup) in
      Printf.printf "preprocessing: %.3fs\n%s ∈ q(G): %b  (%.6fs)\n" prep
        (Nd_util.Tuple.to_string tup) ans t)

let next spec query colors seed tuple =
  with_graph_query spec query colors seed (fun g phi ->
      let tup =
        Array.of_list (List.map int_of_string (String.split_on_char ',' tuple))
      in
      let nx, prep = time (fun () -> Nd_core.Next.build g phi) in
      let ans, t = time (fun () -> Nd_core.Next.next_solution nx tup) in
      Printf.printf "preprocessing: %.3fs\n" prep;
      (match ans with
      | Some s ->
          Printf.printf "smallest solution ≥ %s: %s  (%.6fs)\n"
            (Nd_util.Tuple.to_string tup) (Nd_util.Tuple.to_string s) t
      | None -> Printf.printf "no solution ≥ %s\n" (Nd_util.Tuple.to_string tup)))

let cover spec colors seed r =
  let g = load spec ~colors ~seed in
  let c, t = time (fun () -> Nd_nowhere.Cover.compute g ~r) in
  Printf.printf
    "(%d,%d)-neighborhood cover of %d vertices: %d bags, degree %d, Σ|X| = %d \
     (%.3fs)\n"
    r (2 * r) (Cgraph.n g)
    (Nd_nowhere.Cover.bag_count c)
    (Nd_nowhere.Cover.degree c) (Nd_nowhere.Cover.weight c) t;
  match Nd_nowhere.Cover.verify g c with
  | Ok () -> print_endline "cover properties verified"
  | Error e -> Printf.printf "INVALID COVER: %s\n" e

let splitter spec colors seed r =
  let g = load spec ~colors ~seed in
  Printf.printf "(λ,%d)-splitter game on %d vertices: " r (Cgraph.n g);
  match
    Nd_nowhere.Splitter.measured_lambda g ~r ~max_rounds:64
      ~splitter:Nd_nowhere.Splitter.splitter_center
  with
  | Some l -> Printf.printf "Splitter wins in %d rounds\n" l
  | None -> print_endline "Splitter does not win within 64 rounds"

let stats spec colors seed =
  let g = load spec ~colors ~seed in
  Printf.printf "vertices: %d\nedges: %d\ncolors: %d\n" (Cgraph.n g)
    (Cgraph.m g) (Cgraph.color_count g);
  let degs = Array.init (Cgraph.n g) (Cgraph.degree g) in
  Array.sort compare degs;
  let n = Array.length degs in
  if n > 0 then
    Printf.printf "degree: max %d, median %d\n" degs.(n - 1) degs.(n / 2);
  List.iter
    (fun r ->
      let p = Nd_nowhere.Wcol.profile g ~r in
      Printf.printf "weak %d-accessibility: max %d, mean %.2f\n" r
        p.Nd_nowhere.Wcol.max p.Nd_nowhere.Wcol.mean)
    [ 1; 2 ]

(* ---------------- command wiring ---------------- *)

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit" ] ~doc:"Stop after this many solutions.")

let tuple_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "tuple" ] ~docv:"T" ~doc:"Comma-separated vertex tuple.")

let cmd_enumerate =
  Cmd.v (Cmd.info "enumerate" ~doc:"Enumerate all solutions in order")
    Term.(const enumerate $ graph_arg $ query_arg $ colors_arg $ seed_arg $ limit_arg)

let cmd_count =
  Cmd.v (Cmd.info "count" ~doc:"Count solutions")
    Term.(const count $ graph_arg $ query_arg $ colors_arg $ seed_arg)

let cmd_test =
  Cmd.v (Cmd.info "test" ~doc:"Test whether a tuple is a solution")
    Term.(const test $ graph_arg $ query_arg $ colors_arg $ seed_arg $ tuple_arg)

let cmd_next =
  Cmd.v
    (Cmd.info "next" ~doc:"Smallest solution ≥ a given tuple (Theorem 2.3)")
    Term.(const next $ graph_arg $ query_arg $ colors_arg $ seed_arg $ tuple_arg)

let cmd_cover =
  Cmd.v (Cmd.info "cover" ~doc:"Compute and verify a neighborhood cover")
    Term.(const cover $ graph_arg $ colors_arg $ seed_arg $ radius_arg)

let cmd_splitter =
  Cmd.v (Cmd.info "splitter" ~doc:"Play the splitter game")
    Term.(const splitter $ graph_arg $ colors_arg $ seed_arg $ radius_arg)

let cmd_stats =
  Cmd.v (Cmd.info "stats" ~doc:"Graph sparsity statistics")
    Term.(const stats $ graph_arg $ colors_arg $ seed_arg)

let () =
  let doc = "FO query enumeration over nowhere dense graphs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "fodb" ~doc)
          [
            cmd_enumerate; cmd_count; cmd_test; cmd_next; cmd_cover;
            cmd_splitter; cmd_stats;
          ]))
