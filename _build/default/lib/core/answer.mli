(** The answering machinery of Lemma 5.2: after preprocessing a graph
    for a k-ary query [φ(x̄, x_k)], upon input of a (k-1)-tuple [ā] and
    a vertex [b], return the smallest [b' ≥ b] with [G ⊨ φ(ā, b')].

    Preprocessing (mirroring Section 5.2.1):
    + a {!Dist_index} with the compiled type threshold [r] (Step 2);
    + a neighborhood cover of radius
      [R = max(2r, k·r, (k-1)·r + L)] with kernels [K_{R-r}(X)]
      (Steps 3–4; the kernel radius is chosen so that membership in a
      kernel certifies distance ≤ r to the bag's assigned vertices,
      and exclusion certifies distance > r);
    + global evaluation of sentence literals (Step 5's [ξ] check);
    + per disjunct whose last-position component is a singleton: the
      label set [L = {v | G[X(v)] ⊨ ψ(v)}] (Step 12) and its skip
      pointers over the kernels (Step 13);
    + lazy bag-local contexts standing in for the per-bag λ-recursion
      of Steps 8–11 (see DESIGN.md).

    The answering phase follows Section 5.2.2: determine the prefix
    type [τ'], and per compatible disjunct either search within the
    anchor bag (Case II) or combine kernel-local scans with a SKIP
    lookup (Case I); return the minimum over disjuncts. *)

type t

val build : Nd_graph.Cgraph.t -> Compile.t -> t

val graph : t -> Nd_graph.Cgraph.t

val compiled : t -> Compile.t

val arity : t -> int

val next_in_last : t -> prefix:int array -> from:int -> int option
(** [prefix] has length k-1.  Returns the smallest [b' ≥ from] with
    [G ⊨ φ(prefix, b')], or [None]. *)

val holds : t -> int array -> bool
(** Corollary 2.4 for this query: test a full k-tuple. *)

type work = {
  mutable scan_steps : int;  (** candidates examined in bag/kernel scans *)
  mutable skip_queries : int;
  mutable dist_tests : int;
  mutable local_sats : int;
}

val work : t -> work
(** Cumulative answering-phase work counters (for the benches). *)

val reset_work : t -> unit

val use_skip : t -> bool -> unit
(** Ablation hook (experiment A1): with [false], Case I falls back to a
    linear scan of the label set instead of the SKIP pointers. *)
