open Nd_util
open Nd_graph
open Nd_logic

type result = {
  graph : Cgraph.t;
  to_orig : int array;
  query : Fo.t;
  dist_color : int -> int;
}

let apply g ~s ~query ~pinned =
  let fv = Fo.free_vars query in
  List.iter
    (fun y ->
      if not (List.mem y fv) then
        invalid_arg ("Removal.apply: pinned variable " ^ y ^ " is not free"))
    pinned;
  let dmax = max 1 (Fo.max_dist query) in
  let base_colors = Cgraph.color_count g in
  let dist_color i =
    if i < 1 || i > dmax then invalid_arg "Removal.dist_color";
    base_colors + i - 1
  in
  (* H: remove s, append D_1 … D_dmax *)
  let h0, to_orig = Cgraph.remove_vertex g s in
  let dist_s = Bfs.dist_upto g s ~radius:dmax in
  let extra =
    Array.init dmax (fun idx ->
        let i = idx + 1 in
        let bs = Bitset.create (Cgraph.n h0) in
        Array.iteri
          (fun local orig ->
            if dist_s.(orig) >= 0 && dist_s.(orig) <= i then
              Bitset.add bs local)
          to_orig;
        bs)
  in
  let graph = Cgraph.with_extra_colors h0 extra in
  (* rewrite, tracking which variables denote s *)
  let rec go pset phi =
    let is_s x = List.mem x pset in
    match phi with
    | Fo.True -> Fo.True
    | Fo.False -> Fo.False
    | Fo.Eq (x, y) -> (
        match (is_s x, is_s y) with
        | true, true -> Fo.True
        | false, false -> Fo.Eq (x, y)
        | _ -> Fo.False (* a non-removed variable never denotes s *))
    | Fo.Edge (x, y) -> (
        match (is_s x, is_s y) with
        | true, true -> Fo.False
        | true, false -> Fo.Color (dist_color 1, y)
        | false, true -> Fo.Color (dist_color 1, x)
        | false, false -> Fo.Edge (x, y))
    | Fo.Color (c, x) ->
        if is_s x then
          if c < Cgraph.color_count g && Cgraph.has_color g ~color:c s then
            Fo.True
          else Fo.False
        else Fo.Color (c, x)
    | Fo.Dist_le (x, y, d) -> (
        match (is_s x, is_s y) with
        | true, true -> Fo.True
        | true, false ->
            if d = 0 then Fo.False
            else Fo.Color (dist_color (min d dmax), y)
        | false, true ->
            if d = 0 then Fo.False
            else Fo.Color (dist_color (min d dmax), x)
        | false, false ->
            if x = y then Fo.True
            else begin
              (* a shortest path may pass through s *)
              let via = ref [] in
              for i = 1 to d - 1 do
                let j = d - i in
                if j >= 1 then
                  via :=
                    Fo.And
                      [
                        Fo.Color (dist_color i, x); Fo.Color (dist_color j, y);
                      ]
                    :: !via
              done;
              Fo.disj (Fo.Dist_le (x, y, d) :: List.rev !via)
            end)
    | Fo.Not p -> Fo.Not (go pset p)
    | Fo.And ps -> Fo.And (List.map (go pset) ps)
    | Fo.Or ps -> Fo.Or (List.map (go pset) ps)
    | Fo.Exists (x, p) ->
        (* a binder shadows any pinning of the same name *)
        let pset' = List.filter (( <> ) x) pset in
        Fo.disj [ Fo.Exists (x, go pset' p); go (x :: pset') p ]
    | Fo.Forall (x, p) ->
        let pset' = List.filter (( <> ) x) pset in
        Fo.conj [ Fo.Forall (x, go pset' p); go (x :: pset') p ]
  in
  let query = Fo.simplify (go pinned query) in
  { graph; to_orig; query; dist_color }
