(** The Removal Lemma (Lemma 5.5).

    Given a colored graph [G], a node [s], a query [φ(z̄)] and a subset
    [ȳ ⊆ z̄] of its free variables, produce a recoloring [H] of
    [G ∖ {s}] and a query [φ'(z̄ ∖ ȳ)] such that for every tuple [b̄]
    whose [ȳ]-positions hold exactly [s]:

    [G ⊨ φ(b̄)  ⟺  H ⊨ φ'(b̄ ∖ ȳ)].

    The recoloring adds, for [1 ≤ i ≤ D] (the largest distance constant
    of [φ], at least 1), the color [D_i = {w ≠ s | dist_G(w,s) ≤ i}].
    The rewriting replaces atoms mentioning removed variables by color
    atoms, repairs distance atoms whose witnessing paths may pass
    through [s] ([dist_G(x,y) ≤ d  ⟺  dist_H(x,y) ≤ d ∨ ⋁_{i+j≤d}
    D_i(x)∧D_j(y)]), and splits every quantifier into its [≠ s] and
    [= s] branches.  The q-rank of [φ'] does not exceed that of [φ]. *)

type result = {
  graph : Nd_graph.Cgraph.t;  (** [H]: [G∖{s}] with the [D_i] colors appended. *)
  to_orig : int array;  (** vertex map [H → G]. *)
  query : Nd_logic.Fo.t;  (** [φ']. *)
  dist_color : int -> int;  (** [i ↦] index of color [D_i], [1 ≤ i ≤ D]. *)
}

val apply :
  Nd_graph.Cgraph.t ->
  s:int ->
  query:Nd_logic.Fo.t ->
  pinned:Nd_logic.Fo.var list ->
  result
(** [pinned] must be a subset of the free variables of [query]. *)
