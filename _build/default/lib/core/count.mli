(** Counting query solutions without enumerating them.

    The paper's introduction motivates enumeration by the observation
    that [|q(G)|] can be far larger than [‖G‖], and cites
    Grohe–Schweikardt (reference [18]) for the companion result that
    {e counting} solutions over nowhere dense classes is possible in
    pseudo-linear time.  This module realizes that companion result for
    the compiled fragment at arities ≤ 2:

    - arity 0/1: the sentence value / the label-set size;
    - arity 2, per distance type (types are mutually exclusive, clause
      overlaps within a type handled by inclusion–exclusion):
      {ul
      {- {e close} types ([dist(x,y) ≤ r]): direct summation over the
         radius-r balls, [O(Σ|N_r(a)|)];}
      {- {e far} types: [|A|·|B| − Σ_{a∈A} |N_r(a) ∩ B|], where A and B
         are the per-position label sets — counting the quadratically
         many far pairs in pseudo-linear time.}}

    Queries of higher arity or outside the fragment are counted by
    enumeration (reported in the result). *)

type method_ =
  | Exact_pseudolinear  (** counted without materializing solutions *)
  | Via_enumeration

type result = { count : int; method_ : method_ }

val count : Nd_graph.Cgraph.t -> Nd_logic.Fo.t -> result
(** Count [|q(G)|].  For a sentence the count is 0 or 1. *)
