open Nd_logic

type t = Sentence of bool | Query of Answer.t

let build g phi =
  if Fo.is_sentence phi then
    Sentence (Nd_eval.Naive.model_check (Nd_eval.Naive.ctx g) phi)
  else Query (Answer.build g (Compile.compile phi))

let arity = function Sentence _ -> 0 | Query a -> Answer.arity a

let test t a =
  match t with
  | Sentence b ->
      if a <> [||] then invalid_arg "Tester.test: sentence takes no tuple";
      b
  | Query ans -> Answer.holds ans a

let holds_sentence = function
  | Sentence b -> b
  | Query _ -> invalid_arg "Tester.holds_sentence: not a sentence"
