open Nd_graph
open Nd_logic
open Nd_nowhere

type method_ = Exact_pseudolinear | Via_enumeration

type result = { count : int; method_ : method_ }

let via_enumeration g phi =
  { count = Enumerate.count (Next.build g phi); method_ = Via_enumeration }

(* ------------------------------------------------------------------ *)

let ie_cap = 6 (* inclusion–exclusion subset limit per distance type *)

(* evaluate a local formula in the bag of its first bound vertex;
   soundness is the usual cover-locality argument *)
let local_holds local (cover : Cover.t) phi env =
  match phi with
  | Fo.True -> true
  | Fo.False -> false
  | _ -> (
      let env =
        List.filter (fun (x, _) -> List.mem x (Fo.free_vars phi)) env
      in
      match env with
      | [] -> invalid_arg "Count: closed local formula"
      | (_, v) :: _ ->
          let bag = cover.Cover.assigned.(v) in
          Local.sat local ~bag phi env)

let exact_compiled g (c : Compile.compiled) =
  let k = Array.length c.Compile.vars in
  let r = c.Compile.radius in
  let cover = Cover.compute g ~r:(max (2 * r) (r + c.Compile.locality)) in
  let local = Local.make g cover in
  let srch = Bfs.searcher g in
  let n = Cgraph.n g in
  let gctx = Nd_eval.Naive.ctx g in
  let sentence_ok (dj : Compile.disjunct) =
    List.for_all
      (fun (phi, pol) -> Nd_eval.Naive.model_check gctx phi = pol)
      dj.Compile.sentences
  in
  let live = List.filter sentence_ok c.Compile.disjuncts in
  let vars = c.Compile.vars in
  let sat_unary phi v = local_holds local cover phi [ (List.nth (Fo.free_vars phi) 0, v) ]
  and sat_pair phi a b =
    local_holds local cover phi [ (vars.(0), a); (vars.(1), b) ]
  in
  let sat_unary phi v =
    match phi with Fo.True -> true | Fo.False -> false | _ -> sat_unary phi v
  in
  if k = 1 then begin
    (* a vertex counts if any disjunct's unary formula holds at it *)
    let formulas =
      List.map
        (fun (dj : Compile.disjunct) ->
          match dj.Compile.locals with
          | [ (_, phi) ] -> phi
          | _ -> assert false)
        live
    in
    let count = ref 0 in
    for v = 0 to n - 1 do
      if List.exists (fun phi -> sat_unary phi v) formulas then incr count
    done;
    Some { count = !count; method_ = Exact_pseudolinear }
  end
  else begin
    (* k = 2: group clauses by distance type; the two types partition
       the pairs, and clause overlaps within a type are handled by
       inclusion–exclusion *)
    let close_clauses = ref [] and far_clauses = ref [] in
    List.iter
      (fun (dj : Compile.disjunct) ->
        if Dtype.mem dj.Compile.tau 0 1 then begin
          match dj.Compile.locals with
          | [ (_, phi) ] -> close_clauses := phi :: !close_clauses
          | _ -> assert false
        end
        else begin
          match dj.Compile.locals with
          | [ ([ 0 ], px); ([ 1 ], py) ] ->
              far_clauses := (px, py) :: !far_clauses
          | [ ([ 1 ], py); ([ 0 ], px) ] ->
              far_clauses := (px, py) :: !far_clauses
          | _ -> assert false
        end)
      live;
    if
      List.length !close_clauses > ie_cap || List.length !far_clauses > ie_cap
    then None
    else begin
      let subsets xs =
        List.filter
          (( <> ) [])
          (List.fold_left
             (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
             [ [] ] xs)
      in
      let sign s = if List.length s mod 2 = 1 then 1 else -1 in
      (* close pairs: distance ≤ r (including a = b), O(Σ|N_r|) *)
      let close_count conj_phis =
        let phi = Fo.conj conj_phis in
        match phi with
        | Fo.False -> 0
        | _ ->
            let total = ref 0 in
            for a = 0 to n - 1 do
              let ball = Bfs.sball srch a ~radius:r in
              Array.iter
                (fun b ->
                  if
                    match phi with
                    | Fo.True -> true
                    | _ -> sat_pair phi a b
                  then incr total)
                ball
            done;
            !total
      in
      let close =
        List.fold_left
          (fun acc s -> acc + (sign s * close_count s))
          0
          (subsets !close_clauses)
      in
      (* far pairs: |A|·|B| minus the close (A,B) pairs *)
      let far_count s =
        let px = Fo.conj (List.map fst s) and py = Fo.conj (List.map snd s) in
        let a_flag = Array.init n (fun v -> sat_unary px v) in
        let b_flag = Array.init n (fun v -> sat_unary py v) in
        let na =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a_flag
        in
        let nb =
          Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 b_flag
        in
        let close_ab = ref 0 in
        for a = 0 to n - 1 do
          if a_flag.(a) then
            Array.iter
              (fun b -> if b_flag.(b) then incr close_ab)
              (Bfs.sball srch a ~radius:r)
        done;
        (na * nb) - !close_ab
      in
      let far =
        List.fold_left
          (fun acc s -> acc + (sign s * far_count s))
          0
          (subsets !far_clauses)
      in
      Some { count = close + far; method_ = Exact_pseudolinear }
    end
  end

let count g phi =
  let fvs = Fo.free_vars phi in
  if fvs = [] then
    {
      count =
        (if Nd_eval.Naive.model_check (Nd_eval.Naive.ctx g) phi then 1 else 0);
      method_ = Exact_pseudolinear;
    }
  else
    match Compile.compile phi with
    | Compile.Fallback _ -> via_enumeration g phi
    | Compile.Compiled c ->
        if Array.length c.Compile.vars > 2 then via_enumeration g phi
        else begin
          match exact_compiled g c with
          | Some r -> r
          | None -> via_enumeration g phi
        end
