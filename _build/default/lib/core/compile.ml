open Nd_logic

type disjunct = {
  tau : Dtype.t;
  locals : (int list * Fo.t) list;
  sentences : (Fo.t * bool) list;
}

type compiled = {
  query : Fo.t;
  vars : Fo.var array;
  radius : int;
  locality : int;
  disjuncts : disjunct list;
}

type t =
  | Compiled of compiled
  | Fallback of { query : Fo.t; vars : Fo.var array; reason : string }

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* ------------------------------------------------------------------ *)
(* Guardedness analysis.

   A quantified block is {e guarded-local} when every ∃-variable is
   linked to an outer variable by a positive distance/edge/equality
   guard present in every disjunct of its body, and dually every
   ∀-variable is released by a negative guard in every conjunct.  The
   analysis returns β(v) bounds (how far each variable can range from
   the block's free tuple) and the block locality L = β_max + D_max. *)

let atom_weight = function
  | Fo.Eq _ -> Some 0
  | Fo.Edge _ -> Some 1
  | Fo.Dist_le (_, _, d) -> Some d
  | _ -> None

let atom_vars = function
  | Fo.Eq (x, y) | Fo.Edge (x, y) | Fo.Dist_le (x, y, _) -> Some (x, y)
  | Fo.Color (_, x) -> Some (x, x)
  | _ -> None

(* smallest bound such that [phi ⟹ dist(z, known) ≤ bound]; None if no
   syntactic guarantee.  [beta]: bounds for the known variables. *)
let rec guard_bound phi z beta =
  match phi with
  | Fo.And ps ->
      List.fold_left
        (fun acc p ->
          match (acc, guard_bound p z beta) with
          | Some a, Some b -> Some (min a b)
          | Some a, None -> Some a
          | None, r -> r)
        None ps
  | Fo.Or ps ->
      (* every disjunct must guard z *)
      List.fold_left
        (fun acc p ->
          match (acc, guard_bound p z beta) with
          | Some a, Some b -> Some (max a b)
          | _ -> None)
        (Some 0) ps
      |> fun r -> if ps = [] then None else r
  | Fo.Exists (_, p) | Fo.Forall (_, p) -> guard_bound p z beta
  | (Fo.Eq _ | Fo.Edge _ | Fo.Dist_le _) as atom -> (
      match (atom_vars atom, atom_weight atom) with
      | Some (x, y), Some w ->
          let other = if x = z then Some y else if y = z then Some x else None in
          (match other with
          | Some v when v <> z -> (
              match List.assoc_opt v beta with
              | Some bv -> Some (bv + w)
              | None -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* smallest bound such that [dist(z, known) > bound ⟹ phi]; used for
   universal variables: far z must satisfy the body vacuously. *)
let rec coguard_bound phi z beta =
  match phi with
  | Fo.Or ps ->
      List.fold_left
        (fun acc p ->
          match (acc, coguard_bound p z beta) with
          | Some a, Some b -> Some (min a b)
          | Some a, None -> Some a
          | None, r -> r)
        None ps
  | Fo.And ps ->
      List.fold_left
        (fun acc p ->
          match (acc, coguard_bound p z beta) with
          | Some a, Some b -> Some (max a b)
          | _ -> None)
        (Some 0) ps
      |> fun r -> if ps = [] then None else r
  | Fo.Forall (_, p) -> coguard_bound p z beta
  | Fo.Not atom -> (
      match (atom_vars atom, atom_weight atom) with
      | Some (x, y), Some w ->
          let other = if x = z then Some y else if y = z then Some x else None in
          (match other with
          | Some v when v <> z -> (
              match List.assoc_opt v beta with
              | Some bv -> Some (bv + w)
              | None -> None)
          | _ -> None)
      | _ -> None)
  | _ ->
      (* an atom or block that does not mention z is not a co-guard by
         itself; if it does mention z we cannot release it *)
      None

(* Check guarded locality of an NNF block whose free variables are
   [fvs]; returns the locality L. *)
let block_locality phi fvs =
  let dmax = ref 1 in
  let bmax = ref 0 in
  let rec go phi beta =
    match phi with
    | Fo.True | Fo.False -> ()
    | Fo.Eq _ | Fo.Edge _ | Fo.Dist_le _ | Fo.Color _ ->
        (match atom_weight phi with Some w -> dmax := max !dmax w | None -> ());
        (match atom_vars phi with
        | Some (x, y) ->
            List.iter
              (fun v ->
                if not (List.mem_assoc v beta) then
                  fail "unbound variable %s in block" v)
              [ x; y ]
        | None -> ())
    | Fo.Not p -> go p beta
    | Fo.And ps | Fo.Or ps -> List.iter (fun p -> go p beta) ps
    | Fo.Exists (z, p) -> (
        let beta = List.remove_assoc z beta in
        match guard_bound p z beta with
        | Some b ->
            bmax := max !bmax b;
            go p ((z, b) :: beta)
        | None -> fail "existential variable %s is unguarded" z)
    | Fo.Forall (z, p) -> (
        let beta = List.remove_assoc z beta in
        match coguard_bound p z beta with
        | Some b ->
            bmax := max !bmax b;
            go p ((z, b) :: beta)
        | None -> fail "universal variable %s is not co-guarded" z)
  in
  go phi (List.map (fun v -> (v, 0)) fvs);
  !bmax + !dmax

(* ------------------------------------------------------------------ *)
(* Link analysis: lower bounds forced between the free variables of a
   block — [block ⟹ dist(x,y) ≤ link x y].  Conservative: collects
   positive guards reachable through ∧ and ∃ only; ∨ takes the
   pointwise maximum over branches. *)

let link_inf = max_int / 4

let link_matrix phi fvs =
  let inf = link_inf in
  let m = List.length fvs in
  (* matrices over fvs ∪ bound vars would be cleaner; we instead run a
     small all-pairs closure over all variables of the block *)
  let allv = Fo.all_vars phi in
  let nv = List.length allv in
  let vidx v =
    let rec go i = function
      | [] -> assert false
      | w :: _ when w = v -> i
      | _ :: r -> go (i + 1) r
    in
    go 0 allv
  in
  let rec collect phi =
    (* returns a nv×nv bound matrix *)
    let base () = Array.make_matrix nv nv inf in
    match phi with
    | Fo.And ps | Fo.Exists (_, Fo.And ps) ->
        let ms = List.map collect ps in
        let m0 = base () in
        List.iter
          (fun mm ->
            for i = 0 to nv - 1 do
              for j = 0 to nv - 1 do
                if mm.(i).(j) < m0.(i).(j) then m0.(i).(j) <- mm.(i).(j)
              done
            done)
          ms;
        m0
    | Fo.Exists (_, p) -> collect p
    | Fo.Or ps ->
        let ms = List.map collect ps in
        let m0 = base () in
        (match ms with
        | [] -> m0
        | first :: rest ->
            for i = 0 to nv - 1 do
              for j = 0 to nv - 1 do
                m0.(i).(j) <-
                  List.fold_left
                    (fun acc mm -> max acc mm.(i).(j))
                    first.(i).(j) rest
              done
            done;
            m0)
    | Fo.Eq (x, y) ->
        let m0 = base () in
        m0.(vidx x).(vidx y) <- 0;
        m0.(vidx y).(vidx x) <- 0;
        m0
    | Fo.Edge (x, y) ->
        let m0 = base () in
        m0.(vidx x).(vidx y) <- 1;
        m0.(vidx y).(vidx x) <- 1;
        m0
    | Fo.Dist_le (x, y, d) ->
        let m0 = base () in
        m0.(vidx x).(vidx y) <- d;
        m0.(vidx y).(vidx x) <- d;
        m0
    | _ -> base ()
  in
  let mat = collect phi in
  (* Floyd–Warshall closure *)
  for k = 0 to nv - 1 do
    for i = 0 to nv - 1 do
      for j = 0 to nv - 1 do
        if mat.(i).(k) + mat.(k).(j) < mat.(i).(j) then
          mat.(i).(j) <- mat.(i).(k) + mat.(k).(j)
      done
    done
  done;
  let res = Array.make_matrix m m inf in
  List.iteri
    (fun i v ->
      List.iteri (fun j w -> res.(i).(j) <- mat.(vidx v).(vidx w)) fvs)
    fvs;
  res

(* ------------------------------------------------------------------ *)
(* Boolean skeleton over blocks. *)

type bexpr =
  | BTrue
  | BFalse
  | BLit of int * bool
  | BAnd of bexpr list
  | BOr of bexpr list

let extract nnf =
  let blocks = ref [] in
  let count = ref 0 in
  let get_id bphi =
    let rec find = function
      | [] ->
          let id = !count in
          incr count;
          blocks := (bphi, id) :: !blocks;
          id
      | (p, id) :: _ when Fo.equal p bphi -> id
      | _ :: rest -> find rest
    in
    find !blocks
  in
  let rec go = function
    | Fo.True -> BTrue
    | Fo.False -> BFalse
    | Fo.And ps -> BAnd (List.map go ps)
    | Fo.Or ps -> BOr (List.map go ps)
    | Fo.Not atom -> BLit (get_id atom, false)
    | (Fo.Eq _ | Fo.Edge _ | Fo.Color _ | Fo.Dist_le _) as a ->
        BLit (get_id a, true)
    | (Fo.Exists _ | Fo.Forall _) as q -> BLit (get_id q, true)
  in
  let e = go nnf in
  let arr = Array.make !count Fo.True in
  List.iter (fun (p, id) -> arr.(id) <- p) !blocks;
  (e, arr)

let rec peval det = function
  | BTrue -> BTrue
  | BFalse -> BFalse
  | BLit (i, p) -> (
      match det i with
      | Some v -> if v = p then BTrue else BFalse
      | None -> BLit (i, p))
  | BAnd es ->
      let es = List.map (peval det) es in
      if List.mem BFalse es then BFalse
      else begin
        match List.filter (fun e -> e <> BTrue) es with
        | [] -> BTrue
        | [ e ] -> e
        | es -> BAnd es
      end
  | BOr es ->
      let es = List.map (peval det) es in
      if List.mem BTrue es then BTrue
      else begin
        match List.filter (fun e -> e <> BFalse) es with
        | [] -> BFalse
        | [ e ] -> e
        | es -> BOr es
      end

let dnf_cap = 256

(* clauses as sorted (id, polarity) lists; None = contradictory clause *)
let clause_add lit clause =
  let rec go = function
    | [] -> Some [ lit ]
    | (i, p) :: rest when i = fst lit ->
        if p = snd lit then Some ((i, p) :: rest) else None
    | ((i, _) as hd) :: rest when i < fst lit -> (
        match go rest with Some r -> Some (hd :: r) | None -> None)
    | rest -> Some (lit :: rest)
  in
  go clause

let dnf e =
  let rec go = function
    | BTrue -> [ [] ]
    | BFalse -> []
    | BLit (i, p) -> [ [ (i, p) ] ]
    | BOr es -> List.concat_map go es
    | BAnd es ->
        List.fold_left
          (fun acc e ->
            let d = go e in
            let prod =
              List.concat_map
                (fun clause ->
                  List.filter_map
                    (fun clause' ->
                      List.fold_left
                        (fun acc lit ->
                          match acc with
                          | None -> None
                          | Some c -> clause_add lit c)
                        (Some clause) clause')
                    d)
                acc
            in
            if List.length prod > dnf_cap then fail "DNF blow-up";
            prod)
          [ [] ] es
  in
  let clauses = go e in
  List.sort_uniq compare clauses

(* ------------------------------------------------------------------ *)

let compile query =
  let fvs = Fo.free_vars query in
  let vars = Array.of_list fvs in
  let fallback reason = Fallback { query; vars; reason } in
  if fvs = [] then fallback "sentence: handled by direct model checking"
  else if Array.length vars > 4 then
    fallback "arity exceeds the distance-type enumeration limit (4)"
  else begin
    try
      let k = Array.length vars in
      let pos v =
        let rec go i = if vars.(i) = v then i else go (i + 1) in
        go 0
      in
      let nnf = Fo.miniscope (Fo.nnf (Fo.simplify query)) in
      let bexpr, blocks = extract nnf in
      let infos =
        Array.map
          (fun bphi ->
            let bfvs = Fo.free_vars bphi in
            let closed = bfvs = [] in
            let locality = if closed then 0 else block_locality bphi bfvs in
            (bfvs, closed, locality))
          blocks
      in
      (* link matrices for open quantified blocks spanning ≥ 2 variables *)
      let links =
        Array.mapi
          (fun i bphi ->
            let bfvs, closed, _ = infos.(i) in
            if closed || List.length bfvs < 2 then None
            else
              match bphi with
              | Fo.Exists _ | Fo.Forall _ -> Some (link_matrix bphi bfvs)
              | _ -> None)
          blocks
      in
      (* The type threshold must dominate every distance atom between
         free variables and every finite link bound a quantified block
         forces between its free variables, so that cross-component
         blocks are refutable. *)
      let radius =
        let r = ref (max 1 (Fo.max_dist query)) in
        Array.iter
          (function
            | None -> ()
            | Some m ->
                Array.iter
                  (Array.iter (fun d -> if d < link_inf then r := max !r d))
                  m)
          links;
        !r
      in
      let locality =
        Array.fold_left (fun acc (_, _, l) -> max acc l) radius infos
      in
      let disjuncts = ref [] in
      List.iter
        (fun tau ->
          let comps = Dtype.components tau in
          let comp_of = Array.make k (-1) in
          List.iteri
            (fun ci comp -> List.iter (fun p -> comp_of.(p) <- ci) comp)
            comps;
          let crosses bfvs =
            let cs = List.sort_uniq compare
                       (List.map (fun v -> comp_of.(pos v)) bfvs) in
            List.length cs > 1
          in
          (* Determine cross-component blocks under this type.  A block
             we cannot refute is kept as a literal and only causes a
             fallback if it survives into some DNF clause — often the
             clause dies through another determined literal first
             (e.g. an edge atom forcing the components together). *)
          let problematic : (int, string) Hashtbl.t = Hashtbl.create 4 in
          let det i =
            let bfvs, closed, _ = infos.(i) in
            if closed then None
            else begin
              match blocks.(i) with
              (* Atoms between two free positions are determined by the
                 type wherever possible: a τ-edge certifies dist ≤ r,
                 its absence certifies dist > r — in particular a local
                 formula can never contradict its own type. *)
              | (Fo.Eq (u, v) | Fo.Edge (u, v)) when u <> v ->
                  if Dtype.mem tau (pos u) (pos v) then None else Some false
              | Fo.Dist_le (u, v, d) when u <> v ->
                  if Dtype.mem tau (pos u) (pos v) then
                    if d >= radius then Some true else None
                  else if d <= radius then Some false
                  else begin
                    if crosses bfvs then
                      Hashtbl.replace problematic i
                        "cross-component distance atom beyond radius";
                    None
                  end
              | (Fo.Exists _ | Fo.Forall _) when crosses bfvs -> (
                  match links.(i) with
                  | None ->
                      Hashtbl.replace problematic i
                        "cross-component block without link bound";
                      None
                  | Some m ->
                      let falsified = ref false in
                      List.iteri
                        (fun a va ->
                          List.iteri
                            (fun b vb ->
                              if
                                a < b
                                && comp_of.(pos va) <> comp_of.(pos vb)
                                && m.(a).(b) <= radius
                              then falsified := true)
                            bfvs)
                        bfvs;
                      if !falsified then Some false
                      else begin
                        Hashtbl.replace problematic i
                          "cross-component block not refutable";
                        None
                      end)
              | _ ->
                  if crosses bfvs then
                    Hashtbl.replace problematic i
                      "unexpected cross-component block";
                  None
            end
          in
          let reduced = peval det bexpr in
          let clauses = dnf reduced in
          List.iter
            (fun clause ->
              List.iter
                (fun (i, _) ->
                  match Hashtbl.find_opt problematic i with
                  | Some reason -> fail "%s" reason
                  | None -> ())
                clause)
            clauses;
          List.iter
            (fun clause ->
              let sentences =
                List.filter_map
                  (fun (i, p) ->
                    let _, closed, _ = infos.(i) in
                    if closed then Some (blocks.(i), p) else None)
                  clause
              in
              let locals =
                List.map
                  (fun comp ->
                    let lits =
                      List.filter_map
                        (fun (i, p) ->
                          let bfvs, closed, _ = infos.(i) in
                          if closed then None
                          else if comp_of.(pos (List.hd bfvs))
                                  = comp_of.(List.hd comp)
                          then Some (if p then blocks.(i) else Fo.Not blocks.(i))
                          else None)
                        clause
                    in
                    (comp, Fo.conj lits))
                  comps
              in
              disjuncts := { tau; locals; sentences } :: !disjuncts)
            clauses)
        (Dtype.all k);
      Compiled
        { query; vars; radius; locality; disjuncts = List.rev !disjuncts }
    with Fail reason -> fallback reason
  end

let vars = function Compiled c -> c.vars | Fallback f -> f.vars

let arity t = Array.length (vars t)

let pp fmt = function
  | Fallback f -> Format.fprintf fmt "fallback (%s): %a" f.reason Fo.pp f.query
  | Compiled c ->
      Format.fprintf fmt "@[<v>compiled r=%d L=%d, %d disjuncts@," c.radius
        c.locality (List.length c.disjuncts);
      List.iter
        (fun d ->
          Format.fprintf fmt "  %a:@," Dtype.pp d.tau;
          List.iter
            (fun (comp, phi) ->
              Format.fprintf fmt "    comp %s: %a@,"
                (String.concat "," (List.map string_of_int comp))
                Fo.pp phi)
            d.locals;
          List.iter
            (fun (phi, p) ->
              Format.fprintf fmt "    sentence %s: %a@,"
                (if p then "+" else "-")
                Fo.pp phi)
            d.sentences)
        c.disjuncts;
      Format.fprintf fmt "@]"
