open Nd_graph

let to_seq t =
  let n = Cgraph.n (Next.graph t) in
  let k = Next.arity t in
  let rec from tup () =
    match tup with
    | None -> Seq.Nil
    | Some tup -> (
        match Next.next_solution t tup with
        | None -> Seq.Nil
        | Some sol -> Seq.Cons (sol, from (Nd_util.Tuple.succ ~n sol)))
  in
  if n = 0 then Seq.empty else from (Some (Nd_util.Tuple.min k))

let iter ?limit f t =
  let count = ref 0 in
  let seq = to_seq t in
  let rec go seq =
    match limit with
    | Some l when !count >= l -> ()
    | _ -> (
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (sol, rest) ->
            incr count;
            f sol;
            go rest)
  in
  go seq

let to_list ?limit t =
  let acc = ref [] in
  iter ?limit (fun sol -> acc := sol :: !acc) t;
  List.rev !acc

let count t =
  let c = ref 0 in
  iter (fun _ -> incr c) t;
  !c

let delays t ~first f =
  let ds = ref [] in
  let t0 = Unix.gettimeofday () in
  let last = ref t0 in
  let saw_first = ref false in
  iter
    (fun sol ->
      let now = Unix.gettimeofday () in
      if not !saw_first then begin
        first := now -. t0;
        saw_first := true
      end
      else ds := (now -. !last) :: !ds;
      last := now;
      f sol)
    t;
  Array.of_list (List.rev !ds)
