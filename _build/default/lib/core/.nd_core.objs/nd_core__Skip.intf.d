lib/core/skip.mli:
