lib/core/answer.ml: Array Bfs Bitset Cgraph Compile Cover Dist_index Dtype Fo Hashtbl Kernel List Local Nd_eval Nd_graph Nd_logic Nd_nowhere Nd_util Skip Sorted
