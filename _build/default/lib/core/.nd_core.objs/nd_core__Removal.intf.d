lib/core/removal.mli: Nd_graph Nd_logic
