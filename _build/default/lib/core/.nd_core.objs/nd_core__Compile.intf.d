lib/core/compile.mli: Format Nd_logic
