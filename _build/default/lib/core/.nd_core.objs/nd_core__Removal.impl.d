lib/core/removal.ml: Array Bfs Bitset Cgraph Fo List Nd_graph Nd_logic Nd_util
