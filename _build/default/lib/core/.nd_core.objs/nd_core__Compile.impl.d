lib/core/compile.ml: Array Dtype Fo Format Hashtbl List Nd_logic Printf String
