lib/core/count.ml: Array Bfs Cgraph Compile Cover Dtype Enumerate Fo List Local Nd_eval Nd_graph Nd_logic Nd_nowhere Next
