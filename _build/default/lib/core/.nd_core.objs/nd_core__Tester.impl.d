lib/core/tester.ml: Answer Compile Fo Nd_eval Nd_logic
