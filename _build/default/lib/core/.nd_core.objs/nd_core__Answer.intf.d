lib/core/answer.mli: Compile Nd_graph
