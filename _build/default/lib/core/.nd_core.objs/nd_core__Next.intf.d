lib/core/next.mli: Answer Nd_graph Nd_logic
