lib/core/next.ml: Answer Array Cgraph Compile Fo List Nd_graph Nd_logic Nd_util
