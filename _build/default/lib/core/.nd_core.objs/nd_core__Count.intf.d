lib/core/count.mli: Nd_graph Nd_logic
