lib/core/skip.ml: Array Hashtbl List Nd_util Queue Sorted
