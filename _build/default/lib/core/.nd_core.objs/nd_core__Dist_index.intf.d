lib/core/dist_index.mli: Nd_graph
