lib/core/enumerate.ml: Array Cgraph List Nd_graph Nd_util Next Seq Unix
