lib/core/dist_index.ml: Array Bfs Cgraph Cover List Nd_graph Nd_nowhere Nd_util Sorted Splitter
