lib/core/local.ml: Array Cgraph Cover Fo Hashtbl List Nd_eval Nd_graph Nd_logic Nd_nowhere Printf
