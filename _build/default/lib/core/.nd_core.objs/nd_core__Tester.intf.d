lib/core/tester.mli: Nd_graph Nd_logic
