lib/core/local.mli: Nd_graph Nd_logic Nd_nowhere
