lib/core/enumerate.mli: Next Seq
