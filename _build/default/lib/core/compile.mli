(** Query decomposition into distance types and local formulas — the
    implementable counterpart of the Rank-Preserving Normal Form
    (Theorem 5.4, due to Grohe–Schweikardt).

    For a query [φ(x̄)] of arity k we produce, for every distance type
    [τ] over the positions, a set of {e disjuncts}; each disjunct
    carries one {e local formula} per connected component of [τ] plus a
    set of {e sentence} literals (the analogue of the independence
    sentences [ξ]).  Soundness: [G ⊨ φ(ā)] iff for [τ = τ_r(ā)] some
    disjunct of [τ] has all its sentence literals true in G and all its
    local formulas true on [ā_I] {e within any bag containing}
    [N_L(ā_I)] — mirroring properties (a) and (c) of Theorem 5.4.

    The construction is exact for the {e guarded-local fragment}:
    boolean combinations of (i) atoms over free variables and (ii)
    quantified blocks in which every existential variable is guarded by
    a positive distance/edge/equality atom anchored in an outer
    variable, and every universal variable is co-guarded by a negative
    one.  Quantified blocks without free variables become sentence
    literals.  Queries outside the fragment yield [Fallback] and are
    answered by direct evaluation (and cross-checked in the tests).
    The full normal form of [18] is non-elementary and not
    implementable as stated; see DESIGN.md. *)

type disjunct = {
  tau : Nd_logic.Dtype.t;
  locals : (int list * Nd_logic.Fo.t) list;
      (** per connected component of [tau] (positions sorted): the local
          formula, whose free variables are the component's variables. *)
  sentences : (Nd_logic.Fo.t * bool) list;
      (** closed blocks and required polarity, evaluated once per graph
          during preprocessing. *)
}

type compiled = {
  query : Nd_logic.Fo.t;
  vars : Nd_logic.Fo.var array;  (** free variables = tuple positions. *)
  radius : int;  (** [r], the distance-type threshold. *)
  locality : int;
      (** [L]: local formulas are exact in any bag containing
          [N_L(ā_I)]. *)
  disjuncts : disjunct list;
}

type t =
  | Compiled of compiled
  | Fallback of { query : Nd_logic.Fo.t; vars : Nd_logic.Fo.var array; reason : string }

val compile : Nd_logic.Fo.t -> t
(** Arity must be ≥ 1 (sentences are handled by direct model
    checking). *)

val vars : t -> Nd_logic.Fo.var array

val arity : t -> int

val pp : Format.formatter -> t -> unit
