(** Constant-time testing of solutions (Corollary 2.4), including the
    boolean case (arity 0), for which the preprocessing simply answers
    the model checking problem — the role Theorem 5.3 plays in the
    paper. *)

type t

val build : Nd_graph.Cgraph.t -> Nd_logic.Fo.t -> t

val arity : t -> int

val test : t -> int array -> bool
(** For a sentence, pass [[||]]. *)

val holds_sentence : t -> bool
(** For arity-0 queries only. *)
