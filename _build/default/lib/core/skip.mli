(** Skip pointers (Lemma 5.8).

    Given a neighborhood cover with kernels [K(X)], and a label set
    [L ⊆ V], after an [O(|V|^{1+kε})] preprocessing one can compute in
    constant time, for any vertex [b] and any set [S] of at most [k]
    bags,

    [SKIP(b,S) = min {b' ∈ L | b' ≥ b ∧ b' ∉ ⋃_{X∈S} K(X)}].

    The preprocessing materializes [SKIP(b,S)] only for the inductively
    defined family [SC(b)] of bag sets (Claim 5.10); arbitrary queries
    are answered through at most one precomputed pointer (Claim 5.9). *)

type t

val build :
  kernels:int array array ->
  kernels_of:(int -> int list) ->
  l:int array ->
  n:int ->
  k:int ->
  t
(** [kernels]: per bag id, the sorted kernel vertex set.
    [kernels_of v]: ids of the bags whose kernel contains [v]
    (pseudo-constant on covers of small degree).
    [l]: the sorted label set [L].  [k]: the maximum size of query
    sets [S]. *)

val skip : t -> b:int -> bags:int list -> int option
(** [SKIP(b, S)]; [S] may contain at most [k] bag ids (duplicates are
    collapsed). *)

val skip_naive : t -> b:int -> bags:int list -> int option
(** Brute-force reference: scan [L] from [b].  For tests and the
    ablation bench. *)

val table_size : t -> int
(** Number of precomputed pointers [Σ_b |SC(b)|]. *)

val max_sc : t -> int
(** [max_b |SC(b)|] — pseudo-constant on nowhere dense classes. *)
