(** The splitter game (Definition 4.5, Theorem 4.6).

    The (λ,r)-splitter game on G: in each round Connector picks a vertex
    [c] of the current arena, the arena shrinks to [N_r(c)], Splitter
    removes one vertex of it.  Splitter wins when the arena empties.
    A class is nowhere dense iff for every r some λ(r) rounds suffice on
    all of its members — this is the induction parameter of both
    Proposition 4.2 and the main algorithm.

    The paper assumes Splitter's winning strategy is given with the
    class (Remark 4.7); here we provide concrete heuristic strategies
    and a harness measuring how many rounds they need ({e measured λ},
    experiment E4). *)

type arena = {
  graph : Nd_graph.Cgraph.t;  (** current arena, relabeled. *)
  to_orig : int array;  (** local id → vertex of the original graph. *)
}

type strategy = arena -> connector:int -> int
(** Given the arena [N_r(c)] {e after} restriction, with [connector]
    the local id of Connector's vertex, return the local id of the
    vertex Splitter removes. *)

val splitter_echo : strategy
(** Remove Connector's own vertex. *)

val splitter_center : strategy
(** Remove an approximate eccentricity center of the arena (good on
    trees and grid-like graphs). *)

val splitter_max_degree : strategy

type connector = arena -> r:int -> int
(** Adversary: pick the next Connector vertex in the current arena. *)

val connector_max_ball : connector
(** Greedy adversary: maximize the size of the next arena (sampled on
    large arenas to stay near-linear). *)

val connector_random : seed:int -> connector

type outcome = { rounds : int; splitter_won : bool }

val play :
  Nd_graph.Cgraph.t ->
  r:int ->
  max_rounds:int ->
  splitter:strategy ->
  connector:connector ->
  outcome

val measured_lambda :
  Nd_graph.Cgraph.t -> r:int -> max_rounds:int -> splitter:strategy -> int option
(** Rounds the given splitter strategy needs against {!connector_max_ball};
    [None] if it fails to win within [max_rounds]. *)

val move : Nd_graph.Cgraph.t -> bag:int array -> center:int -> int
(** Splitter's opening answer for a bag: the vertex [s_X] she removes
    when Connector plays the bag's center (preprocessing Step 3 / 8).
    Returns an original-graph vertex belonging to [bag]. *)
