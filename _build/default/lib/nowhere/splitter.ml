open Nd_graph

type arena = { graph : Cgraph.t; to_orig : int array }

type strategy = arena -> connector:int -> int

let splitter_echo _arena ~connector = connector

let splitter_center arena ~connector =
  let n = Cgraph.n arena.graph in
  if n = 0 then invalid_arg "splitter_center: empty arena";
  (* center of the connected component of the connector *)
  let comp =
    let d = Bfs.dist_upto arena.graph connector ~radius:max_int in
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if d.(v) >= 0 then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  Bfs.eccentricity_center arena.graph comp

let splitter_max_degree arena ~connector =
  let n = Cgraph.n arena.graph in
  let best = ref connector and bd = ref (-1) in
  for v = 0 to n - 1 do
    let d = Cgraph.degree arena.graph v in
    if d > !bd then begin
      bd := d;
      best := v
    end
  done;
  !best

type connector = arena -> r:int -> int

let ball_size g v r = Array.length (Bfs.ball g v ~radius:r)

let connector_max_ball arena ~r =
  let n = Cgraph.n arena.graph in
  let candidates =
    if n <= 64 then List.init n Fun.id
    else
      (* sample vertices deterministically to keep the adversary cheap *)
      List.init 64 (fun i -> i * n / 64)
  in
  let best = ref 0 and bs = ref (-1) in
  List.iter
    (fun v ->
      let s = ball_size arena.graph v r in
      if s > !bs then begin
        bs := s;
        best := v
      end)
    candidates;
  !best

let connector_random ~seed =
  let rng = Random.State.make [| seed |] in
  fun arena ~r ->
    ignore r;
    Random.State.int rng (Cgraph.n arena.graph)

type outcome = { rounds : int; splitter_won : bool }

let shrink arena c r s =
  (* next arena: N_r^{arena}(c) minus s (local ids); relabel *)
  let ball = Bfs.ball arena.graph c ~radius:r in
  let keep = Array.of_list (List.filter (fun v -> v <> s) (Array.to_list ball)) in
  let sub, local_to_orig = Cgraph.induced arena.graph keep in
  { graph = sub; to_orig = Array.map (fun i -> arena.to_orig.(i)) local_to_orig }

let play g ~r ~max_rounds ~splitter ~connector =
  let arena = ref { graph = g; to_orig = Array.init (Cgraph.n g) Fun.id } in
  let rec go round =
    if Cgraph.n !arena.graph = 0 then { rounds = round; splitter_won = true }
    else if round >= max_rounds then { rounds = round; splitter_won = false }
    else begin
      let c = connector !arena ~r in
      let ball = Bfs.ball !arena.graph c ~radius:r in
      let restricted, to_orig_local = Cgraph.induced !arena.graph ball in
      let restricted_arena =
        {
          graph = restricted;
          to_orig = Array.map (fun i -> !arena.to_orig.(i)) to_orig_local;
        }
      in
      let c_local =
        match Cgraph.local_of_orig ball c with Some i -> i | None -> assert false
      in
      let s = splitter restricted_arena ~connector:c_local in
      let keep =
        Array.of_list
          (List.filter (fun v -> v <> s)
             (List.init (Cgraph.n restricted) Fun.id))
      in
      let next_graph, next_map = Cgraph.induced restricted keep in
      arena :=
        {
          graph = next_graph;
          to_orig = Array.map (fun i -> restricted_arena.to_orig.(i)) next_map;
        };
      go (round + 1)
    end
  in
  ignore shrink;
  go 0

let measured_lambda g ~r ~max_rounds ~splitter =
  let o = play g ~r ~max_rounds ~splitter ~connector:connector_max_ball in
  if o.splitter_won then Some o.rounds else None

let move g ~bag ~center =
  let sub, to_orig = Cgraph.induced g bag in
  let c_local =
    match Cgraph.local_of_orig bag center with
    | Some i -> i
    | None -> invalid_arg "Splitter.move: center not in bag"
  in
  let arena = { graph = sub; to_orig } in
  let s = splitter_center arena ~connector:c_local in
  to_orig.(s)
