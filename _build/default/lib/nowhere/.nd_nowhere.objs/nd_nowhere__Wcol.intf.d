lib/nowhere/wcol.mli: Nd_graph
