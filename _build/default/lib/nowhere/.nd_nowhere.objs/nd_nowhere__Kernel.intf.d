lib/nowhere/kernel.mli: Nd_graph
