lib/nowhere/splitter.mli: Nd_graph
