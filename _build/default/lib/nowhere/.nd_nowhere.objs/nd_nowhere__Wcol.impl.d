lib/nowhere/wcol.ml: Array Cgraph List Nd_graph Queue
