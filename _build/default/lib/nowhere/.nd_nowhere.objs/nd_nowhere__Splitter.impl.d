lib/nowhere/splitter.ml: Array Bfs Cgraph Fun List Nd_graph Random
