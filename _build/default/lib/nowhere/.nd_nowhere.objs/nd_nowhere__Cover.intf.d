lib/nowhere/cover.mli: Nd_graph
