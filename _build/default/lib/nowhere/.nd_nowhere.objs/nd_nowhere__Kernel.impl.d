lib/nowhere/kernel.ml: Array Bfs Cgraph Nd_graph Nd_util Printf Sorted
