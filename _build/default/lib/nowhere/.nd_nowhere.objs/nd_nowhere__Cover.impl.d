lib/nowhere/cover.ml: Array Bfs Cgraph List Nd_graph Nd_util Printf Sorted
