(** Weak r-accessibility (Section 2's order-based characterization of
    nowhere denseness).

    Under a linear order on V, vertex [b] is weakly r-accessible from
    [a] if some path of length ≤ r connects them and [b] is smaller
    than every other vertex on the path.  A class is nowhere dense iff
    orders exist keeping [|WReach_r(a)| ≤ n^ε] for all a; with constant
    bounds the class has bounded expansion.  Experiment E10 profiles
    these counts across the generator zoo. *)

val degeneracy_order : Nd_graph.Cgraph.t -> int array
(** [order.(v)] = rank of v under iterated minimum-degree removal —
    a good generic order for sparse graphs. *)

val wreach_counts : Nd_graph.Cgraph.t -> r:int -> order:int array -> int array
(** [|WReach_r(a)|] per vertex [a], ranks taken from [order]
    (a permutation of [0..n-1]). *)

type profile = { max : int; mean : float }

val profile : Nd_graph.Cgraph.t -> r:int -> profile
(** Counts under the degeneracy order. *)
