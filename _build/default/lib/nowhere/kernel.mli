(** Kernels of bags (Definition 5.6, Lemma 5.7).

    For a bag [X] of an r-neighborhood cover and [p ≤ r], the p-kernel
    is [K_p(X) = {a | N_p(a) ⊆ X}].  Computed in [O(p·‖G[X]‖)] by a
    multi-source BFS from the border of the bag. *)

val compute : Nd_graph.Cgraph.t -> bag:int array -> p:int -> int array
(** [compute g ~bag ~p]: the p-kernel of the sorted vertex set [bag],
    as a sorted vertex array. *)

val verify :
  Nd_graph.Cgraph.t -> bag:int array -> p:int -> int array -> (unit, string) result
(** Check [a ∈ K_p(X) ⇔ N_p(a) ⊆ X] extensionally. *)
