open Nd_graph

let degeneracy_order g =
  let n = Cgraph.n g in
  let deg = Array.init n (Cgraph.degree g) in
  let removed = Array.make n false in
  let order = Array.make n 0 in
  (* bucket queue over degrees *)
  let buckets = Array.make (n + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let next_rank = ref 0 in
  let cursor = ref 0 in
  while !next_rank < n do
    while !cursor <= n && buckets.(!cursor) = [] do
      incr cursor
    done;
    if !cursor > n then assert false;
    match buckets.(!cursor) with
    | [] -> assert false
    | v :: rest ->
        buckets.(!cursor) <- rest;
        if (not removed.(v)) && deg.(v) = !cursor then begin
          removed.(v) <- true;
          order.(v) <- !next_rank;
          incr next_rank;
          Array.iter
            (fun w ->
              if not removed.(w) then begin
                deg.(w) <- deg.(w) - 1;
                buckets.(deg.(w)) <- w :: buckets.(deg.(w));
                if deg.(w) < !cursor then cursor := deg.(w)
              end)
            (Cgraph.neighbors g v)
        end
  done;
  order

let wreach_counts g ~r ~order =
  let n = Cgraph.n g in
  let counts = Array.make n 0 in
  let dist = Array.make n (-1) in
  let touched = ref [] in
  for b = 0 to n - 1 do
    (* BFS from b through vertices of larger rank only *)
    let q = Queue.create () in
    dist.(b) <- 0;
    touched := b :: !touched;
    Queue.push b q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      if dist.(v) < r then
        Array.iter
          (fun w ->
            if dist.(w) = -1 && order.(w) > order.(b) then begin
              dist.(w) <- dist.(v) + 1;
              touched := w :: !touched;
              counts.(w) <- counts.(w) + 1;
              Queue.push w q
            end)
          (Cgraph.neighbors g v)
    done;
    List.iter (fun v -> dist.(v) <- -1) !touched;
    touched := []
  done;
  counts

type profile = { max : int; mean : float }

let profile g ~r =
  let order = degeneracy_order g in
  let counts = wreach_counts g ~r ~order in
  let n = Array.length counts in
  if n = 0 then { max = 0; mean = 0. }
  else
    {
      max = Array.fold_left max 0 counts;
      mean =
        float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int n;
    }
