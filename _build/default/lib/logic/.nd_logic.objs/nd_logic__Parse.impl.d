lib/logic/parse.ml: Fo List Printf String
