lib/logic/parse.mli: Fo
