lib/logic/fo.ml: Format List Printf
