lib/logic/dtype.ml: Array Fo Format List Printf String
