lib/logic/dtype.mli: Fo Format
