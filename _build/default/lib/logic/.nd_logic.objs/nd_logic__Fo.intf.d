lib/logic/fo.mli: Format
