(** Distance types (Section 5.1.2).

    For a radius [r] and a k-tuple [ā], the {e r-distance type}
    [τ_r(ā)] is the undirected graph on positions [{0,…,k-1}] with an
    edge [{i,j}] iff [dist(a_i, a_j) ≤ r].  The normal form of
    Theorem 5.4 decomposes a query per distance type and per connected
    component of the type. *)

type t

val k : t -> int

val create : int -> (int * int) list -> t
(** [create k edges]: type on [k] positions with the given edges. *)

val mem : t -> int -> int -> bool

val edges : t -> (int * int) list
(** With [i < j], sorted. *)

val all : int -> t list
(** All [2^(k(k-1)/2)] distance types on [k] positions, in a fixed
    order.  Intended for small [k] (the query arity). *)

val of_tuple : dist_le:(int -> int -> bool) -> int array -> t
(** [of_tuple ~dist_le ā]: the type of [ā] under the given distance
    predicate (the [≤ r] oracle). *)

val components : t -> int list list
(** Connected components, each sorted, ordered by smallest element. *)

val component_of : t -> int -> int list
(** The component containing the given position. *)

val restrict : t -> int -> t
(** [restrict τ k']: the induced subtype on positions [0..k'-1] (the
    paper's [τ'], the type induced on the first k−1 positions). *)

val compatible : t -> t -> bool
(** [compatible τ' τ]: τ restricted to [k τ'] positions equals τ'. *)

val rho : t -> radius:int -> vars:Fo.var array -> Fo.t
(** The query [ρ_τ] of Step 2 of the preprocessing (Section 5.2.1):
    [⋀_{ij ∈ τ} dist(x_i,x_j) ≤ r  ∧  ⋀_{ij ∉ τ} ¬ dist(x_i,x_j) ≤ r].
    Satisfied by exactly the tuples of type τ. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
