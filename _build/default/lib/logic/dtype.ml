type t = { k : int; adj : bool array array }

let k t = t.k

let create k edges =
  if k < 0 then invalid_arg "Dtype.create";
  let adj = Array.make_matrix k k false in
  List.iter
    (fun (i, j) ->
      if i = j || i < 0 || j < 0 || i >= k || j >= k then
        invalid_arg "Dtype.create: bad edge";
      adj.(i).(j) <- true;
      adj.(j).(i) <- true)
    edges;
  { k; adj }

let mem t i j = t.adj.(i).(j)

let edges t =
  let acc = ref [] in
  for i = t.k - 1 downto 0 do
    for j = t.k - 1 downto i + 1 do
      if t.adj.(i).(j) then acc := (i, j) :: !acc
    done
  done;
  !acc

let all k =
  let pairs = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      pairs := (i, j) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let np = Array.length pairs in
  List.init (1 lsl np) (fun mask ->
      let es = ref [] in
      for b = 0 to np - 1 do
        if mask land (1 lsl b) <> 0 then es := pairs.(b) :: !es
      done;
      create k !es)

let of_tuple ~dist_le a =
  let k = Array.length a in
  let es = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if dist_le a.(i) a.(j) then es := (i, j) :: !es
    done
  done;
  create k !es

let components t =
  let seen = Array.make t.k false in
  let comps = ref [] in
  for i = 0 to t.k - 1 do
    if not seen.(i) then begin
      let comp = ref [] in
      let rec dfs v =
        if not seen.(v) then begin
          seen.(v) <- true;
          comp := v :: !comp;
          for w = 0 to t.k - 1 do
            if t.adj.(v).(w) then dfs w
          done
        end
      in
      dfs i;
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps

let component_of t i = List.find (List.mem i) (components t)

let restrict t k' =
  if k' > t.k then invalid_arg "Dtype.restrict";
  let es = List.filter (fun (_, j) -> j < k') (edges t) in
  create k' es

let compatible t' t = restrict t t'.k = t'

let rho t ~radius ~vars =
  if Array.length vars <> t.k then invalid_arg "Dtype.rho: arity mismatch";
  let conjuncts = ref [] in
  for i = 0 to t.k - 1 do
    for j = i + 1 to t.k - 1 do
      let atom = Fo.Dist_le (vars.(i), vars.(j), radius) in
      conjuncts := (if t.adj.(i).(j) then atom else Fo.Not atom) :: !conjuncts
    done
  done;
  Fo.conj (List.rev !conjuncts)

let equal (a : t) (b : t) = a.k = b.k && a.adj = b.adj

let pp fmt t =
  Format.fprintf fmt "τ[k=%d;%s]" t.k
    (String.concat ","
       (List.map (fun (i, j) -> Printf.sprintf "%d-%d" i j) (edges t)))
