exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

type token =
  | IDENT of string
  | INT of int
  | LPAR
  | RPAR
  | COMMA
  | DOT
  | EQ
  | NEQ
  | LE
  | LT
  | GE
  | GT
  | TILDE
  | AMP
  | BAR
  | ARROW
  | IFF

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
        push LPAR;
        incr i
    | ')' ->
        push RPAR;
        incr i
    | ',' ->
        push COMMA;
        incr i
    | '.' ->
        push DOT;
        incr i
    | '=' ->
        push EQ;
        incr i
    | '~' ->
        push TILDE;
        incr i
    | '&' ->
        push AMP;
        incr i
    | '|' ->
        push BAR;
        incr i
    | '!' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin
          push NEQ;
          i := !i + 2
        end
        else fail "stray '!' at offset %d" !i
    | '<' ->
        if !i + 2 < n && s.[!i + 1] = '-' && s.[!i + 2] = '>' then begin
          push IFF;
          i := !i + 3
        end
        else if !i + 1 < n && s.[!i + 1] = '=' then begin
          push LE;
          i := !i + 2
        end
        else begin
          push LT;
          incr i
        end
    | '>' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin
          push GE;
          i := !i + 2
        end
        else begin
          push GT;
          incr i
        end
    | '-' ->
        if !i + 1 < n && s.[!i + 1] = '>' then begin
          push ARROW;
          i := !i + 2
        end
        else fail "stray '-' at offset %d" !i
    | '0' .. '9' ->
        let j = ref !i in
        while !j < n && match s.[!j] with '0' .. '9' -> true | _ -> false do
          incr j
        done;
        push (INT (int_of_string (String.sub s !i (!j - !i))));
        i := !j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref !i in
        while
          !j < n
          && match s.[!j] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
             | _ -> false
        do
          incr j
        done;
        push (IDENT (String.sub s !i (!j - !i)));
        i := !j
    | c -> fail "unexpected character %C at offset %d" c !i);
    ()
  done;
  List.rev !toks

(* recursive descent over a mutable token stream *)
type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with [] -> fail "unexpected end of input" | _ :: r -> st.toks <- r

let expect st t what =
  match st.toks with
  | x :: r when x = t -> st.toks <- r
  | _ -> fail "expected %s" what

let formula ?(colors = []) input =
  let st = { toks = tokenize input } in
  let rec parse_iff () =
    let lhs = parse_implies () in
    match peek st with
    | Some IFF ->
        advance st;
        let rhs = parse_iff () in
        Fo.And [ Fo.Or [ Fo.Not lhs; rhs ]; Fo.Or [ Fo.Not rhs; lhs ] ]
    | _ -> lhs
  and parse_implies () =
    let lhs = parse_or () in
    match peek st with
    | Some ARROW ->
        advance st;
        let rhs = parse_implies () in
        Fo.Or [ Fo.Not lhs; rhs ]
    | _ -> lhs
  and parse_or () =
    let first = parse_and () in
    let rec more acc =
      match peek st with
      | Some BAR ->
          advance st;
          more (parse_and () :: acc)
      | _ -> List.rev acc
    in
    match more [ first ] with [ p ] -> p | ps -> Fo.Or ps
  and parse_and () =
    let first = parse_unary () in
    let rec more acc =
      match peek st with
      | Some AMP ->
          advance st;
          more (parse_unary () :: acc)
      | _ -> List.rev acc
    in
    match more [ first ] with [ p ] -> p | ps -> Fo.And ps
  and parse_unary () =
    match peek st with
    | Some TILDE ->
        advance st;
        Fo.Not (parse_unary ())
    | Some (IDENT ("exists" | "forall")) -> parse_quant ()
    | _ -> parse_atom ()
  and parse_quant () =
    let kind = match peek st with Some (IDENT k) -> k | _ -> assert false in
    advance st;
    let rec vars acc =
      match peek st with
      | Some (IDENT v) when v <> "exists" && v <> "forall" ->
          advance st;
          vars (v :: acc)
      | Some DOT ->
          advance st;
          List.rev acc
      | _ -> fail "expected variable or '.' after %s" kind
    in
    let vs = vars [] in
    if vs = [] then fail "%s needs at least one variable" kind;
    let body = parse_iff () in
    List.fold_right
      (fun v acc ->
        if kind = "exists" then Fo.Exists (v, acc) else Fo.Forall (v, acc))
      vs body
  and parse_atom () =
    match peek st with
    | Some LPAR ->
        advance st;
        let p = parse_iff () in
        expect st RPAR "')'";
        p
    | Some (IDENT "true") ->
        advance st;
        Fo.True
    | Some (IDENT "false") ->
        advance st;
        Fo.False
    | Some (IDENT "dist") ->
        advance st;
        expect st LPAR "'(' after dist";
        let x = ident () in
        expect st COMMA "','";
        let y = ident () in
        expect st RPAR "')'";
        let cmp = match peek st with
          | Some ((LE | LT | GE | GT) as t) ->
              advance st;
              t
          | _ -> fail "expected comparison after dist(...)"
        in
        let d = match peek st with
          | Some (INT d) ->
              advance st;
              d
          | _ -> fail "expected integer distance bound"
        in
        (match cmp with
        | LE -> Fo.Dist_le (x, y, d)
        | LT ->
            if d <= 0 then Fo.False else Fo.Dist_le (x, y, d - 1)
        | GE ->
            if d <= 0 then Fo.True else Fo.Not (Fo.Dist_le (x, y, d - 1))
        | GT -> Fo.Not (Fo.Dist_le (x, y, d))
        | _ -> assert false)
    | Some (IDENT "E") ->
        advance st;
        expect st LPAR "'(' after E";
        let x = ident () in
        expect st COMMA "','";
        let y = ident () in
        expect st RPAR "')'";
        Fo.Edge (x, y)
    | Some (IDENT name) -> (
        (* C<int>(x), a named color, or a bare variable in an equality *)
        advance st;
        match peek st with
        | Some LPAR ->
            advance st;
            let x = ident () in
            expect st RPAR "')'";
            let color =
              match List.assoc_opt name colors with
              | Some c -> c
              | None ->
                  if String.length name >= 2 && name.[0] = 'C' then
                    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
                    | Some c -> c
                    | None -> fail "unknown color %s" name
                  else fail "unknown color %s" name
            in
            Fo.Color (color, x)
        | Some EQ ->
            advance st;
            let y = ident () in
            Fo.Eq (name, y)
        | Some NEQ ->
            advance st;
            let y = ident () in
            Fo.Not (Fo.Eq (name, y))
        | _ -> fail "expected '=', '!=' or '(' after %s" name)
    | Some _ -> fail "unexpected token"
    | None -> fail "unexpected end of input"
  and ident () =
    match peek st with
    | Some (IDENT v) ->
        advance st;
        v
    | _ -> fail "expected identifier"
  in
  let p = parse_iff () in
  if st.toks <> [] then fail "trailing input";
  p
