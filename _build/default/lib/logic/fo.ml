type var = string

type t =
  | True
  | False
  | Eq of var * var
  | Edge of var * var
  | Color of int * var
  | Dist_le of var * var * int
  | Not of t
  | And of t list
  | Or of t list
  | Exists of var * t
  | Forall of var * t

let rec fold_vars ~bound f acc = function
  | True | False -> acc
  | Eq (x, y) | Edge (x, y) | Dist_le (x, y, _) -> f (f acc x bound) y bound
  | Color (_, x) -> f acc x bound
  | Not p -> fold_vars ~bound f acc p
  | And ps | Or ps -> List.fold_left (fold_vars ~bound f) acc ps
  | Exists (x, p) | Forall (x, p) ->
      fold_vars ~bound:(x :: bound) f (f acc x (x :: bound)) p

let free_vars phi =
  let acc =
    fold_vars ~bound:[]
      (fun acc x bound -> if List.mem x bound then acc else x :: acc)
      [] phi
  in
  List.rev
    (List.fold_left (fun seen x -> if List.mem x seen then seen else x :: seen)
       []
       (List.rev acc))

let all_vars phi =
  let acc = fold_vars ~bound:[] (fun acc x _ -> x :: acc) [] phi in
  List.rev
    (List.fold_left (fun seen x -> if List.mem x seen then seen else x :: seen)
       []
       (List.rev acc))

let arity phi = List.length (free_vars phi)
let is_sentence phi = free_vars phi = []

let rec size = function
  | True | False | Eq _ | Edge _ | Color _ | Dist_le _ -> 1
  | Not p -> 1 + size p
  | And ps | Or ps -> List.fold_left (fun acc p -> acc + size p) 1 ps
  | Exists (_, p) | Forall (_, p) -> 1 + size p

let rec qrank = function
  | True | False | Eq _ | Edge _ | Color _ | Dist_le _ -> 0
  | Not p -> qrank p
  | And ps | Or ps -> List.fold_left (fun acc p -> max acc (qrank p)) 0 ps
  | Exists (_, p) | Forall (_, p) -> 1 + qrank p

let rec max_dist = function
  | Dist_le (_, _, d) -> d
  | True | False | Eq _ | Edge _ | Color _ -> 0
  | Not p -> max_dist p
  | And ps | Or ps -> List.fold_left (fun acc p -> max acc (max_dist p)) 0 ps
  | Exists (_, p) | Forall (_, p) -> max_dist p

let f_q ~q l = float_of_int (4 * q) ** float_of_int (q + l)

let has_qrank_at_most ~q ~l phi =
  let rec go depth = function
    | Dist_le (_, _, d) -> float_of_int d <= f_q ~q (l - depth)
    | True | False | Eq _ | Edge _ | Color _ -> true
    | Not p -> go depth p
    | And ps | Or ps -> List.for_all (go depth) ps
    | Exists (_, p) | Forall (_, p) -> go (depth + 1) p
  in
  qrank phi <= l && go 0 phi

let rec rename f = function
  | True -> True
  | False -> False
  | Eq (x, y) -> Eq (f x, f y)
  | Edge (x, y) -> Edge (f x, f y)
  | Color (c, x) -> Color (c, f x)
  | Dist_le (x, y, d) -> Dist_le (f x, f y, d)
  | Not p -> Not (rename f p)
  | And ps -> And (List.map (rename f) ps)
  | Or ps -> Or (List.map (rename f) ps)
  | Exists (x, p) -> Exists (f x, rename f p)
  | Forall (x, p) -> Forall (f x, rename f p)

let subst_var ~old ~by phi =
  let rec go = function
    | True -> True
    | False -> False
    | Eq (x, y) -> Eq (sub x, sub y)
    | Edge (x, y) -> Edge (sub x, sub y)
    | Color (c, x) -> Color (c, sub x)
    | Dist_le (x, y, d) -> Dist_le (sub x, sub y, d)
    | Not p -> Not (go p)
    | And ps -> And (List.map go ps)
    | Or ps -> Or (List.map go ps)
    | Exists (x, p) ->
        if x = old then Exists (x, p)
        else if x = by then
          invalid_arg "Fo.subst_var: capture"
        else Exists (x, go p)
    | Forall (x, p) ->
        if x = old then Forall (x, p)
        else if x = by then invalid_arg "Fo.subst_var: capture"
        else Forall (x, go p)
  and sub x = if x = old then by else x in
  go phi

let rec nnf = function
  | Not (Not p) -> nnf p
  | Not (And ps) -> Or (List.map (fun p -> nnf (Not p)) ps)
  | Not (Or ps) -> And (List.map (fun p -> nnf (Not p)) ps)
  | Not (Exists (x, p)) -> Forall (x, nnf (Not p))
  | Not (Forall (x, p)) -> Exists (x, nnf (Not p))
  | Not True -> False
  | Not False -> True
  | Not atom -> Not atom
  | And ps -> And (List.map nnf ps)
  | Or ps -> Or (List.map nnf ps)
  | Exists (x, p) -> Exists (x, nnf p)
  | Forall (x, p) -> Forall (x, nnf p)
  | atom -> atom

let rec simplify phi =
  match phi with
  | And ps ->
      let ps =
        List.concat_map
          (fun p -> match simplify p with And qs -> qs | True -> [] | q -> [ q ])
          ps
      in
      let ps =
        List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc)
          [] ps
        |> List.rev
      in
      if List.mem False ps then False
      else begin
        match ps with [] -> True | [ p ] -> p | _ -> And ps
      end
  | Or ps ->
      let ps =
        List.concat_map
          (fun p -> match simplify p with Or qs -> qs | False -> [] | q -> [ q ])
          ps
      in
      let ps =
        List.fold_left (fun acc p -> if List.mem p acc then acc else p :: acc)
          [] ps
        |> List.rev
      in
      if List.mem True ps then True
      else begin
        match ps with [] -> False | [ p ] -> p | _ -> Or ps
      end
  | Not p -> (
      match simplify p with
      | True -> False
      | False -> True
      | Not q -> q
      | q -> Not q)
  | Exists (x, p) -> (
      match simplify p with
      | False -> False
      | q -> Exists (x, q))
  | Forall (x, p) -> (
      match simplify p with
      | True -> True
      | q -> Forall (x, q))
  | Eq (x, y) when x = y -> True
  | Dist_le (x, y, _) when x = y -> True
  | atom -> atom

let mentions z phi = List.mem z (free_vars phi)

let rec miniscope phi =
  match phi with
  | True | False | Eq _ | Edge _ | Color _ | Dist_le _ | Not _ -> phi
  | And ps -> And (List.map miniscope ps)
  | Or ps -> Or (List.map miniscope ps)
  | Exists (z, p) -> push_exists z (miniscope p)
  | Forall (z, p) -> push_forall z (miniscope p)

and push_exists z p =
  if not (mentions z p) then p
  else
    match p with
    | Or ps -> Or (List.map (push_exists z) ps)
    | And ps ->
        let dep, indep = List.partition (mentions z) ps in
        if indep = [] then Exists (z, p)
        else begin
          let inner =
            match dep with
            | [] -> True
            | [ q ] -> push_exists z q
            | qs -> Exists (z, And qs)
          in
          And (indep @ [ inner ])
        end
    | _ -> Exists (z, p)

and push_forall z p =
  if not (mentions z p) then p
  else
    match p with
    | And ps -> And (List.map (push_forall z) ps)
    | Or ps ->
        let dep, indep = List.partition (mentions z) ps in
        if indep = [] then Forall (z, p)
        else begin
          let inner =
            match dep with
            | [] -> False
            | [ q ] -> push_forall z q
            | qs -> Forall (z, Or qs)
          in
          Or (indep @ [ inner ])
        end
    | _ -> Forall (z, p)

let conj ps = simplify (And ps)
let disj ps = simplify (Or ps)

(* Definition 4.1.  dist_{≤0}(x,y) := x=y;
   dist_{≤r+1}(x,y) := x=y ∨ ∃z (E(x,z) ∧ dist_{≤r}(z,y)). *)
let dist_formula r x y =
  let rec go r x =
    if r = 0 then Eq (x, y)
    else
      let z = Printf.sprintf "_d%d" r in
      Or [ Eq (x, y); Exists (z, And [ Edge (x, z); go (r - 1) z ]) ]
  in
  go r x

let equal (a : t) (b : t) = a = b

let prec = function
  | Or _ -> 1
  | And _ -> 2
  | Not _ | Exists _ | Forall _ -> 3
  | _ -> 4

let rec pp_prec level fmt phi =
  let p = prec phi in
  if p < level then Format.fprintf fmt "(%a)" (pp_prec 0) phi
  else
    match phi with
    | True -> Format.pp_print_string fmt "true"
    | False -> Format.pp_print_string fmt "false"
    | Eq (x, y) -> Format.fprintf fmt "%s = %s" x y
    | Edge (x, y) -> Format.fprintf fmt "E(%s,%s)" x y
    | Color (c, x) -> Format.fprintf fmt "C%d(%s)" c x
    | Dist_le (x, y, d) -> Format.fprintf fmt "dist(%s,%s) <= %d" x y d
    | Not q -> Format.fprintf fmt "~%a" (pp_prec 4) q
    | And ps ->
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt " & ")
          (pp_prec 3) fmt ps
    | Or ps ->
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.fprintf fmt " | ")
          (pp_prec 2) fmt ps
    | Exists (x, q) -> Format.fprintf fmt "exists %s. %a" x (pp_prec 3) q
    | Forall (x, q) -> Format.fprintf fmt "forall %s. %a" x (pp_prec 3) q

let pp fmt phi = pp_prec 0 fmt phi
let to_string phi = Format.asprintf "%a" pp phi

let fresh_var ~used hint =
  if not (List.mem hint used) then hint
  else
    let rec go i =
      let v = Printf.sprintf "%s%d" hint i in
      if List.mem v used then go (i + 1) else v
    in
    go 0
