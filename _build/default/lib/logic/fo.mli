(** First-order queries over colored graphs, in the logic FO⁺
    (Sections 2 and 5.1.2): first-order logic over the schema
    [σ_c = {E, C_0, …}] extended with distance atoms [dist(x,y) ≤ d].

    Distance atoms do not add expressive power (see {!dist_formula}) but
    are central to the paper's normal form: they allow controlling the
    quantifier rank of local formulas ({e q-rank}). *)

type var = string

type t =
  | True
  | False
  | Eq of var * var
  | Edge of var * var  (** [E(x,y)]; symmetric. *)
  | Color of int * var  (** [C_i(x)]. *)
  | Dist_le of var * var * int  (** [dist(x,y) ≤ d] with [d ≥ 0]. *)
  | Not of t
  | And of t list
  | Or of t list
  | Exists of var * t
  | Forall of var * t

val free_vars : t -> var list
(** In order of first occurrence, without duplicates. *)

val all_vars : t -> var list

val arity : t -> int

val is_sentence : t -> bool

val size : t -> int
(** Number of AST nodes, the paper's [|q|] up to a constant. *)

val qrank : t -> int
(** Quantifier rank.  Distance atoms count as quantifier-free. *)

val max_dist : t -> int
(** The largest [d] of any [dist ≤ d] atom ([0] if none). *)

val f_q : q:int -> int -> float
(** [f_q ~q ℓ = (4q)^(q+ℓ)], the locality radius of Section 5.1.2. *)

val has_qrank_at_most : q:int -> l:int -> t -> bool
(** The paper's {e q-rank ≤ ℓ} check: quantifier rank ≤ ℓ and every
    distance atom [dist ≤ d] within scope of [i] quantifiers satisfies
    [d ≤ (4q)^(q+ℓ-i)]. *)

val rename : (var -> var) -> t -> t
(** Apply a renaming to every variable occurrence, free and bound.
    The renaming must be injective on the variables involved. *)

val subst_var : old:var -> by:var -> t -> t
(** Replace free occurrences of [old] by [by].  @raise Invalid_argument
    when [by] would be captured. *)

val nnf : t -> t
(** Negation normal form: negations pushed onto atoms. *)

val miniscope : t -> t
(** Minimize quantifier scopes on an NNF formula: push ∃ through ∨ and
    factor out conjuncts not mentioning the variable (dually for ∀).
    Shrinks the free-variable sets of quantified blocks, widening the
    compilable guarded-local fragment. *)

val simplify : t -> t
(** Constant folding, flattening of nested ∧/∨, deduplication. *)

val conj : t list -> t

val disj : t list -> t

val dist_formula : int -> var -> var -> t
(** Definition 4.1: the pure-FO formula expressing [dist(x,y) ≤ r]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val fresh_var : used:var list -> string -> var
(** A variable named after the hint, distinct from [used]. *)
