(** A small surface syntax for FO⁺ queries.

    Grammar (precedence low → high; quantifier scope is maximal):
    {v
      φ ::= φ '<->' φ | φ '->' φ | φ '|' φ | φ '&' φ
          | '~' φ | 'exists' x … x '.' φ | 'forall' x … x '.' φ
          | 'true' | 'false' | '(' φ ')'
          | x '=' y | x '!=' y
          | 'E' '(' x ',' y ')'
          | 'C'<int> '(' x ')'          e.g.  C0(x)
          | <Name> '(' x ')'            named color, resolved via ~colors
          | 'dist' '(' x ',' y ')' ('<=' | '<' | '>' | '>=') <int>
    v}

    Examples:
    - ["exists z. E(x,z) & E(z,y)"]
    - ["dist(x,y) > 2 & Blue(y)"] with [~colors:["Blue", 1]]. *)

exception Syntax_error of string

val formula : ?colors:(string * int) list -> string -> Fo.t
(** @raise Syntax_error on malformed input. *)
