(** Measurement and reporting helpers for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)

val time_per : repeat:int -> (unit -> unit) -> float
(** Average seconds per call over [repeat] calls (wall clock). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p ∈ [0,100]]; [nan] on empty input. *)

val fit_exponent : (float * float) list -> float
(** Least-squares slope of log(y) against log(x): the empirical
    exponent [e] in [y ≈ c·x^e].  Used to check pseudo-linearity
    claims ([e] close to 1). *)

val ns : float -> string
(** Human format for a duration in seconds: ["123ns"], ["4.5us"], … *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Fixed-width ASCII table, in the style of the tables the paper's
    evaluation section would have contained. *)

val note : string -> unit
(** Print an annotation line under a table. *)
