let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_per ~repeat f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int (max 1 repeat)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let idx = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor idx) and hi = int_of_float (ceil idx) in
    let frac = idx -. floor idx in
    (s.(lo) *. (1. -. frac)) +. (s.(min hi (n - 1)) *. frac)
  end

let fit_exponent pts =
  let pts =
    List.filter (fun (x, y) -> x > 0. && y > 0.) pts
    |> List.map (fun (x, y) -> (log x, log y))
  in
  let n = float_of_int (List.length pts) in
  if n < 2. then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

let ns t =
  if t < 1e-6 then Printf.sprintf "%.0fns" (t *. 1e9)
  else if t < 1e-3 then Printf.sprintf "%.1fus" (t *. 1e6)
  else if t < 1. then Printf.sprintf "%.2fms" (t *. 1e3)
  else Printf.sprintf "%.2fs" t

let print_table ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let line ch =
    String.concat "-+-" (List.map (fun w -> String.make w ch) widths)
  in
  let render row =
    String.concat " | "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           cell ^ String.make (w - String.length cell) ' ')
         row)
  in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (render header) (line '-');
  List.iter (fun row -> print_endline (render row)) rows

let note s = Printf.printf "   %s\n" s
