type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow_to v cap =
  if cap > Array.length v.data then begin
    let cap' = max cap (2 * Array.length v.data) in
    let data' = Array.make cap' v.dummy in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  grow_to v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (push v) xs;
  v

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len

let ensure v n =
  grow_to v n;
  if n > v.len then begin
    Array.fill v.data v.len (n - v.len) v.dummy;
    v.len <- n
  end
