(** Growable arrays.

    A [Vec.t] amortizes appends in O(1) and supports O(1) random access.
    Creation requires a [dummy] element used to fill unused capacity;
    the dummy is never observable through the API. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : dummy:'a -> 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit

val ensure : 'a t -> int -> unit
(** [ensure v n] grows the backing store and logical length of [v] so
    that indices [0..n-1] are valid, filling new slots with the dummy. *)
