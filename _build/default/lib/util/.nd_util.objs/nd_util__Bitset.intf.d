lib/util/bitset.mli:
