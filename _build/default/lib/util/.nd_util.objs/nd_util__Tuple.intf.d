lib/util/tuple.mli:
