lib/util/vec.mli:
