lib/util/sorted.mli:
