lib/util/tuple.ml: Array List String
