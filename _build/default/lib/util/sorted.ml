let lower_bound a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let next_geq a x =
  let i = lower_bound a x in
  if i < Array.length a then Some a.(i) else None

let next_gt a x = next_geq a (x + 1)

let mem a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let of_list xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = ref [ a.(0) ] and count = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(i - 1) then begin
        out := a.(i) :: !out;
        incr count
      end
    done;
    let res = Array.make !count 0 in
    List.iteri (fun i x -> res.(!count - 1 - i) <- x) !out;
    res
  end

let inter a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    if a.(!i) < b.(!j) then incr i
    else if a.(!i) > b.(!j) then incr j
    else begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let union a b =
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length a || !j < Array.length b do
    if !j >= Array.length b || (!i < Array.length a && a.(!i) < b.(!j)) then begin
      out := a.(!i) :: !out;
      incr i
    end
    else if !i >= Array.length a || a.(!i) > b.(!j) then begin
      out := b.(!j) :: !out;
      incr j
    end
    else begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let is_sorted_strict a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok
