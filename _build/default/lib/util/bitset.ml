type t = { mutable words : int array; cap : int; mutable card : int }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make (max 1 (words_for n)) 0; cap = n; card = 0 }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.cap)

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i;
  let w = i / 63 and b = 1 lsl (i mod 63) in
  if t.words.(w) land b = 0 then begin
    t.words.(w) <- t.words.(w) lor b;
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  let w = i / 63 and b = 1 lsl (i mod 63) in
  if t.words.(w) land b <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot b;
    t.card <- t.card - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let cardinal t = t.card

let copy t = { words = Array.copy t.words; cap = t.cap; card = t.card }

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to 62 do
        if word land (1 lsl b) <> 0 then f ((w * 63) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let equal a b =
  a.cap = b.cap && a.card = b.card && a.words = b.words

let subset a b =
  if a.cap <> b.cap then invalid_arg "Bitset.subset: capacity mismatch";
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok
