(** Fixed-capacity bitsets over [0, capacity).

    Used for color membership, visited marks in BFS, bag membership tests,
    and kernel sets.  All operations besides {!create}, {!copy} and
    {!clear} are O(1). *)

type t

val create : int -> t
(** [create n] is an empty bitset with capacity [n] (members in [0, n)). *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Remove every member.  O(capacity/63). *)

val cardinal : t -> int
(** Number of members.  Maintained incrementally; O(1). *)

val copy : t -> t

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the bitset of capacity [n] containing [xs]. *)

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every member of [a] is a member of [b].
    Capacities must agree. *)
