(** Operations on strictly increasing [int array]s.

    The preprocessing phases store many vertex sets (bag contents, label
    sets [L], query results) as sorted arrays; the answering phases then
    locate "the smallest element ≥ b" by binary search. *)

val lower_bound : int array -> int -> int
(** [lower_bound a x] is the index of the first element [>= x], or
    [Array.length a] if none.  [a] must be sorted increasing. *)

val next_geq : int array -> int -> int option
(** [next_geq a x] is the smallest element of [a] that is [>= x]. *)

val next_gt : int array -> int -> int option
(** [next_gt a x] is the smallest element of [a] that is [> x]. *)

val mem : int array -> int -> bool

val of_list : int list -> int array
(** Sort and deduplicate. *)

val inter : int array -> int array -> int array

val union : int array -> int array -> int array

val is_sorted_strict : int array -> bool
