(** Relational structures and their reduction to colored graphs
    (Section 2, "From databases to colored graphs").

    A database [D] over a schema [σ = {R_1,…,R_m}] with maximum arity [k]
    is turned into the colored graph [A'(D)]:

    - domain: the elements of [D], plus one node per tuple occurrence,
      plus one node per (element, position, tuple) incidence — the
      1-subdivision of the adjacency graph [A(D)];
    - colors: [C_0 … C_{k-1}] marking position nodes, and one color
      [P_R] per relation marking tuple nodes.

    Lemma 2.2 (the accompanying query translation) lives in
    [Nd_eval.Translate], next to the evaluator that exercises it. *)

type schema = (string * int) list
(** Relation name and arity; names must be distinct, arities ≥ 1. *)

type db

val create_db : schema -> domain:int -> (string * int array list) list -> db
(** [create_db schema ~domain facts]: [facts] lists, per relation name,
    the tuples it contains.  Tuple arities must match the schema and
    entries lie in [0, domain). *)

val schema : db -> schema

val domain_size : db -> int

val tuples : db -> string -> int array list

val mem_fact : db -> string -> int array -> bool

(** Result of the [A'(D)] encoding. *)
type encoded = {
  graph : Cgraph.t;
  element_node : int -> int;  (** database element ↦ vertex of [A'(D)] *)
  position_color : int -> int;  (** position [i] (0-based) ↦ color [C_i] *)
  relation_color : string -> int;  (** relation ↦ color [P_R] *)
  element_color : int;
      (** extra color marking the nodes that are database elements.  The
          paper's Lemma 2.2 leaves variables implicitly ranging over
          elements; making the guard explicit (a standard fix) keeps the
          translated query's answers exactly [φ(D)]. *)
}

val encode : db -> encoded
(** Build the colored graph [A'(D)].  Elements keep their ids ([0..d-1]),
    so a tuple of elements is a tuple of vertices and query answers
    translate back verbatim. *)
