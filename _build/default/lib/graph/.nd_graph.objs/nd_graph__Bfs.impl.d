lib/graph/bfs.ml: Array Cgraph List Queue
