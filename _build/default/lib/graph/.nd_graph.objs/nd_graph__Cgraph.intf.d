lib/graph/cgraph.mli: Format Nd_util
