lib/graph/bfs.mli: Cgraph
