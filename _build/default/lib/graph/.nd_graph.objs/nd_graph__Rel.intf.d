lib/graph/rel.mli: Cgraph
