lib/graph/gen.mli: Cgraph
