lib/graph/gen.ml: Array Bitset Cgraph Fun Hashtbl List Nd_util Random
