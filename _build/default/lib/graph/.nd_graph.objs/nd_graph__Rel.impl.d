lib/graph/rel.ml: Array Bitset Cgraph Fun Hashtbl List Nd_util
