lib/graph/cgraph.ml: Array Bitset Format Fun List Nd_util Sorted String
