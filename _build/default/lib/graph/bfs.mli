(** Breadth-first search utilities: distances, balls and neighborhoods.

    Distance is taken in the Gaifman graph, which for colored graphs is
    the graph itself (Section 2, "Distance and neighborhoods"). *)

val dist_upto : Cgraph.t -> int -> radius:int -> int array
(** [dist_upto g src ~radius] is the array of distances from [src],
    with [-1] for vertices further than [radius].  O(‖ball‖ + n). *)

val multi_dist_upto : Cgraph.t -> int list -> radius:int -> int array
(** Multi-source variant; sources are at distance 0. *)

val multi_dist_from_depth :
  Cgraph.t -> (int * int) list -> radius:int -> int array
(** Sources with initial depths (used for kernel computation, where
    border vertices start at depth 1). *)

val ball : Cgraph.t -> int -> radius:int -> int array
(** [ball g v ~radius] is [N_r(v)] as a sorted vertex array (includes
    [v] itself). *)

val ball_of_set : Cgraph.t -> int list -> radius:int -> int array
(** [N_r(ā)] for a set of centers. *)

val dist : Cgraph.t -> int -> int -> int option
(** Exact distance (unbounded BFS); [None] if disconnected. *)

type searcher
(** Reusable BFS state over a fixed graph: ball queries cost
    [O(|ball| log |ball|)] instead of [O(n)] per call. *)

val searcher : Cgraph.t -> searcher

val sball : searcher -> int -> radius:int -> int array
(** Like {!ball}, with scratch reuse.  Sorted, includes the center. *)

val sball_size : searcher -> int -> radius:int -> int
(** Ball cardinality without materializing it. *)

val eccentricity_center : Cgraph.t -> int array -> int
(** Among the sorted vertex set (assumed inducing a connected subgraph
    of [g] — otherwise an arbitrary member is returned), a vertex of
    small eccentricity within the induced subgraph, found by the
    standard double-BFS heuristic.  Used by Splitter strategies. *)
