open Nd_util

type schema = (string * int) list

type db = { schema : schema; domain : int; facts : (string, int array list) Hashtbl.t }

let create_db schema ~domain facts =
  let names = List.map fst schema in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Rel.create_db: duplicate relation names";
  List.iter
    (fun (_, ar) -> if ar < 1 then invalid_arg "Rel.create_db: arity < 1")
    schema;
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, _) -> Hashtbl.replace tbl name []) schema;
  List.iter
    (fun (name, tuples) ->
      let arity =
        match List.assoc_opt name schema with
        | Some a -> a
        | None -> invalid_arg ("Rel.create_db: unknown relation " ^ name)
      in
      List.iter
        (fun t ->
          if Array.length t <> arity then
            invalid_arg ("Rel.create_db: arity mismatch in " ^ name);
          Array.iter
            (fun x ->
              if x < 0 || x >= domain then
                invalid_arg "Rel.create_db: element out of domain")
            t)
        tuples;
      let existing = try Hashtbl.find tbl name with Not_found -> [] in
      Hashtbl.replace tbl name
        (List.sort_uniq compare (existing @ List.map Array.copy tuples)))
    facts;
  { schema; domain; facts = tbl }

let schema db = db.schema
let domain_size db = db.domain
let tuples db name = try Hashtbl.find db.facts name with Not_found -> []

let mem_fact db name t = List.exists (fun u -> u = t) (tuples db name)

type encoded = {
  graph : Cgraph.t;
  element_node : int -> int;
  position_color : int -> int;
  relation_color : string -> int;
  element_color : int;
}

let encode db =
  let max_arity =
    List.fold_left (fun acc (_, a) -> max acc a) 1 db.schema
  in
  (* vertex ids: elements 0..domain-1, then per fact a tuple node, then
     per (fact, position) a subdivision node colored C_i *)
  let next = ref db.domain in
  let edges = ref [] in
  let pos_members = Array.make max_arity [] in
  let rel_members = List.map (fun (name, _) -> (name, ref [])) db.schema in
  List.iter
    (fun (name, _) ->
      let members = List.assoc name rel_members in
      List.iter
        (fun t ->
          let tuple_node = !next in
          incr next;
          members := tuple_node :: !members;
          Array.iteri
            (fun i a ->
              let sub_node = !next in
              incr next;
              pos_members.(i) <- sub_node :: pos_members.(i);
              edges := (a, sub_node) :: (sub_node, tuple_node) :: !edges)
            t)
        (tuples db name))
    db.schema;
  let n = !next in
  let colors =
    Array.concat
      [
        Array.map
          (fun members -> Bitset.of_list n members)
          (Array.of_list (List.map (fun (_, r) -> !r) rel_members));
        Array.map (fun ms -> Bitset.of_list n ms) pos_members;
        [| Bitset.of_list n (List.init db.domain Fun.id) |];
      ]
  in
  let graph = Cgraph.create ~n ~colors !edges in
  let nrel = List.length db.schema in
  {
    graph;
    element_node = (fun e -> e);
    element_color = nrel + max_arity;
    position_color = (fun i -> nrel + i);
    relation_color =
      (fun name ->
        let rec idx i = function
          | [] -> invalid_arg ("Rel.relation_color: " ^ name)
          | (nm, _) :: _ when nm = name -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 db.schema);
  }
