open Nd_logic

type t =
  | True
  | False
  | Eq of Fo.var * Fo.var
  | Atom of string * Fo.var list
  | Not of t
  | And of t list
  | Or of t list
  | Exists of Fo.var * t
  | Forall of Fo.var * t

let free_vars phi =
  let rec go bound acc = function
    | True | False -> acc
    | Eq (x, y) -> add bound y (add bound x acc)
    | Atom (_, xs) -> List.fold_left (fun acc x -> add bound x acc) acc xs
    | Not p -> go bound acc p
    | And ps | Or ps -> List.fold_left (go bound) acc ps
    | Exists (x, p) | Forall (x, p) -> go (x :: bound) acc p
  and add bound x acc =
    if List.mem x bound || List.mem x acc then acc else x :: acc
  in
  List.rev (go [] [] phi)

let translate schema phi =
  let nrel = List.length schema in
  let max_arity = List.fold_left (fun acc (_, a) -> max acc a) 1 schema in
  let elem_color = nrel + max_arity in
  let position_color i = nrel + i in
  let relation_color name =
    let rec idx i = function
      | [] -> invalid_arg ("Translate: unknown relation " ^ name)
      | (nm, _) :: _ when nm = name -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 schema
  in
  let counter = ref 0 in
  let fresh hint =
    incr counter;
    Printf.sprintf "_%s%d" hint !counter
  in
  let rec go = function
    | True -> Fo.True
    | False -> Fo.False
    | Eq (x, y) -> Fo.Eq (x, y)
    | Atom (name, xs) ->
        let arity =
          match List.assoc_opt name schema with
          | Some a -> a
          | None -> invalid_arg ("Translate: unknown relation " ^ name)
        in
        if List.length xs <> arity then
          invalid_arg ("Translate: arity mismatch for " ^ name);
        let t = fresh "t" in
        Fo.Exists
          ( t,
            Fo.And
              (Fo.Color (relation_color name, t)
              :: List.mapi
                   (fun i x ->
                     let z = fresh "z" in
                     Fo.Exists
                       ( z,
                         Fo.And
                           [
                             Fo.Color (position_color i, z);
                             Fo.Edge (x, z);
                             Fo.Edge (z, t);
                           ] ))
                   xs) )
    | Not p -> Fo.Not (go p)
    | And ps -> Fo.And (List.map go ps)
    | Or ps -> Fo.Or (List.map go ps)
    | Exists (x, p) -> Fo.Exists (x, Fo.And [ Fo.Color (elem_color, x); go p ])
    | Forall (x, p) ->
        Fo.Forall (x, Fo.Or [ Fo.Not (Fo.Color (elem_color, x)); go p ])
  in
  let body = go phi in
  let guards = List.map (fun x -> Fo.Color (elem_color, x)) (free_vars phi) in
  Fo.conj (guards @ [ body ])

let rec holds_env db env = function
  | True -> true
  | False -> false
  | Eq (x, y) -> List.assoc x env = List.assoc y env
  | Atom (name, xs) ->
      let t = Array.of_list (List.map (fun x -> List.assoc x env) xs) in
      Nd_graph.Rel.mem_fact db name t
  | Not p -> not (holds_env db env p)
  | And ps -> List.for_all (holds_env db env) ps
  | Or ps -> List.exists (holds_env db env) ps
  | Exists (x, p) ->
      let d = Nd_graph.Rel.domain_size db in
      let rec go v = v < d && (holds_env db ((x, v) :: env) p || go (v + 1)) in
      go 0
  | Forall (x, p) ->
      let d = Nd_graph.Rel.domain_size db in
      let rec go v = v >= d || (holds_env db ((x, v) :: env) p && go (v + 1)) in
      go 0

let holds_db db phi a =
  let fv = free_vars phi in
  if List.length fv <> Array.length a then
    invalid_arg "Translate.holds_db: arity mismatch";
  holds_env db (List.mapi (fun i x -> (x, a.(i))) fv) phi

let eval_all_db db phi =
  let fv = Array.of_list (free_vars phi) in
  let k = Array.length fv in
  let d = Nd_graph.Rel.domain_size db in
  let current = Array.make k 0 in
  let out = ref [] in
  let rec go i env =
    if i = k then begin
      if holds_env db env phi then out := Array.copy current :: !out
    end
    else
      for v = 0 to d - 1 do
        current.(i) <- v;
        go (i + 1) ((fv.(i), v) :: env)
      done
  in
  go 0 [];
  List.rev !out
