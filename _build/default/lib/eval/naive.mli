(** Direct semantic evaluation of FO⁺ queries.

    This module plays three roles:
    - the {e naive baseline} against which the paper's data structures
      are benchmarked (per-tuple evaluation, [O(n^{arity+qrank})] total);
    - the {e local oracle} applied inside the (small) bags of a
      neighborhood cover by the core library — the role the
      Grohe–Kreutzer–Siebertz model-checking theorem (Theorem 5.3) plays
      in the paper, whose constants are non-elementary and hence not
      implementable as stated (see DESIGN.md, substitution table);
    - the reference model for differential testing.

    A context caches bounded-radius distance computations when [cache]
    is set; caching is appropriate for repeated evaluation inside a bag,
    not for one-shot global queries on large graphs. *)

type ctx

val ctx : ?cache:bool -> Nd_graph.Cgraph.t -> ctx

val graph : ctx -> Nd_graph.Cgraph.t

val dist_le : ctx -> int -> int -> int -> bool
(** [dist_le c u v d]: is [dist(u,v) ≤ d] in the graph? *)

val sat : ctx -> env:(Nd_logic.Fo.var * int) list -> Nd_logic.Fo.t -> bool
(** Tarski semantics; every free variable must be bound by [env].
    @raise Invalid_argument on unbound variables. *)

val holds : ctx -> Nd_logic.Fo.t -> int array -> bool
(** [holds c φ ā]: bind the free variables of [φ] (in first-occurrence
    order) to [ā] and evaluate. *)

val model_check : ctx -> Nd_logic.Fo.t -> bool
(** For sentences. *)

val eval_all :
  ctx -> vars:Nd_logic.Fo.var list -> Nd_logic.Fo.t -> int array list
(** All solution tuples, components ordered as [vars], in increasing
    lexicographic order.  [vars] must be a superset of the free
    variables; extra variables range freely (cartesian semantics). *)

val count : ctx -> vars:Nd_logic.Fo.var list -> Nd_logic.Fo.t -> int
