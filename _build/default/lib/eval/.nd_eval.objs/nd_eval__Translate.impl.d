lib/eval/translate.ml: Array Fo List Nd_graph Nd_logic Printf
