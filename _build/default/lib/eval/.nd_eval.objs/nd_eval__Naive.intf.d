lib/eval/naive.mli: Nd_graph Nd_logic
