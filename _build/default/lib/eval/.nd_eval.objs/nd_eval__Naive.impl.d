lib/eval/naive.ml: Array Bfs Cgraph Fo Hashtbl List Nd_graph Nd_logic
