lib/eval/translate.mli: Nd_graph Nd_logic
