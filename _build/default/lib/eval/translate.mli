(** Lemma 2.2: reduction of FO queries over relational databases to FO
    queries over the colored graph [A'(D)].

    A relational atom [R(x_1,…,x_j)] becomes

    [∃t (P_R(t) ∧ ⋀_{i≤j} ∃z (C_i(z) ∧ E(x_i,z) ∧ E(z,t)))]

    and — the standard guard the paper leaves implicit — every variable
    is relativized to the element color of {!Nd_graph.Rel.encode}, so
    that solutions range over database elements only.  Color indices
    mirror [Rel.encode]'s layout and are cross-checked by the tests. *)

type t =
  | True
  | False
  | Eq of Nd_logic.Fo.var * Nd_logic.Fo.var
  | Atom of string * Nd_logic.Fo.var list  (** [R(x̄)]. *)
  | Not of t
  | And of t list
  | Or of t list
  | Exists of Nd_logic.Fo.var * t
  | Forall of Nd_logic.Fo.var * t

val free_vars : t -> Nd_logic.Fo.var list

val translate : Nd_graph.Rel.schema -> t -> Nd_logic.Fo.t
(** [translate σ φ] is the query ψ of Lemma 2.2: for every database [D]
    over σ, [φ(D) = ψ(A'(D))] (element ids coincide with their vertex
    ids in the encoding).
    @raise Invalid_argument on atoms not matching the schema. *)

val holds_db : Nd_graph.Rel.db -> t -> int array -> bool
(** Direct evaluation over the database (no encoding) — the reference
    semantics used to validate {!translate}. *)

val eval_all_db : Nd_graph.Rel.db -> t -> int array list
(** All solutions over the database domain, free variables in
    first-occurrence order, lexicographic. *)
