lib/ram/ref_store.mli: Nd_util Store
