lib/ram/ref_store.ml: Array Map Nd_util Store Tuple
