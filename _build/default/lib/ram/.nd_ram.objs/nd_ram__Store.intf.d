lib/ram/store.mli: Format Nd_util
