lib/ram/store.ml: Array Buffer Format Hashtbl List Nd_util Option Printf Queue Tuple
