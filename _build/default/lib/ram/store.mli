(** The Storing Theorem data structure (Theorem 3.1 of Schweikardt,
    Segoufin & Vigny, and its appendix, Section 7).

    A [t] stores a partial k-ary function [f : [n]^k ⇀ 'v] with

    - initialization by repeated insertion, [O(n^ε)] per key,
    - update (add / remove) in [O(n^ε)],
    - {b lookup in constant time} with successor semantics: given any
      [ā ∈ [n]^k], lookup answers [f(ā)] when [ā ∈ Dom(f)], and otherwise
      the smallest key of [Dom(f)] larger than [ā] (or [Null]),
    - space [O(|Dom(f)| · n^ε)] at all times.

    The structure is the paper's register-level trie: every coordinate is
    decomposed in base [d = ⌈n^ε⌉] into [h = ⌈1/ε⌉] digits (most
    significant first), so a key is a string of [k·h] digits.  The trie
    [T(f)] has degree [d]; each inner node occupies [d+1] consecutive
    registers — one per child plus a final back-pointer register [(-1, R)]
    to the register of the parent that points at the node.  A child
    register contains [(1, R')] when the child is an inner node starting
    at register [R'], [(1, f(ā))] when it is a leaf of a stored key [ā],
    and [(0, b̄)] when no key lives below it, where [b̄] is the smallest
    key of [Dom(f)] whose digit string exceeds the register's prefix
    ([(0, Null)] when none exists).  Register 0 plays the role of the
    paper's [R_0], the next free register.

    Two deliberate deviations from the paper's pseudo-code, both fixes:
    - Algorithm 12 ({e Cut}) relocates the last allocated node block into
      the freed slot but only re-points the {e parent} of the moved block;
      the {e children} of the moved block keep back-pointers into the old
      location.  We re-point them as well.
    - The caption of Figure 1 numbers some registers inconsistently with
      the formal description of Section 3.1 (e.g. it calls [R_8] "the
      last register representing the root" although the root occupies
      [d+1 = 4] registers).  We follow the formal description; see
      {!dump} and the [figure1] bench. *)

type 'v t

type key = Nd_util.Tuple.t

(** Result of a register-level search (Algorithm 2). *)
type 'v lookup =
  | Value of 'v  (** [ā ∈ Dom(f)], with its image. *)
  | Next of key  (** [ā ∉ Dom(f)]; the smallest key [> ā]. *)
  | Null  (** [ā ∉ Dom(f)] and no key [> ā] exists. *)

val create : n:int -> k:int -> epsilon:float -> 'v t
(** [create ~n ~k ~epsilon] is the empty structure over keys in [[0,n)^k].
    @raise Invalid_argument if [n < 1], [k < 1] or [epsilon <= 0]. *)

val n : 'v t -> int

val arity : 'v t -> int

val degree : 'v t -> int
(** The branching factor [d = ⌈n^ε⌉]. *)

val depth : 'v t -> int
(** The trie depth [k·h]. *)

val cardinal : 'v t -> int
(** [|Dom(f)|]. *)

val space : 'v t -> int
(** Number of registers currently in use (the paper's [R_0 - 1]). *)

val find : 'v t -> key -> 'v lookup
(** Constant-time lookup (Algorithm 2). *)

val get_opt : 'v t -> key -> 'v option

val mem : 'v t -> key -> bool

val succ_geq : 'v t -> key -> (key * 'v) option
(** [succ_geq t ā] is the smallest [(x̄, f(x̄))] with [x̄ ≥ ā]. *)

val succ_gt : 'v t -> key -> (key * 'v) option
(** [succ_gt t ā] is the smallest [(x̄, f(x̄))] with [x̄ > ā]. *)

val pred_lt : 'v t -> key -> key option
(** [pred_lt t ā] is the largest key [< ā], by direct trie descent
    (the paper suggests a dual structure; a walk is equivalent and does
    not double the space).  [O(d·k·h)], i.e. [O(n^ε)]. *)

val min_key : 'v t -> (key * 'v) option

val add : 'v t -> key -> 'v -> unit
(** Insert or overwrite a binding (Algorithms 4–9).  [O(n^ε)]. *)

val remove : 'v t -> key -> unit
(** Remove a binding if present (Algorithms 10–12 with the child
    back-pointer fix).  [O(n^ε)]. *)

val iter : (key -> 'v -> unit) -> 'v t -> unit
(** Iterate over bindings in increasing key order. *)

val to_list : 'v t -> (key * 'v) list

val canonicalize : 'v t -> 'v t
(** A fresh, equivalent structure whose node blocks are laid out in BFS
    (level) order of the trie — the layout used by the paper's Figure 1.
    Insertion allocates depth-first, so two structures holding the same
    function can differ in register numbering; canonicalizing makes the
    layout a function of the stored set only. *)

val dump : pp_value:(Format.formatter -> 'v -> unit) -> 'v t -> string
(** Render the register file in the style of Figure 1, one register per
    line: ["R_5: (1, 9)"], ["R_2: (0, (19))"], ["R_4: (-1, Null)"], … *)

val check_invariants : 'v t -> (unit, string) result
(** Validate the internal representation: node block layout, parent
    back-pointers, [(0,·)] cells pointing at the correct successor keys,
    absence of all-empty non-root nodes, and the space accounting.
    Used by the test-suite after every mutation. *)
