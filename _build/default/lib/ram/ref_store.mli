(** Purely functional reference model of {!Store}, used for differential
    testing and as a readable specification of the Storing Theorem's
    interface.  Every operation is O(log |Dom|) or worse — this module is
    a correctness oracle, not a performance substrate. *)

type 'v t

type key = Nd_util.Tuple.t

val empty : n:int -> k:int -> 'v t

val add : 'v t -> key -> 'v -> 'v t

val remove : 'v t -> key -> 'v t

val find : 'v t -> key -> 'v Store.lookup

val cardinal : 'v t -> int

val to_list : 'v t -> (key * 'v) list
(** Bindings in increasing key order. *)
