open Nd_util

type key = Tuple.t

module M = Map.Make (struct
  type t = key

  let compare = Tuple.compare
end)

type 'v t = { n : int; k : int; map : 'v M.t }

let empty ~n ~k =
  if n < 1 || k < 1 then invalid_arg "Ref_store.empty";
  { n; k; map = M.empty }

let check t (a : key) =
  if Array.length a <> t.k then invalid_arg "Ref_store: arity mismatch";
  Array.iter
    (fun x -> if x < 0 || x >= t.n then invalid_arg "Ref_store: out of range")
    a

let add t a v =
  check t a;
  { t with map = M.add (Array.copy a) v t.map }

let remove t a =
  check t a;
  { t with map = M.remove a t.map }

let find t a : 'v Store.lookup =
  check t a;
  match M.find_opt a t.map with
  | Some v -> Store.Value v
  | None -> (
      match M.find_first_opt (fun k -> Tuple.compare k a > 0) t.map with
      | Some (k, _) -> Store.Next k
      | None -> Store.Null)

let cardinal t = M.cardinal t.map

let to_list t = M.bindings t.map
