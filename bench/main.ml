(* Experiment harness: one experiment per theorem/figure of the paper
   (see DESIGN.md §3 for the index and EXPERIMENTS.md for recorded
   outcomes).  The paper is purely theoretical — no tables of its own —
   so each experiment validates the corresponding complexity claim
   empirically: flat per-operation latency, near-linear preprocessing,
   pseudo-constant cover/SC degrees, and qualitative separation from
   naive baselines and dense control families.

   Usage:
     dune exec bench/main.exe                 -- full run
     dune exec bench/main.exe -- --quick      -- smaller sizes
     dune exec bench/main.exe -- --only E5 E9 -- selected experiments
     dune exec bench/main.exe -- --micro      -- include Bechamel micro rows
     dune exec bench/main.exe -- --smoke      -- tiny EE run (BENCH_engine.json)

   Pipeline-shaped experiments (E7, E9, E11, A1, EE, micro) run through
   the Nd_engine façade; experiments benchmarking a sub-structure in
   isolation (E1/E2 store, E3 cover, E5 distance index, E6 skip) keep
   direct layer access on purpose. *)

open Nd_graph
open Nd_bench_util

let quick = ref false
let only : string list ref = ref []
let micro = ref false
let smoke = ref false

let f1 = Printf.sprintf "%.1f"
let f2 = Printf.sprintf "%.2f"
let si = string_of_int

let rng = Random.State.make [| 2022 |]

let rand_vertex n = Random.State.int rng n

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: the Storing Theorem register file.                    *)

let e1_figure1 () =
  let module S = Nd_ram.Store in
  let t = S.create ~n:27 ~k:1 ~epsilon:(1. /. 3.) in
  List.iter (fun x -> S.add t [| x |] x) [ 2; 4; 5; 19; 24; 25 ];
  let c = S.canonicalize t in
  let dump = S.dump ~pp_value:Format.pp_print_int c in
  print_string dump;
  let has s =
    List.exists (fun l -> l = s) (String.split_on_char '\n' dump)
  in
  let checks =
    [
      ("R_1: (1, 5)", "first child of the root is the node at R_5");
      ("R_2: (0, (19))", "empty subtree points at next key 19");
      ("R_8: (-1, 1)", "back-pointer to the register pointing here");
      ("R_19: (1, 5)", "leaf of key 5 holds f(5) = 5");
      ("R_0: 29 (next free register)", "29 registers in use");
    ]
  in
  print_table ~title:"E1 / Figure 1: caption register contents"
    ~header:[ "register"; "matches paper"; "meaning" ]
    (List.map
       (fun (line, why) -> [ line; (if has line then "yes" else "NO"); why ])
       checks);
  note
    "Layout uses BFS node order (the figure's); insertion allocates \
     depth-first, hence `canonicalize`.";
  note
    "The caption's prose for R_8 misattributes the register to the root; \
     contents match the formal description of Section 3.1."

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 3.1: storing-structure scaling.                         *)

let e2_storing () =
  let module S = Nd_ram.Store in
  let sizes =
    if !quick then [ 1 lsl 10; 1 lsl 12; 1 lsl 14 ]
    else [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 18 ]
  in
  let eps = 0.25 in
  (* warm up allocators and code paths before timing *)
  let warm = S.create ~n:1024 ~k:1 ~epsilon:eps in
  for i = 0 to 511 do
    S.add warm [| (i * 37) mod 1024 |] i
  done;
  let rows = ref [] in
  let init_pts = ref [] in
  List.iter
    (fun n ->
      let m = n / 4 in
      let keys = Array.init m (fun _ -> [| rand_vertex n |]) in
      let t = S.create ~n ~k:1 ~epsilon:eps in
      let (), t_init = time (fun () -> Array.iter (fun k -> S.add t k 1) keys) in
      let lookups = 100_000 in
      let t_find =
        time_per ~repeat:lookups (fun () ->
            ignore (S.find t [| rand_vertex n |]))
      in
      let t_succ =
        time_per ~repeat:lookups (fun () ->
            ignore (S.succ_geq t [| rand_vertex n |]))
      in
      let space_per = float_of_int (S.space t) /. float_of_int (S.cardinal t) in
      init_pts := (float_of_int m, t_init) :: !init_pts;
      rows :=
        [
          si n; si (S.cardinal t); si (S.degree t);
          ns (t_init /. float_of_int m); ns t_find; ns t_succ; f1 space_per;
        ]
        :: !rows)
    sizes;
  print_table
    ~title:
      (Printf.sprintf
         "E2 / Theorem 3.1: k=1, eps=%.2f (init O(n^eps)/key, lookup O(1), \
          space O(|Dom|*n^eps))"
         eps)
    ~header:[ "n"; "|Dom|"; "d"; "init/key"; "find"; "succ_geq"; "regs/|Dom|" ]
    (List.rev !rows);
  note
    (Printf.sprintf "init scaling exponent vs |Dom|: %.2f (1.0 = linear)"
       (fit_exponent !init_pts));
  let rows2 = ref [] in
  List.iter
    (fun n ->
      let m = n in
      let t = S.create ~n ~k:2 ~epsilon:0.5 in
      let keys = Array.init m (fun _ -> [| rand_vertex n; rand_vertex n |]) in
      let (), t_init = time (fun () -> Array.iter (fun k -> S.add t k 1) keys) in
      let t_find =
        time_per ~repeat:50_000 (fun () ->
            ignore (S.find t [| rand_vertex n; rand_vertex n |]))
      in
      rows2 :=
        [ si n; si (S.cardinal t); ns (t_init /. float_of_int m); ns t_find ]
        :: !rows2)
    (List.map (fun n -> n / 16) sizes);
  print_table ~title:"E2b / Theorem 3.1: binary keys (k=2, eps=0.5)"
    ~header:[ "n"; "|Dom|"; "init/key"; "find" ]
    (List.rev !rows2)

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 4.4: neighborhood-cover quality across the zoo.         *)

let e3_cover () =
  let target = if !quick then 1_500 else 12_000 in
  let rows = ref [] in
  List.iter
    (fun fam ->
      let g = fam.Gen.build target in
      List.iter
        (fun r ->
          let c, t = time (fun () -> Nd_nowhere.Cover.compute g ~r) in
          rows :=
            [
              fam.Gen.name;
              (if fam.Gen.nowhere_dense then "nd" else "dense");
              si (Cgraph.n g); si r;
              si (Nd_nowhere.Cover.bag_count c);
              si (Nd_nowhere.Cover.degree c);
              f2
                (float_of_int (Nd_nowhere.Cover.weight c)
                /. float_of_int (Cgraph.n g));
              ns t;
            ]
            :: !rows)
        [ 1; 2; 4 ])
    Gen.families;
  print_table
    ~title:
      "E3 / Theorem 4.4: (r,2r)-neighborhood covers (degree pseudo-constant \
       on nowhere dense families)"
    ~header:
      [ "family"; "class"; "n"; "r"; "bags"; "degree"; "sum|X|/n"; "build" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 4.6: measured splitter-game depth.                      *)

let e4_splitter () =
  let target = if !quick then 400 else 1_000 in
  let rows = ref [] in
  List.iter
    (fun fam ->
      let g = fam.Gen.build target in
      List.iter
        (fun r ->
          let res =
            Nd_nowhere.Splitter.measured_lambda g ~r ~max_rounds:40
              ~splitter:Nd_nowhere.Splitter.splitter_center
          in
          rows :=
            [
              fam.Gen.name;
              (if fam.Gen.nowhere_dense then "nd" else "dense");
              si (Cgraph.n g); si r;
              (match res with
              | Some l -> si l
              | None -> ">40 (Connector survives)");
            ]
            :: !rows)
        [ 1; 2 ])
    Gen.families;
  print_table
    ~title:
      "E4 / Theorem 4.6: rounds Splitter needs (bounded on nowhere dense \
       families, ~n on cliques)"
    ~header:[ "family"; "class"; "n"; "r"; "measured lambda" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E5 — Proposition 4.2: the distance index.                            *)

let e5_families = [ "grid"; "random-tree"; "bounded-deg-4"; "planar-grid" ]

let e5_sizes () =
  if !quick then [ 1_000; 2_000; 4_000 ]
  else [ 2_000; 4_000; 8_000; 16_000; 32_000 ]

let e5_dist_index () =
  let r = 2 in
  let queries = 20_000 in
  List.iter
    (fun fname ->
      let fam = List.find (fun f -> f.Gen.name = fname) Gen.families in
      let rows = ref [] in
      let build_pts = ref [] in
      List.iter
        (fun target ->
          let g = fam.Gen.build target in
          let n = Cgraph.n g in
          let idx, t_build = time (fun () -> Nd_core.Dist_index.build g ~r) in
          let near () =
            let a = rand_vertex n in
            let ball = Bfs.ball g a ~radius:(2 * r) in
            (a, ball.(Random.State.int rng (Array.length ball)))
          in
          let pairs =
            Array.init queries (fun i ->
                if i mod 2 = 0 then (rand_vertex n, rand_vertex n) else near ())
          in
          let i = ref 0 in
          let t_test =
            time_per ~repeat:queries (fun () ->
                let a, b = pairs.(!i) in
                incr i;
                ignore (Nd_core.Dist_index.test idx a b))
          in
          let i = ref 0 in
          let t_bfs =
            time_per ~repeat:(queries / 10) (fun () ->
                let a, b = pairs.(!i) in
                incr i;
                let d = Bfs.dist_upto g a ~radius:r in
                ignore (d.(b) >= 0))
          in
          let s = Nd_core.Dist_index.stats idx in
          build_pts := (float_of_int n, t_build) :: !build_pts;
          rows :=
            [
              si n; ns t_build; si s.Nd_core.Dist_index.levels;
              si s.Nd_core.Dist_index.base_pairs; ns t_test; ns t_bfs;
              f1 (t_bfs /. t_test);
            ]
            :: !rows)
        (e5_sizes ());
      print_table
        ~title:
          (Printf.sprintf
             "E5 / Proposition 4.2: distance index, %s, r=%d (flat test \
              latency; per-query BFS baseline grows)"
             fname r)
        ~header:
          [
            "n"; "build"; "levels"; "stored pairs"; "test"; "bfs/query";
            "speedup";
          ]
        (List.rev !rows);
      note
        (Printf.sprintf "build scaling exponent: %.2f"
           (fit_exponent !build_pts)))
    e5_families

(* ------------------------------------------------------------------ *)
(* E6 — Lemma 5.8: skip pointers.                                       *)

let e6_skip () =
  let sizes = if !quick then [ 1_024; 2_025 ] else [ 2_025; 8_100; 32_400 ] in
  let rows = ref [] in
  List.iter
    (fun target ->
      (* Grids have row-major vertex ids, so kernels are near-contiguous
         id ranges — the regime where scanning the label set must walk
         long kernel runs and SKIP jumps over them (the paper's
         Example 2 scenario). *)
      let side = int_of_float (sqrt (float_of_int target)) in
      let g = Gen.grid side side in
      let n = Cgraph.n g in
      let r = 4 in
      let cover = Nd_nowhere.Cover.compute g ~r in
      let kernels =
        Array.map
          (fun bag -> Nd_nowhere.Kernel.compute g ~bag ~p:r)
          cover.Nd_nowhere.Cover.bags
      in
      let kernels_of v =
        List.filter
          (fun x -> Nd_util.Sorted.mem kernels.(x) v)
          (Array.to_list cover.Nd_nowhere.Cover.bags_of.(v))
      in
      (* every vertex is labeled: SKIP(b,S) = next vertex outside the
         kernels of S *)
      let l = Array.init n Fun.id in
      let t, t_build =
        time (fun () -> Nd_core.Skip.build ~kernels ~kernels_of ~l ~n ~k:2)
      in
      let nbags = Array.length cover.Nd_nowhere.Cover.bags in
      let queries = 20_000 in
      let qs =
        Array.init queries (fun _ ->
            (* start inside kernels whenever possible *)
            let b = rand_vertex n in
            match kernels_of b with
            | [ x ] -> (b, [ x ])
            | x :: y :: _ -> (b, [ x; y ])
            | [] -> (b, [ Random.State.int rng nbags ]))
      in
      let i = ref 0 in
      let t_skip =
        time_per ~repeat:queries (fun () ->
            let b, bags = qs.(!i) in
            incr i;
            ignore (Nd_core.Skip.skip t ~b ~bags))
      in
      let i = ref 0 in
      let t_naive =
        time_per ~repeat:(queries / 10) (fun () ->
            let b, bags = qs.(!i) in
            incr i;
            ignore (Nd_core.Skip.skip_naive t ~b ~bags))
      in
      rows :=
        [
          si n; si nbags; si (Nd_core.Skip.max_sc t);
          f2 (float_of_int (Nd_core.Skip.table_size t) /. float_of_int n);
          ns t_build; ns t_skip; ns t_naive;
        ]
        :: !rows)
    sizes;
  print_table
    ~title:
      "E6 / Lemma 5.8: skip pointers (|SC(b)| pseudo-constant, O(1) SKIP vs \
       label-scan baseline)"
    ~header:
      [ "n"; "bags"; "max|SC|"; "table/n"; "build"; "SKIP"; "scan baseline" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E7/E8 — Theorem 2.3 + Corollary 2.4: next-solution and testing.      *)

let bench_queries =
  [
    ("close-pair", "dist(x,y) <= 2");
    ("far-color", "dist(x,y) > 2 & C1(y)");
    ("join", "exists z. E(x,z) & E(z,y)");
    ("ternary", "E(x,y) & dist(y,z) <= 2 & dist(x,z) > 2 & C0(z)");
  ]

let e7_families = [ "grid"; "bounded-deg-4" ]

let e7_next_and_test () =
  let sizes =
    if !quick then [ 500; 1_000; 2_000 ] else [ 1_000; 4_000; 16_000 ]
  in
  List.iter
    (fun fname ->
      let fam = List.find (fun f -> f.Gen.name = fname) Gen.families in
      List.iter
        (fun (qname, qtext) ->
          let phi = Nd_logic.Parse.formula qtext in
          let k = Nd_logic.Fo.arity phi in
          let rows = ref [] in
          let prep_pts = ref [] in
          List.iter
            (fun target ->
              let g =
                Gen.randomly_color ~seed:7 ~colors:2 (fam.Gen.build target)
              in
              let n = Cgraph.n g in
              (* cache off: measure the live Theorem 2.3 path itself *)
              let eng, t_prep =
                time (fun () -> Nd_engine.prepare ~cache_limit:0 g phi)
              in
              let calls = if !quick then 2_000 else 5_000 in
              let tuples =
                Array.init calls (fun _ ->
                    Array.init k (fun _ -> rand_vertex n))
              in
              let i = ref 0 in
              let t_next =
                time_per ~repeat:calls (fun () ->
                    ignore (Nd_engine.next eng tuples.(!i));
                    incr i)
              in
              let i = ref 0 in
              let t_test =
                time_per ~repeat:calls (fun () ->
                    ignore (Nd_engine.test eng tuples.(!i));
                    incr i)
              in
              prep_pts := (float_of_int n, t_prep) :: !prep_pts;
              rows := [ si n; ns t_prep; ns t_next; ns t_test ] :: !rows)
            sizes;
          print_table
            ~title:
              (Printf.sprintf
                 "E7+E8 / Thm 2.3 & Cor 2.4: %s on %s — %s (flat per-call \
                  latency)"
                 qname fname qtext)
            ~header:[ "n"; "preprocess"; "next_solution"; "test" ]
            (List.rev !rows);
          note
            (Printf.sprintf "preprocessing scaling exponent: %.2f"
               (fit_exponent !prep_pts)))
        bench_queries)
    e7_families

(* ------------------------------------------------------------------ *)
(* E9 — Corollary 2.5: enumeration delay and naive comparison.          *)

let e9_enumeration () =
  let sizes =
    if !quick then [ 500; 1_000; 2_000 ] else [ 1_000; 4_000; 16_000 ]
  in
  List.iter
    (fun (qname, qtext) ->
      let phi = Nd_logic.Parse.formula qtext in
      let rows = ref [] in
      List.iter
        (fun target ->
          let side = int_of_float (sqrt (float_of_int target)) in
          let g =
            Gen.randomly_color ~seed:9 ~colors:2 (Gen.grid side side)
          in
          let n = Cgraph.n g in
          (* metrics on (for the ops-delay histogram), cache off (wall
             delays must measure the pipeline, not store upkeep) *)
          Nd_engine.reset_metrics ();
          let eng, t_prep =
            time (fun () ->
                Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi)
          in
          let cap = 50_000 in
          let delays = ref [] and count = ref 0 in
          let last = ref (Unix.gettimeofday ()) in
          let t_first = ref 0. in
          let t0 = Unix.gettimeofday () in
          Nd_engine.enumerate ~limit:cap
            (fun _ ->
              let now = Unix.gettimeofday () in
              if !count = 0 then t_first := now -. t0
              else delays := (now -. !last) :: !delays;
              last := now;
              incr count)
            eng;
          let d = Array.of_list !delays in
          let max_delay_ops =
            (Nd_engine.stats eng).Nd_engine.Stats.max_delay_ops
          in
          let naive =
            if n <= 1_100 then begin
              let ctx = Nd_eval.Naive.ctx g in
              let _, t =
                time (fun () ->
                    ignore
                      (Nd_eval.Naive.eval_all ctx
                         ~vars:(Nd_logic.Fo.free_vars phi) phi))
              in
              ns t
            end
            else "-"
          in
          rows :=
            [
              si n; ns t_prep; si !count; ns !t_first;
              ns (percentile d 50.); ns (percentile d 95.);
              ns (percentile d 99.9); si max_delay_ops; naive;
            ]
            :: !rows)
        sizes;
      print_table
        ~title:
          (Printf.sprintf
             "E9 / Corollary 2.5: enumeration of %s on grids — %s (delay \
              percentiles flat vs n; naive total explodes)"
             qname qtext)
        ~header:
          [
            "n"; "preprocess"; "solutions"; "first"; "delay p50"; "delay p95";
            "delay p99.9"; "max ops"; "naive total";
          ]
        (List.rev !rows);
      Nd_util.Metrics.disable ())
    [ ("close-pair", "dist(x,y) <= 2"); ("far-color", "dist(x,y) > 2 & C1(y)") ]

(* ------------------------------------------------------------------ *)
(* E11 — counting without enumerating (the Grohe–Schweikardt companion
   result the introduction cites: |q(G)| can be quadratic while the
   count is computable in pseudo-linear time).                          *)

let e11_counting () =
  let sizes =
    if !quick then [ 1_000; 2_000; 4_000 ] else [ 2_000; 8_000; 32_000 ]
  in
  let phi = Nd_logic.Parse.formula "dist(x,y) > 2 & C1(y)" in
  let rows = ref [] in
  let pts = ref [] in
  List.iter
    (fun target ->
      let side = int_of_float (sqrt (float_of_int target)) in
      let g = Gen.randomly_color ~seed:21 ~colors:2 (Gen.grid side side) in
      let n = Cgraph.n g in
      let eng = Nd_engine.prepare ~cache_limit:0 g phi in
      let r, t_count = time (fun () -> Nd_engine.count eng) in
      assert (r.Nd_core.Count.method_ = Nd_core.Count.Exact_pseudolinear);
      let enum_time =
        if n <= 4_100 then begin
          let c, t = time (fun () -> Nd_engine.count_enumerated eng) in
          assert (c = r.Nd_core.Count.count);
          ns t
        end
        else "-"
      in
      pts := (float_of_int n, t_count) :: !pts;
      rows :=
        [
          si n; si r.Nd_core.Count.count;
          f1 (float_of_int r.Nd_core.Count.count /. float_of_int n);
          ns t_count; enum_time;
        ]
        :: !rows)
    sizes;
  print_table
    ~title:
      "E11 / counting (GS companion result): |q(G)| ~ n^2 far pairs counted \
       in pseudo-linear time — dist(x,y) > 2 & C1(y) on grids"
    ~header:[ "n"; "count"; "count/n"; "count time"; "enumerate+count" ]
    (List.rev !rows);
  note
    (Printf.sprintf "counting scaling exponent: %.2f (output itself grows ~2.0)"
       (fit_exponent !pts))

(* ------------------------------------------------------------------ *)
(* E10 — weak r-accessibility profile (Section 2 characterization).     *)

let e10_wcol () =
  let target = if !quick then 1_000 else 8_000 in
  let rows = ref [] in
  List.iter
    (fun fam ->
      let g = fam.Gen.build target in
      List.iter
        (fun r ->
          let p, t = time (fun () -> Nd_nowhere.Wcol.profile g ~r) in
          rows :=
            [
              fam.Gen.name;
              (if fam.Gen.nowhere_dense then "nd" else "dense");
              si (Cgraph.n g); si r; si p.Nd_nowhere.Wcol.max;
              f2 p.Nd_nowhere.Wcol.mean; ns t;
            ]
            :: !rows)
        [ 1; 2 ])
    Gen.families;
  print_table
    ~title:
      "E10 / Section 2: weak r-accessibility under the degeneracy order \
       (bounded on sparse families, ~n on dense controls)"
    ~header:[ "family"; "class"; "n"; "r"; "max wreach"; "mean"; "time" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* A1 — ablation: skip pointers vs label-set scanning (Case I).         *)

let a1_ablation_skip () =
  (* A forest of stars: nowhere dense (trees!) yet with huge 2-balls.
     Asking for far solutions from a hub forces a plain label scan to
     wade through the hub's whole star, while the SKIP pointers jump
     over the kernel in O(1) — the situation of the paper's Example 2. *)
  let target = if !quick then 4_000 else 20_000 in
  let stars = 8 in
  let per = target / stars in
  let edges = ref [] in
  for s = 0 to stars - 1 do
    let base = s * per in
    for i = 1 to per - 1 do
      edges := (base, base + i) :: !edges
    done
  done;
  let g =
    Gen.randomly_color ~seed:11 ~colors:2
      (Cgraph.create ~n:(stars * per) !edges)
  in
  let n = Cgraph.n g in
  let phi = Nd_logic.Parse.formula "dist(x,y) > 2 & C1(y)" in
  (* metrics for the scan-step counts; cache off so repeated tuples
     keep exercising the live Case I machinery *)
  Nd_engine.reset_metrics ();
  let eng = Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi in
  let calls = 3_000 in
  (* two regimes: queries whose answer lies beyond the prefix's kernel
     (SKIP jumps over it in O(1); a label scan must far-test its way
     through), and queries anchored at the very first star, where even
     the paper needs its λ-recursion to avoid inspecting the kernel *)
  let jump_tuples =
    Array.init calls (fun i -> [| ((i mod (stars - 1)) + 1) * per; 0 |])
  in
  let worst_tuples = Array.init calls (fun _ -> [| 0; 0 |]) in
  let run tuples =
    let i = ref 0 in
    Nd_engine.reset_metrics ();
    let t =
      time_per ~repeat:calls (fun () ->
          ignore (Nd_engine.next eng tuples.(!i mod calls));
          incr i)
    in
    let st = Nd_engine.stats eng in
    let scans =
      match List.assoc_opt "answer.scan_steps" st.Nd_engine.Stats.counters with
      | Some v -> v
      | None -> 0
    in
    (t, float_of_int scans /. float_of_int calls)
  in
  Nd_engine.use_skip eng true;
  let t_jump_skip, s_jump_skip = run jump_tuples in
  let t_worst_skip, s_worst_skip = run worst_tuples in
  Nd_engine.use_skip eng false;
  let t_jump_scan, s_jump_scan = run jump_tuples in
  let t_worst_scan, s_worst_scan = run worst_tuples in
  Nd_engine.use_skip eng true;
  Nd_util.Metrics.disable ();
  print_table
    ~title:
      "A1 / ablation: Case I with skip pointers vs linear label scan on a \
       star forest (dist(x,y) > 2 & C1(y))"
    ~header:
      [ "workload"; "variant"; "n"; "next_solution"; "scan steps / call" ]
    [
      [ "hub of a later star"; "skip pointers"; si n; ns t_jump_skip;
        f1 s_jump_skip ];
      [ "hub of a later star"; "linear scan"; si n; ns t_jump_scan;
        f1 s_jump_scan ];
      [ "hub of the first star"; "skip pointers"; si n; ns t_worst_skip;
        f1 s_worst_skip ];
      [ "hub of the first star"; "linear scan"; si n; ns t_worst_scan;
        f1 s_worst_scan ];
    ];
  note
    "Skipping pays when kernels of the prefix's bags cover a long prefix \
     of the label order; the first-star workload is the residual regime \
     where only the paper's full λ-recursion (non-elementary constants) \
     avoids a kernel-bounded scan."

(* ------------------------------------------------------------------ *)
(* A2 — ablation: index memory vs recomputation.                        *)

let a2_ablation_dist () =
  let sizes = if !quick then [ 1_000; 4_000 ] else [ 4_000; 16_000; 64_000 ] in
  let rows = ref [] in
  List.iter
    (fun target ->
      let g = Gen.bounded_degree ~seed:13 target ~max_degree:4 in
      let n = Cgraph.n g in
      let idx, t_build = time (fun () -> Nd_core.Dist_index.build g ~r:2) in
      let s = Nd_core.Dist_index.stats idx in
      let pairs = s.Nd_core.Dist_index.base_pairs in
      let probes =
        Array.init 10_000 (fun _ -> (rand_vertex n, rand_vertex n))
      in
      let i = ref 0 in
      let t_test =
        time_per ~repeat:10_000 (fun () ->
            let a, b = probes.(!i) in
            incr i;
            ignore (Nd_core.Dist_index.test idx a b))
      in
      rows :=
        [
          si n; ns t_build; si pairs;
          f1 (float_of_int pairs /. float_of_int n); ns t_test;
        ]
        :: !rows)
    sizes;
  print_table
    ~title:
      "A2 / ablation: distance-index space (stored pairs pseudo-linear in n)"
    ~header:[ "n"; "build"; "stored pairs"; "pairs/n"; "test" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* ER — robustness: budget-probe overhead on the E7/E9 hot paths.
   The budget probes are a single load-and-branch when nothing is
   installed, and ticks never advance an ops counter, so the cost-model
   delta between a plain run and a run under a generous installed
   budget must be ~0 (check_schema enforces <= 2%).  Wall-clock deltas
   are reported for context but not gated (noise dominates).            *)

type er_row = {
  er_spec : string;
  er_n : int;
  er_ops_plain : int;
  er_ops_budget : int;
  er_delta_pct : float;
  er_wall_plain : float;
  er_wall_budget : float;
}

let er_point side =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.grid side side) in
  let n = Cgraph.n g in
  Nd_engine.reset_metrics ();
  let eng = Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi in
  let calls = if !smoke then 500 else 2_000 in
  (* deterministic tuples: both runs must do bit-identical work *)
  let tuples =
    Array.init calls (fun i -> [| i * 17 mod n; i * 31 mod n |])
  in
  let workload () =
    for i = 0 to calls - 1 do
      ignore (Nd_engine.next eng tuples.(i));
      ignore (Nd_engine.test eng tuples.(i))
    done;
    Nd_engine.enumerate (fun _ -> ()) eng
  in
  let measure f =
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ();
    let o0 = Nd_util.Metrics.ops () in
    let (), t = time f in
    (Nd_util.Metrics.ops () - o0, t)
  in
  (* warm once: lazily-built index nodes make the first pass more
     expensive; the comparison needs the steady state on both sides *)
  workload ();
  let ops_plain, wall_plain = measure workload in
  let b = Nd_util.Budget.create ~max_ops:max_int ~timeout_ms:3_600_000 () in
  let ops_budget, wall_budget =
    measure (fun () -> Nd_util.Budget.with_installed b workload)
  in
  Nd_util.Metrics.disable ();
  let delta_pct =
    if ops_plain = 0 then 0.
    else
      float_of_int (ops_budget - ops_plain)
      /. float_of_int ops_plain *. 100.
  in
  {
    er_spec = Printf.sprintf "grid:%dx%d" side side;
    er_n = n;
    er_ops_plain = ops_plain;
    er_ops_budget = ops_budget;
    er_delta_pct = delta_pct;
    er_wall_plain = wall_plain;
    er_wall_budget = wall_budget;
  }

let er_json r =
  Printf.sprintf
    "{\"spec\":%S,\"n\":%d,\"ops_plain\":%d,\"ops_budget\":%d,\
     \"ops_delta_pct\":%.9g,\"wall_plain_s\":%.9g,\"wall_budget_s\":%.9g}"
    r.er_spec r.er_n r.er_ops_plain r.er_ops_budget r.er_delta_pct
    r.er_wall_plain r.er_wall_budget

let er_sides () =
  if !smoke then [ 8; 12 ] else if !quick then [ 12; 20 ] else [ 16; 32; 64 ]

let er_budget_overhead () =
  let rows =
    List.map
      (fun side ->
        let r = er_point side in
        [
          r.er_spec; si r.er_n; si r.er_ops_plain; si r.er_ops_budget;
          f2 r.er_delta_pct;
          f2
            ((r.er_wall_budget -. r.er_wall_plain)
            /. r.er_wall_plain *. 100.);
        ])
      (er_sides ())
  in
  print_table
    ~title:
      "ER / robustness: budget-probe overhead on the next/test/enumerate \
       hot paths (ops delta must be ~0; gated at 2% by check_schema)"
    ~header:
      [ "graph"; "n"; "ops plain"; "ops budgeted"; "ops delta %"; "wall delta %" ]
    rows

(* ------------------------------------------------------------------ *)
(* TR — observability: span-tracer overhead on the same deterministic
   workload as ER.  The tracer's bookkeeping (ids, clock reads, ring
   writes) never advances an ops counter, so the cost-model delta
   between a tracing-off and a tracing-on run must be ~0 (check_schema
   enforces <= 2%, mirroring the ER budget-probe gate).  Span counts
   are recorded so the gate also proves the traced arm actually
   traced.                                                              *)

type tr_row = {
  tr_spec : string;
  tr_n : int;
  tr_ops_off : int;
  tr_ops_on : int;
  tr_delta_pct : float;
  tr_wall_off : float;
  tr_wall_on : float;
  tr_spans : int;
}

let tr_point side =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.grid side side) in
  let n = Cgraph.n g in
  Nd_engine.reset_metrics ();
  let eng = Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi in
  let calls = if !smoke then 500 else 2_000 in
  let tuples =
    Array.init calls (fun i -> [| i * 17 mod n; i * 31 mod n |])
  in
  let workload () =
    for i = 0 to calls - 1 do
      ignore (Nd_engine.next eng tuples.(i));
      ignore (Nd_engine.test eng tuples.(i))
    done;
    Nd_engine.enumerate (fun _ -> ()) eng
  in
  let measure f =
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ();
    let o0 = Nd_util.Metrics.ops () in
    let (), t = time f in
    (Nd_util.Metrics.ops () - o0, t)
  in
  workload ();
  Nd_trace.disable ();
  let ops_off, wall_off = measure workload in
  Nd_trace.enable ();
  Nd_trace.clear ();
  let ops_on, wall_on = measure workload in
  let spans = List.length (Nd_trace.spans ()) + Nd_trace.dropped () in
  Nd_trace.disable ();
  Nd_trace.clear ();
  Nd_util.Metrics.disable ();
  let delta_pct =
    if ops_off = 0 then 0.
    else float_of_int (ops_on - ops_off) /. float_of_int ops_off *. 100.
  in
  {
    tr_spec = Printf.sprintf "grid:%dx%d" side side;
    tr_n = n;
    tr_ops_off = ops_off;
    tr_ops_on = ops_on;
    tr_delta_pct = delta_pct;
    tr_wall_off = wall_off;
    tr_wall_on = wall_on;
    tr_spans = spans;
  }

let tr_json r =
  Printf.sprintf
    "{\"spec\":%S,\"n\":%d,\"ops_off\":%d,\"ops_on\":%d,\
     \"ops_delta_pct\":%.9g,\"wall_off_s\":%.9g,\"wall_on_s\":%.9g,\
     \"spans\":%d}"
    r.tr_spec r.tr_n r.tr_ops_off r.tr_ops_on r.tr_delta_pct r.tr_wall_off
    r.tr_wall_on r.tr_spans

let tr_trace_overhead () =
  let rows =
    List.map
      (fun side ->
        let r = tr_point side in
        [
          r.tr_spec; si r.tr_n; si r.tr_ops_off; si r.tr_ops_on;
          f2 r.tr_delta_pct;
          f2 ((r.tr_wall_on -. r.tr_wall_off) /. r.tr_wall_off *. 100.);
          si r.tr_spans;
        ])
      (er_sides ())
  in
  print_table
    ~title:
      "TR / observability: span-tracer overhead on the next/test/enumerate \
       hot paths (ops delta must be ~0; gated at 2% by check_schema)"
    ~header:
      [ "graph"; "n"; "ops off"; "ops on"; "ops delta %"; "wall delta %";
        "spans" ]
    rows

let micro_rows () =
  let open Bechamel in
  let open Toolkit in
  let n = 4_096 in
  let store = Nd_ram.Store.create ~n ~k:1 ~epsilon:0.25 in
  for _ = 1 to n / 4 do
    Nd_ram.Store.add store [| rand_vertex n |] 1
  done;
  let g = Gen.randomly_color ~seed:3 ~colors:2 (Gen.grid 64 64) in
  let gn = Cgraph.n g in
  let idx = Nd_core.Dist_index.build g ~r:2 in
  let phi = Nd_logic.Parse.formula "dist(x,y) > 2 & C1(y)" in
  let eng = Nd_engine.prepare ~cache_limit:0 g phi in
  let tests =
    Test.make_grouped ~name:"micro" ~fmt:"%s %s"
      [
        Test.make ~name:"store.find (Thm 3.1)"
          (Staged.stage (fun () ->
               ignore (Nd_ram.Store.find store [| rand_vertex n |])));
        Test.make ~name:"dist.test (Prop 4.2)"
          (Staged.stage (fun () ->
               ignore
                 (Nd_core.Dist_index.test idx (rand_vertex gn)
                    (rand_vertex gn))));
        Test.make ~name:"next_solution (Thm 2.3)"
          (Staged.stage (fun () ->
               ignore
                 (Nd_engine.next eng [| rand_vertex gn; rand_vertex gn |])));
        Test.make ~name:"test tuple (Cor 2.4)"
          (Staged.stage (fun () ->
               ignore
                 (Nd_engine.test eng [| rand_vertex gn; rand_vertex gn |])));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := [ name; Printf.sprintf "%.0f ns" est ] :: !rows
      | _ -> ())
    results;
  print_table ~title:"Bechamel micro-benchmarks (per-operation cost)"
    ~header:[ "operation"; "time/run" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* PAR — domain-parallel prepare and the concurrent serve loop
   (DESIGN S14).  Two trajectories, both riding along into
   BENCH_engine.json in every mode:

   - prepare wall time at jobs ∈ {1,2,4} on the mode's largest zoo
     grid, with speedup vs jobs=1.  The prepared structure is
     bit-identical for every job count (the test suite's differential
     gate), so this is a pure wall-clock comparison.
   - serve throughput (requests/s) at 1/4/16 concurrent socket
     clients against one jobs=4 handle.

   Every row records [host_domains] (Domain.recommended_domain_count):
   on a single-core host the speedup and scaling gates are vacuous —
   worker domains just time-share — so check_schema only enforces
   them when host_domains >= 4. *)

let host_domains = Domain.recommended_domain_count ()

let par_prepare_spec () =
  if !smoke then "grid:20x20" else if !quick then "grid:30x30"
  else "grid:56x56"

let par_prepare_points () =
  let spec = par_prepare_spec () in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.of_spec ~seed:5 spec) in
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let measure jobs =
    let _, s = time (fun () -> Nd_engine.prepare ~jobs g phi) in
    s
  in
  (* one warm-up build keeps allocator/code warm-up out of the jobs=1
     baseline *)
  ignore (measure 1);
  let base = measure 1 in
  List.map
    (fun jobs ->
      let s = if jobs = 1 then base else measure jobs in
      let speedup = base /. Float.max s 1e-9 in
      Printf.printf "  %s  jobs=%d  prepare=%s  speedup=%.2fx\n%!" spec jobs
        (ns s) speedup;
      Printf.sprintf
        "{\"spec\":%S,\"jobs\":%d,\"host_domains\":%d,\"prepare_s\":%.9g,\
         \"speedup\":%.9g}"
        spec jobs host_domains s speedup)
    [ 1; 2; 4 ]

(* Throughput of the thread-per-connection socket loop: [clients]
   concurrent connections each firing [per_client] point requests.
   Request processing is serialized by the shared engine lock, so the
   scaling under test is the connection I/O overlap. *)
let par_serve_point ~clients eng =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_bench_par_%d_%d.sock" (Unix.getpid ()) clients)
  in
  (try Sys.remove path with Sys_error _ -> ());
  let srv = Nd_server.create eng in
  let th =
    Thread.create
      (fun () -> try Nd_server.serve_socket srv ~path with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Nd_server.request_stop srv;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let rec wait tries =
    if Sys.file_exists path then ()
    else if tries = 0 then failwith "bench: server socket never appeared"
    else begin
      Unix.sleepf 0.02;
      wait (tries - 1)
    end
  in
  wait 250;
  let per_client = if !smoke then 50 else 300 in
  let client () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX path);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let transport = Nd_server.Client.channel_transport ic oc in
    for _ = 1 to per_client do
      ignore (transport "test 0,1")
    done;
    ignore (transport "quit")
  in
  let (), elapsed =
    time (fun () ->
        let ths = List.init clients (fun _ -> Thread.create client ()) in
        List.iter Thread.join ths)
  in
  let requests = clients * per_client in
  let rps = float requests /. Float.max elapsed 1e-9 in
  Printf.printf "  clients=%-2d  %d requests in %s  (%.0f req/s)\n%!" clients
    requests (ns elapsed) rps;
  Printf.sprintf
    "{\"clients\":%d,\"jobs\":%d,\"host_domains\":%d,\"requests\":%d,\
     \"elapsed_s\":%.9g,\"rps\":%.9g}"
    clients (Nd_engine.jobs eng) host_domains requests elapsed rps

let par_serve_points () =
  let g =
    Gen.randomly_color ~seed:5 ~colors:2
      (Gen.of_spec ~seed:5 (if !smoke then "grid:12x12" else "grid:20x20"))
  in
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let eng = Nd_engine.prepare ~jobs:4 g phi in
  List.map (fun clients -> par_serve_point ~clients eng) [ 1; 4; 16 ]

let par_json () =
  let prepare = String.concat "," (par_prepare_points ()) in
  let serve = String.concat "," (par_serve_points ()) in
  Printf.sprintf "{\"host_domains\":%d,\"prepare\":[%s],\"serve\":[%s]}"
    host_domains prepare serve

let par_rows = ref None

(* memoized: the PAR experiment and the EE document share one run *)
let par_rows_json () =
  match !par_rows with
  | Some j -> j
  | None ->
      let j = par_json () in
      par_rows := Some j;
      j

let par_parallel () =
  Printf.printf "  host domains detected: %d\n%!" host_domains;
  ignore (par_rows_json ())

(* ------------------------------------------------------------------ *)
(* RB — overload-safe serving (DESIGN S15).  Three arms, all riding
   into BENCH_engine.json in every mode:

   - gated: 8 concurrent clients against max_inflight=2 — a 2x-plus
     overload by construction.  Point requests are microseconds, so an
     overlap-dependent stampede would be scheduler luck; instead each
     request is the chaos verb `inject sleep 2`, a deterministic 2ms
     heavy-query surrogate that holds the engine lock exactly like an
     expensive enumerate.  While one request sleeps under the lock and
     one waits, the other six clients' requests must be shed — so
     shed > 0 is structural, on any host.  Records goodput (ok
     replies/s against the 500/s service ceiling) and the
     client-observed p99 of the shed replies: shedding must stay cheap
     precisely when the server is saturated, because the shed path
     never touches the engine lock.
   - nogate: the same stampede with admission control off.  Everything
     is eventually served at the same 500/s ceiling, but every request
     waits its turn in the lock queue — the ok p99 comparison against
     the gated arm is the case for shedding.
   - hygiene: the unloaded PAR serve row (1 client, sequential
     requests) with every hygiene gate off vs armed at non-triggering
     thresholds.  The gates live in the transport layer and must
     never advance a cost-model counter, so the ops delta is gated at
     2% exactly like the ER budget-probe and TR tracer gates. *)

let rb_clients = 8
let rb_sleep_ms = 2

let rb_per_client () = if !smoke then 25 else 100

let rb_graph () =
  Gen.randomly_color ~seed:5 ~colors:2
    (Gen.of_spec ~seed:5 (if !smoke then "grid:12x12" else "grid:20x20"))

let rb_percentile_us lat p =
  let a = Array.copy lat in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(min (n - 1) (int_of_float (ceil (p /. 100. *. float n)) - 1))

let rb_with_server ~config eng f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nd_bench_rb_%d_%d.sock" (Unix.getpid ()) (Random.bits ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let srv = Nd_server.create ~config eng in
  let th =
    Thread.create
      (fun () -> try Nd_server.serve_socket srv ~path with _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Nd_server.request_stop srv;
      Thread.join th;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let rec wait tries =
    if Sys.file_exists path then ()
    else if tries = 0 then failwith "bench: rb server socket never appeared"
    else begin
      Unix.sleepf 0.02;
      wait (tries - 1)
    end
  in
  wait 250;
  f srv path

(* One stampede: [rb_clients] plain transports (no retry policy — the
   raw shed replies are the measurement) each firing [per_client]
   2ms heavy-query surrogates.  Returns per-request latencies split by
   outcome. *)
let rb_stampede ~config eng =
  rb_with_server ~config eng @@ fun srv path ->
  let per_client = rb_per_client () in
  let ok_lat = Array.make (rb_clients * per_client) 0. in
  let shed_lat = Array.make (rb_clients * per_client) 0. in
  let ok = ref 0 and shed = ref 0 and other = ref 0 in
  let m = Mutex.create () in
  let client () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX path);
    let transport =
      Nd_server.Client.channel_transport
        (Unix.in_channel_of_descr fd)
        (Unix.out_channel_of_descr fd)
    in
    let request = Printf.sprintf "inject sleep %d" rb_sleep_ms in
    for _ = 1 to per_client do
      let reply, s = time (fun () -> transport request) in
      let us = s *. 1e6 in
      Mutex.lock m;
      (match Nd_server.Client.status_of_reply reply with
      | Nd_server.Client.Ok_reply ->
          ok_lat.(!ok) <- us;
          incr ok
      | Nd_server.Client.Err_reply ("overloaded", _) ->
          shed_lat.(!shed) <- us;
          incr shed
      | _ -> incr other);
      Mutex.unlock m
    done;
    ignore (transport "quit")
  in
  let (), elapsed =
    time (fun () ->
        let ths = List.init rb_clients (fun _ -> Thread.create client ()) in
        List.iter Thread.join ths)
  in
  let server_shed = (Nd_server.counts srv).Nd_server.overloaded in
  ( Array.sub ok_lat 0 !ok,
    Array.sub shed_lat 0 !shed,
    !other,
    elapsed,
    server_shed )

let rb_overload_json eng =
  let retry_after_ms = 25 in
  (* chaos unlocks the `inject sleep` heavy-query surrogate *)
  let base = { Nd_server.default_config with Nd_server.chaos = true } in
  let gated_cfg =
    { base with Nd_server.max_inflight = Some 2; retry_after_ms }
  in
  let ok_lat, shed_lat, other, elapsed, server_shed =
    rb_stampede ~config:gated_cfg eng
  in
  let requests = rb_clients * rb_per_client () in
  let ok = Array.length ok_lat and shed = Array.length shed_lat in
  let goodput = float ok /. Float.max elapsed 1e-9 in
  let shed_p99 = rb_percentile_us shed_lat 99. in
  Printf.printf
    "  gated(max_inflight=2)  clients=%d  %d requests: %d ok, %d shed  \
     goodput=%.0f ok/s  shed p99=%.0fus\n%!"
    rb_clients requests ok shed goodput shed_p99;
  let gated =
    Printf.sprintf
      "{\"clients\":%d,\"requests\":%d,\"sleep_ms\":%d,\"ok\":%d,\
       \"shed\":%d,\"server_shed\":%d,\"other\":%d,\"elapsed_s\":%.9g,\
       \"goodput_rps\":%.9g,\"ok_p99_us\":%.9g,\"shed_p99_us\":%.9g,\
       \"retry_after_ms\":%d}"
      rb_clients requests rb_sleep_ms ok shed server_shed other elapsed
      goodput
      (rb_percentile_us ok_lat 99.)
      shed_p99 retry_after_ms
  in
  let ok_lat, shed_lat, other, elapsed, _ = rb_stampede ~config:base eng in
  let ok = Array.length ok_lat in
  let rps = float ok /. Float.max elapsed 1e-9 in
  Printf.printf
    "  nogate                 clients=%d  %d requests: %d ok  %.0f req/s  \
     ok p99=%.0fus\n%!"
    rb_clients requests ok rps
    (rb_percentile_us ok_lat 99.);
  let nogate =
    Printf.sprintf
      "{\"clients\":%d,\"requests\":%d,\"sleep_ms\":%d,\"ok\":%d,\
       \"shed\":%d,\"other\":%d,\"elapsed_s\":%.9g,\"rps\":%.9g,\
       \"ok_p99_us\":%.9g}"
      rb_clients requests rb_sleep_ms ok (Array.length shed_lat) other
      elapsed rps
      (rb_percentile_us ok_lat 99.)
  in
  (gated, nogate)

(* The hygiene arm: one sequential client (the unloaded PAR serve
   row), gates off vs gates armed at thresholds this workload can
   never trip.  Cost-model ops must be bit-identical. *)
let rb_hygiene_json eng =
  let requests = if !smoke then 200 else 800 in
  let run config =
    rb_with_server ~config eng @@ fun _srv path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX path);
    let transport =
      Nd_server.Client.channel_transport
        (Unix.in_channel_of_descr fd)
        (Unix.out_channel_of_descr fd)
    in
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ();
    let o0 = Nd_util.Metrics.ops () in
    let (), s =
      time (fun () ->
          for _ = 1 to requests do
            ignore (transport "test 0,1")
          done)
    in
    ignore (transport "quit");
    Nd_util.Metrics.disable ();
    (Nd_util.Metrics.ops () - o0, s)
  in
  let armed =
    {
      Nd_server.default_config with
      Nd_server.max_inflight = Some 1_000;
      max_conns = Some 64;
      io_timeout_ms = Some 30_000;
      idle_timeout_ms = Some 30_000;
    }
  in
  (* warm once so lazily-built index nodes don't skew the off arm *)
  ignore (run Nd_server.default_config);
  let ops_off, wall_off = run Nd_server.default_config in
  let ops_on, wall_on = run armed in
  let delta_pct =
    if ops_off = 0 then 0.
    else float_of_int (ops_on - ops_off) /. float_of_int ops_off *. 100.
  in
  Printf.printf
    "  hygiene overhead       %d sequential requests: ops off=%d on=%d  \
     delta=%.2f%%  wall %s -> %s\n%!"
    requests ops_off ops_on delta_pct (ns wall_off) (ns wall_on);
  Printf.sprintf
    "{\"requests\":%d,\"ops_off\":%d,\"ops_on\":%d,\"ops_delta_pct\":%.9g,\
     \"wall_off_s\":%.9g,\"wall_on_s\":%.9g,\"rps_off\":%.9g,\
     \"rps_on\":%.9g}"
    requests ops_off ops_on delta_pct wall_off wall_on
    (float requests /. Float.max wall_off 1e-9)
    (float requests /. Float.max wall_on 1e-9)

let rb_json () =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = rb_graph () in
  (* cache_limit:0 keeps the two hygiene arms bit-identical in ops;
     metrics stay disabled for the stampede arms (wall-clock only) *)
  let eng = Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi in
  Nd_util.Metrics.disable ();
  let gated, nogate = rb_overload_json eng in
  let hygiene = rb_hygiene_json eng in
  Printf.sprintf
    "{\"host_domains\":%d,\"gated\":%s,\"nogate\":%s,\"hygiene\":%s}"
    host_domains gated nogate hygiene

let rb_rows = ref None

(* memoized: the RB experiment and the EE document share one run *)
let rb_rows_json () =
  match !rb_rows with
  | Some j -> j
  | None ->
      let j = rb_json () in
      rb_rows := Some j;
      j

let rb_overload () = ignore (rb_rows_json ())

(* ------------------------------------------------------------------ *)
(* CB — cluster serving (DESIGN S16).  An in-process 3-shard fleet:
   shard servers behind the epoch-fencing router, driven over local
   endpoints so the rows measure the router itself, not the socket
   stack (the socket path is what the RB rows already price).  Four
   arms, riding into BENCH_engine.json in every mode:

   - merge: the duplicate-free k-way enumeration through the router vs
     the same query on one single-node server.  The solution streams
     must be byte-identical; the merged and single-node rates go on
     record.
   - failover: the preferred replica of one shard dies mid-run
     (transport EOF); every request must still be answered — the blip
     is one failover dial, priced as the all-requests p99.
   - catchup: a replica misses a journal suffix of length L and is
     fenced; one probe round replays the suffix over batch-update and
     readmits it at the fleet epoch.  Records catch-up wall time per
     journal length.
   - probe_overhead: epoch fencing checks each replica once per
     request serial.  On the deterministic ops cost model this must be
     free — the epoch verb reads a counter, it never touches the
     index — so ops_delta_pct is gated at 2% exactly like the ER, TR
     and RB hygiene gates. *)

module CRouter = Nd_cluster.Router
module COwn = Nd_cluster.Ownership

let cb_shards = 3
let cb_requests () = if !smoke then 200 else 800

let cb_config ?(fence = true) () =
  {
    CRouter.fence;
    probe_interval_ms = 0;
    retries = 1;
    backoff_ms = 1;
    jitter = Nd_util.Backoff.none;
    sleep_ms = ignore;
    retry_after_ms = 25;
    max_enumerate = 512;
    event_log = None;
  }

let cb_shard_server ~metrics own g phi ~shard =
  let eng =
    if metrics then Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi
    else Nd_engine.prepare g phi
  in
  let config =
    {
      Nd_server.default_config with
      Nd_server.owner = Some (COwn.owner own ~shard);
    }
  in
  Nd_server.create ~config eng

(* drain a full enumeration through a router; returns the sol lines *)
let cb_drive rt =
  let sols = ref [] and finished = ref false in
  while not !finished do
    List.iter
      (fun l ->
        if String.length l > 4 && String.sub l 0 4 = "sol " then
          sols := l :: !sols
        else if String.length l >= 4 && String.sub l 0 4 = "err " then
          failwith ("bench: cluster enumerate: " ^ l)
        else if
          String.length l > 9
          && String.sub l 0 4 = "end "
          && String.sub l (String.length l - 8) 8 = "complete"
        then finished := true)
      (CRouter.handle rt "enumerate 128")
  done;
  List.rev !sols

let cb_merge_json g phi =
  let own = COwn.compute g ~shards:cb_shards in
  let eps =
    List.init cb_shards (fun s ->
        CRouter.local_endpoint ~shard:s
          ~label:(Printf.sprintf "s%d" s)
          (cb_shard_server ~metrics:false own g phi ~shard:s))
  in
  let rt =
    CRouter.create ~config:(cb_config ()) ~ownership:own ~arity:2 eps
  in
  let merged, router_s = time (fun () -> cb_drive rt) in
  (* the single-node baseline: same protocol, one unsharded server *)
  let single =
    Nd_server.session (Nd_server.create (Nd_engine.prepare g phi))
  in
  let single_sols = ref [] and finished = ref false in
  let (), single_s =
    time (fun () ->
        while not !finished do
          List.iter
            (fun l ->
              if String.length l > 4 && String.sub l 0 4 = "sol " then
                single_sols := l :: !single_sols
              else if
                String.length l > 9
                && String.sub l 0 4 = "end "
                && String.sub l (String.length l - 8) 8 = "complete"
              then finished := true)
            (Nd_server.handle single "enumerate 128")
        done)
  in
  let single_sols = List.rev !single_sols in
  let mismatches = if merged = single_sols then 0 else 1 in
  let sols = List.length merged in
  Printf.printf
    "  merge                  %d shards: %d solutions  router=%s  \
     single=%s  identical=%b\n%!"
    cb_shards sols (ns router_s) (ns single_s) (mismatches = 0);
  Printf.sprintf
    "{\"shards\":%d,\"solutions\":%d,\"mismatches\":%d,\
     \"router_s\":%.9g,\"single_s\":%.9g,\"router_sps\":%.9g,\
     \"single_sps\":%.9g}"
    cb_shards sols mismatches router_s single_s
    (float sols /. Float.max router_s 1e-9)
    (float sols /. Float.max single_s 1e-9)

let cb_failover_json g phi =
  let own = COwn.compute g ~shards:cb_shards in
  let dead = ref false in
  let eps =
    List.concat
      (List.init cb_shards (fun s ->
           let primary =
             if s = 0 then
               (* shard 0's preferred replica dies when [dead] flips *)
               let srv = cb_shard_server ~metrics:false own g phi ~shard:0 in
               CRouter.endpoint ~shard:0 ~label:"s0/mortal" (fun () ->
                   let session = Nd_server.session srv in
                   Ok
                     {
                       CRouter.transport =
                         (fun line ->
                           if !dead then raise End_of_file
                           else Nd_server.handle session line);
                       read_reply = (fun _ -> None);
                       close = ignore;
                     })
             else
               CRouter.local_endpoint ~shard:s
                 ~label:(Printf.sprintf "s%d/a" s)
                 (cb_shard_server ~metrics:false own g phi ~shard:s)
           in
           [
             primary;
             CRouter.local_endpoint ~shard:s
               ~label:(Printf.sprintf "s%d/b" s)
               (cb_shard_server ~metrics:false own g phi ~shard:s);
           ]))
  in
  let rt =
    CRouter.create ~config:(cb_config ()) ~ownership:own ~arity:2 eps
  in
  let requests = cb_requests () in
  let n = Cgraph.n g in
  let lat = Array.make requests 0. in
  let ok = ref 0 in
  for i = 0 to requests - 1 do
    if i = requests / 2 then dead := true;
    let req = Printf.sprintf "test %d,%d" (i mod n) ((i + 1) mod n) in
    let reply, s = time (fun () -> CRouter.handle rt req) in
    lat.(i) <- s *. 1e6;
    match List.rev reply with "ok" :: _ -> incr ok | _ -> ()
  done;
  let st = CRouter.stats rt in
  let p99 = rb_percentile_us lat 99. in
  Printf.printf
    "  failover               %d requests, replica killed at %d: %d ok  \
     failovers=%d  p99=%.0fus\n%!"
    requests (requests / 2) !ok st.CRouter.failovers p99;
  Printf.sprintf
    "{\"requests\":%d,\"ok\":%d,\"blip_p99_us\":%.9g,\"failovers\":%d}"
    requests !ok p99 st.CRouter.failovers

let cb_catchup_json g phi journal_len =
  (* one shard, two replicas; the laggard misses every update fan-out
     but hears the batch-update replay *)
  let own = COwn.compute g ~shards:1 in
  let leader = cb_shard_server ~metrics:false own g phi ~shard:0 in
  let laggard = cb_shard_server ~metrics:false own g phi ~shard:0 in
  let dropping =
    CRouter.endpoint ~shard:0 ~label:"laggard" (fun () ->
        let session = Nd_server.session laggard in
        Ok
          {
            CRouter.transport =
              (fun line ->
                if
                  String.length line >= 7 && String.sub line 0 7 = "update "
                then raise End_of_file
                else Nd_server.handle session line);
            read_reply = (fun _ -> None);
            close = ignore;
          })
  in
  let rt =
    CRouter.create ~config:(cb_config ()) ~ownership:own ~arity:2
      [ CRouter.local_endpoint ~shard:0 ~label:"leader" leader; dropping ]
  in
  for i = 0 to journal_len - 1 do
    (* fresh diagonal edges: never grid-adjacent, pairwise distinct *)
    let wire = Printf.sprintf "update add-edge %d %d" (2 * i) ((2 * i) + 5) in
    match List.rev (CRouter.handle rt wire) with
    | "ok" :: _ -> ()
    | r -> failwith ("bench: cluster update: " ^ String.concat "|" r)
  done;
  let before = CRouter.stats rt in
  let (), catchup_s = time (fun () -> CRouter.probe rt) in
  let after = CRouter.stats rt in
  let readmitted =
    if after.CRouter.fenced = 0 && after.CRouter.catchups > before.CRouter.catchups
    then 1
    else 0
  in
  Printf.printf
    "  catchup                journal len %d: replay=%.2fms  readmitted=%b\n%!"
    journal_len (catchup_s *. 1e3) (readmitted = 1);
  Printf.sprintf
    "{\"journal_len\":%d,\"catchup_ms\":%.9g,\"readmitted\":%d}" journal_len
    (catchup_s *. 1e3) readmitted

let cb_probe_overhead_json g phi =
  let requests = cb_requests () in
  let n = Cgraph.n g in
  let run fence =
    let own = COwn.compute g ~shards:cb_shards in
    let eps =
      List.init cb_shards (fun s ->
          CRouter.local_endpoint ~shard:s
            ~label:(Printf.sprintf "s%d" s)
            (cb_shard_server ~metrics:true own g phi ~shard:s))
    in
    let rt =
      CRouter.create ~config:(cb_config ~fence ()) ~ownership:own ~arity:2 eps
    in
    (* warm lazily-built index nodes out of the measurement *)
    ignore (CRouter.handle rt "test 0,1");
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ();
    let o0 = Nd_util.Metrics.ops () in
    let (), s =
      time (fun () ->
          for i = 1 to requests do
            ignore
              (CRouter.handle rt
                 (Printf.sprintf "test %d,%d" (i mod n) ((i + 1) mod n)))
          done)
    in
    Nd_util.Metrics.disable ();
    (Nd_util.Metrics.ops () - o0, s)
  in
  let ops_off, wall_off = run false in
  let ops_on, wall_on = run true in
  let delta_pct =
    if ops_off = 0 then 0.
    else float_of_int (ops_on - ops_off) /. float_of_int ops_off *. 100.
  in
  Printf.printf
    "  probe/fence overhead   %d requests: ops off=%d on=%d  delta=%.2f%%  \
     wall %s -> %s\n%!"
    requests ops_off ops_on delta_pct (ns wall_off) (ns wall_on);
  Printf.sprintf
    "{\"requests\":%d,\"ops_off\":%d,\"ops_on\":%d,\"ops_delta_pct\":%.9g,\
     \"wall_off_s\":%.9g,\"wall_on_s\":%.9g}"
    requests ops_off ops_on delta_pct wall_off wall_on

let cb_json () =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = rb_graph () in
  Nd_util.Metrics.disable ();
  let merge = cb_merge_json g phi in
  let failover = cb_failover_json g phi in
  let catchup =
    List.map (cb_catchup_json g phi) (if !smoke then [ 4 ] else [ 4; 16 ])
  in
  let probe = cb_probe_overhead_json g phi in
  Printf.sprintf
    "{\"shards\":%d,\"merge\":%s,\"failover\":%s,\"catchup\":[%s],\
     \"probe_overhead\":%s}"
    cb_shards merge failover
    (String.concat "," catchup)
    probe

let cb_rows = ref None

(* memoized: the CB experiment and the EE document share one run *)
let cb_rows_json () =
  match !cb_rows with
  | Some j -> j
  | None ->
      let j = cb_json () in
      cb_rows := Some j;
      j

let cb_cluster () = ignore (cb_rows_json ())

(* ------------------------------------------------------------------ *)
(* OB — fleet observability overhead: the same in-process 3-shard
   fleet as CB, driven with the full observability stack armed (span
   tracing, trace-context propagation on every request, router + worker
   event logs, and the per-worker flight ring) versus everything off.
   The deterministic cost model must not notice: span bookkeeping,
   context stamping and ring appends never advance an engine counter,
   so check_schema gates the ops delta at <= 2%. *)

let ob_json () =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = rb_graph () in
  let requests = cb_requests () in
  let n = Cgraph.n g in
  let run armed =
    let own = COwn.compute g ~shards:cb_shards in
    let rings = ref [] in
    let shard_server shard =
      let eng = Nd_engine.prepare ~metrics:true ~cache_limit:0 g phi in
      let flight =
        if not armed then None
        else begin
          let fl = Nd_obs.Flight.create ~capacity:256 () in
          rings := fl :: !rings;
          Some (fun line -> Nd_obs.Flight.record fl line)
        end
      in
      let config =
        {
          Nd_server.default_config with
          Nd_server.owner = Some (COwn.owner own ~shard);
          event_log = (if armed then Some ignore else None);
          flight;
        }
      in
      Nd_server.create ~config eng
    in
    let eps =
      List.init cb_shards (fun s ->
          CRouter.local_endpoint ~shard:s
            ~label:(Printf.sprintf "s%d" s)
            (shard_server s))
    in
    let config =
      {
        (cb_config ()) with
        CRouter.event_log = (if armed then Some ignore else None);
      }
    in
    let rt = CRouter.create ~config ~ownership:own ~arity:2 eps in
    if armed then begin
      Nd_trace.enable ();
      Nd_trace.clear ()
    end;
    (* warm lazily-built index nodes out of the measurement *)
    ignore (CRouter.handle rt "test 0,1");
    Nd_util.Metrics.reset ();
    Nd_util.Metrics.enable ();
    let o0 = Nd_util.Metrics.ops () in
    let (), s =
      time (fun () ->
          for i = 1 to requests do
            let req =
              Printf.sprintf "test %d,%d" (i mod n) ((i + 1) mod n)
            in
            ignore
              (CRouter.handle rt
                 (if armed then Printf.sprintf "%s trace=bench:%d" req i
                  else req))
          done)
    in
    Nd_util.Metrics.disable ();
    let spans = if armed then List.length (Nd_trace.spans ()) else 0 in
    if armed then begin
      Nd_trace.disable ();
      Nd_trace.clear ()
    end;
    let ring_events =
      List.fold_left
        (fun acc fl -> acc + List.length (Nd_obs.Flight.events fl))
        0 !rings
    in
    List.iter Nd_obs.Flight.close !rings;
    (Nd_util.Metrics.ops () - o0, s, spans, ring_events)
  in
  let ops_off, wall_off, _, _ = run false in
  let ops_on, wall_on, spans, ring_events = run true in
  let delta_pct =
    if ops_off = 0 then 0.
    else float_of_int (ops_on - ops_off) /. float_of_int ops_off *. 100.
  in
  Printf.printf
    "  obs overhead           %d requests: ops off=%d on=%d  delta=%.2f%%  \
     spans=%d ring=%d  wall %s -> %s\n%!"
    requests ops_off ops_on delta_pct spans ring_events (ns wall_off)
    (ns wall_on);
  Printf.sprintf
    "{\"requests\":%d,\"ops_off\":%d,\"ops_on\":%d,\"ops_delta_pct\":%.9g,\
     \"spans\":%d,\"ring_events\":%d,\"wall_off_s\":%.9g,\"wall_on_s\":%.9g}"
    requests ops_off ops_on delta_pct spans ring_events wall_off wall_on

let ob_rows = ref None

let ob_rows_json () =
  match !ob_rows with
  | Some j -> j
  | None ->
      let j = ob_json () in
      ob_rows := Some j;
      j

let ob_fleet_obs () = ignore (ob_rows_json ())

(* ------------------------------------------------------------------ *)
(* EE — engine trajectories: run the whole pipeline through the
   Nd_engine façade with metrics on, and serialize the cost-model
   numbers (delay/op-count trajectories, store register-touch
   histograms across n) to BENCH_engine.json.  `make bench-smoke`
   gates CI on this file's schema. *)

let json_hist (h : Nd_util.Metrics.hist_stats) =
  Printf.sprintf
    "{\"count\":%d,\"max\":%d,\"mean\":%.9g,\"p50\":%d,\"p95\":%d,\"p99\":%d}"
    h.Nd_util.Metrics.count h.Nd_util.Metrics.max h.Nd_util.Metrics.mean
    h.Nd_util.Metrics.p50 h.Nd_util.Metrics.p95 h.Nd_util.Metrics.p99

(* One storing-structure point of the Theorem 3.1 trajectory: random
   inserts then random lookups, with the per-call register-touch
   histograms the property test (test_metrics.ml) asserts about —
   lookup touches flat in n, update touches O(n^ε). *)
let ee_store_point n =
  let module S = Nd_ram.Store in
  Nd_util.Metrics.reset ();
  Nd_util.Metrics.enable ();
  let eps = 0.5 in
  let t = S.create ~n ~k:2 ~epsilon:eps in
  let inserts = min n 4_096 in
  for _ = 1 to inserts do
    S.add t [| rand_vertex n; rand_vertex n |] 1
  done;
  for _ = 1 to 2_000 do
    ignore (S.find t [| rand_vertex n; rand_vertex n |])
  done;
  let hs = Nd_util.Metrics.hists () in
  let h name =
    match List.assoc_opt name hs with
    | Some h -> json_hist h
    | None -> "null"
  in
  Printf.sprintf
    "{\"n\":%d,\"k\":2,\"epsilon\":%.9g,\"degree\":%d,\"keys\":%d,\
     \"lookup_touches\":%s,\"update_touches\":%s}"
    n eps (S.degree t) (S.cardinal t)
    (h "store.lookup_touches")
    (h "store.update_touches")

(* One SN row: cold prepare vs snapshot save + load on the same
   instance.  The load side skips the whole Theorem 2.3 preprocessing,
   so the speedup is the case for persisting it; check_schema gates
   speedup > 1. *)
let ee_snapshot_point spec =
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.of_spec ~seed:5 spec) in
  let eng, prepare_s = time (fun () -> Nd_engine.prepare g phi) in
  let path = Filename.temp_file "nd_bench" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let bytes, save_s = time (fun () -> Nd_snapshot.save ~path eng) in
  let loaded, load_s =
    time (fun () ->
        match Nd_snapshot.load ~path g phi with
        | Ok e -> e
        | Error c -> failwith ("snapshot rejected: " ^ Nd_snapshot.describe c))
  in
  ignore loaded;
  let speedup = prepare_s /. Float.max load_s 1e-9 in
  Printf.printf "  %s  prepare=%s  save=%s  load=%s  speedup=%.1fx  %d bytes\n%!"
    spec (ns prepare_s) (ns save_s) (ns load_s) speedup bytes;
  Printf.sprintf
    "{\"spec\":%S,\"prepare_s\":%.9g,\"save_s\":%.9g,\"load_s\":%.9g,\
     \"bytes\":%d,\"speedup\":%.9g}"
    spec prepare_s save_s load_s bytes speedup

let ee_snapshot_specs () =
  if !smoke then [ "grid:20x20" ]
  else if !quick then [ "grid:30x30" ]
  else [ "grid:30x30"; "grid:56x56" ]

(* ------------------------------------------------------------------ *)
(* ST — the storage refactor's two wall-clock claims (DESIGN S18),
   measured with metrics OFF so the clock sees the data layout alone:

   - flat vs boxed: one deterministic op script replayed on
     Nd_ram.Store (flat banks) and on Nd_ram.Boxed_store (the boxed
     implementation it replaced, kept in-tree as the oracle).  The
     register-for-register probe differential is machine-checked in
     test_flat.ml; this row is the payoff — the flat layout must also
     be faster, or the refactor bought nothing.
   - warm vs replay load: the same v3 snapshot revived through the
     STOR bank adoption path (mmap where the host allows) and through
     the portable CACH rung that replays every cached key through
     Store.add.  Both rungs unmarshal ENGN, so the differential
     isolates exactly the solution-cache revival.

   check_schema gates both speedups > 1. *)

let st_flat_json () =
  let n = 4_096 and k = 2 and epsilon = 0.5 in
  let nops = if !smoke then 200_000 else 1_000_000 in
  let st = Random.State.make [| 97; nops; n; k |] in
  let keys =
    Array.init nops (fun _ ->
        [| Random.State.int st n; Random.State.int st n |])
  in
  let verbs = Array.init nops (fun _ -> Random.State.int st 4) in
  Nd_util.Metrics.disable ();
  let module S = Nd_ram.Store in
  let module B = Nd_ram.Boxed_store in
  let run_flat () =
    let t = S.create ~n ~k ~epsilon in
    for i = 0 to nops - 1 do
      match verbs.(i) with
      | 0 | 1 -> S.add t keys.(i) i
      | 2 -> ignore (S.find t keys.(i))
      | _ -> ignore (S.succ_geq t keys.(i))
    done;
    S.cardinal t
  in
  let run_boxed () =
    let t = B.create ~n ~k ~epsilon in
    for i = 0 to nops - 1 do
      match verbs.(i) with
      | 0 | 1 -> B.add t keys.(i) i
      | 2 -> ignore (B.find t keys.(i))
      | _ -> ignore (B.succ_geq t keys.(i))
    done;
    B.cardinal t
  in
  let best f =
    let m = ref infinity in
    for _ = 1 to 3 do
      Gc.compact ();
      let _, s = time f in
      if s < !m then m := s
    done;
    !m
  in
  let card = run_flat () in
  let card_b = run_boxed () in
  assert (card = card_b);
  let wall_flat = best run_flat in
  let wall_boxed = best run_boxed in
  let speedup = wall_boxed /. Float.max wall_flat 1e-9 in
  Printf.printf
    "  flat vs boxed          %d ops (n=%d, k=%d): flat=%s boxed=%s  \
     speedup=%.2fx  keys=%d\n%!"
    nops n k (ns wall_flat) (ns wall_boxed) speedup card;
  Printf.sprintf
    "{\"n\":%d,\"k\":%d,\"epsilon\":%.9g,\"ops\":%d,\"keys\":%d,\
     \"wall_flat_s\":%.9g,\"wall_boxed_s\":%.9g,\"speedup_flat\":%.9g}"
    n k epsilon nops card wall_flat wall_boxed speedup

let st_warm_json () =
  let spec = if !smoke then "grid:24x24" else "grid:44x44" in
  let phi = Nd_logic.Parse.formula "dist(x,y) <= 2" in
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.of_spec ~seed:5 spec) in
  let eng = Nd_engine.prepare g phi in
  (* fill the solution cache so CACH replay has real work to redo *)
  let sols = Nd_engine.count_enumerated eng in
  let path = Filename.temp_file "nd_bench" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let bytes = Nd_snapshot.save ~path eng in
  let load warm () =
    match Nd_snapshot.load_routed ~warm ~path g phi with
    | Ok (e, r) ->
        ignore e;
        r
    | Error c -> failwith ("snapshot rejected: " ^ Nd_snapshot.describe c)
  in
  let route = load true () in
  (match load false () with
  | Nd_snapshot.Replayed -> ()
  | Nd_snapshot.Warm _ -> failwith "~warm:false took the warm route");
  let reps = 5 in
  let timed warm =
    let m = ref infinity in
    for _ = 1 to 3 do
      Gc.compact ();
      let (), s =
        time (fun () ->
            for _ = 1 to reps do
              ignore (load warm ())
            done)
      in
      let per = s /. float reps in
      if per < !m then m := per
    done;
    !m
  in
  let wall_warm = timed true in
  let wall_replay = timed false in
  let mapped =
    match route with
    | Nd_snapshot.Warm { mapped } -> mapped
    | Nd_snapshot.Replayed -> false
  in
  let warm_engaged =
    match route with Nd_snapshot.Warm _ -> true | _ -> false
  in
  let speedup = wall_replay /. Float.max wall_warm 1e-9 in
  Printf.printf
    "  warm vs replay load    %s  %d cached solutions, %d bytes: warm=%s \
     (%s) replay=%s  speedup=%.2fx\n%!"
    spec sols bytes (ns wall_warm)
    (Nd_snapshot.describe_route route)
    (ns wall_replay) speedup;
  Printf.sprintf
    "{\"spec\":%S,\"solutions\":%d,\"bytes\":%d,\"warm\":%b,\"mapped\":%b,\
     \"route\":%S,\"wall_warm_s\":%.9g,\"wall_replay_s\":%.9g,\
     \"speedup_warm\":%.9g}"
    spec sols bytes warm_engaged mapped
    (Nd_snapshot.describe_route route)
    wall_warm wall_replay speedup

let st_rows = ref None

let st_rows_json () =
  match !st_rows with
  | Some j -> j
  | None ->
      let j =
        Printf.sprintf "{\"flat\":%s,\"warm\":%s}" (st_flat_json ())
          (st_warm_json ())
      in
      st_rows := Some j;
      j

let st_storage () = ignore (st_rows_json ())

(* One UP row: cost of absorbing one mutation through Nd_engine.update
   (bounded maintenance — stale_threshold 1.0 pins the maintenance
   path) vs the from-scratch prepare, in cost-model ops.  The dirty
   region is O(1) in n while prepare is pseudo-linear, so the ratio
   must fall as n grows; check_schema gates monotone decrease and a
   final ratio < 0.2. *)
let ee_update_point phi side =
  Nd_engine.reset_metrics ();
  let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.grid side side) in
  let n = Cgraph.n g in
  let eng, prepare_s =
    time (fun () -> Nd_engine.prepare ~metrics:true g phi)
  in
  let prepare_ops = Nd_util.Metrics.ops () in
  (* add/remove pairs at scattered sites: diagonal chords a grid lacks,
     each absorbed then reverted so every update sees the same shape *)
  let muts =
    List.concat_map
      (fun i ->
        let v = i * n / 7 in
        let w = v + side + 1 in
        if w < n && v <> w then
          [ Cgraph.Add_edge (v, w); Cgraph.Remove_edge (v, w) ]
        else [])
      [ 1; 2; 3 ]
  in
  let ops0 = Nd_util.Metrics.ops () in
  let (), update_total_s =
    time (fun () ->
        List.iter (fun m -> Nd_engine.update ~stale_threshold:1.0 eng m) muts)
  in
  let k = List.length muts in
  let update_ops = (Nd_util.Metrics.ops () - ops0) / k in
  let update_s = update_total_s /. float k in
  let ratio = float update_ops /. float (max prepare_ops 1) in
  Printf.printf
    "  grid:%dx%d  n=%d  prepare=%d ops  update=%d ops/mutation  ratio=%.4f\n%!"
    side side n prepare_ops update_ops ratio;
  Printf.sprintf
    "{\"spec\":\"grid:%dx%d\",\"n\":%d,\"prepare_s\":%.9g,\"prepare_ops\":%d,\
     \"update_s\":%.9g,\"update_ops\":%d,\"mutations\":%d,\"ratio\":%.9g}"
    side side n prepare_s prepare_ops update_s update_ops k ratio

let up_sides () =
  if !smoke then [ 12; 32 ] else if !quick then [ 12; 20; 40 ]
  else [ 12; 20; 40; 64 ]

let ee_engine_json () =
  let qtext = "dist(x,y) <= 2" in
  let phi = Nd_logic.Parse.formula qtext in
  let sides =
    if !smoke then [ 8; 12 ]
    else if !quick then [ 10; 18; 32 ]
    else [ 10; 18; 32; 56; 100 ]
  in
  let engine_points =
    List.map
      (fun side ->
        Nd_engine.reset_metrics ();
        let g = Gen.randomly_color ~seed:5 ~colors:2 (Gen.grid side side) in
        let eng, prep =
          time (fun () -> Nd_engine.prepare ~metrics:true g phi)
        in
        let sols = Nd_engine.count_enumerated eng in
        let st = Nd_engine.stats eng in
        Printf.printf
          "  grid:%dx%d  n=%d  solutions=%d  max delay=%d ops  prep=%s\n%!"
          side side (Cgraph.n g) sols st.Nd_engine.Stats.max_delay_ops
          (ns prep);
        Printf.sprintf
          "{\"spec\":\"grid:%dx%d\",\"prepare_s\":%.9g,\"solutions\":%d,\
           \"stats\":%s}"
          side side prep sols
          (Nd_engine.Stats.to_json st))
      sides
  in
  (* the full n ∈ {10^2..10^5} store trajectory is cheap; keep it in
     every mode so the property-test numbers are always on record *)
  let store_points =
    List.map ee_store_point [ 100; 1_000; 10_000; 100_000 ]
  in
  (* ER rows ride along in every mode: the robustness gate needs them
     on record even in CI's smoke run *)
  let budget_points = List.map (fun s -> er_json (er_point s)) (er_sides ()) in
  (* TR rows ride along for the same reason: the tracing-off overhead
     gate must be on record in every mode *)
  let trace_points = List.map (fun s -> tr_json (tr_point s)) (er_sides ()) in
  (* UP rows: the incremental-maintenance ratio trajectory *)
  let update_points = List.map (ee_update_point phi) (up_sides ()) in
  Nd_util.Metrics.disable ();
  (* SN rows: snapshot persistence, measured without instrumentation so
     the prepare-vs-load comparison is what production sees *)
  let snapshot_points = List.map ee_snapshot_point (ee_snapshot_specs ()) in
  (* ST rows ride along in every mode: the flat-bank wall-clock gate and
     the warm (mmap) vs replay load gate, checked by check_schema *)
  let storage_doc = st_rows_json () in
  (* PAR rows ride along in every mode: parallel prepare speedup and
     concurrent-serve throughput, gated host-aware by check_schema *)
  let parallel_doc = par_rows_json () in
  (* RB rows ride along in every mode: overload shedding under a 2x
     stampede and the hygiene-gate ops overhead, gated by check_schema *)
  let overload_doc = rb_rows_json () in
  (* CB rows ride along in every mode: the cluster router's merge
     differential, failover blip, catch-up replay and probe-overhead
     gate, all checked by check_schema *)
  let cluster_doc = cb_rows_json () in
  (* OB rows ride along in every mode: the fleet observability stack
     (tracing + propagation + event ring) armed vs off, gated <= 2%
     ops delta by check_schema *)
  let obs_doc = ob_rows_json () in
  let mode = if !smoke then "smoke" else if !quick then "quick" else "full" in
  let doc =
    Printf.sprintf
      "{\"schema\":\"nd-engine-bench/1\",\"mode\":\"%s\",\"query\":\"%s\",\
       \"engine\":[%s],\"store\":[%s],\"budget_overhead\":[%s],\
       \"trace_overhead\":[%s],\"snapshot\":[%s],\"storage\":%s,\
       \"update\":[%s],\"parallel\":%s,\"overload\":%s,\"cluster\":%s,\
       \"observability\":%s}"
      mode qtext
      (String.concat "," engine_points)
      (String.concat "," store_points)
      (String.concat "," budget_points)
      (String.concat "," trace_points)
      (String.concat "," snapshot_points)
      storage_doc
      (String.concat "," update_points)
      parallel_doc overload_doc cluster_doc obs_doc
  in
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  note (Printf.sprintf "wrote %s (%d bytes)" path (String.length doc))

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("E1", "Figure 1 register file", e1_figure1);
    ("E2", "Theorem 3.1 storing structure", e2_storing);
    ("E3", "Theorem 4.4 neighborhood covers", e3_cover);
    ("E4", "Theorem 4.6 splitter game", e4_splitter);
    ("E5", "Proposition 4.2 distance index", e5_dist_index);
    ("E6", "Lemma 5.8 skip pointers", e6_skip);
    ("E7", "Theorem 2.3 / Corollary 2.4", e7_next_and_test);
    ("E9", "Corollary 2.5 enumeration", e9_enumeration);
    ("E10", "weak accessibility profile", e10_wcol);
    ("E11", "pseudo-linear counting", e11_counting);
    ("A1", "ablation: skip pointers", a1_ablation_skip);
    ("A2", "ablation: index space", a2_ablation_dist);
    ("ER", "robustness: budget-probe overhead", er_budget_overhead);
    ("TR", "observability: span-tracer overhead", tr_trace_overhead);
    ("PAR", "parallel prepare + concurrent serve", par_parallel);
    ("RB", "robustness: overload shedding + hygiene overhead", rb_overload);
    ("CB", "cluster router: merge, failover, catch-up", cb_cluster);
    ("OB", "fleet observability: armed-vs-off overhead", ob_fleet_obs);
    ("ST", "storage: flat banks vs boxed, warm vs replay load", st_storage);
    ("EE", "engine cost-model trajectories", ee_engine_json);
  ]

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--micro" :: rest ->
        micro := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--only" :: rest -> only := rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !smoke && !only = [] then only := [ "EE" ];
  let selected =
    if !only = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id !only) experiments
  in
  Printf.printf
    "nowhere-enum experiment harness (%s mode, %d host domains) — see \
     DESIGN.md section 3 and EXPERIMENTS.md\n"
    (if !smoke then "smoke" else if !quick then "quick" else "full")
    host_domains;
  List.iter
    (fun (id, descr, fn) ->
      Printf.printf "\n########## %s — %s ##########\n%!" id descr;
      let (), t = time fn in
      Printf.printf "   [%s completed in %.1fs]\n%!" id t)
    selected;
  if !micro then micro_rows ()
