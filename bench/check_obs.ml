(* Validate observability artifacts with the library's own validators.

   Usage:
     check_obs.exe trace   FILE    Chrome trace-event JSON (--trace output)
     check_obs.exe prom    FILE    Prometheus text exposition
     check_obs.exe profile FILE    nd-profile/1 JSON (fodb profile --json)
     check_obs.exe events  FILE    serve event log (JSONL, one row/request)

   Exits 0 when the artifact is well-formed (and, for profile, the
   delay-invariance verdict holds), 1 otherwise.  CI runs all four. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_obs: " ^ m); exit 1) fmt

let check_trace file =
  match Nd_trace.validate_chrome (read_file file) with
  | Ok n -> Printf.printf "%s: valid Chrome trace, %d events\n" file n
  | Error e -> fail "%s: invalid trace: %s" file e

let check_prom file =
  match Nd_trace.Prometheus.validate (read_file file) with
  | Ok n -> Printf.printf "%s: valid Prometheus exposition, %d families\n" file n
  | Error e -> fail "%s: invalid exposition: %s" file e

let check_profile file =
  match Nd_trace.Json.parse (read_file file) with
  | Error e -> fail "%s: not valid JSON: %s" file e
  | Ok doc -> (
      (match Nd_trace.Json.member "schema" doc with
      | Some (Nd_trace.Json.Str "nd-profile/1") -> ()
      | _ -> fail "%s: missing or wrong schema (want nd-profile/1)" file);
      (match Nd_trace.Json.member "points" doc with
      | Some (Nd_trace.Json.Arr (_ :: _)) -> ()
      | _ -> fail "%s: no profile points" file);
      match Nd_trace.Json.member "delay_invariant" doc with
      | Some (Nd_trace.Json.Bool true) ->
          Printf.printf "%s: delay-invariant: true\n" file
      | Some (Nd_trace.Json.Bool false) ->
          fail "%s: delay-invariance verdict is FALSE — constant-delay \
                contract regressed" file
      | _ -> fail "%s: missing delay_invariant verdict" file)

(* The serve event log: one JSON object per request.  Since the update
   pipeline landed, rows also carry the mutation verbs (update,
   batch-update, epoch) — those must parse under the same schema as
   query rows, not as a foreign row kind.  The overload-safe serve loop
   added two more statuses: "overloaded" (admission-control shed) and
   "shutting-down" (request raced a drain).

   The cluster router writes the same shape, with three extensions:
   shard-scoped rows carry a numeric "shard" attribute, new statuses
   cover replica trouble ("unavailable": no live replica in a group;
   "fenced": an epoch fence tripped; "transport": a link died), and
   replica-lifecycle transitions appear as rid=0 rows with a
   parenthesised pseudo-verb — "(fence)", "(catchup)", "(failover)",
   "(readmit)", "(probe)".  Request rows still use rid >= 1; rid=0 is
   reserved for lifecycle rows, so rid >= 1 is enforced exactly when
   the cmd is a real verb. *)
let known_status =
  [
    "ok"; "bye"; "user"; "budget"; "internal"; "overloaded"; "shutting-down";
    "unavailable"; "fenced"; "transport";
  ]
let mutation_verbs = [ "update"; "batch-update"; "epoch" ]

let lifecycle_verbs =
  [ "(fence)"; "(catchup)"; "(failover)"; "(readmit)"; "(probe)" ]

let check_events file =
  let module J = Nd_trace.Json in
  let num row field ~min_v j =
    match J.member field j with
    | Some (J.Num v) when v >= min_v -> v
    | Some (J.Num v) -> fail "%s:%d: %s = %g out of range" file row field v
    | _ -> fail "%s:%d: missing numeric %s" file row field
  in
  let lines =
    String.split_on_char '\n' (read_file file)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty event log" file;
  let updates = ref 0 and lifecycle = ref 0 and sharded = ref 0 in
  List.iteri
    (fun i line ->
      let row = i + 1 in
      match J.parse line with
      | Error e -> fail "%s:%d: not valid JSON: %s" file row e
      | Ok j ->
          let cmd =
            match J.member "cmd" j with
            | Some (J.Str c) when c <> "" -> c
            | _ -> fail "%s:%d: missing cmd" file row
          in
          let is_lifecycle = List.mem cmd lifecycle_verbs in
          if (not is_lifecycle) && String.length cmd > 0 && cmd.[0] = '(' then
            fail "%s:%d: unknown lifecycle verb %S" file row cmd;
          ignore (num row "ts" ~min_v:0. j);
          ignore (num row "rid" ~min_v:(if is_lifecycle then 0. else 1.) j);
          ignore (num row "span" ~min_v:0. j);
          ignore (num row "latency_us" ~min_v:0. j);
          ignore (num row "lines" ~min_v:0. j);
          if List.mem cmd mutation_verbs then incr updates;
          if is_lifecycle then incr lifecycle;
          (match J.member "shard" j with
          | None -> ()
          | Some _ ->
              ignore (num row "shard" ~min_v:0. j);
              incr sharded);
          (match J.member "status" j with
          | Some (J.Str s) when List.mem s known_status -> ()
          | Some (J.Str s) -> fail "%s:%d: unknown status %S" file row s
          | _ -> fail "%s:%d: missing status" file row))
    lines;
  Printf.printf
    "%s: valid event log, %d rows (%d mutation verbs, %d lifecycle, %d \
     shard-scoped)\n"
    file (List.length lines) !updates !lifecycle !sharded

let () =
  match Sys.argv with
  | [| _; "trace"; file |] -> check_trace file
  | [| _; "prom"; file |] -> check_prom file
  | [| _; "profile"; file |] -> check_profile file
  | [| _; "events"; file |] -> check_events file
  | _ ->
      prerr_endline "usage: check_obs (trace|prom|profile|events) FILE";
      exit 2
