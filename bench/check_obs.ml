(* Validate observability artifacts with the library's own validators.

   Usage:
     check_obs.exe trace   FILE    Chrome trace-event JSON (--trace output)
     check_obs.exe prom    FILE    Prometheus text exposition
     check_obs.exe profile FILE    nd-profile/1 JSON (fodb profile --json)

   Exits 0 when the artifact is well-formed (and, for profile, the
   delay-invariance verdict holds), 1 otherwise.  CI runs all three. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_obs: " ^ m); exit 1) fmt

let check_trace file =
  match Nd_trace.validate_chrome (read_file file) with
  | Ok n -> Printf.printf "%s: valid Chrome trace, %d events\n" file n
  | Error e -> fail "%s: invalid trace: %s" file e

let check_prom file =
  match Nd_trace.Prometheus.validate (read_file file) with
  | Ok n -> Printf.printf "%s: valid Prometheus exposition, %d families\n" file n
  | Error e -> fail "%s: invalid exposition: %s" file e

let check_profile file =
  match Nd_trace.Json.parse (read_file file) with
  | Error e -> fail "%s: not valid JSON: %s" file e
  | Ok doc -> (
      (match Nd_trace.Json.member "schema" doc with
      | Some (Nd_trace.Json.Str "nd-profile/1") -> ()
      | _ -> fail "%s: missing or wrong schema (want nd-profile/1)" file);
      (match Nd_trace.Json.member "points" doc with
      | Some (Nd_trace.Json.Arr (_ :: _)) -> ()
      | _ -> fail "%s: no profile points" file);
      match Nd_trace.Json.member "delay_invariant" doc with
      | Some (Nd_trace.Json.Bool true) ->
          Printf.printf "%s: delay-invariant: true\n" file
      | Some (Nd_trace.Json.Bool false) ->
          fail "%s: delay-invariance verdict is FALSE — constant-delay \
                contract regressed" file
      | _ -> fail "%s: missing delay_invariant verdict" file)

let () =
  match Sys.argv with
  | [| _; "trace"; file |] -> check_trace file
  | [| _; "prom"; file |] -> check_prom file
  | [| _; "profile"; file |] -> check_profile file
  | _ ->
      prerr_endline "usage: check_obs (trace|prom|profile) FILE";
      exit 2
