(* Validate observability artifacts with the library's own validators.

   Usage:
     check_obs.exe trace    FILE   Chrome trace-event JSON (--trace output)
     check_obs.exe merged   FILE   merged cross-process trace
                                   (fodb obs merge-trace output)
     check_obs.exe prom     FILE   Prometheus text exposition
     check_obs.exe profile  FILE   nd-profile/1 JSON (fodb profile --json)
     check_obs.exe events   FILE   serve event log (JSONL, one row/request)
     check_obs.exe blackbox DIR    --blackbox directory: post-mortems plus
                                   the restarted workers' boot rows

   Exits 0 when the artifact is well-formed (and, for profile, the
   delay-invariance verdict holds; for merged, every propagated
   server.request span reaches a router.request ancestor; for blackbox,
   each post-mortem's last recorded epoch equals the restarted worker's
   boot epoch), 1 otherwise.  CI runs all of them. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_obs: " ^ m); exit 1) fmt

let check_trace file =
  match Nd_trace.validate_chrome (read_file file) with
  | Ok n -> Printf.printf "%s: valid Chrome trace, %d events\n" file n
  | Error e -> fail "%s: invalid trace: %s" file e

let check_prom file =
  match Nd_trace.Prometheus.validate (read_file file) with
  | Ok n -> Printf.printf "%s: valid Prometheus exposition, %d families\n" file n
  | Error e -> fail "%s: invalid exposition: %s" file e

let check_profile file =
  match Nd_trace.Json.parse (read_file file) with
  | Error e -> fail "%s: not valid JSON: %s" file e
  | Ok doc -> (
      (match Nd_trace.Json.member "schema" doc with
      | Some (Nd_trace.Json.Str "nd-profile/1") -> ()
      | _ -> fail "%s: missing or wrong schema (want nd-profile/1)" file);
      (match Nd_trace.Json.member "points" doc with
      | Some (Nd_trace.Json.Arr (_ :: _)) -> ()
      | _ -> fail "%s: no profile points" file);
      match Nd_trace.Json.member "delay_invariant" doc with
      | Some (Nd_trace.Json.Bool true) ->
          Printf.printf "%s: delay-invariant: true\n" file
      | Some (Nd_trace.Json.Bool false) ->
          fail "%s: delay-invariance verdict is FALSE — constant-delay \
                contract regressed" file
      | _ -> fail "%s: missing delay_invariant verdict" file)

(* The serve event log: one JSON object per request.  Since the update
   pipeline landed, rows also carry the mutation verbs (update,
   batch-update, epoch) — those must parse under the same schema as
   query rows, not as a foreign row kind.  The overload-safe serve loop
   added two more statuses: "overloaded" (admission-control shed) and
   "shutting-down" (request raced a drain).

   The cluster router writes the same shape, with three extensions:
   shard-scoped rows carry a numeric "shard" attribute, new statuses
   cover replica trouble ("unavailable": no live replica in a group;
   "fenced": an epoch fence tripped; "transport": a link died), and
   replica-lifecycle transitions appear as rid=0 rows with a
   parenthesised pseudo-verb — "(fence)", "(catchup)", "(failover)",
   "(readmit)", "(probe)".  Request rows still use rid >= 1; rid=0 is
   reserved for lifecycle rows, so rid >= 1 is enforced exactly when
   the cmd is a real verb. *)
let known_status =
  [
    "ok"; "bye"; "user"; "budget"; "internal"; "overloaded"; "shutting-down";
    "unavailable"; "fenced"; "transport";
  ]
let mutation_verbs = [ "update"; "batch-update"; "epoch" ]

let lifecycle_verbs =
  [ "(fence)"; "(catchup)"; "(failover)"; "(readmit)"; "(probe)"; "(boot)" ]

let check_events file =
  let module J = Nd_trace.Json in
  let num row field ~min_v j =
    match J.member field j with
    | Some (J.Num v) when v >= min_v -> v
    | Some (J.Num v) -> fail "%s:%d: %s = %g out of range" file row field v
    | _ -> fail "%s:%d: missing numeric %s" file row field
  in
  let lines =
    String.split_on_char '\n' (read_file file)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then fail "%s: empty event log" file;
  let updates = ref 0 and lifecycle = ref 0 and sharded = ref 0 in
  List.iteri
    (fun i line ->
      let row = i + 1 in
      match J.parse line with
      | Error e -> fail "%s:%d: not valid JSON: %s" file row e
      | Ok j ->
          let cmd =
            match J.member "cmd" j with
            | Some (J.Str c) when c <> "" -> c
            | _ -> fail "%s:%d: missing cmd" file row
          in
          let is_lifecycle = List.mem cmd lifecycle_verbs in
          if (not is_lifecycle) && String.length cmd > 0 && cmd.[0] = '(' then
            fail "%s:%d: unknown lifecycle verb %S" file row cmd;
          ignore (num row "ts_us" ~min_v:0. j);
          ignore (num row "rid" ~min_v:(if is_lifecycle then 0. else 1.) j);
          ignore (num row "span" ~min_v:0. j);
          ignore (num row "latency_us" ~min_v:0. j);
          ignore (num row "lines" ~min_v:0. j);
          if List.mem cmd mutation_verbs then incr updates;
          if is_lifecycle then incr lifecycle;
          (match J.member "shard" j with
          | None -> ()
          | Some _ ->
              ignore (num row "shard" ~min_v:0. j);
              incr sharded);
          (match J.member "status" j with
          | Some (J.Str s) when List.mem s known_status -> ()
          | Some (J.Str s) -> fail "%s:%d: unknown status %S" file row s
          | _ -> fail "%s:%d: missing status" file row))
    lines;
  Printf.printf
    "%s: valid event log, %d rows (%d mutation verbs, %d lifecycle, %d \
     shard-scoped)\n"
    file (List.length lines) !updates !lifecycle !sharded

(* The merged cross-process timeline: structural validity plus the
   fleet acceptance rule — every server.request span that carries a
   propagated context must reach a router.request ancestor. *)
let check_merged file =
  match Nd_obs.Merge.validate (read_file file) with
  | Error e -> fail "%s: invalid merged trace: %s" file e
  | Ok v ->
      if v.Nd_obs.Merge.v_server_requests = 0 then
        fail
          "%s: no propagated server.request spans — nothing was traced end \
           to end"
          file;
      Printf.printf
        "%s: valid merged trace, %d processes, %d events, %d/%d propagated \
         server.request spans router-contained, %d orphans\n"
        file v.Nd_obs.Merge.v_processes v.Nd_obs.Merge.v_events
        v.Nd_obs.Merge.v_contained v.Nd_obs.Merge.v_server_requests
        v.Nd_obs.Merge.v_orphans

(* A --blackbox directory after a supervised crash: for each worker's
   newest NAME.postmortem-K.jsonl, the header must carry cause,
   decision, a numeric last_epoch and a matching event count — and the
   restarted incarnation's flight file must open with a (boot) row
   whose epoch equals that last_epoch (recovery lost nothing). *)
let check_blackbox dir =
  let module J = Nd_trace.Json in
  let read path =
    try read_file path with Sys_error m -> fail "%s: %s" path m
  in
  let entries =
    match Sys.readdir dir with
    | a -> Array.to_list a
    | exception Sys_error m -> fail "%s: %s" dir m
  in
  let pm_of f =
    if not (Filename.check_suffix f ".jsonl") then None
    else
      let stem = Filename.chop_suffix f ".jsonl" in
      let tag = ".postmortem-" in
      let tlen = String.length tag in
      let len = String.length stem in
      let rec find i =
        if i + tlen > len then None
        else if String.sub stem i tlen = tag then
          Option.map
            (fun k -> (String.sub stem 0 i, k))
            (int_of_string_opt (String.sub stem (i + tlen) (len - i - tlen)))
        else find (i + 1)
      in
      find 0
  in
  let latest = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match pm_of f with
      | None -> ()
      | Some (name, k) -> (
          match Hashtbl.find_opt latest name with
          | Some (k', _) when k' >= k -> ()
          | _ -> Hashtbl.replace latest name (k, f)))
    entries;
  if Hashtbl.length latest = 0 then fail "%s: no post-mortem files" dir;
  let nonempty text =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  Hashtbl.iter
    (fun name (k, f) ->
      let path = Filename.concat dir f in
      let header, rows =
        match nonempty (read path) with
        | h :: t -> (h, t)
        | [] -> fail "%s: empty post-mortem" path
      in
      let j =
        match J.parse header with
        | Ok j -> j
        | Error e -> fail "%s: bad header: %s" path e
      in
      (match J.member "kind" j with
      | Some (J.Str "postmortem") -> ()
      | _ -> fail "%s: header kind is not \"postmortem\"" path);
      (match (J.member "cause" j, J.member "decision" j) with
      | Some (J.Str _), Some (J.Str _) -> ()
      | _ -> fail "%s: header missing cause/decision" path);
      let last_epoch =
        match J.member "last_epoch" j with
        | Some (J.Num e) -> int_of_float e
        | _ ->
            fail
              "%s: last_epoch is not numeric — the dead worker left no epoch \
               to reconcile"
              path
      in
      (match J.member "events" j with
      | Some (J.Num n) when rows <> [] && int_of_float n = List.length rows ->
          ()
      | Some (J.Num n) ->
          fail "%s: header says %d events, found %d" path (int_of_float n)
            (List.length rows)
      | _ -> fail "%s: header missing events count" path);
      let fl = Filename.concat dir (name ^ ".flight.jsonl") in
      let boot =
        match nonempty (read fl) with
        | b :: _ -> b
        | [] -> fail "%s: flight file empty after restart (no boot row)" fl
      in
      let bj =
        match J.parse boot with
        | Ok j -> j
        | Error e -> fail "%s: bad boot row: %s" fl e
      in
      (match J.member "cmd" bj with
      | Some (J.Str "(boot)") -> ()
      | _ -> fail "%s: first flight row is not (boot)" fl);
      (match J.member "epoch" bj with
      | Some (J.Num e) when int_of_float e = last_epoch -> ()
      | Some (J.Num e) ->
          fail
            "%s: boot epoch %d != post-mortem last epoch %d — recovery lost \
             mutations"
            fl (int_of_float e) last_epoch
      | _ -> fail "%s: boot row missing epoch" fl);
      Printf.printf
        "%s: post-mortem %d ok — %d events, last epoch %d, restarted boot \
         epoch matches\n"
        path k (List.length rows) last_epoch)
    latest;
  Printf.printf "%s: %d worker post-mortem(s) validated\n" dir
    (Hashtbl.length latest)

let () =
  match Sys.argv with
  | [| _; "trace"; file |] -> check_trace file
  | [| _; "merged"; file |] -> check_merged file
  | [| _; "prom"; file |] -> check_prom file
  | [| _; "profile"; file |] -> check_profile file
  | [| _; "events"; file |] -> check_events file
  | [| _; "blackbox"; dir |] -> check_blackbox dir
  | _ ->
      prerr_endline
        "usage: check_obs (trace|merged|prom|profile|events) FILE | check_obs \
         blackbox DIR";
      exit 2
