(* Validate BENCH_engine.json against the nd-engine-bench/1 schema.

   Used by `make bench-smoke` and CI.  The repo deliberately has no
   JSON dependency, so this carries a minimal recursive-descent parser
   sufficient for the subset the bench emits (objects, arrays, strings
   with simple escapes, numbers, booleans, null).

   Usage:  check_schema.exe [BENCH_engine.json]
   Exits 0 when the file parses and satisfies the schema, 1 otherwise. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'u' ->
              (* keep the escape verbatim; fidelity is irrelevant here *)
              advance ();
              for _ = 1 to 4 do
                (match peek () with Some _ -> advance () | None -> fail "bad \\u")
              done;
              Buffer.add_char b '?';
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ---------------- schema checks ---------------- *)

let errors = ref []
let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt

let field path obj name =
  match obj with
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Some v
      | None ->
          err "%s: missing field %S" path name;
          None)
  | _ ->
      err "%s: expected an object" path;
      None

let get_num path obj name =
  match field path obj name with
  | Some (Num f) -> Some f
  | Some _ ->
      err "%s.%s: expected a number" path name;
      None
  | None -> None

let get_str path obj name =
  match field path obj name with
  | Some (Str s) -> Some s
  | Some _ ->
      err "%s.%s: expected a string" path name;
      None
  | None -> None

let check_hist path h =
  List.iter
    (fun f -> ignore (get_num path h f))
    [ "count"; "max"; "mean"; "p50"; "p95"; "p99" ];
  match get_num path h "count" with
  | Some c when c <= 0. -> err "%s: empty histogram" path
  | _ -> ()

let check_engine_point i p =
  let path = Printf.sprintf "engine[%d]" i in
  ignore (get_str path p "spec");
  ignore (get_num path p "prepare_s");
  ignore (get_num path p "solutions");
  match field path p "stats" with
  | Some stats -> (
      (match get_str path stats "schema" with
      | Some "nd-engine-stats/1" -> ()
      | Some other -> err "%s.stats: unexpected schema %S" path other
      | None -> ());
      (match field path stats "graph" with
      | Some g -> ignore (get_num (path ^ ".stats.graph") g "n")
      | None -> ());
      ignore (get_num path stats "ops");
      (match field path stats "enumeration" with
      | Some e ->
          ignore (get_num (path ^ ".stats.enumeration") e "solutions_emitted");
          ignore (get_num (path ^ ".stats.enumeration") e "max_delay_ops")
      | None -> ());
      (match field path stats "hists" with
      | Some hists -> (
          match field (path ^ ".stats.hists") hists "enum.delay_ops" with
          | Some h -> check_hist (path ^ ".stats.hists.enum.delay_ops") h
          | None -> ())
      | None -> ());
      (match field path stats "degradation" with
      | Some d -> (
          match get_str (path ^ ".stats.degradation") d "mode" with
          | Some ("none" | "fallback" | "stale_rebuild") -> ()
          | Some other ->
              err "%s.stats.degradation.mode: unexpected %S" path other
          | None -> ())
      | None -> ());
      (match field path stats "paranoid" with
      | Some p -> (
          match field (path ^ ".stats.paranoid") p "enabled" with
          | Some (Bool _) -> ()
          | Some _ -> err "%s.stats.paranoid.enabled: expected a bool" path
          | None -> ())
      | None -> ());
      (match field path stats "budget" with
      | Some b -> (
          match field (path ^ ".stats.budget") b "exhausted" with
          | Some (Bool _) -> ()
          | Some _ -> err "%s.stats.budget.exhausted: expected a bool" path
          | None -> ())
      | None -> ());
      match field path stats "counters" with
      | Some (Obj kvs) ->
          let touched name =
            match List.assoc_opt name kvs with
            | Some (Num f) -> f > 0.
            | _ -> false
          in
          if not (touched "store.reg_reads" || touched "store.reg_writes")
          then err "%s: no store register touches recorded" path
      | Some _ -> err "%s.stats.counters: expected an object" path
      | None -> ())
  | None -> ()

(* the robustness gate: budget probes on the hot paths must be free on
   the deterministic ops cost model (ticks never advance a counter) *)
let check_budget_point i p =
  let path = Printf.sprintf "budget_overhead[%d]" i in
  ignore (get_str path p "spec");
  ignore (get_num path p "n");
  (match get_num path p "ops_plain" with
  | Some f when f <= 0. -> err "%s.ops_plain: workload recorded no ops" path
  | _ -> ());
  ignore (get_num path p "ops_budget");
  ignore (get_num path p "wall_plain_s");
  ignore (get_num path p "wall_budget_s");
  match get_num path p "ops_delta_pct" with
  | Some d when Float.abs d > 2.0 ->
      err "%s.ops_delta_pct: |%g| exceeds the 2%% probe-overhead budget" path d
  | _ -> ()

(* the observability gate: span tracing on the hot paths must be free
   on the deterministic ops cost model (span bookkeeping never advances
   a counter), and the traced arm must have actually recorded spans *)
let check_trace_point i p =
  let path = Printf.sprintf "trace_overhead[%d]" i in
  ignore (get_str path p "spec");
  ignore (get_num path p "n");
  (match get_num path p "ops_off" with
  | Some f when f <= 0. -> err "%s.ops_off: workload recorded no ops" path
  | _ -> ());
  ignore (get_num path p "ops_on");
  ignore (get_num path p "wall_off_s");
  ignore (get_num path p "wall_on_s");
  (match get_num path p "spans" with
  | Some s when s < 1. -> err "%s.spans: traced arm recorded no spans" path
  | _ -> ());
  match get_num path p "ops_delta_pct" with
  | Some d when Float.abs d > 2.0 ->
      err "%s.ops_delta_pct: |%g| exceeds the 2%% tracer-overhead budget" path d
  | _ -> ()

(* the persistence gate: reviving a snapshot must beat redoing the
   Theorem 2.3 preprocessing, or the subsystem has no reason to exist *)
let check_snapshot_point i p =
  let path = Printf.sprintf "snapshot[%d]" i in
  ignore (get_str path p "spec");
  (match get_num path p "prepare_s" with
  | Some f when f <= 0. -> err "%s.prepare_s: non-positive" path
  | _ -> ());
  ignore (get_num path p "save_s");
  (match get_num path p "load_s" with
  | Some f when f <= 0. -> err "%s.load_s: non-positive" path
  | _ -> ());
  (match get_num path p "bytes" with
  | Some f when f <= 0. -> err "%s.bytes: empty snapshot" path
  | _ -> ());
  match get_num path p "speedup" with
  | Some s when s <= 1.0 ->
      err "%s.speedup: %g — snapshot load is not faster than cold prepare"
        path s
  | _ -> ()

(* the incremental-maintenance gate: absorbing one mutation through
   Nd_engine.update must get relatively cheaper as n grows (the dirty
   region is O(1) while prepare is pseudo-linear) — the ratio must fall
   monotonically and end below 0.2, or updates are just re-prepares *)
let check_update_points pts =
  let ratios =
    List.mapi
      (fun i p ->
        let path = Printf.sprintf "update[%d]" i in
        ignore (get_str path p "spec");
        (match get_num path p "n" with
        | Some n when n <= 0. -> err "%s.n: non-positive" path
        | _ -> ());
        (match get_num path p "prepare_ops" with
        | Some f when f <= 0. -> err "%s.prepare_ops: non-positive" path
        | _ -> ());
        (match get_num path p "update_ops" with
        | Some f when f <= 0. -> err "%s.update_ops: non-positive" path
        | _ -> ());
        (match get_num path p "mutations" with
        | Some f when f <= 0. -> err "%s.mutations: no mutations measured" path
        | _ -> ());
        match get_num path p "ratio" with
        | Some r when r <= 0. ->
            err "%s.ratio: non-positive" path;
            None
        | Some r -> Some r
        | None -> None)
      pts
  in
  match List.filter_map Fun.id ratios with
  | [] -> err "$.update: no usable ratio values"
  | rs ->
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            (* 5% slack absorbs timing-free but allocation-dependent
               op-count jitter between runs *)
            if b > a *. 1.05 then
              err
                "$.update: ratio is not decreasing with n (%g then %g) — \
                 bounded maintenance is not bounded"
                a b
            else monotone rest
        | _ -> ()
      in
      monotone rs;
      let final = List.nth rs (List.length rs - 1) in
      if final >= 0.2 then
        err
          "$.update: final update/prepare ratio %g >= 0.2 — absorbing a \
           mutation costs too close to a re-prepare"
          final

(* the parallelism gate (DESIGN S14): field presence is enforced
   everywhere, but the scaling assertions — prepare speedup >= 1.3 at
   jobs=4, and 4-client serve throughput above 1-client — only bind
   when the recording host actually had >= 4 domains to scale over.
   On a 1-core host the worker domains merely time-share, so those
   numbers carry no signal and the gate is vacuous by design. *)
let check_parallel par =
  let host =
    match get_num "$.parallel" par "host_domains" with
    | Some h when h >= 1. -> h
    | Some h ->
        err "$.parallel.host_domains: %g is not a positive count" h;
        1.
    | None -> 1.
  in
  let gate = host >= 4. in
  (match field "$.parallel" par "prepare" with
  | Some (Arr pts) ->
      if List.length pts < 3 then
        err "$.parallel.prepare: expected rows for jobs in {1,2,4}";
      let speedups =
        List.filter_map
          (fun p ->
            let path = "$.parallel.prepare[]" in
            ignore (get_str path p "spec");
            ignore (get_num path p "host_domains");
            (match get_num path p "prepare_s" with
            | Some f when f <= 0. -> err "%s.prepare_s: non-positive" path
            | _ -> ());
            match (get_num path p "jobs", get_num path p "speedup") with
            | Some j, Some s -> Some (j, s)
            | _ -> None)
          pts
      in
      (match List.assoc_opt 1. speedups with
      | Some s when Float.abs (s -. 1.) > 1e-6 ->
          err "$.parallel.prepare: jobs=1 speedup must be 1.0, got %g" s
      | None -> err "$.parallel.prepare: missing the jobs=1 baseline row"
      | Some _ -> ());
      (match List.assoc_opt 4. speedups with
      | Some s when gate && s < 1.3 ->
          err
            "$.parallel.prepare: jobs=4 speedup %g < 1.3 on a %g-domain \
             host — the bag-job fan-out is not scaling"
            s host
      | None -> err "$.parallel.prepare: missing the jobs=4 row"
      | Some _ -> ())
  | Some _ -> err "$.parallel.prepare: expected an array"
  | None -> ());
  match field "$.parallel" par "serve" with
  | Some (Arr pts) ->
      if List.length pts < 3 then
        err "$.parallel.serve: expected rows for 1/4/16 clients";
      let rps =
        List.filter_map
          (fun p ->
            let path = "$.parallel.serve[]" in
            ignore (get_num path p "jobs");
            ignore (get_num path p "host_domains");
            (match get_num path p "requests" with
            | Some r when r <= 0. -> err "%s.requests: no requests served" path
            | _ -> ());
            (match get_num path p "elapsed_s" with
            | Some f when f <= 0. -> err "%s.elapsed_s: non-positive" path
            | _ -> ());
            match (get_num path p "clients", get_num path p "rps") with
            | Some c, Some r ->
                if r <= 0. then err "%s.rps: non-positive" path;
                Some (c, r)
            | _ -> None)
          pts
      in
      (match (List.assoc_opt 1. rps, List.assoc_opt 4. rps) with
      | Some r1, Some r4 when gate && r4 <= r1 ->
          err
            "$.parallel.serve: 4-client throughput %g req/s does not beat \
             1-client %g req/s on a %g-domain host"
            r4 r1 host
      | None, _ -> err "$.parallel.serve: missing the 1-client row"
      | _, None -> err "$.parallel.serve: missing the 4-client row"
      | Some _, Some _ -> ())
  | Some _ -> err "$.parallel.serve: expected an array"
  | None -> ()

(* the overload gate (DESIGN S15): under the 8-client stampede against
   max_inflight=2 the gated arm must have actually shed (the stampede
   really was an overload) while still doing useful work (shedding is
   load shedding, not an outage); and arming every hygiene gate at
   non-triggering thresholds on the unloaded serve row must be free on
   the deterministic ops cost model — the gates live in the transport
   layer and may never advance an engine counter (<= 2%, mirroring the
   ER and TR overhead gates) *)
let check_overload ov =
  ignore (get_num "$.overload" ov "host_domains");
  (match field "$.overload" ov "gated" with
  | Some g ->
      let path = "$.overload.gated" in
      (match get_num path g "requests" with
      | Some r when r <= 0. -> err "%s.requests: no requests fired" path
      | _ -> ());
      (match get_num path g "ok" with
      | Some k when k <= 0. ->
          err "%s.ok: the gated server did no useful work under overload" path
      | _ -> ());
      (match get_num path g "shed" with
      | Some s when s <= 0. ->
          err
            "%s.shed: the stampede shed nothing — admission control never \
             engaged"
            path
      | _ -> ());
      (match (get_num path g "shed", get_num path g "server_shed") with
      | Some c, Some s when c > s ->
          err
            "%s: clients observed %g shed replies but the server counted \
             only %g"
            path c s
      | _ -> ());
      (match get_num path g "goodput_rps" with
      | Some r when r <= 0. -> err "%s.goodput_rps: non-positive" path
      | _ -> ());
      (match get_num path g "shed_p99_us" with
      | Some p when p <= 0. -> err "%s.shed_p99_us: non-positive" path
      | _ -> ());
      ignore (get_num path g "elapsed_s");
      ignore (get_num path g "retry_after_ms")
  | None -> ());
  (match field "$.overload" ov "nogate" with
  | Some ng ->
      let path = "$.overload.nogate" in
      (match get_num path ng "ok" with
      | Some k when k <= 0. -> err "%s.ok: no-gate arm served nothing" path
      | _ -> ());
      (match get_num path ng "rps" with
      | Some r when r <= 0. -> err "%s.rps: non-positive" path
      | _ -> ())
  | None -> ());
  match field "$.overload" ov "hygiene" with
  | Some h -> (
      let path = "$.overload.hygiene" in
      (match get_num path h "ops_off" with
      | Some f when f <= 0. -> err "%s.ops_off: workload recorded no ops" path
      | _ -> ());
      ignore (get_num path h "ops_on");
      ignore (get_num path h "rps_off");
      ignore (get_num path h "rps_on");
      match get_num path h "ops_delta_pct" with
      | Some d when Float.abs d > 2.0 ->
          err
            "%s.ops_delta_pct: |%g| exceeds the 2%% hygiene-overhead budget"
            path d
      | _ -> ())
  | None -> ()

(* the cluster gates (DESIGN S16): the router's k-way merge must be
   byte-identical to single-node enumeration; the failover arm must
   have answered every request (a dead replica is a blip, not an
   outage) and actually failed over; every catch-up row must have
   readmitted its laggard; and epoch fencing must be free on the
   deterministic ops cost model (<= 2%, mirroring the ER/TR/RB
   gates) *)
let check_cluster cl =
  (match get_num "$.cluster" cl "shards" with
  | Some s when s < 2. ->
      err "$.cluster.shards: %g is not a cluster — need >= 2 shards" s
  | _ -> ());
  (match field "$.cluster" cl "merge" with
  | Some m ->
      let path = "$.cluster.merge" in
      (match get_num path m "solutions" with
      | Some s when s <= 0. -> err "%s.solutions: merged nothing" path
      | _ -> ());
      (match get_num path m "mismatches" with
      | Some d when d <> 0. ->
          err
            "%s.mismatches: the merged stream diverged from single-node \
             enumeration"
            path
      | _ -> ());
      (match get_num path m "router_sps" with
      | Some r when r <= 0. -> err "%s.router_sps: non-positive" path
      | _ -> ());
      ignore (get_num path m "single_sps")
  | None -> err "$.cluster.merge: missing");
  (match field "$.cluster" cl "failover" with
  | Some f ->
      let path = "$.cluster.failover" in
      (match (get_num path f "requests", get_num path f "ok") with
      | Some r, _ when r <= 0. -> err "%s.requests: none fired" path
      | Some r, Some k when k < r ->
          err
            "%s: only %g of %g requests answered — a replica death must \
             be a blip, not an outage"
            path k r
      | _ -> ());
      (match get_num path f "failovers" with
      | Some v when v < 1. ->
          err "%s.failovers: the dead replica never triggered a failover"
            path
      | _ -> ());
      (match get_num path f "blip_p99_us" with
      | Some p when p <= 0. -> err "%s.blip_p99_us: non-positive" path
      | _ -> ())
  | None -> err "$.cluster.failover: missing");
  (match field "$.cluster" cl "catchup" with
  | Some (Arr []) -> err "$.cluster.catchup: empty"
  | Some (Arr pts) ->
      List.iteri
        (fun i p ->
          let path = Printf.sprintf "$.cluster.catchup[%d]" i in
          (match get_num path p "journal_len" with
          | Some l when l <= 0. -> err "%s.journal_len: non-positive" path
          | _ -> ());
          (match get_num path p "catchup_ms" with
          | Some m when m < 0. -> err "%s.catchup_ms: negative" path
          | _ -> ());
          match get_num path p "readmitted" with
          | Some 1. -> ()
          | Some _ ->
              err "%s.readmitted: the laggard was never readmitted" path
          | None -> err "%s.readmitted: missing" path)
        pts
  | Some _ -> err "$.cluster.catchup: expected an array"
  | None -> err "$.cluster.catchup: missing");
  match field "$.cluster" cl "probe_overhead" with
  | Some p -> (
      let path = "$.cluster.probe_overhead" in
      (match get_num path p "ops_off" with
      | Some f when f <= 0. -> err "%s.ops_off: workload recorded no ops" path
      | _ -> ());
      ignore (get_num path p "ops_on");
      match get_num path p "ops_delta_pct" with
      | Some d when Float.abs d > 2.0 ->
          err
            "%s.ops_delta_pct: |%g| exceeds the 2%% probe/fence-overhead \
             budget"
            path d
      | _ -> ())
  | None -> err "$.cluster.probe_overhead: missing"

(* the fleet-observability gate (DESIGN S17): arming the whole stack —
   span tracing, trace-context propagation, event logs and the flight
   ring — over the in-process fleet must be free on the deterministic
   ops cost model (<= 2%), and the armed arm must have actually
   recorded spans and ring events (no vacuous pass) *)
let check_observability ob =
  let path = "$.observability" in
  (match get_num path ob "requests" with
  | Some r when r <= 0. -> err "%s.requests: none fired" path
  | _ -> ());
  (match get_num path ob "ops_off" with
  | Some f when f <= 0. -> err "%s.ops_off: workload recorded no ops" path
  | _ -> ());
  ignore (get_num path ob "ops_on");
  ignore (get_num path ob "wall_off_s");
  ignore (get_num path ob "wall_on_s");
  (match get_num path ob "spans" with
  | Some s when s < 1. -> err "%s.spans: armed arm recorded no spans" path
  | _ -> ());
  (match get_num path ob "ring_events" with
  | Some s when s < 1. ->
      err "%s.ring_events: armed arm recorded no flight-ring events" path
  | _ -> ());
  match get_num path ob "ops_delta_pct" with
  | Some d when Float.abs d > 2.0 ->
      err
        "%s.ops_delta_pct: |%g| exceeds the 2%% fleet-observability \
         overhead budget"
        path d
  | _ -> ()

(* the storage gates (DESIGN S18): the flat-bank store must beat the
   boxed implementation it replaced on the same op script, and the warm
   (STOR bank adoption) load rung must beat replaying the CACH key list
   through Store.add — both wall-clock, both strictly > 1, or the
   refactor bought nothing *)
let check_storage st =
  (match field "$.storage" st "flat" with
  | Some f -> (
      let path = "$.storage.flat" in
      (match get_num path f "ops" with
      | Some o when o <= 0. -> err "%s.ops: the script replayed nothing" path
      | _ -> ());
      (match get_num path f "keys" with
      | Some k when k <= 0. -> err "%s.keys: the store ended empty" path
      | _ -> ());
      (match get_num path f "wall_flat_s" with
      | Some w when w <= 0. -> err "%s.wall_flat_s: non-positive" path
      | _ -> ());
      (match get_num path f "wall_boxed_s" with
      | Some w when w <= 0. -> err "%s.wall_boxed_s: non-positive" path
      | _ -> ());
      match get_num path f "speedup_flat" with
      | Some s when s <= 1.0 ->
          err
            "%s.speedup_flat: %g — the flat banks are not faster than the \
             boxed cells they replaced"
            path s
      | _ -> ())
  | None -> err "$.storage.flat: missing");
  match field "$.storage" st "warm" with
  | Some w -> (
      let path = "$.storage.warm" in
      ignore (get_str path w "spec");
      (match get_num path w "solutions" with
      | Some s when s <= 0. ->
          err "%s.solutions: nothing cached, the replay arm is vacuous" path
      | _ -> ());
      (match get_num path w "bytes" with
      | Some b when b <= 0. -> err "%s.bytes: empty snapshot" path
      | _ -> ());
      (match field path w "warm" with
      | Some (Bool true) -> ()
      | Some (Bool false) ->
          err "%s.warm: the default load never took the warm route" path
      | Some _ -> err "%s.warm: expected a bool" path
      | None -> err "%s.warm: missing" path);
      (match field path w "mapped" with
      | Some (Bool _) -> ()
      | Some _ -> err "%s.mapped: expected a bool" path
      | None -> err "%s.mapped: missing" path);
      (match get_num path w "wall_warm_s" with
      | Some f when f <= 0. -> err "%s.wall_warm_s: non-positive" path
      | _ -> ());
      (match get_num path w "wall_replay_s" with
      | Some f when f <= 0. -> err "%s.wall_replay_s: non-positive" path
      | _ -> ());
      match get_num path w "speedup_warm" with
      | Some s when s <= 1.0 ->
          err
            "%s.speedup_warm: %g — adopting the STOR banks is not faster \
             than replaying the key list"
            path s
      | _ -> ())
  | None -> err "$.storage.warm: missing"

let check_store_point i p =
  let path = Printf.sprintf "store[%d]" i in
  ignore (get_num path p "n");
  ignore (get_num path p "epsilon");
  ignore (get_num path p "keys");
  (match field path p "lookup_touches" with
  | Some h -> check_hist (path ^ ".lookup_touches") h
  | None -> ());
  match field path p "update_touches" with
  | Some h -> check_hist (path ^ ".update_touches") h
  | None -> ()

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_engine.json" in
  let doc =
    try
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e ->
      Printf.eprintf "cannot read %s: %s\n" file e;
      exit 1
  in
  let j =
    try parse doc
    with Parse_error e ->
      Printf.eprintf "%s: JSON parse error: %s\n" file e;
      exit 1
  in
  (match get_str "$" j "schema" with
  | Some "nd-engine-bench/1" -> ()
  | Some other -> err "$.schema: expected \"nd-engine-bench/1\", got %S" other
  | None -> ());
  ignore (get_str "$" j "mode");
  ignore (get_str "$" j "query");
  (match field "$" j "engine" with
  | Some (Arr []) -> err "$.engine: empty"
  | Some (Arr pts) -> List.iteri check_engine_point pts
  | Some _ -> err "$.engine: expected an array"
  | None -> ());
  (match field "$" j "store" with
  | Some (Arr []) -> err "$.store: empty"
  | Some (Arr pts) ->
      List.iteri check_store_point pts;
      if List.length pts < 4 then
        err "$.store: expected the n in {10^2..10^5} trajectory (4 points)"
  | Some _ -> err "$.store: expected an array"
  | None -> ());
  (match field "$" j "budget_overhead" with
  | Some (Arr []) -> err "$.budget_overhead: empty"
  | Some (Arr pts) -> List.iteri check_budget_point pts
  | Some _ -> err "$.budget_overhead: expected an array"
  | None -> ());
  (match field "$" j "trace_overhead" with
  | Some (Arr []) -> err "$.trace_overhead: empty"
  | Some (Arr pts) -> List.iteri check_trace_point pts
  | Some _ -> err "$.trace_overhead: expected an array"
  | None -> ());
  (match field "$" j "snapshot" with
  | Some (Arr []) -> err "$.snapshot: empty"
  | Some (Arr pts) -> List.iteri check_snapshot_point pts
  | Some _ -> err "$.snapshot: expected an array"
  | None -> ());
  (match field "$" j "storage" with
  | Some (Obj _ as st) -> check_storage st
  | Some _ -> err "$.storage: expected an object"
  | None -> err "$.storage: missing (the flat-bank + warm-load rows)");
  (match field "$" j "update" with
  | Some (Arr []) -> err "$.update: empty"
  | Some (Arr pts) ->
      if List.length pts < 2 then
        err "$.update: need at least two sizes to gate the ratio trend";
      check_update_points pts
  | Some _ -> err "$.update: expected an array"
  | None -> err "$.update: missing (the incremental-maintenance rows)");
  (match field "$" j "parallel" with
  | Some (Obj _ as par) -> check_parallel par
  | Some _ -> err "$.parallel: expected an object"
  | None -> err "$.parallel: missing (the parallelism rows)");
  (match field "$" j "overload" with
  | Some (Obj _ as ov) -> check_overload ov
  | Some _ -> err "$.overload: expected an object"
  | None -> err "$.overload: missing (the overload-shedding rows)");
  (match field "$" j "cluster" with
  | Some (Obj _ as cl) -> check_cluster cl
  | Some _ -> err "$.cluster: expected an object"
  | None -> err "$.cluster: missing (the cluster-router rows)");
  (match field "$" j "observability" with
  | Some (Obj _ as ob) -> check_observability ob
  | Some _ -> err "$.observability: expected an object"
  | None -> err "$.observability: missing (the fleet-observability rows)");
  match !errors with
  | [] ->
      Printf.printf "%s: schema nd-engine-bench/1 OK\n" file;
      exit 0
  | es ->
      List.iter (fun e -> Printf.eprintf "SCHEMA ERROR: %s\n" e) (List.rev es);
      exit 1
